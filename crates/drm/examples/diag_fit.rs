use drm::{ArchPoint, DvsPoint, EvalParams, Evaluator, Oracle};
use ramp::{FailureParams, Mechanism, QualificationPoint, ReliabilityModel};
use sim_common::{Floorplan, Kelvin, Structure};
use workload::App;

fn main() {
    let oracle = Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap());
    let model = ReliabilityModel::qualify(
        FailureParams::ramp_65nm(),
        &QualificationPoint::at_temperature(Kelvin(400.0), 0.35),
        &Floorplan::r10000_65nm().area_shares(),
        4000.0,
    )
    .unwrap();
    for app in [App::Twolf, App::MpgDec] {
        for ghz in [3.0, 4.0, 4.5, 5.0] {
            let ev = oracle
                .evaluation(
                    app,
                    ArchPoint::most_aggressive(),
                    DvsPoint::at_ghz(ghz).unwrap(),
                )
                .unwrap()
                .clone();
            let fit = ev.application_fit(&model);
            println!(
                "{:7} {:.2}GHz V={:.3} Tmax={:.1} Pavg={:.1}W ipc={:.2} | EM={:6.0} SM={:6.0} TDDB={:8.0} TC={:6.0} total={:8.0}",
                app.name(), ghz, drm::voltage_for_frequency(ghz),
                ev.max_temperature().0, ev.average_power().0, ev.ipc,
                fit.mechanism_total(Mechanism::Electromigration).value(),
                fit.mechanism_total(Mechanism::StressMigration).value(),
                fit.mechanism_total(Mechanism::Tddb).value(),
                fit.mechanism_total(Mechanism::ThermalCycling).value(),
                fit.total().value()
            );
            let _ = Structure::ALL;
        }
    }
}
