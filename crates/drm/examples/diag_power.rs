use drm::{EvalParams, Evaluator};
use sim_cpu::CoreConfig;
use workload::App;

fn main() {
    let e = Evaluator::ibm_65nm(EvalParams::quick()).unwrap();
    for app in App::ALL {
        let ev = e.evaluate(app, &CoreConfig::base()).unwrap();
        println!(
            "{:8} ipc={:.2} ({:.1})  P={:5.1}W ({:4.1})  Tmax={:.1}K sink={:.1}K  amax={:.2}",
            app.name(),
            ev.ipc,
            app.paper_ipc(),
            ev.average_power().0,
            app.paper_power_watts(),
            ev.max_temperature().0,
            ev.sink_temperature.0,
            ev.max_activity()
        );
    }
}
