use drm::{ArchPoint, DvsPoint};
use drm::{EvalParams, Evaluator, Oracle};
use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
use sim_common::{Floorplan, Kelvin};
use workload::App;

fn main() {
    let oracle = Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap());
    let alpha = oracle.suite_max_activity(&App::ALL).unwrap();
    let shares = Floorplan::r10000_65nm().area_shares();
    // For each app: the T_qual at which base-config FIT == 4000 (bisect).
    for app in App::ALL {
        let ev = oracle
            .evaluation(app, ArchPoint::most_aggressive(), DvsPoint::base())
            .unwrap()
            .clone();
        let fit_at = |t: f64| {
            let m = ReliabilityModel::qualify(
                FailureParams::ramp_65nm(),
                &QualificationPoint::at_temperature(Kelvin(t), alpha),
                &shares,
                4000.0,
            )
            .unwrap();
            ev.application_fit(&m).total().value()
        };
        let (mut lo, mut hi) = (325.0, 430.0);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if fit_at(mid) > 4000.0 {
                lo = mid
            } else {
                hi = mid
            }
        }
        println!(
            "{:8}: base FIT == target at T_qual = {:.1} K (Tmax={:.1})",
            app.name(),
            0.5 * (lo + hi),
            ev.max_temperature().0
        );
    }
    // Min-config floor: slowest DVS on smallest arch, hottest app.
    let min_cfg = ArchPoint {
        window: 16,
        alus: 2,
        fpus: 1,
    };
    for app in [App::MpgDec, App::Twolf] {
        let ev = oracle
            .evaluation(app, min_cfg, DvsPoint::at_ghz(2.5).unwrap())
            .unwrap()
            .clone();
        let fit_at = |t: f64| {
            let m = ReliabilityModel::qualify(
                FailureParams::ramp_65nm(),
                &QualificationPoint::at_temperature(Kelvin(t), alpha),
                &shares,
                4000.0,
            )
            .unwrap();
            ev.application_fit(&m).total().value()
        };
        let (mut lo, mut hi) = (318.5, 430.0);
        for _ in 0..40 {
            let mid = 0.5 * (lo + hi);
            if fit_at(mid) > 4000.0 {
                lo = mid
            } else {
                hi = mid
            }
        }
        println!(
            "{:8}: min-config FIT == target at T_qual = {:.1} K (Tmax={:.1})",
            app.name(),
            0.5 * (lo + hi),
            ev.max_temperature().0
        );
    }
}
