use drm::{EvalParams, Evaluator, Oracle, Strategy};
use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
use sim_common::{Floorplan, Kelvin};
use workload::App;

fn main() {
    let oracle = Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap());
    let alpha = oracle.suite_max_activity(&App::ALL).unwrap();
    eprintln!("alpha_qual = {alpha:.3}");
    let shares = Floorplan::r10000_65nm().area_shares();
    print!("{:9}", "app");
    for t in [400.0, 370.0, 345.0, 325.0] {
        print!("  T={t:.0}");
    }
    println!();
    for app in App::ALL {
        print!("{:9}", app.name());
        for t in [400.0, 370.0, 345.0, 325.0] {
            let model = ReliabilityModel::qualify(
                FailureParams::ramp_65nm(),
                &QualificationPoint::at_temperature(Kelvin(t), alpha),
                &shares,
                4000.0,
            )
            .unwrap();
            let c = oracle.best(app, Strategy::ArchDvs, &model, 0.25).unwrap();
            print!(
                "  {:.2}{}",
                c.relative_performance,
                if c.feasible { ' ' } else { '!' }
            );
        }
        println!();
    }
    eprintln!("evals: {}", oracle.evaluations_performed());
}
