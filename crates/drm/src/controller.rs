//! A reactive, interval-based DRM control algorithm.
//!
//! The paper's evaluation uses an oracle (§5) and leaves "specific adaptive
//! control algorithms" to future work. This module implements the natural
//! first such algorithm: RAMP runs online (counters + sensors feeding a
//! [`ramp::FitTracker`]), and at every control epoch the controller
//! compares the reliability budget consumed so far against the target and
//! steps the DVS level down when over budget and up when there is
//! headroom. Because reliability — like energy, unlike temperature — can
//! be banked over time (§4), the controller regulates the *time-averaged*
//! FIT rather than an instantaneous quantity.

use ramp::{Fit, FitTracker, ReliabilityModel, StructureConditions};
use sim_common::{Kelvin, Seconds, SimError, StructureMap, Watts};
use sim_cpu::{CoreConfig, Processor};
use sim_power::PowerModel;
use sim_thermal::ThermalModel;
use workload::{App, SyntheticStream};

use crate::dvs::{DVS_MAX_GHZ, DVS_MIN_GHZ};
use crate::sensors::{SensorBank, SensorParams};

/// Base address of the synthetic data segment.
const DATA_BASE: u64 = 0x1000_0000;

/// Parameters of the reactive controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ControllerParams {
    /// Instructions per control epoch.
    pub epoch_instructions: u64,
    /// Total instructions to run.
    pub total_instructions: u64,
    /// DVS step per control action, GHz.
    pub dvs_step_ghz: f64,
    /// Hysteresis band: step up only when the consumed budget is below
    /// `(1 − hysteresis) ×` target (prevents oscillation).
    pub hysteresis: f64,
    /// Workload seed.
    pub seed: u64,
    /// Leakage/temperature fixed-point iterations per epoch.
    pub leakage_iterations: u32,
    /// Bytes of the data working set prefilled before the run.
    pub prewarm_bytes: u64,
    /// Optional thermal design point: when set, the controller also
    /// enforces `T_max` like a DTM policy, stepping down whenever the
    /// epoch's peak temperature exceeds it (§7.3: "future systems must
    /// provide mechanisms to support both together").
    pub thermal_limit: Option<Kelvin>,
    /// Optional sensor model: when set, the controller *decides* from
    /// quantized/noisy/lagged sensor readings while the reported FIT uses
    /// the true temperatures — quantifying the guard band real hardware
    /// RAMP needs (§3).
    pub sensors: Option<SensorParams>,
}

impl ControllerParams {
    /// Fast settings for tests and examples.
    pub fn quick() -> ControllerParams {
        ControllerParams {
            epoch_instructions: 20_000,
            total_instructions: 400_000,
            dvs_step_ghz: 0.25,
            hysteresis: 0.05,
            seed: 12_345,
            leakage_iterations: 2,
            prewarm_bytes: 2 * 1024 * 1024,
            thermal_limit: None,
            sensors: None,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero lengths, a non-positive
    /// step, or hysteresis outside `[0, 1)`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.epoch_instructions == 0 || self.total_instructions == 0 {
            return Err(SimError::invalid_config("epoch and total must be non-zero"));
        }
        if self.epoch_instructions > self.total_instructions {
            return Err(SimError::invalid_config("epoch longer than the run"));
        }
        if !self.dvs_step_ghz.is_finite() || self.dvs_step_ghz <= 0.0 {
            return Err(SimError::invalid_config("DVS step must be positive"));
        }
        if !(0.0..1.0).contains(&self.hysteresis) {
            return Err(SimError::invalid_config("hysteresis must be in [0,1)"));
        }
        if self.leakage_iterations == 0 {
            return Err(SimError::invalid_config(
                "need at least one leakage iteration",
            ));
        }
        if let Some(t) = self.thermal_limit {
            if !(t.0 > 0.0 && t.0.is_finite()) {
                return Err(SimError::invalid_config("thermal limit must be positive"));
            }
        }
        if let Some(sensors) = self.sensors {
            sensors.validate()?;
        }
        Ok(())
    }
}

impl Default for ControllerParams {
    fn default() -> Self {
        ControllerParams::quick()
    }
}

/// One control epoch in the trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochRecord {
    /// Frequency the epoch ran at, GHz.
    pub ghz: f64,
    /// Running time-averaged FIT after this epoch.
    pub fit_so_far: Fit,
    /// Epoch wall-clock duration.
    pub duration: Seconds,
    /// Peak structure temperature during the epoch.
    pub peak_temperature: Kelvin,
    /// Epoch IPC.
    pub ipc: f64,
}

/// The result of a reactive DRM run.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlTrace {
    /// Per-epoch records in order.
    pub epochs: Vec<EpochRecord>,
    /// Final time-averaged application FIT.
    pub final_fit: Fit,
    /// Achieved performance, billions of instructions per second.
    pub bips: f64,
    /// Number of DVS transitions the controller issued.
    pub frequency_changes: u32,
    /// Epochs whose peak temperature exceeded the thermal limit (always 0
    /// when no limit is configured; transiently nonzero while the
    /// controller reacts).
    pub thermal_violations: u32,
}

impl ControlTrace {
    /// Time-averaged frequency over the run, GHz.
    pub fn average_ghz(&self) -> f64 {
        let time: f64 = self.epochs.iter().map(|e| e.duration.0).sum();
        if time <= 0.0 {
            return 0.0;
        }
        self.epochs
            .iter()
            .map(|e| e.ghz * e.duration.0)
            .sum::<f64>()
            / time
    }
}

/// The reactive DRM controller: power + thermal models and control
/// parameters.
#[derive(Debug, Clone)]
pub struct ReactiveDrm {
    power: PowerModel,
    thermal: ThermalModel,
    params: ControllerParams,
}

impl ReactiveDrm {
    /// Creates a controller.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the parameters fail
    /// [`ControllerParams::validate`].
    pub fn new(
        power: PowerModel,
        thermal: ThermalModel,
        params: ControllerParams,
    ) -> Result<ReactiveDrm, SimError> {
        params.validate()?;
        Ok(ReactiveDrm {
            power,
            thermal,
            params,
        })
    }

    /// The default 65 nm stack.
    pub fn ibm_65nm(params: ControllerParams) -> Result<ReactiveDrm, SimError> {
        ReactiveDrm::new(PowerModel::ibm_65nm(), ThermalModel::hotspot_65nm(), params)
    }

    /// Runs `app` under reactive DRM against `model`'s FIT target.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors.
    pub fn run(&self, app: App, model: &ReliabilityModel) -> Result<ControlTrace, SimError> {
        let profile = app.profile();
        let stream = SyntheticStream::new(profile.clone(), self.params.seed);
        let mut config = CoreConfig::base();
        let mut ghz = config.frequency.to_ghz();
        let mut cpu = Processor::new(config.clone(), stream)?;
        let resident = profile.data_working_set.min(self.params.prewarm_bytes);
        cpu.prewarm(DATA_BASE, resident, 0, profile.code_footprint);

        let target = model.target_fit();
        let step_up_threshold = Fit(target.value() * (1.0 - self.params.hysteresis));

        let mut tracker = FitTracker::new();
        // The controller's view of the world: identical to `tracker` with
        // ideal sensors, noisier otherwise.
        let mut decision_tracker = FitTracker::new();
        let mut sensor_bank = match self.params.sensors {
            Some(params) => Some(SensorBank::new(params, self.params.seed ^ 0x5E_A5_ED)?),
            None => None,
        };
        let mut epochs = Vec::new();
        let mut frequency_changes = 0u32;
        let mut thermal_violations = 0u32;
        let mut total_energy = 0.0f64;
        let mut total_time = 0.0f64;
        let mut total_instructions = 0u64;
        let mut temps = StructureMap::splat(Kelvin(345.0));
        let mut sink = self.thermal.steady_sink_temperature(Watts(25.0));

        let mut remaining = self.params.total_instructions;
        while remaining > 0 {
            let n = remaining.min(self.params.epoch_instructions);
            let stats = cpu.run_instructions(n);
            remaining -= n;
            total_instructions += n;

            // Power/temperature for the epoch (sink pinned at the running
            // estimate, leakage fixed point).
            let mut breakdown = self.power.power(&config, &stats.activity, &temps);
            for _ in 0..self.params.leakage_iterations {
                temps = self
                    .thermal
                    .steady_state_with_sink(&breakdown.per_structure(), sink)
                    .map(|_, t| Kelvin(t.0.min(500.0)));
                breakdown = self.power.power(&config, &stats.activity, &temps);
            }
            let duration = Seconds(stats.cycles as f64 / config.frequency.0);
            total_energy += breakdown.total().0 * duration.0;
            total_time += duration.0;
            sink = self
                .thermal
                .steady_sink_temperature(Watts(total_energy / total_time))
                .min(Kelvin(500.0));

            let conditions = StructureMap::from_fn(|s| StructureConditions {
                temperature: temps[s],
                vdd: config.vdd,
                frequency: config.frequency,
                activity: stats.activity[s],
                powered_fraction: config.powered_fraction(s),
            });
            tracker.record(model, duration, &conditions);

            // What the controller actually sees.
            let sensed_temps = match sensor_bank.as_mut() {
                Some(bank) => bank.sample(&temps),
                None => temps,
            };
            let sensed_conditions = StructureMap::from_fn(|s| StructureConditions {
                temperature: sensed_temps[s],
                ..conditions[s]
            });
            decision_tracker.record(model, duration, &sensed_conditions);
            let fit_so_far = decision_tracker.running_total(model);

            // Decisions use the sensed peak; the trace reports the truth.
            let peak = sensed_temps
                .iter()
                .map(|(_, t)| t.0)
                .fold(f64::MIN, f64::max);
            let true_peak = temps.iter().map(|(_, t)| t.0).fold(f64::MIN, f64::max);
            epochs.push(EpochRecord {
                ghz,
                fit_so_far,
                duration,
                peak_temperature: Kelvin(true_peak),
                ipc: stats.ipc(),
            });

            // Control action: bank or spend reliability budget, and never
            // step into (or stay in) thermal violation when a limit is set.
            let over_thermal = self
                .params
                .thermal_limit
                .is_some_and(|limit| peak > limit.0);
            if over_thermal {
                thermal_violations += 1;
            }
            // Step up only with margin below the thermal limit, or the
            // controller would oscillate across it on FIT headroom alone.
            let thermal_headroom = self
                .params
                .thermal_limit
                .is_none_or(|limit| peak < limit.0 - 3.0);
            let step = self.params.dvs_step_ghz;
            let new_ghz = if fit_so_far > target || over_thermal {
                (ghz - step).max(DVS_MIN_GHZ)
            } else if fit_so_far < step_up_threshold && thermal_headroom {
                (ghz + step).min(DVS_MAX_GHZ)
            } else {
                ghz
            };
            if (new_ghz - ghz).abs() > 1e-9 {
                ghz = new_ghz;
                let vdd = sim_common::Volts(crate::dvs::voltage_for_frequency(ghz));
                let f = sim_common::Hertz::from_ghz(ghz);
                cpu.set_dvs(f, vdd)?;
                config.frequency = f;
                config.vdd = vdd;
                frequency_changes += 1;
            }
        }

        Ok(ControlTrace {
            final_fit: tracker.running_total(model),
            bips: if total_time > 0.0 {
                total_instructions as f64 / total_time / 1e9
            } else {
                0.0
            },
            epochs,
            frequency_changes,
            thermal_violations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
    use sim_common::Floorplan;

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.35),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    fn controller() -> ReactiveDrm {
        ReactiveDrm::ibm_65nm(ControllerParams::quick()).unwrap()
    }

    #[test]
    fn overdesigned_processor_gets_overclocked() {
        // At T_qual = 400 K there is headroom; the controller should spend
        // it by raising the frequency above the 4 GHz base.
        let trace = controller().run(App::Twolf, &model(400.0)).unwrap();
        assert!(
            trace.average_ghz() > 4.1,
            "average {:.2} GHz",
            trace.average_ghz()
        );
        assert!(trace.frequency_changes > 0);
    }

    #[test]
    fn underdesigned_processor_gets_throttled() {
        // At T_qual = 325 K a hot app must be slowed below base.
        let trace = controller().run(App::MpgDec, &model(325.0)).unwrap();
        assert!(
            trace.average_ghz() < 4.0,
            "average {:.2} GHz",
            trace.average_ghz()
        );
    }

    #[test]
    fn final_fit_lands_near_target() {
        // The regulator steers the time-averaged FIT toward the target
        // (within a tolerance; the grid is discrete and the run short).
        let trace = controller().run(App::Gzip, &model(350.0)).unwrap();
        let fit = trace.final_fit.value();
        assert!(
            fit < 4000.0 * 1.3,
            "final FIT {fit:.0} overshoots the 4000 target"
        );
        assert!(
            fit > 4000.0 * 0.3,
            "final FIT {fit:.0} leaves headroom unspent"
        );
    }

    #[test]
    fn trace_shape_is_consistent() {
        let params = ControllerParams::quick();
        let trace = ReactiveDrm::ibm_65nm(params)
            .unwrap()
            .run(App::Ammp, &model(370.0))
            .unwrap();
        assert_eq!(
            trace.epochs.len() as u64,
            params.total_instructions / params.epoch_instructions
        );
        assert!(trace.bips > 0.0);
        for e in &trace.epochs {
            assert!((DVS_MIN_GHZ..=DVS_MAX_GHZ).contains(&e.ghz));
            assert!(e.duration.0 > 0.0);
        }
    }

    #[test]
    fn combined_drm_dtm_respects_the_thermal_limit() {
        // §7.3: DRM alone violates a tight thermal limit on a hot app at a
        // generous qualification; the combined controller pulls frequency
        // down until the limit holds.
        let limit = Kelvin(385.0);
        let drm_only = controller().run(App::MpgDec, &model(405.0)).unwrap();
        let hot_epochs = drm_only
            .epochs
            .iter()
            .filter(|e| e.peak_temperature > limit)
            .count();
        assert!(
            hot_epochs > drm_only.epochs.len() / 2,
            "premise: DRM-only should run hot ({hot_epochs} hot epochs)"
        );
        let combined = ReactiveDrm::ibm_65nm(ControllerParams {
            thermal_limit: Some(limit),
            ..ControllerParams::quick()
        })
        .unwrap()
        .run(App::MpgDec, &model(405.0))
        .unwrap();
        // After the transient, epochs obey the limit: violations are a
        // small fraction of the run, and the final epochs are compliant.
        assert!(
            (combined.thermal_violations as usize) < combined.epochs.len() / 2,
            "{} of {} epochs violated",
            combined.thermal_violations,
            combined.epochs.len()
        );
        let tail = &combined.epochs[combined.epochs.len().saturating_sub(3)..];
        for e in tail {
            assert!(
                e.peak_temperature.0 <= limit.0 + 2.0,
                "late epoch still hot: {:?}",
                e.peak_temperature
            );
        }
        assert!(combined.average_ghz() < drm_only.average_ghz());
    }

    #[test]
    fn noisy_sensors_still_regulate_but_less_precisely() {
        // With realistic sensors the controller's decisions are made from
        // corrupted readings; the physically accrued FIT must still land
        // in a sane band around the target, and the run must not diverge.
        let base = ControllerParams::quick();
        let ideal = ReactiveDrm::ibm_65nm(base)
            .unwrap()
            .run(App::Gzip, &model(366.0))
            .unwrap();
        let sensed = ReactiveDrm::ibm_65nm(ControllerParams {
            sensors: Some(crate::sensors::SensorParams::thermal_diode()),
            ..base
        })
        .unwrap()
        .run(App::Gzip, &model(366.0))
        .unwrap();
        // Same physics, so performance and FIT stay within a modest band
        // of the ideal-sensor run.
        assert!(
            (sensed.average_ghz() - ideal.average_ghz()).abs() < 0.5,
            "sensed {:.2} vs ideal {:.2} GHz",
            sensed.average_ghz(),
            ideal.average_ghz()
        );
        assert!(sensed.final_fit.value() < 2.0 * ideal.final_fit.value().max(1000.0));
    }

    #[test]
    fn params_validation() {
        let ok = ControllerParams::quick();
        assert!(ok.validate().is_ok());
        assert!(ControllerParams {
            epoch_instructions: 0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ControllerParams {
            dvs_step_ghz: 0.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ControllerParams {
            hysteresis: 1.0,
            ..ok
        }
        .validate()
        .is_err());
        assert!(ControllerParams {
            epoch_instructions: ok.total_instructions + 1,
            ..ok
        }
        .validate()
        .is_err());
    }
}
