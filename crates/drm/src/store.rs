//! Disk-backed, append-only evaluation store: persists cycle-level
//! timing runs across process restarts so shard caches survive and can
//! be pre-warmed from a shared directory.
//!
//! The expensive stage of every evaluation is the cycle-level timing
//! run; power/thermal finishing is cheap and qualification-dependent.
//! The store therefore persists [`TimingRun`]s, keyed by the *full*
//! operating-point key ([`EvalKey`]: app × [`ArchPoint`] × fixed-point
//! frequency/voltage), with the raw `f64` bits of the DVS point
//! alongside so the evaluated [`CoreConfig`] — and hence the timing-
//! cache key — is reconstructed bit-identically on load.
//!
//! Format (`ramp-evalstore/1`): a text segment with one record per
//! line, in the textfmt idiom. Each record carries keyed header tokens,
//! a fixed-width positional payload (58 values per interval, `u64`s in
//! decimal and `f64`s as 16-digit hex bit patterns), and a trailing
//! FNV-1a checksum over everything before it. Appends are fsync'd; the
//! index is rebuilt by scanning on open. A truncated tail record (torn
//! write on crash) is silently dropped and the segment truncated back
//! to the last complete line; a *complete* record that fails to parse
//! or checksum is a hard error with 1-based line/token positions.
//! Duplicate keys are last-write-wins, matching replay order.
//!
//! [`CoreConfig`]: sim_cpu::CoreConfig

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Duration;

use sim_common::{Hertz, SimError, Structure, StructureMap, Volts};
use sim_cpu::{ActivityCounters, BpredStats, CacheStats, IntervalStats, RegFileStats};
use workload::App;

use crate::batch::EvalKey;
use crate::dvs::DvsPoint;
use crate::evaluator::TimingRun;
use crate::slice::fnv1a64;
use crate::space::ArchPoint;

/// First line of every store segment.
pub const STORE_HEADER: &str = "ramp-evalstore/1";

/// File extension for store segments.
pub const STORE_EXTENSION: &str = "evalstore";

/// Values per interval in a record's positional payload:
/// cycles + instructions, 9 activity factors, 25 pipeline counters,
/// 6 branch-predictor fields, 3 × 4 cache fields, 2 × 2 register-file
/// fields.
const VALUES_PER_INTERVAL: usize = 2 + 9 + 25 + 6 + 12 + 4;

/// Keyed header tokens before the positional payload (`run` verb +
/// 10 `key=value` tokens).
const HEADER_TOKENS: usize = 11;

/// One persisted evaluation: the full operating-point key, the raw
/// `f64` bits of its DVS point, and the cycle-level timing run.
#[derive(Debug, Clone)]
pub struct StoreRecord {
    /// The full operating-point key.
    pub key: EvalKey,
    /// Raw bits of the DVS frequency in Hz (bit-exact reconstruction).
    pub freq_bits: u64,
    /// Raw bits of the supply voltage in volts.
    pub vdd_bits: u64,
    /// The persisted timing run.
    pub run: TimingRun,
}

impl StoreRecord {
    /// The DVS point reconstructed bit-identically from the raw bits.
    #[must_use]
    pub fn dvs(&self) -> DvsPoint {
        DvsPoint {
            frequency: Hertz(f64::from_bits(self.freq_bits)),
            vdd: Volts(f64::from_bits(self.vdd_bits)),
        }
    }
}

/// A disk-backed, append-only store of timing runs.
///
/// Open one segment with [`EvalStore::open`], or a shared directory of
/// segments with [`EvalStore::open_dir`] (every shard reads all
/// segments but appends only to its own, so concurrent shards never
/// interleave writes). Loaded records are drained once via
/// [`EvalStore::take_records`] to pre-warm a timing cache; fresh runs
/// are persisted with [`EvalStore::append`].
#[derive(Debug)]
pub struct EvalStore {
    path: PathBuf,
    file: Mutex<File>,
    /// Keys known to be durable (any segment) — appends dedupe on this.
    index: Mutex<HashMap<EvalKey, ()>>,
    /// Records loaded at open, in last-write-wins replay order.
    loaded: Mutex<Vec<StoreRecord>>,
}

fn io_err(path: &Path, op: &str, e: &std::io::Error) -> SimError {
    SimError::invalid_config(format!("eval store {op} {}: {e}", path.display()))
}

fn parse_err(path: &Path, line: usize, msg: &str) -> SimError {
    SimError::invalid_config(format!("eval store {}: line {line}: {msg}", path.display()))
}

/// Splits `content` into complete lines, dropping a torn final line
/// (no trailing newline). Returns the lines and the byte length of the
/// complete prefix.
fn complete_lines(content: &str) -> (Vec<&str>, usize) {
    match content.rfind('\n') {
        Some(last) => (content[..last].split('\n').collect(), last + 1),
        None => (Vec::new(), 0),
    }
}

fn push_u64(out: &mut String, v: u64) {
    use std::fmt::Write as _;
    let _ = write!(out, " {v}");
}

fn push_f64_bits(out: &mut String, v: f64) {
    use std::fmt::Write as _;
    let _ = write!(out, " {:016x}", v.to_bits());
}

/// Encodes one record as a single line (no trailing newline), checksum
/// included.
fn encode_record(key: EvalKey, freq_bits: u64, vdd_bits: u64, run: &TimingRun) -> String {
    use std::fmt::Write as _;
    let mut line = format!(
        "run app={} window={} alus={} fpus={} freq_khz={} vdd_uv={} \
         freq_bits={:016x} vdd_bits={:016x} wall_ns={} intervals={}",
        key.app.name(),
        key.arch.window,
        key.arch.alus,
        key.arch.fpus,
        key.freq_khz,
        key.vdd_uv,
        freq_bits,
        vdd_bits,
        run.wall().as_nanos(),
        run.intervals().len(),
    );
    for iv in run.intervals() {
        push_u64(&mut line, iv.cycles);
        push_u64(&mut line, iv.instructions);
        for s in Structure::ALL {
            push_f64_bits(&mut line, iv.activity[s]);
        }
        let c = &iv.counters;
        for v in [
            c.fetched,
            c.window_writes,
            c.window_wakeups,
            c.window_issues,
            c.lsq_inserts,
            c.lsq_searches,
            c.int_busy,
            c.fp_busy,
            c.agen_busy,
            c.forwards,
            c.cycles_window_empty,
            c.cycles_head_mem,
            c.cycles_head_exec,
            c.cycles_fetch_stalled,
        ] {
            push_u64(&mut line, v);
        }
        for v in c.class_commits {
            push_u64(&mut line, v);
        }
        for v in [
            iv.bpred.lookups,
            iv.bpred.updates,
            iv.bpred.mispredicts,
            iv.bpred.ras_pushes,
            iv.bpred.ras_pops,
            iv.bpred.ras_mispredicts,
        ] {
            push_u64(&mut line, v);
        }
        for cache in [&iv.l1i, &iv.l1d, &iv.l2] {
            for v in [cache.accesses, cache.hits, cache.misses, cache.writebacks] {
                push_u64(&mut line, v);
            }
        }
        for rf in [&iv.int_regfile, &iv.fp_regfile] {
            push_u64(&mut line, rf.reads);
            push_u64(&mut line, rf.writes);
        }
    }
    let sum = fnv1a64(line.as_bytes());
    let _ = write!(line, " sum={sum:016x}");
    line
}

/// A strict cursor over one record's whitespace tokens, reporting
/// 1-based token positions on every failure.
struct Tokens<'a> {
    tokens: Vec<&'a str>,
    pos: usize,
}

impl<'a> Tokens<'a> {
    fn new(line: &'a str) -> Tokens<'a> {
        Tokens {
            tokens: line.split_whitespace().collect(),
            pos: 0,
        }
    }

    /// Consumes the next token, or fails naming the position past the
    /// end.
    fn next(&mut self, what: &str) -> Result<(&'a str, usize), String> {
        self.pos += 1;
        match self.tokens.get(self.pos - 1) {
            Some(tok) => Ok((tok, self.pos)),
            None => Err(format!("token {}: missing {what}", self.pos)),
        }
    }

    /// Consumes a `key=value` token, returning the value.
    fn keyed(&mut self, key: &str) -> Result<(&'a str, usize), String> {
        let (tok, pos) = self.next(key)?;
        tok.strip_prefix(key)
            .and_then(|rest| rest.strip_prefix('='))
            .ok_or_else(|| format!("token {pos}: expected {key}=..., got {tok:?}"))
            .map(|v| (v, pos))
    }

    fn keyed_u64(&mut self, key: &str) -> Result<u64, String> {
        let (v, pos) = self.keyed(key)?;
        v.parse::<u64>()
            .map_err(|_| format!("token {pos}: {key} must be an unsigned integer, got {v:?}"))
    }

    fn keyed_u32(&mut self, key: &str) -> Result<u32, String> {
        let (v, pos) = self.keyed(key)?;
        v.parse::<u32>()
            .map_err(|_| format!("token {pos}: {key} must be an unsigned integer, got {v:?}"))
    }

    fn keyed_hex64(&mut self, key: &str) -> Result<u64, String> {
        let (v, pos) = self.keyed(key)?;
        if v.len() != 16 {
            return Err(format!(
                "token {pos}: {key} must be 16 hex digits, got {v:?}"
            ));
        }
        u64::from_str_radix(v, 16)
            .map_err(|_| format!("token {pos}: {key} must be 16 hex digits, got {v:?}"))
    }

    /// Consumes a positional decimal `u64`.
    fn value_u64(&mut self, what: &str) -> Result<u64, String> {
        let (tok, pos) = self.next(what)?;
        tok.parse::<u64>()
            .map_err(|_| format!("token {pos}: {what} must be an unsigned integer, got {tok:?}"))
    }

    /// Consumes a positional `f64` bit pattern (16 hex digits).
    fn value_f64(&mut self, what: &str) -> Result<f64, String> {
        let (tok, pos) = self.next(what)?;
        if tok.len() != 16 {
            return Err(format!(
                "token {pos}: {what} must be 16 hex digits, got {tok:?}"
            ));
        }
        u64::from_str_radix(tok, 16)
            .map(f64::from_bits)
            .map_err(|_| format!("token {pos}: {what} must be 16 hex digits, got {tok:?}"))
    }
}

/// Decodes one complete record line, verifying the checksum and the
/// embedded fixed-point key against the raw DVS bits.
fn decode_record(line: &str) -> Result<StoreRecord, String> {
    // Checksum first: everything before the trailing ` sum=` token must
    // hash to the recorded value, so any torn-but-newline-terminated or
    // bit-flipped record is rejected before field parsing.
    let sum_at = line
        .rfind(" sum=")
        .ok_or_else(|| "record has no sum= checksum token".to_string())?;
    let body = &line[..sum_at];
    let recorded = line[sum_at + " sum=".len()..].trim();
    let expect = fnv1a64(body.as_bytes());
    let got = u64::from_str_radix(recorded, 16)
        .map_err(|_| format!("checksum must be 16 hex digits, got {recorded:?}"))?;
    if got != expect {
        return Err(format!(
            "checksum mismatch: record says {got:016x}, content hashes to {expect:016x}"
        ));
    }

    let mut t = Tokens::new(body);
    let (verb, pos) = t.next("record verb")?;
    if verb != "run" {
        return Err(format!("token {pos}: expected verb \"run\", got {verb:?}"));
    }
    let (app_name, app_pos) = t.keyed("app")?;
    let app = *App::ALL
        .iter()
        .find(|a| a.name() == app_name)
        .ok_or_else(|| format!("token {app_pos}: unknown app {app_name:?}"))?;
    let arch = ArchPoint {
        window: t.keyed_u32("window")?,
        alus: t.keyed_u32("alus")?,
        fpus: t.keyed_u32("fpus")?,
    };
    let freq_khz = t.keyed_u64("freq_khz")?;
    let vdd_uv = t.keyed_u64("vdd_uv")?;
    let freq_bits = t.keyed_hex64("freq_bits")?;
    let vdd_bits = t.keyed_hex64("vdd_bits")?;
    let wall_ns = t.keyed_u64("wall_ns")?;
    let intervals = t.keyed_u64("intervals")? as usize;

    // Embedded-key verification: the fixed-point key tokens must match
    // the key recomputed from the raw DVS bits, like `CheckpointStore`
    // rejecting a checkpoint whose embedded key disagrees with its file.
    let dvs = DvsPoint {
        frequency: Hertz(f64::from_bits(freq_bits)),
        vdd: Volts(f64::from_bits(vdd_bits)),
    };
    let recomputed = EvalKey::new(app, arch, dvs);
    if recomputed.freq_khz != freq_khz || recomputed.vdd_uv != vdd_uv {
        return Err(format!(
            "embedded key (freq_khz={freq_khz}, vdd_uv={vdd_uv}) does not match the \
             raw operating point (freq_khz={}, vdd_uv={})",
            recomputed.freq_khz, recomputed.vdd_uv
        ));
    }

    let expected_tokens = HEADER_TOKENS + intervals * VALUES_PER_INTERVAL;
    if t.tokens.len() != expected_tokens {
        return Err(format!(
            "record has {} tokens before the checksum, expected {expected_tokens} \
             for {intervals} interval(s)",
            t.tokens.len()
        ));
    }

    let mut ivs = Vec::with_capacity(intervals);
    for _ in 0..intervals {
        let cycles = t.value_u64("cycles")?;
        let instructions = t.value_u64("instructions")?;
        let mut activity = [0.0f64; Structure::COUNT];
        for (s, slot) in Structure::ALL.iter().zip(activity.iter_mut()) {
            let v = t.value_f64("activity")?;
            if v.is_nan() {
                return Err(format!("token {}: activity[{s:?}] is NaN", t.pos));
            }
            *slot = v;
        }
        let mut counters = ActivityCounters::default();
        for slot in [
            &mut counters.fetched,
            &mut counters.window_writes,
            &mut counters.window_wakeups,
            &mut counters.window_issues,
            &mut counters.lsq_inserts,
            &mut counters.lsq_searches,
            &mut counters.int_busy,
            &mut counters.fp_busy,
            &mut counters.agen_busy,
            &mut counters.forwards,
            &mut counters.cycles_window_empty,
            &mut counters.cycles_head_mem,
            &mut counters.cycles_head_exec,
            &mut counters.cycles_fetch_stalled,
        ] {
            *slot = t.value_u64("counter")?;
        }
        for slot in &mut counters.class_commits {
            *slot = t.value_u64("class commits")?;
        }
        let mut bpred = BpredStats::default();
        for slot in [
            &mut bpred.lookups,
            &mut bpred.updates,
            &mut bpred.mispredicts,
            &mut bpred.ras_pushes,
            &mut bpred.ras_pops,
            &mut bpred.ras_mispredicts,
        ] {
            *slot = t.value_u64("bpred")?;
        }
        let mut caches = [CacheStats::default(); 3];
        for cache in &mut caches {
            cache.accesses = t.value_u64("cache accesses")?;
            cache.hits = t.value_u64("cache hits")?;
            cache.misses = t.value_u64("cache misses")?;
            cache.writebacks = t.value_u64("cache writebacks")?;
        }
        let mut regfiles = [RegFileStats::default(); 2];
        for rf in &mut regfiles {
            rf.reads = t.value_u64("regfile reads")?;
            rf.writes = t.value_u64("regfile writes")?;
        }
        ivs.push(IntervalStats {
            cycles,
            instructions,
            activity: StructureMap::from_fn(|s| activity[s.index()]),
            counters,
            bpred,
            l1i: caches[0],
            l1d: caches[1],
            l2: caches[2],
            int_regfile: regfiles[0],
            fp_regfile: regfiles[1],
        });
    }

    Ok(StoreRecord {
        key: EvalKey {
            app,
            arch,
            freq_khz,
            vdd_uv,
        },
        freq_bits,
        vdd_bits,
        run: TimingRun::from_parts(ivs, Duration::from_nanos(wall_ns)),
    })
}

/// Parses one segment's complete lines (header + records) into `into`,
/// last-write-wins on duplicate keys.
fn load_segment(
    path: &Path,
    lines: &[&str],
    into: &mut Vec<StoreRecord>,
    by_key: &mut HashMap<EvalKey, usize>,
) -> Result<(), SimError> {
    for (i, line) in lines.iter().enumerate() {
        if i == 0 {
            if *line != STORE_HEADER {
                return Err(parse_err(
                    path,
                    1,
                    &format!("bad header {line:?}, expected {STORE_HEADER:?}"),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        let rec = decode_record(line).map_err(|msg| parse_err(path, i + 1, &msg))?;
        match by_key.get(&rec.key) {
            Some(&at) => into[at] = rec,
            None => {
                by_key.insert(rec.key, into.len());
                into.push(rec);
            }
        }
    }
    Ok(())
}

/// Opens `path` read+append, truncating a torn tail record, creating
/// the file (with header) when absent or empty. Returns the open file
/// positioned at the end and the complete content.
fn open_segment(path: &Path) -> Result<(File, String), SimError> {
    let mut file = OpenOptions::new()
        .read(true)
        .write(true)
        .create(true)
        .truncate(false)
        .open(path)
        .map_err(|e| io_err(path, "open", &e))?;
    let mut raw = Vec::new();
    file.read_to_end(&mut raw)
        .map_err(|e| io_err(path, "read", &e))?;
    let content = String::from_utf8_lossy(&raw).into_owned();
    let (_, valid_len) = complete_lines(&content);
    if valid_len == 0 {
        // Fresh segment (or one whose header write was torn): start over.
        file.set_len(0).map_err(|e| io_err(path, "truncate", &e))?;
        file.seek(SeekFrom::Start(0))
            .map_err(|e| io_err(path, "seek", &e))?;
        file.write_all(format!("{STORE_HEADER}\n").as_bytes())
            .map_err(|e| io_err(path, "write", &e))?;
        file.sync_data().map_err(|e| io_err(path, "sync", &e))?;
        return Ok((file, String::new()));
    }
    if valid_len < raw.len() {
        // Torn tail record: drop it so appends start on a line boundary.
        file.set_len(valid_len as u64)
            .map_err(|e| io_err(path, "truncate", &e))?;
        file.sync_data().map_err(|e| io_err(path, "sync", &e))?;
    }
    file.seek(SeekFrom::End(0))
        .map_err(|e| io_err(path, "seek", &e))?;
    Ok((file, content[..valid_len].to_string()))
}

impl EvalStore {
    /// Opens (creating if needed) a single segment at `path`, rebuilding
    /// the in-memory index by scanning every complete record.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on I/O failure, a bad header,
    /// or any complete record that fails to parse, checksum, or verify
    /// its embedded key. A torn tail record is *not* an error: it is
    /// dropped and the segment truncated back to the last complete line.
    pub fn open(path: &Path) -> Result<EvalStore, SimError> {
        let (file, content) = open_segment(path)?;
        let mut loaded = Vec::new();
        let mut by_key = HashMap::new();
        if !content.is_empty() {
            let (lines, _) = complete_lines(&content);
            load_segment(path, &lines, &mut loaded, &mut by_key)?;
        }
        let index = by_key.keys().map(|&k| (k, ())).collect();
        sim_obs::counter!("drm.store.opens", 1);
        sim_obs::counter!("drm.store.records_loaded", loaded.len() as u64);
        sim_obs::log_debug!(
            "drm.store",
            "opened {} with {} record(s)",
            path.display(),
            loaded.len()
        );
        Ok(EvalStore {
            path: path.to_path_buf(),
            file: Mutex::new(file),
            index: Mutex::new(index),
            loaded: Mutex::new(loaded),
        })
    }

    /// Opens a shared store directory: reads every `*.evalstore` segment
    /// (sorted by file name, last-write-wins across segments) for
    /// pre-warming, but appends only to this process's own segment
    /// `<label>.evalstore` — concurrent shards sharing `dir` never
    /// interleave writes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] on I/O failure or any corrupt
    /// complete record in any segment.
    pub fn open_dir(dir: &Path, label: &str) -> Result<EvalStore, SimError> {
        std::fs::create_dir_all(dir).map_err(|e| io_err(dir, "create dir", &e))?;
        let own = dir.join(format!("{label}.{STORE_EXTENSION}"));
        let mut segments: Vec<PathBuf> = std::fs::read_dir(dir)
            .map_err(|e| io_err(dir, "scan dir", &e))?
            .filter_map(|entry| entry.ok().map(|e| e.path()))
            .filter(|p| {
                p != &own && p.extension().and_then(|e| e.to_str()) == Some(STORE_EXTENSION)
            })
            .collect();
        segments.sort();

        let mut loaded = Vec::new();
        let mut by_key = HashMap::new();
        for seg in &segments {
            let raw = std::fs::read(seg).map_err(|e| io_err(seg, "read", &e))?;
            let content = String::from_utf8_lossy(&raw);
            let (lines, _) = complete_lines(&content);
            if lines.is_empty() {
                continue;
            }
            load_segment(seg, &lines, &mut loaded, &mut by_key)?;
        }

        // Our own segment last, so this shard's records win on ties.
        let (file, content) = open_segment(&own)?;
        if !content.is_empty() {
            let (lines, _) = complete_lines(&content);
            load_segment(&own, &lines, &mut loaded, &mut by_key)?;
        }
        let index = by_key.keys().map(|&k| (k, ())).collect();
        sim_obs::counter!("drm.store.opens", 1);
        sim_obs::counter!("drm.store.records_loaded", loaded.len() as u64);
        sim_obs::log_debug!(
            "drm.store",
            "opened {} ({} shared segment(s)) with {} record(s)",
            own.display(),
            segments.len(),
            loaded.len()
        );
        Ok(EvalStore {
            path: own,
            file: Mutex::new(file),
            index: Mutex::new(index),
            loaded: Mutex::new(loaded),
        })
    }

    /// The segment this store appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of distinct keys known to be durable (across every
    /// segment read at open, plus appends since).
    pub fn len(&self) -> usize {
        self.index.lock().expect("store index lock poisoned").len()
    }

    /// True when no record is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the records loaded at open (in last-write-wins replay
    /// order) — the pre-warm feed. Subsequent calls return nothing.
    pub fn take_records(&self) -> Vec<StoreRecord> {
        std::mem::take(&mut self.loaded.lock().expect("store load lock poisoned"))
    }

    /// Appends one timing run, fsync'd before return. A key already
    /// durable (loaded at open or appended earlier) is skipped — the
    /// payload is deterministic, so rewriting it would only grow the
    /// segment.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the write or sync fails.
    pub fn append(
        &self,
        key: EvalKey,
        freq_bits: u64,
        vdd_bits: u64,
        run: &TimingRun,
    ) -> Result<(), SimError> {
        let mut index = self.index.lock().expect("store index lock poisoned");
        if index.contains_key(&key) {
            return Ok(());
        }
        let mut line = encode_record(key, freq_bits, vdd_bits, run);
        line.push('\n');
        {
            let mut file = self.file.lock().expect("store file lock poisoned");
            file.write_all(line.as_bytes())
                .map_err(|e| io_err(&self.path, "append", &e))?;
            file.sync_data()
                .map_err(|e| io_err(&self.path, "sync", &e))?;
        }
        index.insert(key, ());
        sim_obs::counter!("drm.store.appends", 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalParams, Evaluator};
    use std::sync::atomic::{AtomicU64, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "ramp-store-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_params() -> EvalParams {
        EvalParams {
            warmup_instructions: 5_000,
            measure_instructions: 20_000,
            interval_instructions: 5_000,
            seed: 3,
            leakage_iterations: 2,
            prewarm_bytes: 1 << 20,
        }
    }

    fn sample_record(seed_tweak: u64) -> StoreRecord {
        let evaluator = Evaluator::ibm_65nm(EvalParams {
            seed: 3 + seed_tweak,
            ..tiny_params()
        })
        .unwrap();
        let arch = ArchPoint::most_aggressive();
        let dvs = DvsPoint::base();
        let config = arch.apply(&sim_cpu::CoreConfig::base(), dvs).unwrap();
        let run = evaluator.timing_run(&App::Gzip.profile(), &config).unwrap();
        StoreRecord {
            key: EvalKey::new(App::Gzip, arch, dvs),
            freq_bits: config.frequency.0.to_bits(),
            vdd_bits: config.vdd.0.to_bits(),
            run,
        }
    }

    fn assert_runs_equal(a: &TimingRun, b: &TimingRun) {
        assert_eq!(a.wall(), b.wall());
        assert_eq!(a.intervals(), b.intervals());
    }

    #[test]
    fn round_trips_a_timing_run_bit_identically() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("seg.evalstore");
        let rec = sample_record(0);
        {
            let store = EvalStore::open(&path).unwrap();
            assert!(store.is_empty());
            store
                .append(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run)
                .unwrap();
            assert_eq!(store.len(), 1);
            // A duplicate append is a no-op on disk.
            let size = std::fs::metadata(&path).unwrap().len();
            store
                .append(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run)
                .unwrap();
            assert_eq!(std::fs::metadata(&path).unwrap().len(), size);
        }
        let store = EvalStore::open(&path).unwrap();
        let records = store.take_records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].key, rec.key);
        assert_eq!(records[0].freq_bits, rec.freq_bits);
        assert_eq!(records[0].vdd_bits, rec.vdd_bits);
        assert_runs_equal(&records[0].run, &rec.run);
        // Drained once: a second take yields nothing.
        assert!(store.take_records().is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_tail_is_ignored_on_reopen() {
        let dir = temp_dir("torn");
        let path = dir.join("seg.evalstore");
        let rec = sample_record(0);
        {
            let store = EvalStore::open(&path).unwrap();
            store
                .append(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run)
                .unwrap();
        }
        // Simulate a torn write: half a record, no trailing newline.
        let clean_len = std::fs::metadata(&path).unwrap().len();
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"run app=gzip window=128 alus=6 fp").unwrap();
        drop(f);

        let store = EvalStore::open(&path).unwrap();
        let records = store.take_records();
        assert_eq!(records.len(), 1, "torn tail must be dropped, not fatal");
        assert_runs_equal(&records[0].run, &rec.run);
        // The segment was truncated back to the last complete line, so
        // the next append starts on a line boundary.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), clean_len);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_keys_are_last_write_wins() {
        let dir = temp_dir("lww");
        let path = dir.join("seg.evalstore");
        let first = sample_record(0);
        let second = StoreRecord {
            run: sample_record(7).run,
            ..first.clone()
        };
        // append() dedupes, so hand-write two records with the same key.
        let mut text = format!("{STORE_HEADER}\n");
        text.push_str(&encode_record(
            first.key,
            first.freq_bits,
            first.vdd_bits,
            &first.run,
        ));
        text.push('\n');
        text.push_str(&encode_record(
            second.key,
            second.freq_bits,
            second.vdd_bits,
            &second.run,
        ));
        text.push('\n');
        std::fs::write(&path, text).unwrap();

        let store = EvalStore::open(&path).unwrap();
        assert_eq!(store.len(), 1);
        let records = store.take_records();
        assert_eq!(records.len(), 1);
        assert_runs_equal(&records[0].run, &second.run);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_records_are_rejected_with_positions() {
        let dir = temp_dir("corrupt");
        let rec = sample_record(0);
        let line = encode_record(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run);

        let open_with = |tag: &str, record_line: &str| {
            let path = dir.join(format!("{tag}.evalstore"));
            std::fs::write(&path, format!("{STORE_HEADER}\n{record_line}\n")).unwrap();
            EvalStore::open(&path)
        };

        // A flipped payload byte fails the checksum.
        let mut flipped = line.clone().into_bytes();
        let at = line.find(" intervals=").unwrap() - 1;
        flipped[at] = if flipped[at] == b'0' { b'1' } else { b'0' };
        let err = open_with("flip", std::str::from_utf8(&flipped).unwrap())
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("checksum mismatch"), "{err}");

        // A malformed keyed token is named by its 1-based position.
        let body = line[..line.rfind(" sum=").unwrap()].replace("app=gzip", "app?gzip");
        let resummed = format!("{body} sum={:016x}", fnv1a64(body.as_bytes()));
        let err = open_with("token", &resummed).unwrap_err().to_string();
        assert!(err.contains("line 2"), "{err}");
        assert!(err.contains("token 2"), "{err}");
        assert!(err.contains("expected app=..."), "{err}");

        // An embedded key that disagrees with the raw DVS bits is
        // rejected even when the checksum passes.
        let body = line[..line.rfind(" sum=").unwrap()].replace(
            &format!("freq_khz={}", rec.key.freq_khz),
            &format!("freq_khz={}", rec.key.freq_khz + 1),
        );
        let resummed = format!("{body} sum={:016x}", fnv1a64(body.as_bytes()));
        let err = open_with("key", &resummed).unwrap_err().to_string();
        assert!(err.contains("embedded key"), "{err}");
        assert!(err.contains("does not match"), "{err}");

        // A bad header is fatal at line 1.
        let path = dir.join("header.evalstore");
        std::fs::write(&path, "ramp-evalstore/999\n").unwrap();
        let err = EvalStore::open(&path).unwrap_err().to_string();
        assert!(err.contains("line 1"), "{err}");
        assert!(err.contains("bad header"), "{err}");

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn shared_directory_prewarms_across_segments() {
        let dir = temp_dir("shared");
        let rec = sample_record(0);
        {
            let a = EvalStore::open_dir(&dir, "shard-0").unwrap();
            a.append(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run)
                .unwrap();
        }
        // A different shard opening the same directory sees shard-0's
        // record, and its own append of the same key dedupes.
        let b = EvalStore::open_dir(&dir, "shard-1").unwrap();
        assert_eq!(b.len(), 1);
        let records = b.take_records();
        assert_eq!(records.len(), 1);
        assert_runs_equal(&records[0].run, &rec.run);
        b.append(rec.key, rec.freq_bits, rec.vdd_bits, &rec.run)
            .unwrap();
        assert_eq!(
            std::fs::read_to_string(dir.join("shard-1.evalstore")).unwrap(),
            format!("{STORE_HEADER}\n"),
            "a key already durable in another segment must not be rewritten"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
