//! Technology-scaling study (§1.2).
//!
//! The paper's motivation: "Device miniaturization due to scaling is
//! increasing processor power densities ... Scaling decreases lifetime
//! reliability by shrinking the thickness of gate and inter-layer
//! dielectrics, increasing current density in interconnects, and by
//! raising processor temperature which exponentially accelerates wear-out
//! failures. Scaled-down transistors ... also have significantly higher
//! leakage power" (quantified in the authors' companion DSN-04 paper).
//!
//! This module projects the same core design across three process
//! generations — the layout shrinks linearly, frequency rises, supply
//! drops sub-linearly, and leakage density grows super-linearly — and
//! evaluates the full pipeline at each node so the FIT growth with scaling
//! can be measured directly (`cargo run -p bench-suite --bin scaling`).

use ramp::{Fit, QualificationPoint, ReliabilityModel};
use sim_common::{Floorplan, Hertz, Kelvin, SimError, Volts, Watts};
use sim_cpu::CoreConfig;
use sim_power::{PowerModel, PowerParams};
use sim_thermal::{ThermalModel, ThermalParams};
use workload::App;

use crate::evaluator::{EvalParams, Evaluation, Evaluator};

/// One process generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TechnologyNode {
    /// Node name, e.g. `"65nm"`.
    pub name: &'static str,
    /// Feature size in nanometers.
    pub feature_nm: u32,
    /// Linear layout scale relative to the 65 nm baseline.
    pub linear_scale: f64,
    /// Nominal supply voltage (non-ideal scaling: drops slower than
    /// feature size, §1.2).
    pub vdd: Volts,
    /// Nominal clock frequency (~1.4x per generation).
    pub frequency: Hertz,
    /// Leakage power density at 383 K, W/mm² (grows super-linearly even
    /// with aggressive control).
    pub leakage_density: f64,
    /// Peak dynamic power scale relative to the 65 nm calibration (total
    /// chip dynamic power stays roughly flat across generations).
    pub pmax_scale: f64,
}

impl TechnologyNode {
    /// The 90 nm generation.
    pub fn n90() -> TechnologyNode {
        TechnologyNode {
            name: "90nm",
            feature_nm: 90,
            linear_scale: 90.0 / 65.0,
            vdd: Volts(1.1),
            frequency: Hertz::from_ghz(2.8),
            leakage_density: 0.15,
            pmax_scale: 1.05,
        }
    }

    /// The 65 nm baseline — the paper's evaluation node.
    pub fn n65() -> TechnologyNode {
        TechnologyNode {
            name: "65nm",
            feature_nm: 65,
            linear_scale: 1.0,
            vdd: Volts(1.0),
            frequency: Hertz::from_ghz(4.0),
            leakage_density: 0.5,
            pmax_scale: 1.0,
        }
    }

    /// The 45 nm generation.
    pub fn n45() -> TechnologyNode {
        TechnologyNode {
            name: "45nm",
            feature_nm: 45,
            linear_scale: 45.0 / 65.0,
            vdd: Volts(0.9),
            frequency: Hertz::from_ghz(5.2),
            leakage_density: 0.9,
            pmax_scale: 0.85,
        }
    }

    /// The three generations, oldest first.
    pub fn all() -> [TechnologyNode; 3] {
        [Self::n90(), Self::n65(), Self::n45()]
    }

    /// The floorplan at this node: the 65 nm layout scaled linearly.
    ///
    /// # Errors
    ///
    /// Propagates floorplan scaling errors.
    pub fn floorplan(&self) -> Result<Floorplan, SimError> {
        Floorplan::r10000_65nm().scaled(self.linear_scale)
    }

    /// The base core configuration at this node (same microarchitecture;
    /// node voltage and frequency — off-chip latencies stay fixed in
    /// nanoseconds, so their cycle counts track the clock).
    pub fn core_config(&self) -> CoreConfig {
        CoreConfig::base().with_dvs(self.frequency, self.vdd)
    }

    /// The power model at this node: the 65 nm per-structure peaks scaled
    /// by `pmax_scale` (referenced to the node's own base V/f) and the
    /// node's leakage density over the shrunken floorplan.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn power_model(&self) -> Result<PowerModel, SimError> {
        let mut params = PowerParams::ibm_65nm();
        params.pmax_dynamic = params.pmax_dynamic.map(|_, w| Watts(w.0 * self.pmax_scale));
        params.leakage_density = self.leakage_density;
        params.base_vdd = self.vdd;
        params.base_frequency = self.frequency;
        PowerModel::new(params, self.floorplan()?)
    }

    /// The thermal model at this node: the same package (heat spreader,
    /// sink, convection) around the shrunken die. Die thinning tracks the
    /// node, so the per-area vertical resistance (and heat capacity)
    /// scales with the linear factor; the power-density increase still
    /// dominates, which is exactly the §1.2 effect.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn thermal_model(&self) -> Result<ThermalModel, SimError> {
        let mut params = ThermalParams::hotspot_65nm();
        params.r_vertical_per_area *= self.linear_scale;
        params.c_block_per_area *= self.linear_scale;
        ThermalModel::new(params, self.floorplan()?)
    }

    /// A full evaluator at this node.
    ///
    /// # Errors
    ///
    /// Propagates construction errors.
    pub fn evaluator(&self, params: EvalParams) -> Result<Evaluator, SimError> {
        Evaluator::new(self.power_model()?, self.thermal_model()?, params)
    }
}

/// One row of the scaling study.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingRow {
    /// The node evaluated.
    pub node: TechnologyNode,
    /// Full-stack evaluation of the workload at the node's base settings.
    pub evaluation: Evaluation,
    /// FIT against a model qualified at the *common* qualification point
    /// (same `T_qual`, `α_qual` and per-area budget for every node) — the
    /// apples-to-apples reliability comparison.
    pub fit: Fit,
}

/// Evaluates `app` across the given nodes against a common qualification
/// *cost* (the same `T_qual` and `α_qual`), oldest node first. Each node
/// is qualified at its own nominal voltage and frequency — `T_qual` is
/// the cost proxy (§3.7); the electrical point is whatever the node ships
/// at — so the FIT differences isolate the scaling effects of §1.2
/// (density, temperature, leakage).
///
/// # Errors
///
/// Propagates evaluation and qualification errors.
pub fn scaling_study(
    app: App,
    nodes: &[TechnologyNode],
    qualification: &QualificationPoint,
    eval_params: EvalParams,
) -> Result<Vec<ScalingRow>, SimError> {
    let mut rows = Vec::with_capacity(nodes.len());
    for &node in nodes {
        let evaluator = node.evaluator(eval_params)?;
        let evaluation = evaluator.evaluate(app, &node.core_config())?;
        let node_qual = QualificationPoint {
            vdd: node.vdd,
            frequency: node.frequency,
            ..*qualification
        };
        let model = ReliabilityModel::qualify(
            ramp::FailureParams::ramp_65nm(),
            &node_qual,
            &node.floorplan()?.area_shares(),
            ramp::FIT_TARGET_STANDARD,
        )?;
        let fit = evaluation.application_fit(&model).total();
        rows.push(ScalingRow {
            node,
            evaluation,
            fit,
        });
    }
    Ok(rows)
}

/// The `T_qual` at which `app` exactly meets the standard FIT target at
/// this node's base settings (bisection) — how expensively each node must
/// be qualified for the same workload.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn required_qualification_temperature(
    node: &TechnologyNode,
    app: App,
    alpha_qual: f64,
    eval_params: EvalParams,
) -> Result<Kelvin, SimError> {
    let evaluator = node.evaluator(eval_params)?;
    let evaluation = evaluator.evaluate(app, &node.core_config())?;
    let shares = node.floorplan()?.area_shares();
    let fit_at = |t: f64| -> Result<f64, SimError> {
        let model = ReliabilityModel::qualify(
            ramp::FailureParams::ramp_65nm(),
            &QualificationPoint {
                temperature: Kelvin(t),
                vdd: node.vdd,
                frequency: node.frequency,
                activity: alpha_qual,
            },
            &shares,
            ramp::FIT_TARGET_STANDARD,
        )?;
        Ok(evaluation.application_fit(&model).total().value())
    };
    let (mut lo, mut hi) = (320.0f64, 480.0f64);
    for _ in 0..48 {
        let mid = 0.5 * (lo + hi);
        if fit_at(mid)? > ramp::FIT_TARGET_STANDARD {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Kelvin(0.5 * (lo + hi)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> EvalParams {
        EvalParams::quick()
    }

    #[test]
    fn nodes_are_ordered_by_density() {
        let [n90, n65, n45] = TechnologyNode::all();
        assert!(n90.floorplan().unwrap().total_area().0 > n65.floorplan().unwrap().total_area().0);
        assert!(n65.floorplan().unwrap().total_area().0 > n45.floorplan().unwrap().total_area().0);
        assert!(n90.leakage_density < n65.leakage_density);
        assert!(n65.leakage_density < n45.leakage_density);
        assert!(n90.frequency < n45.frequency);
    }

    #[test]
    fn scaling_raises_temperature_and_fit() {
        // The §1.2 claim: same design, newer node ⇒ hotter and less
        // reliable at a fixed qualification cost.
        let qual = QualificationPoint::at_temperature(Kelvin(394.0), 0.48);
        let rows = scaling_study(App::Gzip, &TechnologyNode::all(), &qual, quick()).unwrap();
        assert_eq!(rows.len(), 3);
        assert!(
            rows[0].evaluation.max_temperature() < rows[2].evaluation.max_temperature(),
            "45nm must run hotter than 90nm"
        );
        assert!(
            rows[0].fit < rows[1].fit && rows[1].fit < rows[2].fit,
            "FIT must grow with scaling: {:?}",
            rows.iter().map(|r| r.fit.value()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn newer_nodes_need_costlier_qualification() {
        let t90 =
            required_qualification_temperature(&TechnologyNode::n90(), App::Twolf, 0.48, quick())
                .unwrap();
        let t45 =
            required_qualification_temperature(&TechnologyNode::n45(), App::Twolf, 0.48, quick())
                .unwrap();
        assert!(
            t45 > t90,
            "45nm ({t45:?}) must require a higher T_qual than 90nm ({t90:?})"
        );
    }

    #[test]
    fn node_stacks_are_self_consistent() {
        for node in TechnologyNode::all() {
            let cfg = node.core_config();
            cfg.validate().unwrap();
            assert_eq!(cfg.frequency, node.frequency);
            let ev = node
                .evaluator(quick())
                .unwrap()
                .evaluate(App::Art, &cfg)
                .unwrap();
            assert!(
                ev.ipc > 0.1 && ev.ipc < 8.0,
                "{}: ipc {}",
                node.name,
                ev.ipc
            );
            assert!(ev.average_power().0 > 5.0, "{}", node.name);
        }
    }
}
