//! On-chip sensor modeling for hardware RAMP.
//!
//! "In real hardware, RAMP would require sensors and counters that provide
//! information on processor operating conditions" (§3). A simulator hands
//! the controller exact temperatures; real thermal diodes are quantized,
//! noisy, and low-pass filtered. This module models that gap so the
//! reactive controller can be evaluated under realistic sensing — and so
//! the guard bands a designer must add for sensor error can be quantified
//! (see the `sensor` tests and the `extensions` study).

use sim_common::Xoshiro256pp;
use sim_common::{Kelvin, SimError, StructureMap};

/// Characteristics of a thermal sensor bank (one sensor per structure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorParams {
    /// Quantization step, K (thermal diodes + ADC: typically 0.5–2 K).
    pub quantization: f64,
    /// Gaussian noise sigma, K.
    pub noise_sigma: f64,
    /// Constant per-sensor offset bound, K: each sensor gets a fixed
    /// offset drawn uniformly from `[-offset_bound, +offset_bound]` at
    /// manufacturing (process variation).
    pub offset_bound: f64,
    /// Low-pass coefficient in `[0, 1]`: the reading moves this fraction
    /// of the way to the true temperature per sample (1.0 = no lag).
    pub response: f64,
}

impl SensorParams {
    /// A realistic thermal-diode bank: 1 K quantization, 0.5 K noise,
    /// ±1.5 K calibration offset, moderate lag.
    pub fn thermal_diode() -> SensorParams {
        SensorParams {
            quantization: 1.0,
            noise_sigma: 0.5,
            offset_bound: 1.5,
            response: 0.5,
        }
    }

    /// An ideal sensor (exact readings) — the simulator default.
    pub fn ideal() -> SensorParams {
        SensorParams {
            quantization: 0.0,
            noise_sigma: 0.0,
            offset_bound: 0.0,
            response: 1.0,
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative quantization/noise/
    /// offset or a response outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.quantization < 0.0 || self.noise_sigma < 0.0 || self.offset_bound < 0.0 {
            return Err(SimError::invalid_config(
                "sensor quantization, noise and offset must be non-negative",
            ));
        }
        if !(self.response > 0.0 && self.response <= 1.0) {
            return Err(SimError::invalid_config(
                "sensor response must be in (0, 1]",
            ));
        }
        Ok(())
    }
}

impl Default for SensorParams {
    fn default() -> Self {
        SensorParams::thermal_diode()
    }
}

/// A bank of per-structure temperature sensors with persistent state
/// (calibration offsets, filter state) and a deterministic noise stream.
#[derive(Debug, Clone)]
pub struct SensorBank {
    params: SensorParams,
    offsets: StructureMap<f64>,
    filtered: Option<StructureMap<f64>>,
    rng: Xoshiro256pp,
}

impl SensorBank {
    /// Creates a bank; calibration offsets are drawn once from `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when parameters are invalid.
    pub fn new(params: SensorParams, seed: u64) -> Result<SensorBank, SimError> {
        params.validate()?;
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let offsets = StructureMap::from_fn(|_| {
            if params.offset_bound > 0.0 {
                rng.gen_f64_inclusive(-params.offset_bound, params.offset_bound)
            } else {
                0.0
            }
        });
        Ok(SensorBank {
            params,
            offsets,
            filtered: None,
            rng,
        })
    }

    /// The sensor parameters.
    pub fn params(&self) -> &SensorParams {
        &self.params
    }

    /// Samples the bank: true temperatures in, sensor readings out.
    pub fn sample(&mut self, truth: &StructureMap<Kelvin>) -> StructureMap<Kelvin> {
        // Low-pass filter toward the truth.
        let filtered = match self.filtered.take() {
            Some(prev) => {
                StructureMap::from_fn(|s| prev[s] + self.params.response * (truth[s].0 - prev[s]))
            }
            None => truth.map(|_, t| t.0),
        };
        self.filtered = Some(filtered);
        StructureMap::from_fn(|s| {
            let mut reading = filtered[s] + self.offsets[s];
            if self.params.noise_sigma > 0.0 {
                reading += gaussian(&mut self.rng) * self.params.noise_sigma;
            }
            if self.params.quantization > 0.0 {
                reading = (reading / self.params.quantization).round() * self.params.quantization;
            }
            Kelvin(reading)
        })
    }

    /// Resets the filter state (e.g. across a power cycle); calibration
    /// offsets persist.
    pub fn reset_filter(&mut self) {
        self.filtered = None;
    }
}

/// Standard-normal sample via Box–Muller.
fn gaussian(rng: &mut Xoshiro256pp) -> f64 {
    let u1: f64 = rng.gen_f64(f64::EPSILON..1.0);
    let u2: f64 = rng.next_f64();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_common::Structure;

    fn truth(t: f64) -> StructureMap<Kelvin> {
        StructureMap::splat(Kelvin(t))
    }

    #[test]
    fn ideal_sensor_is_exact() {
        let mut bank = SensorBank::new(SensorParams::ideal(), 1).unwrap();
        let reading = bank.sample(&truth(363.25));
        for (s, r) in reading.iter() {
            assert_eq!(r.0, 363.25, "{s}");
        }
    }

    #[test]
    fn quantization_rounds_to_grid() {
        let params = SensorParams {
            quantization: 2.0,
            noise_sigma: 0.0,
            offset_bound: 0.0,
            response: 1.0,
        };
        let mut bank = SensorBank::new(params, 1).unwrap();
        let reading = bank.sample(&truth(360.7));
        for (_, r) in reading.iter() {
            assert_eq!(r.0 % 2.0, 0.0);
            assert!((r.0 - 360.7).abs() <= 1.0);
        }
    }

    #[test]
    fn offsets_are_persistent_and_bounded() {
        let params = SensorParams {
            quantization: 0.0,
            noise_sigma: 0.0,
            offset_bound: 1.5,
            response: 1.0,
        };
        let mut bank = SensorBank::new(params, 7).unwrap();
        let a = bank.sample(&truth(360.0));
        let b = bank.sample(&truth(360.0));
        let mut distinct = false;
        for s in Structure::ALL {
            let off = a[s].0 - 360.0;
            assert!(off.abs() <= 1.5 + 1e-12, "{s}: offset {off}");
            // The offset is a fixed calibration error: identical samples.
            assert_eq!(a[s], b[s], "{s}");
            if off.abs() > 1e-6 {
                distinct = true;
            }
        }
        assert!(distinct, "some sensor should have a nonzero offset");
    }

    #[test]
    fn lag_tracks_step_changes_gradually() {
        let params = SensorParams {
            quantization: 0.0,
            noise_sigma: 0.0,
            offset_bound: 0.0,
            response: 0.5,
        };
        let mut bank = SensorBank::new(params, 3).unwrap();
        bank.sample(&truth(350.0)); // initialize at 350
        let after_step = bank.sample(&truth(370.0));
        let s = Structure::Fpu;
        assert!(
            (after_step[s].0 - 360.0).abs() < 1e-9,
            "{:?}",
            after_step[s]
        );
        let next = bank.sample(&truth(370.0));
        assert!((next[s].0 - 365.0).abs() < 1e-9);
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let params = SensorParams::thermal_diode();
        let mut a = SensorBank::new(params, 42).unwrap();
        let mut b = SensorBank::new(params, 42).unwrap();
        for _ in 0..10 {
            assert_eq!(a.sample(&truth(361.0)), b.sample(&truth(361.0)));
        }
        let mut c = SensorBank::new(params, 43).unwrap();
        assert_ne!(a.sample(&truth(361.0)), c.sample(&truth(361.0)));
    }

    #[test]
    fn noise_statistics_are_plausible() {
        let params = SensorParams {
            quantization: 0.0,
            noise_sigma: 1.0,
            offset_bound: 0.0,
            response: 1.0,
        };
        let mut bank = SensorBank::new(params, 11).unwrap();
        let n = 2_000;
        let mut sum = 0.0;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let r = bank.sample(&truth(360.0));
            let e = r[Structure::Window].0 - 360.0;
            sum += e;
            sum_sq += e * e;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.1, "bias {mean}");
        assert!((var - 1.0).abs() < 0.2, "variance {var}");
    }

    #[test]
    fn validation() {
        assert!(SensorParams::thermal_diode().validate().is_ok());
        assert!(SensorParams {
            response: 0.0,
            ..SensorParams::ideal()
        }
        .validate()
        .is_err());
        assert!(SensorParams {
            noise_sigma: -1.0,
            ..SensorParams::ideal()
        }
        .validate()
        .is_err());
    }
}
