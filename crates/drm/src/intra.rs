//! Intra-application DRM: per-interval adaptation with oracular knowledge.
//!
//! The paper's oracle adapts *once per application run* and explicitly
//! "does not represent the best possible DRM control algorithm because it
//! does not exploit intra-application variability" (§5). This module
//! closes that gap: with evaluations of every candidate configuration
//! aligned on fixed instruction intervals, it chooses a configuration *per
//! interval* to minimize execution time subject to the run's time-averaged
//! FIT staying within the target.
//!
//! The optimization is a classic Lagrangian relaxation: for a multiplier
//! `λ ≥ 0` each interval independently picks
//! `argmin_c  t(k,c) + λ · (fit(k,c) − target) · t(k,c)`,
//! and bisection on `λ` finds the cheapest multiplier whose selection
//! satisfies the budget.

use ramp::{Fit, ReliabilityModel};
use sim_common::{SimError, Structure};
use workload::App;

use crate::dvs::DvsPoint;
use crate::evaluator::Evaluation;
use crate::oracle::Oracle;
use crate::space::{ArchPoint, Strategy};
use crate::surrogate::{promote_for_intra, SurrogateScore};

/// The per-interval schedule an intra-application oracle settles on.
#[derive(Debug, Clone, PartialEq)]
pub struct IntraAppChoice {
    /// Chosen configuration for each interval, in order.
    pub per_interval: Vec<(ArchPoint, DvsPoint)>,
    /// Performance relative to the base non-adaptive processor
    /// (base time / scheduled time for the same instructions).
    pub relative_performance: f64,
    /// Time-averaged FIT of the schedule.
    pub fit: Fit,
    /// True when the schedule meets the target. When even the most
    /// conservative per-interval selection misses it, that selection is
    /// returned with `feasible = false`.
    pub feasible: bool,
    /// Number of configuration changes along the schedule.
    pub switches: usize,
}

/// Per-interval cost table for one candidate configuration.
struct Candidate {
    arch: ArchPoint,
    dvs: DvsPoint,
    /// Interval durations, seconds.
    time: Vec<f64>,
    /// Interval FIT rates (instantaneous EM/SM/TDDB + TC at the interval
    /// temperature — slightly conservative for TC, whose Coffin–Manson law
    /// is convex in temperature).
    fit: Vec<f64>,
}

fn interval_fit(evaluation: &Evaluation, k: usize, model: &ReliabilityModel) -> f64 {
    let iv = &evaluation.intervals[k];
    Structure::ALL
        .into_iter()
        .map(|s| {
            model.instantaneous_fit(s, &iv.conditions[s]).value()
                + model
                    .thermal_cycling_fit(s, iv.conditions[s].temperature)
                    .value()
        })
        .sum()
}

/// Chooses a per-interval schedule for `app` under `strategy`'s candidate
/// set, maximizing performance subject to the FIT target.
///
/// # Errors
///
/// Propagates evaluation errors; returns [`SimError::Infeasible`] when the
/// strategy has no candidates.
pub fn intra_app_best(
    oracle: &Oracle,
    app: App,
    strategy: Strategy,
    model: &ReliabilityModel,
    dvs_step_ghz: f64,
) -> Result<IntraAppChoice, SimError> {
    let target = model.target_fit().value();
    let base_time: f64 = oracle
        .base_evaluation(app)?
        .intervals
        .iter()
        .map(|iv| iv.duration.0)
        .sum();

    // Phase 1 (when the surrogate is enabled): prune candidates another
    // candidate dominates with certainty — faster *and* lower-FIT
    // outside both error intervals at the whole-run level — before
    // paying for their cycle-level tables.
    let all = strategy.candidates(dvs_step_ghz);
    let (chosen, verify): (Vec<(ArchPoint, DvsPoint)>, Option<Vec<SurrogateScore>>) =
        match oracle.surrogate() {
            Some(surrogate) if !all.is_empty() => {
                let engine = oracle.engine();
                let base = (ArchPoint::most_aggressive(), DvsPoint::base());
                let table = surrogate.table_for(engine, app, &all, base)?;
                let bounds = surrogate.bounds(engine, app, &table, Some(model))?;
                let mut scores = Vec::with_capacity(all.len());
                for &(arch, dvs) in &all {
                    let config = arch.apply(engine.base_config(), dvs)?;
                    scores.push(table.score(engine.evaluator(), &config));
                }
                let fits: Vec<Fit> = scores.iter().map(|s| s.fit(model)).collect();
                let promoted = if surrogate.prune_active() {
                    promote_for_intra(&scores, &fits, &bounds, surrogate.k_floor())
                } else {
                    (0..all.len()).collect()
                };
                sim_obs::counter!("surrogate.promoted", promoted.len() as u64);
                (
                    promoted.iter().map(|&i| all[i]).collect(),
                    Some(promoted.into_iter().map(|i| scores[i].clone()).collect()),
                )
            }
            _ => (all, None),
        };

    // Pre-evaluate the candidate set in one parallel pass, then build
    // the per-candidate cost tables from cache hits.
    let jobs: Vec<_> = chosen.iter().map(|&(arch, dvs)| (app, arch, dvs)).collect();
    oracle.prefetch(&jobs)?;
    let mut candidates = Vec::new();
    let mut n_intervals = usize::MAX;
    for (k, &(arch, dvs)) in chosen.iter().enumerate() {
        let ev = oracle.evaluation(app, arch, dvs)?;
        if let Some(scores) = &verify {
            if let Some(surrogate) = oracle.surrogate() {
                surrogate.record_verification(&scores[k], &ev, Some(model));
            }
        }
        n_intervals = n_intervals.min(ev.intervals.len());
        let time: Vec<f64> = ev.intervals.iter().map(|iv| iv.duration.0).collect();
        let fit: Vec<f64> = (0..ev.intervals.len())
            .map(|k| interval_fit(&ev, k, model))
            .collect();
        candidates.push(Candidate {
            arch,
            dvs,
            time,
            fit,
        });
    }
    if candidates.is_empty() || n_intervals == 0 {
        return Err(SimError::infeasible(format!(
            "{strategy} has no candidates or no intervals"
        )));
    }

    // Per-interval selection for a given multiplier; returns (schedule,
    // total time, budget slack Σ (fit − target)·t).
    let select = |lambda: f64| -> (Vec<usize>, f64, f64) {
        let mut schedule = Vec::with_capacity(n_intervals);
        let mut total_time = 0.0;
        let mut violation = 0.0;
        for k in 0..n_intervals {
            let (best, _) = candidates
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let cost = c.time[k] * (1.0 + lambda * (c.fit[k] - target));
                    (i, cost)
                })
                .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite costs"))
                .expect("non-empty candidates");
            schedule.push(best);
            total_time += candidates[best].time[k];
            violation += (candidates[best].fit[k] - target) * candidates[best].time[k];
        }
        (schedule, total_time, violation)
    };

    // λ = 0 is the unconstrained fastest schedule; if feasible, done.
    let (mut schedule, _, violation) = select(0.0);
    if violation > 0.0 {
        // Bisect λ upward until the budget holds (or saturates).
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut hi_ok = false;
        for _ in 0..64 {
            let (_, _, v) = select(hi);
            if v <= 0.0 {
                hi_ok = true;
                break;
            }
            hi *= 4.0;
        }
        if hi_ok {
            for _ in 0..60 {
                let mid = 0.5 * (lo + hi);
                let (_, _, v) = select(mid);
                if v <= 0.0 {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            schedule = select(hi).0;
        } else {
            schedule = select(hi).0; // most conservative reachable
        }
    }

    // Materialize the schedule.
    let mut total_time = 0.0;
    let mut fit_time = 0.0;
    let mut per_interval = Vec::with_capacity(n_intervals);
    let mut switches = 0;
    for (k, &i) in schedule.iter().enumerate() {
        let c = &candidates[i];
        total_time += c.time[k];
        fit_time += c.fit[k] * c.time[k];
        if k > 0 && schedule[k - 1] != i {
            switches += 1;
        }
        per_interval.push((c.arch, c.dvs));
    }
    let fit = Fit(fit_time / total_time);
    Ok(IntraAppChoice {
        per_interval,
        relative_performance: base_time / total_time,
        fit,
        feasible: fit.value() <= target + 1e-9,
        switches,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalParams, Evaluator};
    use ramp::{FailureParams, QualificationPoint};
    use sim_common::{Floorplan, Kelvin};

    fn oracle() -> Oracle {
        Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap())
    }

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.48),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn intra_app_never_loses_to_inter_app() {
        // The inter-application oracle's choice is one point of the
        // intra-application schedule space, so the schedule can only be
        // at least as fast (when both are feasible).
        let o = oracle();
        for t in [366.0, 394.0, 405.0] {
            let m = model(t);
            let inter = o.best(App::MpgDec, Strategy::Dvs, &m, 0.5).unwrap();
            let intra = intra_app_best(&o, App::MpgDec, Strategy::Dvs, &m, 0.5).unwrap();
            if inter.feasible && intra.feasible {
                assert!(
                    intra.relative_performance >= inter.relative_performance - 0.02,
                    "T_qual {t}: intra {:.3} vs inter {:.3}",
                    intra.relative_performance,
                    inter.relative_performance
                );
            }
        }
    }

    #[test]
    fn schedule_meets_budget_when_feasible() {
        let o = oracle();
        let m = model(380.0);
        let choice = intra_app_best(&o, App::Gzip, Strategy::Dvs, &m, 0.5).unwrap();
        if choice.feasible {
            assert!(choice.fit <= m.target_fit());
        }
        assert!(!choice.per_interval.is_empty());
    }

    #[test]
    fn phased_app_exploits_variability() {
        // MPGdec alternates compute-heavy and output phases; at a tight
        // budget the schedule should not be constant (it banks budget in
        // cool intervals to spend in hot ones), unless a single setting is
        // already exactly optimal.
        let o = oracle();
        let m = model(380.0);
        let choice = intra_app_best(&o, App::MpgDec, Strategy::Dvs, &m, 0.25).unwrap();
        let inter = o.best(App::MpgDec, Strategy::Dvs, &m, 0.25).unwrap();
        assert!(
            choice.relative_performance >= inter.relative_performance - 1e-9,
            "intra {:.3} vs inter {:.3}",
            choice.relative_performance,
            inter.relative_performance
        );
    }

    #[test]
    fn unconstrained_schedule_is_fastest_grid_point() {
        // With an absurdly generous target every interval picks the
        // fastest configuration: performance matches the 5 GHz point.
        let o = oracle();
        let generous = ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(470.0), 0.48),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap();
        let choice = intra_app_best(&o, App::Twolf, Strategy::Dvs, &generous, 0.5).unwrap();
        assert!(choice.feasible);
        for (_, dvs) in &choice.per_interval {
            assert!((dvs.frequency.to_ghz() - 5.0).abs() < 1e-9);
        }
        assert_eq!(choice.switches, 0);
    }
}
