//! The full-stack evaluation pipeline: workload → timing → power →
//! temperature → operating conditions (§6.3).
//!
//! One [`Evaluation`] captures everything RAMP needs about a
//! (workload, configuration) pair — per-interval activity, power,
//! temperature, and performance. Reliability is *not* baked in: the same
//! evaluation can be scored against any [`ReliabilityModel`] (any
//! `T_qual`), which is what makes the oracular DRM sweeps affordable.
//!
//! The thermal methodology follows §6.3 exactly:
//!
//! 1. the simulation is effectively run twice — a first pass computes
//!    average power to fix the steady-state heat-sink temperature, and the
//!    per-interval temperatures of the second pass are solved with the sink
//!    pinned at that value;
//! 2. leakage power depends on temperature and temperature on power, so
//!    each pass iterates the leakage/temperature fixed point.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::{Duration, Instant};

use ramp::{ApplicationFit, ReliabilityModel, StructureConditions};
use sim_common::{Kelvin, Seconds, SimError, Structure, StructureMap, Watts};
use sim_cpu::{Checkpoint, CoreConfig, IntervalStats, Processor};
use sim_obs::{Histogram, StageTimes};
use sim_power::PowerModel;
use sim_thermal::ThermalModel;
use workload::{App, AppProfile, SyntheticStream};

use crate::slice::{slice_fingerprint, slice_lengths, CheckpointStore, SliceParams};

/// Base address of the synthetic data segment (see `workload::stream`).
const DATA_BASE: u64 = 0x1000_0000;

/// Ceiling applied to solved temperatures. The leakage/temperature fixed
/// point has no physical solution for configurations past thermal runaway
/// (e.g. 5 GHz at 1.11 V on a hot workload); clamping keeps the iteration
/// finite and such configurations simply report enormous (infeasible) FIT.
const MAX_JUNCTION_K: f64 = 500.0;

fn clamp_temps(map: StructureMap<Kelvin>) -> StructureMap<Kelvin> {
    map.map(|_, t| Kelvin(t.0.min(MAX_JUNCTION_K)))
}

/// Simulation lengths and seeds for one evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalParams {
    /// Instructions run (and discarded) to warm microarchitectural state.
    pub warmup_instructions: u64,
    /// Instructions measured.
    pub measure_instructions: u64,
    /// Instructions per measurement interval (§3.6 samples conditions at a
    /// fixed granularity).
    pub interval_instructions: u64,
    /// Workload seed.
    pub seed: u64,
    /// Iterations of the leakage/temperature fixed point.
    pub leakage_iterations: u32,
    /// Bytes of the data working set prefilled before warmup (capped by
    /// the profile's working set).
    pub prewarm_bytes: u64,
}

impl EvalParams {
    /// Fast settings for tests and examples (hundreds of milliseconds per
    /// evaluation).
    pub fn quick() -> EvalParams {
        EvalParams {
            warmup_instructions: 30_000,
            measure_instructions: 120_000,
            interval_instructions: 30_000,
            seed: 12_345,
            leakage_iterations: 3,
            prewarm_bytes: 2 * 1024 * 1024,
        }
    }

    /// Settings used by the paper-figure reproductions: long enough for
    /// stable averages over the multimedia frame phases.
    pub fn standard() -> EvalParams {
        EvalParams {
            warmup_instructions: 100_000,
            measure_instructions: 600_000,
            interval_instructions: 60_000,
            seed: 12_345,
            leakage_iterations: 3,
            prewarm_bytes: 2 * 1024 * 1024,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a length is zero or the
    /// interval exceeds the measurement length.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.measure_instructions == 0 || self.interval_instructions == 0 {
            return Err(SimError::invalid_config(
                "measurement and interval lengths must be non-zero",
            ));
        }
        if self.interval_instructions > self.measure_instructions {
            return Err(SimError::invalid_config(
                "interval longer than the whole measurement",
            ));
        }
        if self.leakage_iterations == 0 {
            return Err(SimError::invalid_config(
                "at least one leakage iteration is required",
            ));
        }
        Ok(())
    }
}

impl Default for EvalParams {
    fn default() -> Self {
        EvalParams::standard()
    }
}

/// Wall-time and work diagnostics for one evaluation, carried on the
/// `sim-obs` types: per-stage wall times in a [`StageTimes`] (keyed by
/// the same names the evaluation's spans use) and the per-solve
/// leakage/temperature fixed-point iteration counts in a [`Histogram`].
///
/// Diagnostics only: two evaluations of the same (workload, config) pair
/// are *equal* even when their wall times differ, so `EvalStats` compares
/// as always-equal and derived [`Evaluation`] equality stays exact on the
/// simulated quantities (determinism and parity tests rely on this).
#[derive(Debug, Clone, Default)]
pub struct EvalStats {
    /// Wall time per pipeline stage: `eval.timing` (stream generation +
    /// cycle simulation), `eval.sink` (pass 1, the §6.3 sink fixed
    /// point), and `eval.thermal` (pass 2, per-interval solves).
    pub stages: StageTimes,
    /// Fixed-point iteration counts, one sample per solve (the pass-1
    /// sink loop contributes one sample, each pass-2 interval another).
    pub fixed_point: Histogram,
}

impl EvalStats {
    /// Total wall time of the evaluation (sum over stages).
    #[must_use]
    pub fn wall(&self) -> Duration {
        self.stages.total()
    }

    /// Wall time of the timing pass.
    #[must_use]
    pub fn timing(&self) -> Duration {
        self.stages.get("eval.timing")
    }

    /// Wall time of the power/thermal passes (sink init + per-interval
    /// leakage/temperature fixed point).
    #[must_use]
    pub fn power_thermal(&self) -> Duration {
        self.stages.get("eval.sink") + self.stages.get("eval.thermal")
    }

    /// Leakage/temperature fixed-point iterations executed across both
    /// passes.
    #[must_use]
    pub fn fixed_point_iterations(&self) -> u64 {
        self.fixed_point.sum() as u64
    }
}

impl PartialEq for EvalStats {
    fn eq(&self, _: &EvalStats) -> bool {
        true
    }
}

/// One measured interval: timing, power, temperature, and the operating
/// conditions RAMP consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalProfile {
    /// Wall-clock duration of the interval at the configured frequency.
    pub duration: Seconds,
    /// Committed instructions.
    pub instructions: u64,
    /// IPC over the interval.
    pub ipc: f64,
    /// Total power (dynamic + leakage).
    pub power: Watts,
    /// Per-structure operating conditions for the reliability model.
    /// Temperatures live here too — see
    /// [`temperatures`](IntervalProfile::temperatures).
    pub conditions: StructureMap<StructureConditions>,
}

impl IntervalProfile {
    /// Per-structure temperatures, derived from [`conditions`]
    /// (`conditions` carries the full operating point, so storing the
    /// temperatures a second time would only duplicate state).
    ///
    /// [`conditions`]: IntervalProfile::conditions
    pub fn temperatures(&self) -> StructureMap<Kelvin> {
        StructureMap::from_fn(|s| self.conditions[s].temperature)
    }
}

/// The complete profile of one (workload, configuration) pair.
#[derive(Debug, Clone, PartialEq)]
pub struct Evaluation {
    /// Workload name.
    pub workload: String,
    /// The evaluated configuration.
    pub config: CoreConfig,
    /// Whole-run IPC.
    pub ipc: f64,
    /// Billions of instructions per second (IPC × frequency): the
    /// performance metric used for relative comparisons.
    pub bips: f64,
    /// Heat-sink temperature from the two-pass initialization.
    pub sink_temperature: Kelvin,
    /// Per-interval profiles.
    pub intervals: Vec<IntervalProfile>,
    /// Wall-time / work diagnostics (ignored by equality).
    pub stats: EvalStats,
}

impl Evaluation {
    /// Performance relative to a baseline evaluation of the same workload
    /// (1.0 = equal).
    pub fn relative_performance(&self, base: &Evaluation) -> f64 {
        self.bips / base.bips
    }

    /// Scores this evaluation against a reliability model: the
    /// application's FIT (§3.6).
    pub fn application_fit(&self, model: &ReliabilityModel) -> ApplicationFit {
        let mut tracker = ramp::FitTracker::new();
        for iv in &self.intervals {
            tracker.record(model, iv.duration, &iv.conditions);
        }
        tracker.finish(model)
    }

    /// Hottest structure temperature observed in any interval.
    ///
    /// An evaluation with no measured intervals has no interval
    /// temperatures to take a maximum over; the heat-sink temperature —
    /// the one temperature such an evaluation still carries — is
    /// returned instead of an unphysical `-inf` sentinel.
    pub fn max_temperature(&self) -> Kelvin {
        if self.intervals.is_empty() {
            return self.sink_temperature;
        }
        let mut max = Kelvin(f64::NEG_INFINITY);
        for iv in &self.intervals {
            for (_, c) in iv.conditions.iter() {
                max = max.max(c.temperature);
            }
        }
        max
    }

    /// Time-weighted average total power.
    pub fn average_power(&self) -> Watts {
        let total_time: f64 = self.intervals.iter().map(|i| i.duration.0).sum();
        if total_time <= 0.0 {
            return Watts(0.0);
        }
        Watts(
            self.intervals
                .iter()
                .map(|i| i.power.0 * i.duration.0)
                .sum::<f64>()
                / total_time,
        )
    }

    /// Highest activity factor of any structure in any interval (the
    /// paper's `α_qual` is the maximum across the application suite).
    ///
    /// An evaluation with no measured intervals reports `0.0`: nothing
    /// ran, so nothing toggled.
    pub fn max_activity(&self) -> f64 {
        self.intervals
            .iter()
            .flat_map(|i| i.conditions.iter().map(|(_, c)| c.activity))
            .fold(0.0, f64::max)
    }
}

/// The cycle-level timing stage of an evaluation, separated out so it can
/// be cached and shared.
///
/// Timing depends on a [`CoreConfig`] only through its
/// [`timing_key`](CoreConfig::timing_key) — voltage feeds power and
/// reliability, never cycle counts — so one `TimingRun` can seed
/// [`Evaluator::evaluate_with_timing`] for every voltage of a DVS grid at
/// the same frequency, bit-identically to re-simulating each point.
#[derive(Debug, Clone)]
pub struct TimingRun {
    intervals: Vec<IntervalStats>,
    wall: Duration,
}

impl TimingRun {
    /// Reassembles a run from its parts — the deserialization entry
    /// point for the persistent evaluation store, which reconstructs
    /// runs bit-identically from disk records.
    #[must_use]
    pub fn from_parts(intervals: Vec<IntervalStats>, wall: Duration) -> TimingRun {
        TimingRun { intervals, wall }
    }

    /// Per-interval timing statistics.
    pub fn intervals(&self) -> &[IntervalStats] {
        &self.intervals
    }

    /// Whole-run IPC: identical arithmetic to `RunStats::ipc` over the
    /// same intervals (total instructions over total cycles).
    pub fn ipc(&self) -> f64 {
        let cycles: u64 = self.intervals.iter().map(|iv| iv.cycles).sum();
        if cycles == 0 {
            0.0
        } else {
            self.intervals.iter().map(|iv| iv.instructions).sum::<u64>() as f64 / cycles as f64
        }
    }

    /// Wall time of the cycle simulation that produced this run (carried
    /// into [`EvalStats`] so reused timing still reports its true cost).
    pub fn wall(&self) -> Duration {
        self.wall
    }
}

/// The evaluator: power and thermal models plus simulation parameters.
#[derive(Debug, Clone)]
pub struct Evaluator {
    power: PowerModel,
    thermal: ThermalModel,
    params: EvalParams,
    slice: Option<SliceParams>,
}

impl Evaluator {
    /// Creates an evaluator.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the parameters fail
    /// [`EvalParams::validate`].
    pub fn new(
        power: PowerModel,
        thermal: ThermalModel,
        params: EvalParams,
    ) -> Result<Evaluator, SimError> {
        params.validate()?;
        Ok(Evaluator {
            power,
            thermal,
            params,
            slice: None,
        })
    }

    /// The default 65 nm stack with the given simulation lengths.
    pub fn ibm_65nm(params: EvalParams) -> Result<Evaluator, SimError> {
        Evaluator::new(PowerModel::ibm_65nm(), ThermalModel::hotspot_65nm(), params)
    }

    /// The power model in use.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The thermal model in use.
    pub fn thermal_model(&self) -> &ThermalModel {
        &self.thermal
    }

    /// The simulation parameters.
    pub fn params(&self) -> &EvalParams {
        &self.params
    }

    /// Enables sliced timing: every timing run of this evaluator — and of
    /// anything built on it (batch engine, oracle, server) — is cut into
    /// checkpointed slices and, when a complete persisted cut set exists,
    /// resumed in parallel. Results are bit-identical to the unsliced
    /// path at any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `slice` fails
    /// [`SliceParams::validate`] against this evaluator's parameters.
    pub fn with_slice(mut self, slice: SliceParams) -> Result<Evaluator, SimError> {
        slice.validate(&self.params)?;
        self.slice = Some(slice);
        Ok(self)
    }

    /// The slice parameters, when sliced timing is enabled.
    pub fn slice(&self) -> Option<&SliceParams> {
        self.slice.as_ref()
    }

    /// Evaluates a paper workload on `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration is
    /// invalid.
    pub fn evaluate(&self, app: App, config: &CoreConfig) -> Result<Evaluation, SimError> {
        self.evaluate_profile(&app.profile(), config)
    }

    /// Evaluates an arbitrary workload profile on `config`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration or
    /// profile is invalid.
    pub fn evaluate_profile(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
    ) -> Result<Evaluation, SimError> {
        profile.validate()?;
        let _eval_span = sim_obs::span!("eval");
        let timing = self.run_timing(profile, config)?;
        self.finish_evaluation(profile, config, &timing)
    }

    /// Runs only the cycle-level timing stage for `profile` on `config`.
    ///
    /// The result depends on `config` only through
    /// [`CoreConfig::timing_key`], so it can be cached and fed to
    /// [`evaluate_with_timing`](Evaluator::evaluate_with_timing) for any
    /// configuration sharing that key (any voltage at the same frequency
    /// and microarchitecture).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration or
    /// profile is invalid.
    pub fn timing_run(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
    ) -> Result<TimingRun, SimError> {
        profile.validate()?;
        self.run_timing(profile, config)
    }

    /// Evaluates `profile` on `config` reusing an already-computed timing
    /// stage — the power/thermal passes of
    /// [`evaluate_profile`](Evaluator::evaluate_profile) without the
    /// cycle simulation. Bit-identical to a full evaluation when `timing`
    /// came from a configuration with the same
    /// [`timing_key`](CoreConfig::timing_key).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration or
    /// profile is invalid.
    pub fn evaluate_with_timing(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        timing: &TimingRun,
    ) -> Result<Evaluation, SimError> {
        profile.validate()?;
        // The full path validates through `Processor::new`; the reuse
        // path skips the processor, so validate explicitly.
        config.validate()?;
        let _eval_span = sim_obs::span!("eval");
        self.finish_evaluation(profile, config, timing)
    }

    /// Runs the timing stage sliced, regardless of whether this evaluator
    /// was built [`with_slice`](Evaluator::with_slice): the measured run
    /// is cut into `slice.instructions`-sized slices at interval
    /// boundaries. When `slice.checkpoint_dir` holds a complete persisted
    /// cut set for this (workload, seed, timing key) the slices are
    /// restored and simulated in parallel on `slice.workers` threads;
    /// otherwise a sequential cut pass runs the workload once, persisting
    /// a checkpoint at every cut so later runs can resume in parallel.
    ///
    /// Either path returns a [`TimingRun`] bit-identical to
    /// [`timing_run`](Evaluator::timing_run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration,
    /// profile, or slice shape is invalid, or when a checkpoint file is
    /// present but corrupt or mismatched.
    pub fn timing_run_sliced(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        slice: &SliceParams,
    ) -> Result<TimingRun, SimError> {
        profile.validate()?;
        self.run_timing_sliced(profile, config, slice)
    }

    /// The timing stage: synthetic stream → prewarm → warmup → measured
    /// cycle simulation. Opens the `eval.timing` span but not the outer
    /// `eval` span, so callers control the nesting. Dispatches to the
    /// sliced path when the evaluator carries slice parameters.
    fn run_timing(&self, profile: &AppProfile, config: &CoreConfig) -> Result<TimingRun, SimError> {
        if let Some(slice) = &self.slice {
            return self.run_timing_sliced(profile, config, slice);
        }
        let start = Instant::now();
        let _timing_span = sim_obs::span!("eval.timing");
        let stream = SyntheticStream::new(profile.clone(), self.params.seed);
        let mut cpu = Processor::new(config.clone(), stream)?;

        // Steady-state warm start: prefill the resident footprint and run
        // the warmup, discarding its statistics.
        let resident = profile.data_working_set.min(self.params.prewarm_bytes);
        cpu.prewarm(DATA_BASE, resident, 0, profile.code_footprint);
        if self.params.warmup_instructions > 0 {
            let _ = cpu.run_instructions(self.params.warmup_instructions);
        }

        // Timing pass: collect per-interval activity.
        let run = cpu.run(
            self.params.measure_instructions,
            self.params.interval_instructions,
        );
        Ok(TimingRun {
            intervals: run.intervals().to_vec(),
            wall: start.elapsed(),
        })
    }

    /// The sliced timing stage (see
    /// [`timing_run_sliced`](Evaluator::timing_run_sliced)).
    fn run_timing_sliced(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        slice: &SliceParams,
    ) -> Result<TimingRun, SimError> {
        slice.validate(&self.params)?;
        config.validate()?;
        let start = Instant::now();
        let _timing_span = sim_obs::span!("eval.timing");
        let lens = slice_lengths(self.params.measure_instructions, slice.instructions);
        let fingerprint = slice_fingerprint(config, &self.params, slice.instructions);
        let store = match &slice.checkpoint_dir {
            Some(dir) => Some(CheckpointStore::new(dir)?),
            None => None,
        };
        if let Some(store) = &store {
            if let Some(cuts) =
                store.load_run(&profile.name, self.params.seed, fingerprint, lens.len())?
            {
                let intervals = self.run_slices(profile, config, &cuts, &lens, slice.workers)?;
                return Ok(TimingRun {
                    intervals,
                    wall: start.elapsed(),
                });
            }
        }
        self.run_timing_cut(profile, config, &lens, fingerprint, store.as_ref(), start)
    }

    /// The sequential cut pass: one full-length run, persisting a
    /// checkpoint at every slice boundary (cut `k` is the state *before*
    /// slice `k`, i.e. after warmup plus `k` slices of measurement). The
    /// per-interval statistics come out of the same `run_instructions`
    /// call sequence the unsliced path makes, so the result is
    /// bit-identical by construction.
    fn run_timing_cut(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        lens: &[u64],
        fingerprint: u64,
        store: Option<&CheckpointStore>,
        start: Instant,
    ) -> Result<TimingRun, SimError> {
        let stream = SyntheticStream::new(profile.clone(), self.params.seed);
        let mut cpu = Processor::new(config.clone(), stream)?;
        let resident = profile.data_working_set.min(self.params.prewarm_bytes);
        cpu.prewarm(DATA_BASE, resident, 0, profile.code_footprint);
        if self.params.warmup_instructions > 0 {
            let _ = cpu.run_instructions(self.params.warmup_instructions);
        }
        let mut intervals = Vec::with_capacity(
            (self.params.measure_instructions / self.params.interval_instructions + 1) as usize,
        );
        for (k, &len) in lens.iter().enumerate() {
            if let Some(store) = store {
                let checkpoint = Checkpoint {
                    workload: profile.name.clone(),
                    seed: self.params.seed,
                    fingerprint,
                    stream: cpu.source().state(),
                    pipeline: cpu.state(),
                };
                store.save(&checkpoint, k)?;
            }
            let mut remaining = len;
            while remaining > 0 {
                let n = remaining.min(self.params.interval_instructions);
                intervals.push(cpu.run_instructions(n));
                remaining -= n;
            }
        }
        Ok(TimingRun {
            intervals,
            wall: start.elapsed(),
        })
    }

    /// The parallel resume path: every slice restores its checkpoint and
    /// simulates independently; per-slice interval statistics are folded
    /// back in slice order.
    fn run_slices(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        cuts: &[Checkpoint],
        lens: &[u64],
        workers: usize,
    ) -> Result<Vec<IntervalStats>, SimError> {
        // A valid cut set partitions the measurement: cut k must sit at
        // exactly warmup + k slices of committed instructions.
        let mut expected = self.params.warmup_instructions;
        for (k, cut) in cuts.iter().enumerate() {
            if cut.instructions() != expected {
                return Err(SimError::invalid_config(format!(
                    "checkpoint {k} cut at {} instructions, expected {expected}",
                    cut.instructions()
                )));
            }
            expected += lens[k];
        }
        let seed = self.params.seed;
        let interval = self.params.interval_instructions;
        let count = cuts.len();
        let workers = workers.max(1).min(count);
        let next = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel();
        thread::scope(|scope| {
            for w in 0..workers {
                let tx = tx.clone();
                let next = &next;
                thread::Builder::new()
                    .name(format!("drm-slice-{w}"))
                    .spawn_scoped(scope, move || loop {
                        let k = next.fetch_add(1, Ordering::Relaxed);
                        if k >= count {
                            break;
                        }
                        let result =
                            run_one_slice(profile, seed, config, &cuts[k], lens[k], interval);
                        if tx.send((k, result)).is_err() {
                            break;
                        }
                    })
                    .expect("failed to spawn slice worker");
            }
        });
        drop(tx);
        let mut per_slice: Vec<Option<Vec<IntervalStats>>> = vec![None; count];
        for (k, result) in rx {
            per_slice[k] = Some(result?);
        }
        let mut intervals =
            Vec::with_capacity((self.params.measure_instructions / interval + 1) as usize);
        for (k, stats) in per_slice.into_iter().enumerate() {
            match stats {
                Some(stats) => intervals.extend(stats),
                None => {
                    return Err(SimError::invalid_config(format!(
                        "slice {k} produced no result"
                    )))
                }
            }
        }
        Ok(intervals)
    }

    /// The power/thermal stages (§6.3 passes 1 and 2) over a finished
    /// timing run. Opens no `eval` span of its own — both public entry
    /// points wrap it in one.
    fn finish_evaluation(
        &self,
        profile: &AppProfile,
        config: &CoreConfig,
        timing_run: &TimingRun,
    ) -> Result<Evaluation, SimError> {
        let mut stages = StageTimes::new();
        let mut fixed_point = Histogram::new();
        stages.record("eval.timing", timing_run.wall);
        let timing = &timing_run.intervals;

        // Pass 1 (§6.3): iterate average power ↔ sink temperature to find
        // the steady-state heat-sink operating point.
        let sink_start = Instant::now();
        let sink_span = sim_obs::span!("eval.sink");
        let mut sink = self.thermal.params().ambient;
        let mut temps_guess: Vec<StructureMap<Kelvin>> =
            vec![StructureMap::splat(Kelvin(345.0)); timing.len()];
        for _ in 0..self.params.leakage_iterations {
            let mut energy = 0.0;
            let mut time = 0.0;
            for (iv, temps) in timing.iter().zip(&temps_guess) {
                let breakdown = self.power.power(config, &iv.activity, temps);
                let dt = iv.cycles as f64 / config.frequency.0;
                energy += breakdown.total().0 * dt;
                time += dt;
            }
            let avg_power = Watts(if time > 0.0 { energy / time } else { 0.0 });
            let prev_sink = sink;
            sink = self
                .thermal
                .steady_sink_temperature(avg_power)
                .min(Kelvin(MAX_JUNCTION_K));
            // Convergence residual of the sink fixed point, in Kelvin.
            sim_obs::hist!("eval.sink.residual_k", (sink.0 - prev_sink.0).abs());
            // Refresh the temperature guesses under the new sink.
            for (iv, temps) in timing.iter().zip(temps_guess.iter_mut()) {
                let breakdown = self.power.power(config, &iv.activity, temps);
                *temps = clamp_temps(
                    self.thermal
                        .steady_state_with_sink(&breakdown.per_structure(), sink),
                );
            }
        }
        fixed_point.record(f64::from(self.params.leakage_iterations));
        drop(sink_span);
        stages.record("eval.sink", sink_start.elapsed());

        // Pass 2: final per-interval temperatures and conditions with the
        // sink pinned, iterating the leakage fixed point per interval.
        let thermal_start = Instant::now();
        let thermal_span = sim_obs::span!("eval.thermal");
        let mut intervals = Vec::with_capacity(timing.len());
        let mut temps = StructureMap::splat(sink);
        // Hoisted out of the per-interval loop: when metrics are off this
        // is the whole cost of instrumentation here, and when they are on
        // the histogram names are formatted once per evaluation instead
        // of once per structure per interval.
        let obs_on = sim_obs::enabled();
        let temp_metric_names: Option<Vec<String>> = obs_on.then(|| {
            Structure::ALL
                .into_iter()
                .map(|s| format!("thermal.temp.{}", s.name()))
                .collect()
        });
        for iv in timing {
            let mut breakdown = self.power.power(config, &iv.activity, &temps);
            for _ in 0..self.params.leakage_iterations {
                let prev = temps;
                temps = clamp_temps(
                    self.thermal
                        .steady_state_with_sink(&breakdown.per_structure(), sink),
                );
                if obs_on {
                    let residual = Structure::ALL
                        .into_iter()
                        .map(|s| (temps[s].0 - prev[s].0).abs())
                        .fold(0.0, f64::max);
                    sim_obs::hist!("eval.thermal.residual_k", residual);
                }
                breakdown = self.power.power(config, &iv.activity, &temps);
            }
            fixed_point.record(f64::from(self.params.leakage_iterations));
            if let Some(names) = &temp_metric_names {
                // Per-structure temperature distributions over intervals.
                for (s, t) in temps.iter() {
                    sim_obs::hist!(names[s.index()], t.0);
                }
            }
            let duration = Seconds(iv.cycles as f64 / config.frequency.0);
            let conditions = StructureMap::from_fn(|s| StructureConditions {
                temperature: temps[s],
                vdd: config.vdd,
                frequency: config.frequency,
                activity: iv.activity[s],
                powered_fraction: config.powered_fraction(s),
            });
            intervals.push(IntervalProfile {
                duration,
                instructions: iv.instructions,
                ipc: iv.ipc(),
                power: breakdown.total(),
                conditions,
            });
        }
        drop(thermal_span);
        stages.record("eval.thermal", thermal_start.elapsed());

        let stats = EvalStats {
            stages,
            fixed_point,
        };
        sim_obs::counter!("drm.evals", 1);
        sim_obs::hist!("drm.eval.wall_ms", stats.wall().as_secs_f64() * 1e3);
        sim_obs::log_debug!(
            "drm.eval",
            "{} @ {:.2} GHz: IPC {:.3}, peak {:.1} K, {:.1} ms",
            profile.name,
            config.frequency.to_ghz(),
            timing_run.ipc(),
            intervals
                .iter()
                .flat_map(|iv| iv.conditions.iter().map(|(_, c)| c.temperature.0))
                .fold(0.0, f64::max),
            stats.wall().as_secs_f64() * 1e3
        );

        let ipc = timing_run.ipc();
        Ok(Evaluation {
            workload: profile.name.clone(),
            config: config.clone(),
            ipc,
            bips: ipc * config.frequency.to_ghz(),
            sink_temperature: sink,
            intervals,
            stats,
        })
    }
}

/// Restores one checkpoint and simulates its slice, returning the slice's
/// interval statistics. The restored processor replays exactly the
/// `run_instructions` call sequence the sequential run makes over the same
/// instructions (slice lengths are multiples of the interval length, so
/// interval boundaries coincide), which is what makes slice parity
/// bit-exact.
fn run_one_slice(
    profile: &AppProfile,
    seed: u64,
    config: &CoreConfig,
    cut: &Checkpoint,
    len: u64,
    interval: u64,
) -> Result<Vec<IntervalStats>, SimError> {
    let stream = SyntheticStream::restore(profile.clone(), seed, &cut.stream);
    let mut cpu = Processor::new(config.clone(), stream)?;
    cpu.restore_state(&cut.pipeline);
    let mut out = Vec::with_capacity((len / interval + 1) as usize);
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(interval);
        out.push(cpu.run_instructions(n));
        remaining -= n;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::DvsPoint;
    use crate::space::ArchPoint;
    use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
    use sim_common::Floorplan;

    fn evaluator() -> Evaluator {
        Evaluator::ibm_65nm(EvalParams::quick()).unwrap()
    }

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.35),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn base_evaluation_is_sane() {
        let ev = evaluator()
            .evaluate(App::Gzip, &CoreConfig::base())
            .unwrap();
        assert!(ev.ipc > 0.5 && ev.ipc < 8.0, "ipc {}", ev.ipc);
        assert!((ev.bips - ev.ipc * 4.0).abs() < 1e-9);
        assert!(!ev.intervals.is_empty());
        let p = ev.average_power().0;
        assert!((8.0..60.0).contains(&p), "power {p} W");
        let t = ev.max_temperature().0;
        assert!((330.0..430.0).contains(&t), "temp {t} K");
        assert!(ev.sink_temperature.0 > 318.15);
    }

    #[test]
    fn hot_app_is_hotter_and_hungrier_than_cool_app() {
        let e = evaluator();
        let hot = e.evaluate(App::MpgDec, &CoreConfig::base()).unwrap();
        let cool = e.evaluate(App::Twolf, &CoreConfig::base()).unwrap();
        assert!(hot.average_power() > cool.average_power());
        assert!(hot.max_temperature() > cool.max_temperature());
    }

    #[test]
    fn lower_frequency_runs_cooler_and_slower() {
        let e = evaluator();
        let base = e.evaluate(App::Bzip2, &CoreConfig::base()).unwrap();
        let slow_cfg = ArchPoint::most_aggressive()
            .apply(&CoreConfig::base(), DvsPoint::at_ghz(2.5).unwrap())
            .unwrap();
        let slow = e.evaluate(App::Bzip2, &slow_cfg).unwrap();
        assert!(slow.bips < base.bips);
        assert!(slow.max_temperature() < base.max_temperature());
        assert!(slow.average_power().0 < 0.6 * base.average_power().0);
    }

    #[test]
    fn lower_frequency_reduces_fit() {
        let e = evaluator();
        let m = model(345.0);
        let base = e.evaluate(App::Equake, &CoreConfig::base()).unwrap();
        let slow_cfg = ArchPoint::most_aggressive()
            .apply(&CoreConfig::base(), DvsPoint::at_ghz(3.0).unwrap())
            .unwrap();
        let slow = e.evaluate(App::Equake, &slow_cfg).unwrap();
        assert!(
            slow.application_fit(&m).total() < base.application_fit(&m).total(),
            "DVS down must reduce FIT"
        );
    }

    #[test]
    fn smaller_microarchitecture_reduces_fit_and_performance() {
        let e = evaluator();
        let m = model(345.0);
        let base = e.evaluate(App::MpgDec, &CoreConfig::base()).unwrap();
        let small_cfg = ArchPoint {
            window: 16,
            alus: 2,
            fpus: 1,
        }
        .apply(&CoreConfig::base(), DvsPoint::base())
        .unwrap();
        let small = e.evaluate(App::MpgDec, &small_cfg).unwrap();
        assert!(small.relative_performance(&base) < 1.0);
        assert!(small.application_fit(&m).total() < base.application_fit(&m).total());
    }

    #[test]
    fn evaluation_is_deterministic() {
        let e = evaluator();
        let a = e.evaluate(App::Ammp, &CoreConfig::base()).unwrap();
        let b = e.evaluate(App::Ammp, &CoreConfig::base()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn stats_are_populated_and_ignored_by_equality() {
        let e = evaluator();
        let a = e.evaluate(App::Gzip, &CoreConfig::base()).unwrap();
        assert!(a.stats.wall() > Duration::ZERO);
        assert!(a.stats.timing() > Duration::ZERO);
        assert!(a.stats.wall() >= a.stats.timing());
        assert!(a.stats.power_thermal() > Duration::ZERO);
        // One fixed-point sample for the pass-1 sink loop plus one per
        // interval (quick(): 4 intervals), 3 iterations each.
        assert_eq!(a.stats.fixed_point.count(), 1 + 4);
        assert_eq!(a.stats.fixed_point_iterations(), 3 * (1 + 4));
        // Stage names line up with the emitted span names.
        let stages: Vec<_> = a.stats.stages.iter().map(|(n, _)| n).collect();
        assert_eq!(stages, ["eval.timing", "eval.sink", "eval.thermal"]);
        // Equality must not depend on wall time: compare against a copy
        // with zeroed stats.
        let mut b = a.clone();
        b.stats = EvalStats::default();
        assert_eq!(a, b);
    }

    #[test]
    fn timing_reuse_is_bit_identical_across_a_voltage_grid() {
        use sim_common::{Hertz, Volts};
        let e = evaluator();
        let profile = App::H263Enc.profile();
        let freq = Hertz::from_ghz(3.5);
        let base = CoreConfig::base();
        let timing = e
            .timing_run(&profile, &base.with_dvs(freq, Volts(1.0)))
            .unwrap();
        for vdd in [0.85, 0.95, 1.05, 1.15] {
            let config = base.with_dvs(freq, Volts(vdd));
            assert_eq!(
                config.timing_key(),
                base.with_dvs(freq, Volts(1.0)).timing_key()
            );
            let reused = e.evaluate_with_timing(&profile, &config, &timing).unwrap();
            let fresh = e.evaluate_profile(&profile, &config).unwrap();
            assert_eq!(reused, fresh, "vdd {vdd}");
        }
    }

    #[test]
    fn evaluate_with_timing_validates_config() {
        let e = evaluator();
        let profile = App::Gzip.profile();
        let timing = e.timing_run(&profile, &CoreConfig::base()).unwrap();
        let mut bad = CoreConfig::base();
        bad.vdd = sim_common::Volts(0.0);
        assert!(e.evaluate_with_timing(&profile, &bad, &timing).is_err());
    }

    #[test]
    fn interval_temperatures_derive_from_conditions() {
        let e = evaluator();
        let ev = e.evaluate(App::Gzip, &CoreConfig::base()).unwrap();
        for iv in &ev.intervals {
            let temps = iv.temperatures();
            for (s, c) in iv.conditions.iter() {
                assert_eq!(temps[s], c.temperature);
            }
        }
        assert!(ev.max_temperature() >= ev.intervals[0].temperatures()[Structure::Bpred]);
    }

    #[test]
    fn fit_scoring_is_reusable_across_qualification_points() {
        // One evaluation scored against models at different T_qual: the
        // cheaper qualification must report a (proportionally) higher FIT.
        let e = evaluator();
        let ev = e.evaluate(App::Gzip, &CoreConfig::base()).unwrap();
        let expensive = ev.application_fit(&model(400.0)).total();
        let cheap = ev.application_fit(&model(330.0)).total();
        assert!(cheap > expensive);
    }

    #[test]
    fn interval_durations_match_cycles() {
        let e = evaluator();
        let ev = e.evaluate(App::Art, &CoreConfig::base()).unwrap();
        for iv in &ev.intervals {
            assert!(iv.duration.0 > 0.0);
            assert_eq!(iv.instructions, e.params().interval_instructions);
        }
    }

    #[test]
    fn empty_interval_sentinels() {
        // Regression: an evaluation stripped of intervals used to report
        // max_temperature() == -inf. The documented sentinels are the
        // sink temperature and zero activity.
        let e = evaluator();
        let mut ev = e.evaluate(App::Gzip, &CoreConfig::base()).unwrap();
        ev.intervals.clear();
        assert_eq!(ev.max_temperature(), ev.sink_temperature);
        assert!(ev.max_temperature().0.is_finite());
        assert_eq!(ev.max_activity(), 0.0);
        assert_eq!(ev.average_power(), Watts(0.0));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("ramp-slice-eval-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn sliced_timing_without_checkpoints_is_bit_identical() {
        // No checkpoint directory: the cut pass still partitions the run
        // into slices but persists nothing; parity must hold regardless.
        let e = evaluator();
        let sliced = e.clone().with_slice(SliceParams::new(30_000)).unwrap();
        let plain = e.evaluate(App::Art, &CoreConfig::base()).unwrap();
        let cut = sliced.evaluate(App::Art, &CoreConfig::base()).unwrap();
        assert_eq!(plain, cut);
    }

    #[test]
    fn sliced_resume_is_bit_identical_at_any_worker_count() {
        let dir = temp_dir("resume");
        let e = evaluator();
        let plain = e.evaluate(App::MpgDec, &CoreConfig::base()).unwrap();
        // First sliced run: no cut set yet → sequential cut pass that
        // persists one checkpoint per slice (quick(): 120k/30k → 4).
        let slice = SliceParams::new(30_000).with_dir(&dir);
        let sliced = e.clone().with_slice(slice.clone()).unwrap();
        let cut = sliced.evaluate(App::MpgDec, &CoreConfig::base()).unwrap();
        assert_eq!(plain, cut);
        let store = CheckpointStore::new(&dir).unwrap();
        assert_eq!(store.list().unwrap().len(), 4);
        // Later runs restore the cuts and fan the slices out in parallel.
        for workers in [1, 4] {
            let resumed = e
                .clone()
                .with_slice(slice.clone().with_workers(workers))
                .unwrap()
                .evaluate(App::MpgDec, &CoreConfig::base())
                .unwrap();
            assert_eq!(plain, resumed, "workers {workers}");
        }
        // The cut set survives a measurement-length change (shorter run,
        // same slices) and keeps parity there too.
        let mut short_params = *e.params();
        short_params.measure_instructions = 60_000;
        let short = Evaluator::ibm_65nm(short_params).unwrap();
        let short_plain = short.evaluate(App::MpgDec, &CoreConfig::base()).unwrap();
        let short_sliced = short
            .clone()
            .with_slice(slice.with_workers(2))
            .unwrap()
            .evaluate(App::MpgDec, &CoreConfig::base())
            .unwrap();
        assert_eq!(short_plain, short_sliced);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sliced_timing_run_matches_timing_run() {
        let dir = temp_dir("timing");
        let e = evaluator();
        let profile = App::Gzip.profile();
        let config = CoreConfig::base();
        let plain = e.timing_run(&profile, &config).unwrap();
        let slice = SliceParams::new(60_000).with_dir(&dir).with_workers(2);
        // Cut pass, then resume pass.
        let cut = e.timing_run_sliced(&profile, &config, &slice).unwrap();
        let resumed = e.timing_run_sliced(&profile, &config, &slice).unwrap();
        assert_eq!(plain.intervals(), cut.intervals());
        assert_eq!(plain.intervals(), resumed.intervals());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn with_slice_rejects_unaligned_slices() {
        // quick(): interval 30k — a 45k slice cannot cut on a boundary.
        assert!(evaluator().with_slice(SliceParams::new(45_000)).is_err());
        assert!(evaluator().with_slice(SliceParams::new(0)).is_err());
    }

    #[test]
    fn params_validation() {
        assert!(EvalParams {
            measure_instructions: 0,
            ..EvalParams::quick()
        }
        .validate()
        .is_err());
        assert!(EvalParams {
            interval_instructions: 1_000_000,
            ..EvalParams::quick()
        }
        .validate()
        .is_err());
        assert!(EvalParams {
            leakage_iterations: 0,
            ..EvalParams::quick()
        }
        .validate()
        .is_err());
    }
}
