//! The oracular DRM study (§5): per application and per qualification
//! point, choose the adaptation configuration that maximizes performance
//! while staying within the target FIT.
//!
//! "This effectively simulates a DRM algorithm which adapts once per
//! application run, and chooses the adaptation configuration with oracular
//! knowledge of the application behavior."
//!
//! Timing/power/thermal profiles depend only on (workload, configuration),
//! not on the qualification point, so evaluations are cached — in the
//! thread-safe [`EvalCache`] shared through the [`BatchEngine`] — and
//! re-scored against each [`ReliabilityModel`]. [`Oracle::best`] first
//! pre-evaluates the strategy's whole candidate set in one parallel pass,
//! then scores serially; all methods take `&self`, so one oracle can be
//! shared across threads.

use std::sync::Arc;
use std::time::Instant;

use ramp::{Fit, ReliabilityModel};
use sim_common::SimError;
use workload::App;

use crate::batch::{BatchEngine, SweepSummary};
use crate::dvs::DvsPoint;
use crate::evaluator::{Evaluation, Evaluator};
use crate::space::{ArchPoint, Strategy};
use crate::surrogate::{self, promote_for_oracle, Surrogate, SurrogateParams};

/// The configuration an oracular DRM run settles on for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct DrmChoice {
    /// Chosen microarchitectural point.
    pub arch: ArchPoint,
    /// Chosen DVS point.
    pub dvs: DvsPoint,
    /// Performance relative to the base non-adaptive processor.
    pub relative_performance: f64,
    /// The application FIT at the chosen configuration.
    pub fit: Fit,
    /// True when the chosen configuration meets the FIT target. When no
    /// candidate meets the target, the minimum-FIT configuration is
    /// returned with `feasible = false`.
    pub feasible: bool,
}

/// Evaluation cache + oracular search, backed by the parallel
/// [`BatchEngine`].
#[derive(Debug, Clone)]
pub struct Oracle {
    engine: BatchEngine,
    surrogate: Option<Arc<Surrogate>>,
}

impl Oracle {
    /// Creates an oracle over `evaluator` with the Table 1 base processor
    /// as the performance reference, using every available core for
    /// candidate sweeps.
    #[must_use]
    pub fn new(evaluator: Evaluator) -> Oracle {
        Oracle {
            engine: BatchEngine::new(evaluator),
            surrogate: None,
        }
    }

    /// Creates an oracle with an explicit sweep worker count (`0` means
    /// `available_parallelism()`; `1` is fully sequential).
    #[must_use]
    pub fn with_workers(evaluator: Evaluator, workers: usize) -> Oracle {
        Oracle {
            engine: BatchEngine::with_workers(evaluator, workers),
            surrogate: None,
        }
    }

    /// Creates an oracle over an explicitly configured [`BatchEngine`]
    /// (e.g. one whose base configuration comes from a scenario).
    #[must_use]
    pub fn from_engine(engine: BatchEngine) -> Oracle {
        Oracle {
            engine,
            surrogate: None,
        }
    }

    /// Enables the two-phase surrogate search: candidate grids are first
    /// scored by a calibrated analytical model and only the provable
    /// frontier is promoted to cycle-level evaluation. Choices stay
    /// bit-identical whenever the measured error bounds hold; off by
    /// default.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `params` are invalid.
    pub fn with_surrogate(mut self, params: SurrogateParams) -> Result<Oracle, SimError> {
        self.surrogate = Some(Arc::new(Surrogate::new(params)?));
        Ok(self)
    }

    /// Attaches an existing shared surrogate — e.g. a server slot's
    /// long-lived instance, so calibrated tables and the error pool
    /// persist across per-request oracles over the same engine.
    #[must_use]
    pub fn with_shared_surrogate(mut self, surrogate: Arc<Surrogate>) -> Oracle {
        self.surrogate = Some(surrogate);
        self
    }

    /// The surrogate, when the two-phase search is enabled. Clones of
    /// this oracle share one surrogate (tables and error pool).
    pub fn surrogate(&self) -> Option<&Arc<Surrogate>> {
        self.surrogate.as_ref()
    }

    /// The evaluator in use.
    pub fn evaluator(&self) -> &Evaluator {
        self.engine.evaluator()
    }

    /// The underlying batch engine.
    pub fn engine(&self) -> &BatchEngine {
        &self.engine
    }

    /// Worker threads used for candidate sweeps.
    pub fn workers(&self) -> usize {
        self.engine.workers()
    }

    /// Number of distinct (workload, configuration) evaluations performed.
    pub fn evaluations_performed(&self) -> usize {
        self.engine.cache().len()
    }

    /// Cumulative sweep statistics over the life of this oracle (shared
    /// cache counters; `wall`/`busy` cover the batch passes).
    #[must_use]
    pub fn summary(&self) -> SweepSummary {
        let cache = self.engine.cache();
        let timing = self.engine.timing_cache();
        SweepSummary {
            workers: self.engine.workers(),
            evaluations: cache.len() as u64,
            cache_hits: cache.hits(),
            timing_runs: timing.misses(),
            timing_reuses: timing.hits(),
            wall: cache.wall(),
            busy: cache.busy(),
        }
    }

    /// The (cached) evaluation of `app` at an adaptation point.
    ///
    /// The cache key is the full operating point — application,
    /// `ArchPoint`, frequency *and* voltage — so distinct points never
    /// alias. A cache hit costs one hash lookup.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the point cannot be applied.
    pub fn evaluation(
        &self,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
    ) -> Result<Arc<Evaluation>, SimError> {
        self.engine.evaluation(app, arch, dvs)
    }

    /// The (cached) evaluation of `app` on the base non-adaptive processor.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn base_evaluation(&self, app: App) -> Result<Arc<Evaluation>, SimError> {
        self.evaluation(app, ArchPoint::most_aggressive(), DvsPoint::base())
    }

    /// Pre-evaluates a list of jobs in one parallel pass, filling the
    /// shared cache; subsequent [`Oracle::evaluation`] calls for those
    /// points are pure cache hits.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn prefetch(&self, jobs: &[(App, ArchPoint, DvsPoint)]) -> Result<SweepSummary, SimError> {
        self.engine.evaluate_all(jobs)
    }

    /// Pre-evaluates `strategy`'s full candidate set (plus the base
    /// point) for every application in `apps` — the whole figure-scale
    /// sweep — in one parallel pass.
    ///
    /// # Errors
    ///
    /// Propagates the first evaluation error.
    pub fn prefetch_suite(
        &self,
        apps: &[App],
        strategy: Strategy,
        dvs_step_ghz: f64,
    ) -> Result<SweepSummary, SimError> {
        let candidates = strategy.candidates(dvs_step_ghz);
        let mut jobs = Vec::with_capacity(apps.len() * (candidates.len() + 1));
        for &app in apps {
            jobs.push((app, ArchPoint::most_aggressive(), DvsPoint::base()));
            for &(arch, dvs) in &candidates {
                jobs.push((app, arch, dvs));
            }
        }
        self.engine.evaluate_all(&jobs)
    }

    /// The highest activity factor across the given applications on the
    /// base processor — the paper's `α_qual` (§3.7). The per-app base
    /// evaluations run in parallel.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn suite_max_activity(&self, apps: &[App]) -> Result<f64, SimError> {
        let jobs: Vec<_> = apps
            .iter()
            .map(|&app| (app, ArchPoint::most_aggressive(), DvsPoint::base()))
            .collect();
        self.engine.evaluate_all(&jobs)?;
        let mut max = 0.0f64;
        for &app in apps {
            max = max.max(self.base_evaluation(app)?.max_activity());
        }
        Ok(max)
    }

    /// Oracular DRM: the best-performing candidate of `strategy` for `app`
    /// that keeps the application FIT within `model`'s target.
    ///
    /// The candidate set is pre-evaluated in one parallel batch pass,
    /// then scored serially against `model` (scoring is cheap and
    /// T_qual-dependent; the pipeline is expensive and T_qual-free).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`SimError::Infeasible`] only
    /// when the strategy has no candidates (cannot happen for the built-in
    /// strategies).
    pub fn best(
        &self,
        app: App,
        strategy: Strategy,
        model: &ReliabilityModel,
        dvs_step_ghz: f64,
    ) -> Result<DrmChoice, SimError> {
        self.best_among(
            app,
            &strategy.candidates(dvs_step_ghz),
            (ArchPoint::most_aggressive(), DvsPoint::base()),
            model,
        )
        .map_err(|e| match e {
            SimError::Infeasible(_) => {
                SimError::infeasible(format!("{strategy} has no candidates"))
            }
            other => other,
        })
    }

    /// Like [`Oracle::best`], but over an explicit candidate set with an
    /// explicit base operating point — the scenario-driven entry point,
    /// where the adaptation space and DVS grid come from a scenario file
    /// rather than the built-in paper constants.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`SimError::Infeasible`] when
    /// `candidates` is empty.
    pub fn best_among(
        &self,
        app: App,
        candidates: &[(ArchPoint, DvsPoint)],
        base: (ArchPoint, DvsPoint),
        model: &ReliabilityModel,
    ) -> Result<DrmChoice, SimError> {
        let _span = sim_obs::span!("oracle.best");
        if let Some(surrogate) = &self.surrogate {
            return self.best_among_two_phase(surrogate, app, candidates, base, model);
        }
        let mut jobs: Vec<_> = candidates.iter().map(|&(a, d)| (app, a, d)).collect();
        jobs.push((app, base.0, base.1));
        self.engine.evaluate_all(&jobs)?;
        let promoted: Vec<usize> = (0..candidates.len()).collect();
        self.select_exact(app, candidates, &promoted, base, model, None)
    }

    /// The surrogate-accelerated search: calibrate, score every
    /// candidate analytically, promote the provable frontier, and
    /// escalate it through the exact path in incumbent-pruned waves. The
    /// final choice comes from exact `Evaluation`s, so it is
    /// bit-identical to exhaustive search whenever the error bounds
    /// hold.
    ///
    /// The FIT bound is inherently loose (FIT is exponentially sensitive
    /// to temperature), so feasibility alone cannot prune much. Instead,
    /// the best *exactly*-feasible anchor seeds an incumbent, the
    /// frontier runs through the cycle-level path in
    /// predicted-performance order, and every exact feasible result
    /// raises the bar: a remaining candidate survives only while its
    /// performance upper bound can still beat the incumbent. The
    /// exhaustive winner performs at least as well as any exactly
    /// feasible candidate, so pruned points provably cannot win.
    fn best_among_two_phase(
        &self,
        surrogate: &Surrogate,
        app: App,
        candidates: &[(ArchPoint, DvsPoint)],
        base: (ArchPoint, DvsPoint),
        model: &ReliabilityModel,
    ) -> Result<DrmChoice, SimError> {
        let table = surrogate.table_for(&self.engine, app, candidates, base)?;
        let bounds = surrogate.bounds(&self.engine, app, &table, Some(model))?;
        let mut scores = Vec::with_capacity(candidates.len());
        for &(arch, dvs) in candidates {
            let config = arch.apply(self.engine.base_config(), dvs)?;
            scores.push(table.score(self.engine.evaluator(), &config));
        }
        let fits: Vec<Fit> = scores.iter().map(|s| s.fit(model)).collect();
        let target = model.target_fit();

        if !surrogate.prune_active() {
            // Warm-up: score (growing the error pool) but promote all.
            let promoted: Vec<usize> = (0..candidates.len()).collect();
            sim_obs::counter!("surrogate.promoted", promoted.len() as u64);
            let mut jobs: Vec<_> = candidates.iter().map(|&(a, d)| (app, a, d)).collect();
            jobs.push((app, base.0, base.1));
            self.engine.evaluate_all(&jobs)?;
            return self.select_exact(
                app,
                candidates,
                &promoted,
                base,
                model,
                Some((surrogate, &scores)),
            );
        }

        // Interval pre-filter: everything that could win given the bounds.
        let frontier = promote_for_oracle(&scores, &fits, target, &bounds, surrogate.k_floor());

        // Seed the incumbent from the calibration anchors that are
        // themselves candidates — their exact evaluations are already
        // cached, so this is free. The exhaustive winner cannot perform
        // worse than any exactly feasible candidate.
        let mut promoted: Vec<usize> = Vec::new();
        let mut incumbent = f64::NEG_INFINITY;
        for &(a, d) in table.anchors() {
            if let Some(i) = candidates.iter().position(|&c| c == (a, d)) {
                if !promoted.contains(&i) {
                    let ev = self.evaluation(app, a, d)?;
                    if ev.application_fit(model).total() <= target {
                        incumbent = incumbent.max(ev.bips);
                    }
                    promoted.push(i);
                }
            }
        }

        // Escalating exact waves over the frontier in predicted-
        // performance order. Each wave is one parallel batch; each exact
        // feasible result can raise the incumbent and shrink the queue.
        let mut queue: Vec<usize> = frontier
            .into_iter()
            .filter(|i| !promoted.contains(i))
            .collect();
        queue.sort_by(|&a, &b| {
            scores[b]
                .bips
                .partial_cmp(&scores[a].bips)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let wave_len = surrogate.k_floor().max(1);
        while !queue.is_empty() {
            queue.retain(|&i| surrogate::hi(scores[i].bips, bounds.perf) >= incumbent);
            let wave: Vec<usize> = queue.drain(..wave_len.min(queue.len())).collect();
            if wave.is_empty() {
                break;
            }
            let jobs: Vec<_> = wave
                .iter()
                .map(|&i| (app, candidates[i].0, candidates[i].1))
                .collect();
            self.engine.evaluate_all(&jobs)?;
            for &i in &wave {
                let (a, d) = candidates[i];
                let ev = self.evaluation(app, a, d)?;
                if ev.application_fit(model).total() <= target {
                    incumbent = incumbent.max(ev.bips);
                }
                promoted.push(i);
            }
        }
        promoted.sort_unstable();
        sim_obs::counter!("surrogate.promoted", promoted.len() as u64);
        self.select_exact(
            app,
            candidates,
            &promoted,
            base,
            model,
            Some((surrogate, &scores)),
        )
    }

    /// The exact selection loop over `promoted` (indices into
    /// `candidates`, ascending, so original candidate order — and with
    /// it tie-breaking — is preserved). With `verify` present, every
    /// exact evaluation is compared against its surrogate prediction,
    /// feeding the running error pool and histograms.
    fn select_exact(
        &self,
        app: App,
        candidates: &[(ArchPoint, DvsPoint)],
        promoted: &[usize],
        base: (ArchPoint, DvsPoint),
        model: &ReliabilityModel,
        verify: Option<(&Surrogate, &[crate::surrogate::SurrogateScore])>,
    ) -> Result<DrmChoice, SimError> {
        let base_bips = self.evaluation(app, base.0, base.1)?.bips;
        let target = model.target_fit();
        let mut best_feasible: Option<DrmChoice> = None;
        let mut min_fit: Option<DrmChoice> = None;
        for &i in promoted {
            let (arch, dvs) = candidates[i];
            let ev = self.evaluation(app, arch, dvs)?;
            if let Some((surrogate, scores)) = verify {
                surrogate.record_verification(&scores[i], &ev, Some(model));
            }
            let fit = ev.application_fit(model).total();
            let choice = DrmChoice {
                arch,
                dvs,
                relative_performance: ev.bips / base_bips,
                fit,
                feasible: fit <= target,
            };
            if choice.feasible {
                let better = best_feasible
                    .as_ref()
                    .is_none_or(|b| choice.relative_performance > b.relative_performance);
                if better {
                    best_feasible = Some(choice.clone());
                }
            }
            let lower = min_fit.as_ref().is_none_or(|b| choice.fit < b.fit);
            if lower {
                min_fit = Some(choice);
            }
        }
        best_feasible
            .or(min_fit)
            .ok_or_else(|| SimError::infeasible("candidate set is empty"))
    }

    /// Like [`Oracle::best`], but also returns the wall-clock summary of
    /// the candidate-sweep batch pass (for drivers that report timing).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn best_with_summary(
        &self,
        app: App,
        strategy: Strategy,
        model: &ReliabilityModel,
        dvs_step_ghz: f64,
    ) -> Result<(DrmChoice, SweepSummary), SimError> {
        let start = Instant::now();
        let mut summary = self.prefetch_suite(&[app], strategy, dvs_step_ghz)?;
        let choice = self.best(app, strategy, model, dvs_step_ghz)?;
        summary.wall = start.elapsed();
        Ok((choice, summary))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalParams;
    use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
    use sim_common::{Floorplan, Hertz, Kelvin, Volts};

    fn oracle() -> Oracle {
        Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap())
    }

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.35),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn evaluations_are_cached() {
        let o = oracle();
        o.base_evaluation(App::Gzip).unwrap();
        o.base_evaluation(App::Gzip).unwrap();
        assert_eq!(o.evaluations_performed(), 1);
        // A DVS search over 6 frequencies adds 5 new evaluations (the base
        // point is already cached).
        o.best(App::Gzip, Strategy::Dvs, &model(370.0), 0.5)
            .unwrap();
        assert_eq!(o.evaluations_performed(), 6);
    }

    #[test]
    fn same_frequency_different_voltage_points_do_not_alias() {
        // Regression: the cache key once held only the frequency, so two
        // operating points with equal frequency and different voltages
        // collapsed to a single cached evaluation.
        let o = oracle();
        let arch = ArchPoint::most_aggressive();
        let nominal = DvsPoint {
            frequency: Hertz::from_ghz(4.0),
            vdd: Volts(1.0),
        };
        let undervolted = DvsPoint {
            frequency: Hertz::from_ghz(4.0),
            vdd: Volts(0.9),
        };
        let a = o.evaluation(App::Gzip, arch, nominal).unwrap();
        let b = o.evaluation(App::Gzip, arch, undervolted).unwrap();
        assert_eq!(
            o.evaluations_performed(),
            2,
            "distinct points must not alias"
        );
        assert_eq!(a.config.vdd, Volts(1.0));
        assert_eq!(b.config.vdd, Volts(0.9));
        // Lower voltage means measurably lower power for the same stream.
        assert!(b.average_power() < a.average_power());
    }

    #[test]
    fn generous_qualification_allows_overclocking() {
        // At T_qual = 400 K every app has reliability headroom: DVS should
        // pick a frequency above the base 4 GHz (§7.1).
        let o = oracle();
        let choice = o
            .best(App::Twolf, Strategy::Dvs, &model(400.0), 0.5)
            .unwrap();
        assert!(choice.feasible);
        assert!(
            choice.dvs.frequency.to_ghz() > 4.0,
            "chose {} GHz",
            choice.dvs.frequency.to_ghz()
        );
        assert!(choice.relative_performance > 1.0);
    }

    #[test]
    fn harsh_qualification_forces_throttling() {
        // At T_qual = 325 K a hot app must slow below base (§7.1).
        let o = oracle();
        let choice = o
            .best(App::MpgDec, Strategy::Dvs, &model(325.0), 0.5)
            .unwrap();
        assert!(
            choice.dvs.frequency.to_ghz() < 4.0,
            "chose {} GHz",
            choice.dvs.frequency.to_ghz()
        );
        assert!(choice.relative_performance < 1.0);
    }

    #[test]
    fn arch_strategy_never_exceeds_base_performance() {
        // §6.1: Arch cannot change frequency, so relative performance ≤ 1.
        let o = oracle();
        for t in [325.0, 400.0] {
            let choice = o.best(App::Bzip2, Strategy::Arch, &model(t), 0.5).unwrap();
            assert!(
                choice.relative_performance <= 1.0 + 1e-9,
                "Arch gave {} at T_qual {t}",
                choice.relative_performance
            );
        }
    }

    #[test]
    fn choice_respects_fit_target_when_feasible() {
        let o = oracle();
        let m = model(360.0);
        let choice = o.best(App::Equake, Strategy::Dvs, &m, 0.5).unwrap();
        if choice.feasible {
            assert!(choice.fit <= m.target_fit());
        }
    }

    #[test]
    fn archdvs_at_least_matches_dvs() {
        // ArchDVS's candidate set contains all of DVS's, so its optimum
        // cannot be worse.
        let o = oracle();
        let m = model(345.0);
        let dvs = o.best(App::Ammp, Strategy::Dvs, &m, 0.5).unwrap();
        let archdvs = o.best(App::Ammp, Strategy::ArchDvs, &m, 0.5).unwrap();
        assert!(archdvs.relative_performance >= dvs.relative_performance - 1e-9);
    }

    #[test]
    fn suite_max_activity_is_positive_probability() {
        let o = oracle();
        let a = o.suite_max_activity(&[App::Gzip, App::Twolf]).unwrap();
        assert!(a > 0.0 && a <= 1.0);
    }

    #[test]
    fn summary_accumulates_across_searches() {
        let o = oracle();
        o.best(App::Gzip, Strategy::Dvs, &model(370.0), 0.5)
            .unwrap();
        let s = o.summary();
        assert_eq!(s.evaluations, 6);
        assert!(s.workers >= 1);
        // Scoring the same strategy again is pure cache hits.
        o.best(App::Gzip, Strategy::Dvs, &model(345.0), 0.5)
            .unwrap();
        let s2 = o.summary();
        assert_eq!(s2.evaluations, 6);
        assert!(s2.cache_hits > s.cache_hits);
    }
}
