//! The oracular DRM study (§5): per application and per qualification
//! point, choose the adaptation configuration that maximizes performance
//! while staying within the target FIT.
//!
//! "This effectively simulates a DRM algorithm which adapts once per
//! application run, and chooses the adaptation configuration with oracular
//! knowledge of the application behavior."
//!
//! Timing/power/thermal profiles depend only on (workload, configuration),
//! not on the qualification point, so evaluations are cached and re-scored
//! against each [`ReliabilityModel`].

use std::collections::HashMap;

use ramp::{Fit, ReliabilityModel};
use sim_common::SimError;
use sim_cpu::CoreConfig;
use workload::App;

use crate::dvs::DvsPoint;
use crate::evaluator::{Evaluation, Evaluator};
use crate::space::{ArchPoint, Strategy};

/// The configuration an oracular DRM run settles on for one application.
#[derive(Debug, Clone, PartialEq)]
pub struct DrmChoice {
    /// Chosen microarchitectural point.
    pub arch: ArchPoint,
    /// Chosen DVS point.
    pub dvs: DvsPoint,
    /// Performance relative to the base non-adaptive processor.
    pub relative_performance: f64,
    /// The application FIT at the chosen configuration.
    pub fit: Fit,
    /// True when the chosen configuration meets the FIT target. When no
    /// candidate meets the target, the minimum-FIT configuration is
    /// returned with `feasible = false`.
    pub feasible: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    app: App,
    arch: ArchPoint,
    freq_mhz: u64,
}

/// Evaluation cache + oracular search.
#[derive(Debug)]
pub struct Oracle {
    evaluator: Evaluator,
    base_config: CoreConfig,
    cache: HashMap<CacheKey, Evaluation>,
}

impl Oracle {
    /// Creates an oracle over `evaluator` with the Table 1 base processor
    /// as the performance reference.
    pub fn new(evaluator: Evaluator) -> Oracle {
        Oracle {
            evaluator,
            base_config: CoreConfig::base(),
            cache: HashMap::new(),
        }
    }

    /// The evaluator in use.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Number of distinct (workload, configuration) evaluations performed.
    pub fn evaluations_performed(&self) -> usize {
        self.cache.len()
    }

    /// The (cached) evaluation of `app` at an adaptation point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the point cannot be applied.
    pub fn evaluation(
        &mut self,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
    ) -> Result<&Evaluation, SimError> {
        let key = CacheKey {
            app,
            arch,
            freq_mhz: (dvs.frequency.to_ghz() * 1000.0).round() as u64,
        };
        if !self.cache.contains_key(&key) {
            let config = arch.apply(&self.base_config, dvs)?;
            let ev = self.evaluator.evaluate(app, &config)?;
            self.cache.insert(key, ev);
        }
        Ok(&self.cache[&key])
    }

    /// The (cached) evaluation of `app` on the base non-adaptive processor.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn base_evaluation(&mut self, app: App) -> Result<&Evaluation, SimError> {
        self.evaluation(app, ArchPoint::most_aggressive(), DvsPoint::base())
    }

    /// The highest activity factor across the given applications on the
    /// base processor — the paper's `α_qual` (§3.7).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn suite_max_activity(&mut self, apps: &[App]) -> Result<f64, SimError> {
        let mut max = 0.0f64;
        for &app in apps {
            max = max.max(self.base_evaluation(app)?.max_activity());
        }
        Ok(max)
    }

    /// Oracular DRM: the best-performing candidate of `strategy` for `app`
    /// that keeps the application FIT within `model`'s target.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; returns [`SimError::Infeasible`] only
    /// when the strategy has no candidates (cannot happen for the built-in
    /// strategies).
    pub fn best(
        &mut self,
        app: App,
        strategy: Strategy,
        model: &ReliabilityModel,
        dvs_step_ghz: f64,
    ) -> Result<DrmChoice, SimError> {
        let base_bips = self.base_evaluation(app)?.bips;
        let target = model.target_fit();
        let mut best_feasible: Option<DrmChoice> = None;
        let mut min_fit: Option<DrmChoice> = None;
        for (arch, dvs) in strategy.candidates(dvs_step_ghz) {
            let ev = self.evaluation(app, arch, dvs)?;
            let fit = ev.application_fit(model).total();
            let choice = DrmChoice {
                arch,
                dvs,
                relative_performance: ev.bips / base_bips,
                fit,
                feasible: fit <= target,
            };
            if choice.feasible {
                let better = best_feasible
                    .as_ref()
                    .is_none_or(|b| choice.relative_performance > b.relative_performance);
                if better {
                    best_feasible = Some(choice.clone());
                }
            }
            let lower = min_fit.as_ref().is_none_or(|b| choice.fit < b.fit);
            if lower {
                min_fit = Some(choice);
            }
        }
        best_feasible
            .or(min_fit)
            .ok_or_else(|| SimError::infeasible(format!("{strategy} has no candidates")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalParams;
    use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
    use sim_common::{Floorplan, Kelvin};

    fn oracle() -> Oracle {
        Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap())
    }

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.35),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn evaluations_are_cached() {
        let mut o = oracle();
        o.base_evaluation(App::Gzip).unwrap();
        o.base_evaluation(App::Gzip).unwrap();
        assert_eq!(o.evaluations_performed(), 1);
        // A DVS search over 6 frequencies adds 5 new evaluations (the base
        // point is already cached).
        o.best(App::Gzip, Strategy::Dvs, &model(370.0), 0.5).unwrap();
        assert_eq!(o.evaluations_performed(), 6);
    }

    #[test]
    fn generous_qualification_allows_overclocking() {
        // At T_qual = 400 K every app has reliability headroom: DVS should
        // pick a frequency above the base 4 GHz (§7.1).
        let mut o = oracle();
        let choice = o
            .best(App::Twolf, Strategy::Dvs, &model(400.0), 0.5)
            .unwrap();
        assert!(choice.feasible);
        assert!(
            choice.dvs.frequency.to_ghz() > 4.0,
            "chose {} GHz",
            choice.dvs.frequency.to_ghz()
        );
        assert!(choice.relative_performance > 1.0);
    }

    #[test]
    fn harsh_qualification_forces_throttling() {
        // At T_qual = 325 K a hot app must slow below base (§7.1).
        let mut o = oracle();
        let choice = o
            .best(App::MpgDec, Strategy::Dvs, &model(325.0), 0.5)
            .unwrap();
        assert!(
            choice.dvs.frequency.to_ghz() < 4.0,
            "chose {} GHz",
            choice.dvs.frequency.to_ghz()
        );
        assert!(choice.relative_performance < 1.0);
    }

    #[test]
    fn arch_strategy_never_exceeds_base_performance() {
        // §6.1: Arch cannot change frequency, so relative performance ≤ 1.
        let mut o = oracle();
        for t in [325.0, 400.0] {
            let choice = o
                .best(App::Bzip2, Strategy::Arch, &model(t), 0.5)
                .unwrap();
            assert!(
                choice.relative_performance <= 1.0 + 1e-9,
                "Arch gave {} at T_qual {t}",
                choice.relative_performance
            );
        }
    }

    #[test]
    fn choice_respects_fit_target_when_feasible() {
        let mut o = oracle();
        let m = model(360.0);
        let choice = o.best(App::Equake, Strategy::Dvs, &m, 0.5).unwrap();
        if choice.feasible {
            assert!(choice.fit <= m.target_fit());
        }
    }

    #[test]
    fn archdvs_at_least_matches_dvs() {
        // ArchDVS's candidate set contains all of DVS's, so its optimum
        // cannot be worse.
        let mut o = oracle();
        let m = model(345.0);
        let dvs = o.best(App::Ammp, Strategy::Dvs, &m, 0.5).unwrap();
        let archdvs = o.best(App::Ammp, Strategy::ArchDvs, &m, 0.5).unwrap();
        assert!(archdvs.relative_performance >= dvs.relative_performance - 1e-9);
    }

    #[test]
    fn suite_max_activity_is_positive_probability() {
        let mut o = oracle();
        let a = o.suite_max_activity(&[App::Gzip, App::Twolf]).unwrap();
        assert!(a > 0.0 && a <= 1.0);
    }
}
