//! Multi-program workloads (§3.6): "To determine the FIT value for a
//! workload, we can use a weighted average of the FIT values of the
//! constituent applications."
//!
//! A [`WorkloadMix`] is a time-share over applications (e.g. a consolidation
//! profile: 60% media decode, 40% compression). Its FIT is the time-weighted
//! average of the constituents' FITs, and DRM can qualify and adapt for the
//! mix rather than for a single program.

use ramp::{Fit, ReliabilityModel};
use sim_common::SimError;
use workload::App;

use crate::dvs::DvsPoint;
use crate::oracle::{DrmChoice, Oracle};
use crate::space::{ArchPoint, Strategy};

/// A time-weighted mix of applications.
///
/// # Examples
///
/// ```
/// use drm::WorkloadMix;
/// use workload::App;
///
/// let mix = WorkloadMix::new([(App::MpgDec, 0.6), (App::Bzip2, 0.4)])?;
/// assert_eq!(mix.entries().len(), 2);
/// assert!((mix.entries()[0].1 - 0.6).abs() < 1e-12);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    entries: Vec<(App, f64)>,
}

impl WorkloadMix {
    /// Builds a mix from `(application, time share)` pairs; shares are
    /// normalized to sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when empty, when a share is
    /// non-positive, or when an application appears twice.
    pub fn new(entries: impl IntoIterator<Item = (App, f64)>) -> Result<WorkloadMix, SimError> {
        let mut collected: Vec<(App, f64)> = Vec::new();
        for (app, w) in entries {
            if !(w > 0.0 && w.is_finite()) {
                return Err(SimError::invalid_config(format!(
                    "share for {app} must be positive, got {w}"
                )));
            }
            if collected.iter().any(|(a, _)| *a == app) {
                return Err(SimError::invalid_config(format!("{app} listed twice")));
            }
            collected.push((app, w));
        }
        if collected.is_empty() {
            return Err(SimError::invalid_config("mix needs at least one app"));
        }
        let total: f64 = collected.iter().map(|(_, w)| w).sum();
        for (_, w) in &mut collected {
            *w /= total;
        }
        Ok(WorkloadMix { entries: collected })
    }

    /// The normalized `(application, share)` entries.
    pub fn entries(&self) -> &[(App, f64)] {
        &self.entries
    }

    /// The mix FIT at one configuration: the share-weighted average of the
    /// constituent applications' FITs (§3.6).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn fit(
        &self,
        oracle: &Oracle,
        arch: ArchPoint,
        dvs: DvsPoint,
        model: &ReliabilityModel,
    ) -> Result<Fit, SimError> {
        let mut total = 0.0;
        for &(app, share) in &self.entries {
            let ev = oracle.evaluation(app, arch, dvs)?;
            total += share * ev.application_fit(model).total().value();
        }
        Ok(Fit(total))
    }

    /// The mix performance at one configuration, relative to the base
    /// processor: the share-weighted average of per-app relative
    /// performance.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn relative_performance(
        &self,
        oracle: &Oracle,
        arch: ArchPoint,
        dvs: DvsPoint,
    ) -> Result<f64, SimError> {
        let mut total = 0.0;
        for &(app, share) in &self.entries {
            let base = oracle.base_evaluation(app)?.bips;
            let ev = oracle.evaluation(app, arch, dvs)?;
            total += share * ev.bips / base;
        }
        Ok(total)
    }

    /// Oracular DRM for the whole mix: the best-performing candidate of
    /// `strategy` whose *mix* FIT meets the target. Mirrors
    /// [`Oracle::best`] but constrains the weighted average, so a hot
    /// constituent can be carried by a cool one.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn best(
        &self,
        oracle: &Oracle,
        strategy: Strategy,
        model: &ReliabilityModel,
        dvs_step_ghz: f64,
    ) -> Result<DrmChoice, SimError> {
        // Pre-evaluate every (constituent, candidate) pair in one
        // parallel pass.
        let candidates = strategy.candidates(dvs_step_ghz);
        let mut jobs = Vec::with_capacity(self.entries.len() * (candidates.len() + 1));
        for &(app, _) in &self.entries {
            jobs.push((app, ArchPoint::most_aggressive(), DvsPoint::base()));
            for &(arch, dvs) in &candidates {
                jobs.push((app, arch, dvs));
            }
        }
        oracle.prefetch(&jobs)?;
        let target = model.target_fit();
        let mut best_feasible: Option<DrmChoice> = None;
        let mut min_fit: Option<DrmChoice> = None;
        for (arch, dvs) in strategy.candidates(dvs_step_ghz) {
            let fit = self.fit(oracle, arch, dvs, model)?;
            let perf = self.relative_performance(oracle, arch, dvs)?;
            let choice = DrmChoice {
                arch,
                dvs,
                relative_performance: perf,
                fit,
                feasible: fit <= target,
            };
            if choice.feasible
                && best_feasible
                    .as_ref()
                    .is_none_or(|b| choice.relative_performance > b.relative_performance)
            {
                best_feasible = Some(choice.clone());
            }
            if min_fit.as_ref().is_none_or(|b| choice.fit < b.fit) {
                min_fit = Some(choice);
            }
        }
        best_feasible
            .or(min_fit)
            .ok_or_else(|| SimError::infeasible(format!("{strategy} has no candidates")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalParams, Evaluator};
    use ramp::{FailureParams, QualificationPoint};
    use sim_common::{Floorplan, Kelvin};

    fn oracle() -> Oracle {
        Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap())
    }

    fn model(t_qual: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), 0.48),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn shares_normalize() {
        let mix = WorkloadMix::new([(App::Gzip, 3.0), (App::Art, 1.0)]).unwrap();
        assert!((mix.entries()[0].1 - 0.75).abs() < 1e-12);
        assert!((mix.entries()[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn rejects_invalid_mixes() {
        assert!(WorkloadMix::new([]).is_err());
        assert!(WorkloadMix::new([(App::Gzip, 0.0)]).is_err());
        assert!(WorkloadMix::new([(App::Gzip, 1.0), (App::Gzip, 1.0)]).is_err());
    }

    #[test]
    fn mix_fit_is_weighted_average() {
        let o = oracle();
        let m = model(394.0);
        let arch = ArchPoint::most_aggressive();
        let dvs = DvsPoint::base();
        let hot = o
            .evaluation(App::MpgDec, arch, dvs)
            .unwrap()
            .application_fit(&m)
            .total()
            .value();
        let cool = o
            .evaluation(App::Twolf, arch, dvs)
            .unwrap()
            .application_fit(&m)
            .total()
            .value();
        let mix = WorkloadMix::new([(App::MpgDec, 0.3), (App::Twolf, 0.7)]).unwrap();
        let got = mix.fit(&o, arch, dvs, &m).unwrap().value();
        assert!((got - (0.3 * hot + 0.7 * cool)).abs() < 1e-9);
    }

    #[test]
    fn cool_constituents_carry_hot_ones() {
        // A hot app infeasible alone at a tight qualification becomes
        // feasible at base settings inside a mostly-cool mix (§3.6 / §4:
        // reliability can be budgeted over time).
        let o = oracle();
        let m = model(385.0);
        let arch = ArchPoint::most_aggressive();
        let dvs = DvsPoint::base();
        let hot_alone = o
            .evaluation(App::MpgDec, arch, dvs)
            .unwrap()
            .application_fit(&m)
            .total();
        assert!(hot_alone > m.target_fit(), "premise: hot app over budget");
        let mix = WorkloadMix::new([(App::MpgDec, 0.2), (App::Art, 0.8)]).unwrap();
        let mixed = mix.fit(&o, arch, dvs, &m).unwrap();
        assert!(
            mixed <= m.target_fit(),
            "mix {mixed:?} should fit the budget"
        );
    }

    #[test]
    fn mix_search_is_at_least_as_good_as_worst_member() {
        let o = oracle();
        let m = model(380.0);
        let mix = WorkloadMix::new([(App::MpgDec, 0.5), (App::Twolf, 0.5)]).unwrap();
        let mix_choice = mix.best(&o, Strategy::Dvs, &m, 0.5).unwrap();
        let hot_choice = o.best(App::MpgDec, Strategy::Dvs, &m, 0.5).unwrap();
        // The mix's frequency should be at least the hot app's solo
        // frequency: averaging with a cool app only relaxes the constraint.
        assert!(
            mix_choice.dvs.frequency >= hot_choice.dvs.frequency,
            "mix {:.2} GHz < solo {:.2} GHz",
            mix_choice.dvs.frequency.to_ghz(),
            hot_choice.dvs.frequency.to_ghz()
        );
    }
}
