//! Fleet-scale population Monte Carlo: per-die process variation over
//! 10⁵–10⁷ virtual dies.
//!
//! The paper models *one* processor at nominal process parameters; its
//! "millions of users" framing is really a statement about populations —
//! a FIT budget is a claim about the fraction of shipped dies that fail
//! in service. This module samples that population: each virtual die
//! draws per-die process parameters (leakage density, leakage β,
//! activation energies, interconnect geometry) from the in-tree xoshiro
//! RNG with per-die substream seeds, and is pushed through the *cheap*
//! tail of the pipeline only. The expensive cycle-level timing stage runs
//! once per operating point (served by the shared
//! [`TimingCache`](crate::batch::TimingCache)); variation re-runs
//! nothing but closed-form power/thermal/FIT arithmetic:
//!
//! 1. **Baseline anchor** — the nominal evaluation's exact
//!    [`ApplicationFit`](ramp::ApplicationFit) gives per-(structure,
//!    mechanism) FITs and run-average temperatures `T̄(s)`.
//! 2. **Per-die temperature** — the die's leakage multiplier (lognormal
//!    density × its own β at `T̄`) perturbs the per-structure power
//!    vector; because the pinned-sink steady state is *affine* in power,
//!    the temperature delta from two fixed-point iterations of the
//!    prefactored solve is exact for that leakage delta.
//! 3. **Per-die FIT** — each mechanism's FIT is the baseline value times
//!    the analytic rate ratio at run-average conditions (all die-
//!    invariant factors — current density, powered fraction, the
//!    calibration constant — cancel in the ratio), evaluated in log
//!    space so one `exp` yields the FIT factor and one more the `β`-th
//!    power needed for lifetime sampling.
//! 4. **Per-die lifetime** — the series system of common-shape Weibull
//!    components has a closed form: the minimum is again Weibull with
//!    `η_series^{-β} = Σ η_c^{-β} ∝ Σ FIT_c^β`, so one exponential draw
//!    and one `powf` sample the die's end of life exactly.
//!
//! Aggregation is constant-memory: per-batch
//! [`QuantileSketch`](sim_common::QuantileSketch)es (deterministic
//! compactors) are folded in batch order, so the result is bit-identical
//! at any worker count — dies carry their own RNG substreams and batch
//! boundaries are fixed, only the *schedule* varies with workers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use ramp::{Mttf, ReliabilityModel, Weibull};
use sim_common::units::BOLTZMANN_EV;
use sim_common::{splitmix64, Kelvin, QuantileSketch, SimError, Structure, StructureMap, Watts};
use workload::App;

use crate::batch::BatchEngine;
use crate::dvs::DvsPoint;
use crate::evaluator::{Evaluation, Evaluator};
use crate::space::ArchPoint;

/// Dies per work batch. Fixed (never derived from the worker count — or
/// the shard count) so partial aggregates fold in the same order at any
/// parallelism, in-process or across a cluster.
pub const DIE_BATCH: u64 = 4096;

/// Iterations of the per-die leakage/temperature fixed point. The
/// response is a small perturbation of an already-converged operating
/// point, so two passes capture the leakage-heats-itself feedback.
const FIXED_POINT_ITERS: u32 = 2;

/// Die-to-die process variation magnitudes.
///
/// These are *modeling assumptions*, not paper-calibrated constants: the
/// ISCA-04 paper models a single nominal die. Magnitudes follow the
/// variation literature for ~65 nm (die-to-die leakage spreads of a few
/// ×, linewidth/geometry control of a few percent — see EXPERIMENTS.md
/// for provenance). All σ = 0 reproduces the nominal die exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationParams {
    /// σ of the lognormal per-die leakage-density multiplier
    /// (`exp(σ·z)`, so 0.25 ≈ ±25% per-die leakage at 1σ).
    pub sigma_leakage: f64,
    /// Absolute σ of the exponential leakage-temperature coefficient β,
    /// in 1/K (nominal 0.017).
    pub sigma_beta: f64,
    /// σ of the per-die activation-energy shift for EM and SM, in eV
    /// (drawn independently per mechanism).
    pub sigma_ea: f64,
    /// σ of the lognormal interconnect-geometry rate factor applied to
    /// the wear mechanisms of the metal stack (EM and SM).
    pub sigma_geometry: f64,
}

impl Default for VariationParams {
    fn default() -> Self {
        VariationParams {
            sigma_leakage: 0.25,
            sigma_beta: 0.001,
            sigma_ea: 0.015,
            sigma_geometry: 0.05,
        }
    }
}

impl VariationParams {
    /// No variation at all: every die is the nominal die.
    #[must_use]
    pub fn none() -> VariationParams {
        VariationParams {
            sigma_leakage: 0.0,
            sigma_beta: 0.0,
            sigma_ea: 0.0,
            sigma_geometry: 0.0,
        }
    }

    /// Validates the magnitudes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for negative, non-finite, or
    /// absurdly large σ (lognormal σ > 2 spans more than ×50 at 2σ —
    /// outside any plausible process).
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, v) in [
            ("fleet.sigma_leakage", self.sigma_leakage),
            ("fleet.sigma_beta", self.sigma_beta),
            ("fleet.sigma_ea", self.sigma_ea),
            ("fleet.sigma_geometry", self.sigma_geometry),
        ] {
            if !(v.is_finite() && (0.0..=2.0).contains(&v)) {
                return Err(SimError::invalid_config(format!(
                    "{label} must be in [0, 2], got {v}"
                )));
            }
        }
        Ok(())
    }
}

/// Configuration of one fleet run: population size, RNG seed, wear-out
/// shape, and the variation magnitudes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetConfig {
    /// Virtual dies to sample.
    pub dies: u64,
    /// Fleet RNG seed (each die derives its own substream from it).
    pub seed: u64,
    /// Weibull wear-out shape β shared by every failure mechanism.
    pub shape: f64,
    /// Die-to-die variation magnitudes.
    pub variation: VariationParams,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            dies: 100_000,
            seed: 2004,
            shape: 2.0,
            variation: VariationParams::default(),
        }
    }
}

impl FleetConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero or absurd die
    /// count, a shape outside [`Weibull::SHAPE_RANGE`], or invalid
    /// variation magnitudes.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.dies == 0 {
            return Err(SimError::invalid_config("fleet.dies must be positive"));
        }
        if self.dies > 100_000_000 {
            return Err(SimError::invalid_config(
                "fleet.dies beyond 1e8 (the streaming layer is sized for 1e5–1e7)",
            ));
        }
        let (lo, hi) = Weibull::SHAPE_RANGE;
        if !(self.shape >= lo && self.shape <= hi) {
            return Err(SimError::invalid_config(
                "fleet.shape must lie in [0.5, 10] (validated Weibull range)",
            ));
        }
        self.variation.validate()
    }
}

/// Population statistics of one per-die quantity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FleetStats {
    /// Population mean.
    pub mean: f64,
    /// Exact population minimum.
    pub min: f64,
    /// Exact population maximum.
    pub max: f64,
    /// 1st percentile (from the streaming sketch).
    pub p1: f64,
    /// 5th percentile.
    pub p5: f64,
    /// Median.
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
}

impl FleetStats {
    fn from_sketch(sketch: &QuantileSketch, sum: f64) -> FleetStats {
        FleetStats {
            mean: sum / sketch.count() as f64,
            min: sketch.min(),
            max: sketch.max(),
            p1: sketch.quantile(0.01),
            p5: sketch.quantile(0.05),
            p50: sketch.quantile(0.5),
            p95: sketch.quantile(0.95),
        }
    }
}

/// Result of one fleet run.
///
/// Equality ignores the diagnostic fields (`workers`, `wall`,
/// `timing_runs`) so a seeded run compares equal at any worker count —
/// the fleet analogue of `EvalStats`' always-equal comparison.
#[derive(Debug, Clone)]
pub struct FleetSummary {
    /// Dies sampled.
    pub dies: u64,
    /// Dies whose total FIT exceeds the qualified budget.
    pub violations: u64,
    /// The FIT budget the violation count is measured against.
    pub target_fit: f64,
    /// Per-die total-FIT statistics.
    pub fit: FleetStats,
    /// Per-die sampled lifetime statistics, in years.
    pub lifetime_years: FleetStats,
    /// Documented worst-case rank error of the sketch percentiles, as a
    /// fraction of the population.
    pub rank_error: f64,
    /// Cycle-level timing simulations behind the baseline (cumulative on
    /// the engine's timing cache — the `≪ dies` amortization claim).
    pub timing_runs: u64,
    /// Worker threads used (diagnostic).
    pub workers: usize,
    /// Wall time of the die loop (diagnostic).
    pub wall: Duration,
}

impl PartialEq for FleetSummary {
    fn eq(&self, other: &FleetSummary) -> bool {
        self.dies == other.dies
            && self.violations == other.violations
            && self.target_fit == other.target_fit
            && self.fit == other.fit
            && self.lifetime_years == other.lifetime_years
            && self.rank_error == other.rank_error
    }
}

impl FleetSummary {
    /// Fraction of the fleet over the FIT budget.
    #[must_use]
    pub fn violation_fraction(&self) -> f64 {
        self.violations as f64 / self.dies as f64
    }

    /// Die throughput of the run.
    #[must_use]
    pub fn dies_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.dies as f64 / self.wall.as_secs_f64()
        }
    }
}

impl std::fmt::Display for FleetSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "fleet: {} dies | {:.2}% over {:.0} FIT | FIT p50 {:.0} p95 {:.0} | life p1 {:.1}y p5 {:.1}y p50 {:.1}y p95 {:.1}y | {:.0}k dies/s",
            self.dies,
            100.0 * self.violation_fraction(),
            self.target_fit,
            self.fit.p50,
            self.fit.p95,
            self.lifetime_years.p1,
            self.lifetime_years.p5,
            self.lifetime_years.p50,
            self.lifetime_years.p95,
            self.dies_per_second() / 1e3,
        )
    }
}

/// One die's sampled outcome.
struct DieOutcome {
    total_fit: f64,
    lifetime_hours: f64,
}

/// Per-structure baseline terms precomputed once per fleet run.
struct StructBase {
    /// Run-average temperature `T̄` (K).
    tbar: f64,
    /// `1 / (k·T̄)` for the Arrhenius ratio terms.
    inv_kt0: f64,
    /// `T̄ − leakage_ref` for the die leakage multiplier.
    t_minus_ref: f64,
    /// Baseline leakage at `T̄` (W).
    leak0: f64,
    /// `ln|sm_t0 − T̄|` (None when the baseline SM stress is degenerate).
    ln_stress0: Option<f64>,
    /// Baseline TDDB log rate `(a − b·T̄)·ln V − field(T̄)/(k·T̄)`.
    tddb0: f64,
    /// `ln(T̄ − tc_ambient)` (None when `T̄` is at or below ambient).
    ln_delta0: Option<f64>,
    /// Baseline per-mechanism FITs (the exact `ApplicationFit` values).
    fit0_em: f64,
    fit0_sm: f64,
    fit0_tddb: f64,
    fit0_tc: f64,
    /// `fit0^β` per mechanism, for the closed-form series lifetime.
    pow_em: f64,
    pow_sm: f64,
    pow_tddb: f64,
    pow_tc: f64,
}

/// Everything the per-die fast path needs, precomputed from the nominal
/// evaluation so the die loop runs no timing, no tracker, and no model
/// qualification — only closed-form ratios and two small linear solves.
struct FleetBaseline<'a> {
    thermal: &'a sim_thermal::ThermalModel,
    structs: Vec<StructBase>,
    /// Nominal leakage vector at `T̄` — the base point of the affine
    /// thermal delta (any base gives the same delta; this one lets the
    /// solve input be built in a single pass).
    base_leak: StructureMap<Watts>,
    /// Pinned-sink solve of `base_leak` — subtracted from each die's
    /// solve to get its exact temperature delta.
    t_ref: StructureMap<Kelvin>,
    sink0: Kelvin,
    r_sink: f64,
    leakage_beta: f64,
    ln_vdd: f64,
    shape: f64,
    inv_shape: f64,
    /// `1/Γ(1 + 1/β)`: scale of a unit-mean Weibull with shape β.
    unit_scale: f64,
    seed: u64,
    variation: VariationParams,
    /// Failure-mechanism parameters (shared with the baseline FITs).
    em_ea: f64,
    sm_ea: f64,
    sm_n: f64,
    sm_t0: f64,
    tddb_a: f64,
    tddb_b: f64,
    tddb_x: f64,
    tddb_y: f64,
    tddb_z: f64,
    tc_q: f64,
    tc_ambient: f64,
}

/// TDDB log rate at temperature `t` (die-invariant factors dropped).
fn tddb_log_rate(a: f64, b: f64, x: f64, y: f64, z: f64, t: f64, ln_v: f64) -> f64 {
    (a - b * t) * ln_v - (x + y / t + z * t) / (BOLTZMANN_EV * t)
}

/// One standard-normal pair (Box–Muller; consumes two uniforms).
fn gaussian_pair(rng: &mut sim_common::Xoshiro256pp) -> (f64, f64) {
    // 1 − u ∈ (0, 1] keeps the log finite (same full-interval convention
    // as Weibull::sample).
    let u1 = 1.0 - rng.next_f64();
    let u2 = rng.next_f64();
    let r = (-2.0 * u1.ln()).sqrt();
    let (sin, cos) = (std::f64::consts::TAU * u2).sin_cos();
    (r * cos, r * sin)
}

impl<'a> FleetBaseline<'a> {
    fn new(
        evaluator: &'a Evaluator,
        ev: &Evaluation,
        model: &ReliabilityModel,
        config: &FleetConfig,
    ) -> Result<FleetBaseline<'a>, SimError> {
        let app = ev.application_fit(model);
        if app.total().value() <= 0.0 {
            return Err(SimError::invalid_config(
                "fleet needs a baseline with nonzero FIT",
            ));
        }
        let p = model.params();
        let tbar = StructureMap::from_fn(|s| app.average_temperature(s));
        let base_leak = evaluator.power_model().leakage_power(&ev.config, &tbar);
        let sink0 = ev.sink_temperature;
        let t_ref = evaluator
            .thermal_model()
            .steady_state_with_sink(&base_leak, sink0);
        let ln_vdd = ev.config.vdd.0.ln();
        let shape = config.shape;
        // Γ(1+1/β) via the validated Weibull constructor: a unit-mean
        // Weibull has scale 1/Γ(1+1/β) (also validates the shape range).
        let unit_scale = Weibull::from_mttf(Mttf(1.0), shape)?.scale;

        let leakage_ref = evaluator.power_model().params().leakage_ref.0;
        let structs = Structure::ALL
            .into_iter()
            .map(|s| {
                use ramp::Mechanism::*;
                let t0 = tbar[s].0;
                let stress0 = (p.sm_t0.0 - t0).abs();
                let delta0 = t0 - p.tc_ambient.0;
                let fit0 = |m| app.fit(s, m).value();
                let (em, sm, td, tc) = (
                    fit0(Electromigration),
                    fit0(StressMigration),
                    fit0(Tddb),
                    fit0(ThermalCycling),
                );
                StructBase {
                    tbar: t0,
                    inv_kt0: 1.0 / (BOLTZMANN_EV * t0),
                    t_minus_ref: t0 - leakage_ref,
                    leak0: base_leak[s].0,
                    ln_stress0: (stress0 > 0.0).then(|| stress0.ln()),
                    tddb0: tddb_log_rate(
                        p.tddb_a, p.tddb_b, p.tddb_x, p.tddb_y, p.tddb_z, t0, ln_vdd,
                    ),
                    ln_delta0: (delta0 > 0.0).then(|| delta0.ln()),
                    fit0_em: em,
                    fit0_sm: sm,
                    fit0_tddb: td,
                    fit0_tc: tc,
                    pow_em: em.powf(shape),
                    pow_sm: sm.powf(shape),
                    pow_tddb: td.powf(shape),
                    pow_tc: tc.powf(shape),
                }
            })
            .collect();

        Ok(FleetBaseline {
            thermal: evaluator.thermal_model(),
            structs,
            base_leak,
            t_ref,
            sink0,
            r_sink: evaluator.thermal_model().params().r_sink_ambient,
            leakage_beta: evaluator.power_model().params().leakage_beta,
            ln_vdd,
            shape,
            inv_shape: 1.0 / shape,
            unit_scale,
            seed: config.seed,
            variation: config.variation,
            em_ea: p.em_ea,
            sm_ea: p.sm_ea,
            sm_n: p.sm_n,
            sm_t0: p.sm_t0.0,
            tddb_a: p.tddb_a,
            tddb_b: p.tddb_b,
            tddb_x: p.tddb_x,
            tddb_y: p.tddb_y,
            tddb_z: p.tddb_z,
            tc_q: p.tc_q,
            tc_ambient: p.tc_ambient.0,
        })
    }

    /// Samples die `index` (its own RNG substream: scheduling-independent).
    fn die(&self, index: u64) -> DieOutcome {
        let mut rng = sim_common::Xoshiro256pp::seed_from_u64(
            splitmix64(self.seed) ^ splitmix64(index.wrapping_add(1)),
        );
        let v = &self.variation;
        let (z1, z2) = gaussian_pair(&mut rng);
        let (z3, z4) = gaussian_pair(&mut rng);
        let (z5, _) = gaussian_pair(&mut rng);
        let wear_draw = -(1.0 - rng.next_f64()).ln();

        let lambda = (v.sigma_leakage * z1).exp();
        let beta_die = (self.leakage_beta + v.sigma_beta * z2).max(0.0);
        let d_beta = beta_die - self.leakage_beta;
        let d_ea_em = v.sigma_ea * z3;
        let d_ea_sm = v.sigma_ea * z4;
        let ln_g = v.sigma_geometry * z5;

        // Per-die temperature delta: the die's leakage (its own density
        // multiplier and β, at the perturbed temperature) feeds the
        // prefactored pinned-sink solve; the solve is affine in power and
        // sink, so subtracting the baseline solve gives the exact linear
        // response. Two passes close the leakage-heats-itself loop.
        let mut dt: StructureMap<f64> = StructureMap::splat(0.0);
        for _ in 0..FIXED_POINT_ITERS {
            let mut load = self.base_leak;
            let mut delta_total = 0.0;
            for (i, s) in Structure::ALL.into_iter().enumerate() {
                let b = &self.structs[i];
                let mult = lambda * (d_beta * b.t_minus_ref + beta_die * dt[s]).exp();
                let d = (mult - 1.0) * b.leak0;
                delta_total += d;
                load[s] = Watts(b.leak0 + d);
            }
            let sink = Kelvin(self.sink0.0 + self.r_sink * delta_total);
            let solved = self.thermal.steady_state_with_sink(&load, sink);
            dt = StructureMap::from_fn(|s| solved[s].0 - self.t_ref[s].0);
        }

        // Per-mechanism FIT ratios at run-average conditions, in log
        // space: `lr` is ln(rate_die/rate_nominal), so exp(lr) scales the
        // FIT and exp(β·lr) scales FIT^β for the series lifetime.
        let mut total_fit = 0.0;
        let mut eta_sum = 0.0;
        let mut add = |fit0: f64, pow0: f64, lr: f64| {
            total_fit += fit0 * lr.exp();
            eta_sum += pow0 * (self.shape * lr).exp();
        };
        for (i, s) in Structure::ALL.into_iter().enumerate() {
            let b = &self.structs[i];
            let t_die = b.tbar + dt[s];
            let inv_kt = 1.0 / (BOLTZMANN_EV * t_die);
            if b.fit0_em > 0.0 {
                let lr = ln_g + self.em_ea * b.inv_kt0 - (self.em_ea + d_ea_em) * inv_kt;
                add(b.fit0_em, b.pow_em, lr);
            }
            if b.fit0_sm > 0.0 {
                if let Some(ls0) = b.ln_stress0 {
                    let stress = (self.sm_t0 - t_die).abs();
                    // stress → 0 drives ln → −∞ and the contribution
                    // cleanly to zero through exp.
                    let lr = ln_g + self.sm_n * (stress.ln() - ls0) + self.sm_ea * b.inv_kt0
                        - (self.sm_ea + d_ea_sm) * inv_kt;
                    add(b.fit0_sm, b.pow_sm, lr);
                } else {
                    // Degenerate baseline stress: no ratio to scale by.
                    add(b.fit0_sm, b.pow_sm, 0.0);
                }
            }
            if b.fit0_tddb > 0.0 {
                let lr = tddb_log_rate(
                    self.tddb_a,
                    self.tddb_b,
                    self.tddb_x,
                    self.tddb_y,
                    self.tddb_z,
                    t_die,
                    self.ln_vdd,
                ) - b.tddb0;
                add(b.fit0_tddb, b.pow_tddb, lr);
            }
            if b.fit0_tc > 0.0 {
                match b.ln_delta0 {
                    Some(ld0) => {
                        let delta = t_die - self.tc_ambient;
                        if delta > 0.0 {
                            add(b.fit0_tc, b.pow_tc, self.tc_q * (delta.ln() - ld0));
                        }
                        // At or below ambient: zero cycling stress.
                    }
                    None => add(b.fit0_tc, b.pow_tc, 0.0),
                }
            }
        }

        // Closed-form series-Weibull draw: min of common-shape Weibulls
        // is Weibull with η_series = (Σ FIT_c^β)^{-1/β} · 10⁹/Γ(1+1/β).
        let lifetime_hours = if eta_sum > 0.0 {
            1e9 * self.unit_scale * (wear_draw / eta_sum).powf(self.inv_shape)
        } else {
            f64::INFINITY
        };
        DieOutcome {
            total_fit,
            lifetime_hours,
        }
    }
}

/// Streaming aggregate of one die batch (and, folded, of the fleet).
///
/// Partials fold associatively with [`FleetPartial::merge`]; folding
/// every batch of a run *in batch-index order* reproduces the
/// single-process [`run_fleet`] aggregate bit-identically, which is the
/// cluster layer's merge-determinism invariant. The accessors and
/// [`FleetPartial::from_parts`] exist so a partial can cross a process
/// boundary (sketches travel as their compact wire strings).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetPartial {
    fit: QuantileSketch,
    life_years: QuantileSketch,
    fit_sum: f64,
    life_sum: f64,
    violations: u64,
}

impl Default for FleetPartial {
    fn default() -> Self {
        FleetPartial::new()
    }
}

impl FleetPartial {
    /// An empty aggregate (the fold identity).
    #[must_use]
    pub fn new() -> FleetPartial {
        FleetPartial {
            fit: QuantileSketch::new(),
            life_years: QuantileSketch::new(),
            fit_sum: 0.0,
            life_sum: 0.0,
            violations: 0,
        }
    }

    /// Reassembles a partial from its transported parts.
    #[must_use]
    pub fn from_parts(
        fit: QuantileSketch,
        life_years: QuantileSketch,
        fit_sum: f64,
        life_sum: f64,
        violations: u64,
    ) -> FleetPartial {
        FleetPartial {
            fit,
            life_years,
            fit_sum,
            life_sum,
            violations,
        }
    }

    /// Dies aggregated so far.
    #[must_use]
    pub fn dies(&self) -> u64 {
        self.fit.count()
    }

    /// The per-die total-FIT sketch.
    #[must_use]
    pub fn fit_sketch(&self) -> &QuantileSketch {
        &self.fit
    }

    /// The per-die lifetime sketch, in years.
    #[must_use]
    pub fn life_sketch(&self) -> &QuantileSketch {
        &self.life_years
    }

    /// Sum of per-die total FITs.
    #[must_use]
    pub fn fit_sum(&self) -> f64 {
        self.fit_sum
    }

    /// Sum of per-die lifetimes, in years.
    #[must_use]
    pub fn life_sum(&self) -> f64 {
        self.life_sum
    }

    /// Dies whose total FIT exceeds the budget.
    #[must_use]
    pub fn violations(&self) -> u64 {
        self.violations
    }

    fn record(&mut self, outcome: &DieOutcome, target_fit: f64) {
        let years = outcome.lifetime_hours / ramp::fit::HOURS_PER_YEAR;
        self.fit.insert(outcome.total_fit);
        self.life_years.insert(years);
        self.fit_sum += outcome.total_fit;
        self.life_sum += years;
        if outcome.total_fit > target_fit {
            self.violations += 1;
        }
        sim_obs::hist!("fleet.lifetime_years", years);
    }

    /// Folds `other` into this aggregate. Associative and deterministic;
    /// fold in batch-index order to match the single-process run.
    pub fn merge(&mut self, other: &FleetPartial) {
        self.fit.merge(&other.fit);
        self.life_years.merge(&other.life_years);
        self.fit_sum += other.fit_sum;
        self.life_sum += other.life_sum;
        self.violations += other.violations;
    }
}

/// Computes one fleet work unit: batch `batch` (dies
/// `batch·DIE_BATCH .. min((batch+1)·DIE_BATCH, dies)`) of the run
/// described by `config`, exactly as a [`run_fleet`] worker would.
/// Each die carries its own RNG substream, so the outcome depends only
/// on (`config`, `batch`) — never on which process computes it.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when the configuration, the
/// operating point, or the baseline is invalid, or when `batch` is past
/// the end of the run.
pub fn fleet_partial(
    engine: &BatchEngine,
    app: App,
    arch: ArchPoint,
    dvs: DvsPoint,
    model: &ReliabilityModel,
    config: &FleetConfig,
    batch: u64,
) -> Result<FleetPartial, SimError> {
    config.validate()?;
    let batches = config.dies.div_ceil(DIE_BATCH);
    if batch >= batches {
        return Err(SimError::invalid_config(format!(
            "fleet batch {batch} out of range: {} dies make {batches} batch(es)",
            config.dies
        )));
    }
    let ev = engine.evaluation(app, arch, dvs)?;
    let baseline = FleetBaseline::new(engine.evaluator(), &ev, model, config)?;
    let target_fit = model.target_fit().value();
    let lo = batch * DIE_BATCH;
    let hi = (lo + DIE_BATCH).min(config.dies);
    let mut part = FleetPartial::new();
    for die in lo..hi {
        part.record(&baseline.die(die), target_fit);
    }
    Ok(part)
}

/// Finishes a fleet run from its folded aggregate: the summary math of
/// [`run_fleet`] (rank-error bound, sketch statistics, violation count)
/// applied to `acc`, with the diagnostic fields supplied by the caller.
/// Folding every batch in order and summarizing here is bit-identical
/// to the single-process run.
///
/// # Panics
///
/// Panics when `acc` is empty (statistics of zero dies are undefined).
#[must_use]
pub fn fleet_summarize(
    acc: &FleetPartial,
    target_fit: f64,
    timing_runs: u64,
    workers: usize,
    wall: Duration,
) -> FleetSummary {
    let dies = acc.dies();
    assert!(dies > 0, "cannot summarize an empty fleet");
    let rank_error = (acc.fit.rank_error_bound() / dies as f64)
        .max(acc.life_years.rank_error_bound() / dies as f64);
    let summary = FleetSummary {
        dies,
        violations: acc.violations,
        target_fit,
        fit: FleetStats::from_sketch(&acc.fit, acc.fit_sum),
        lifetime_years: FleetStats::from_sketch(&acc.life_years, acc.life_sum),
        rank_error,
        timing_runs,
        workers,
        wall,
    };
    if sim_obs::enabled() {
        sim_obs::counter!("fleet.dies", dies);
        sim_obs::counter!("fleet.violations", summary.violations);
        sim_obs::gauge!("fleet.violation_fraction", summary.violation_fraction());
        sim_obs::gauge!("fleet.fit_p50", summary.fit.p50);
        sim_obs::gauge!("fleet.fit_p95", summary.fit.p95);
        sim_obs::gauge!("fleet.life_p1_y", summary.lifetime_years.p1);
        sim_obs::gauge!("fleet.life_p5_y", summary.lifetime_years.p5);
        sim_obs::gauge!("fleet.life_p50_y", summary.lifetime_years.p50);
        sim_obs::gauge!("fleet.life_p95_y", summary.lifetime_years.p95);
        sim_obs::gauge!("fleet.dies_per_sec", summary.dies_per_second());
    }
    summary
}

/// Runs a fleet Monte Carlo at one operating point.
///
/// The nominal evaluation is served by `engine` (cached; its timing
/// stage is shared with every other consumer of the operating point),
/// then `config.dies` virtual dies stream through the closed-form
/// variation fast path across the engine's worker count, in fixed
/// batches folded in batch order — the summary is bit-identical at any
/// worker count.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] when the fleet configuration, the
/// operating point, or the baseline is invalid.
pub fn run_fleet(
    engine: &BatchEngine,
    app: App,
    arch: ArchPoint,
    dvs: DvsPoint,
    model: &ReliabilityModel,
    config: &FleetConfig,
) -> Result<FleetSummary, SimError> {
    config.validate()?;
    let _span = sim_obs::span!("drm.fleet");
    let ev = engine.evaluation(app, arch, dvs)?;
    let baseline = FleetBaseline::new(engine.evaluator(), &ev, model, config)?;
    let target_fit = model.target_fit().value();

    let start = Instant::now();
    let dies = config.dies;
    let batches = dies.div_ceil(DIE_BATCH);
    let slots: Vec<OnceLock<FleetPartial>> = (0..batches).map(|_| OnceLock::new()).collect();
    let workers = engine
        .workers()
        .min(usize::try_from(batches).unwrap_or(usize::MAX))
        .max(1);
    let next = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let baseline = &baseline;
            let slots = &slots;
            let next = &next;
            // Named threads give each worker its own lane in trace-event
            // exports (and readable panic messages).
            let builder = std::thread::Builder::new().name(format!("fleet-worker-{w}"));
            builder
                .spawn_scoped(scope, move || {
                    let _worker_span = sim_obs::span!("drm.fleet.worker");
                    loop {
                        let b = next.fetch_add(1, Ordering::Relaxed);
                        if b >= batches {
                            return;
                        }
                        let lo = b * DIE_BATCH;
                        let hi = (lo + DIE_BATCH).min(dies);
                        let mut part = FleetPartial::new();
                        for die in lo..hi {
                            part.record(&baseline.die(die), target_fit);
                        }
                        // Each batch index is claimed by exactly one worker.
                        assert!(slots[b as usize].set(part).is_ok());
                    }
                })
                .expect("spawn fleet worker thread");
        }
    });

    let mut acc = FleetPartial::new();
    for slot in &slots {
        acc.merge(slot.get().expect("fleet batch missing"));
    }
    let wall = start.elapsed();
    debug_assert_eq!(acc.fit.count(), dies);

    let summary = fleet_summarize(
        &acc,
        target_fit,
        engine.timing_cache().misses(),
        workers,
        wall,
    );
    sim_obs::log_debug!(
        "drm.fleet",
        "{} dies in {:.1} ms ({:.0}k dies/s), {} worker(s)",
        dies,
        wall.as_secs_f64() * 1e3,
        summary.dies_per_second() / 1e3,
        workers
    );
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalParams;
    use ramp::{FailureParams, QualificationPoint};
    use sim_common::Floorplan;

    fn engine(workers: usize) -> BatchEngine {
        BatchEngine::with_workers(Evaluator::ibm_65nm(EvalParams::quick()).unwrap(), workers)
    }

    fn model() -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(370.0), 0.35),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    fn small(dies: u64) -> FleetConfig {
        FleetConfig {
            dies,
            ..FleetConfig::default()
        }
    }

    #[test]
    fn zero_variation_reproduces_nominal_fit() {
        let e = engine(2);
        let m = model();
        let cfg = FleetConfig {
            dies: 64,
            variation: VariationParams::none(),
            ..FleetConfig::default()
        };
        let point = (App::Gzip, ArchPoint::most_aggressive(), DvsPoint::base());
        let fleet = run_fleet(&e, point.0, point.1, point.2, &m, &cfg).unwrap();
        let nominal = e
            .evaluation(point.0, point.1, point.2)
            .unwrap()
            .application_fit(&m)
            .total()
            .value();
        // Every die is the nominal die: the FIT distribution collapses
        // onto the exact ApplicationFit total (lifetimes still vary —
        // wear-out is random even for identical dies).
        assert!(
            (fleet.fit.min - nominal).abs() < 1e-9 * nominal,
            "min {} vs nominal {nominal}",
            fleet.fit.min
        );
        assert!((fleet.fit.max - nominal).abs() < 1e-9 * nominal);
        assert!((fleet.fit.mean - nominal).abs() < 1e-9 * nominal);
        assert!(fleet.lifetime_years.min < fleet.lifetime_years.max);
    }

    #[test]
    fn variation_widens_the_population() {
        let e = engine(2);
        let m = model();
        let fleet = run_fleet(
            &e,
            App::Gzip,
            ArchPoint::most_aggressive(),
            DvsPoint::base(),
            &m,
            &small(4_000),
        )
        .unwrap();
        assert_eq!(fleet.dies, 4_000);
        assert!(fleet.fit.min < fleet.fit.p5);
        assert!(fleet.fit.p5 < fleet.fit.p50);
        assert!(fleet.fit.p50 < fleet.fit.p95);
        assert!(fleet.fit.p95 < fleet.fit.max);
        assert!(fleet.lifetime_years.p1 < fleet.lifetime_years.p50);
        assert!(fleet.lifetime_years.p50 < fleet.lifetime_years.p95);
        // Hotter, leakier dies must push some of the fleet over a budget
        // the nominal die sits near.
        assert!(fleet.violations > 0);
        assert!(fleet.violation_fraction() < 1.0);
        assert!(fleet.rank_error < 0.05);
    }

    #[test]
    fn summary_is_bit_identical_at_any_worker_count() {
        let m = model();
        let cfg = small(10_000);
        let point = (App::Twolf, ArchPoint::most_aggressive(), DvsPoint::base());
        let one = run_fleet(&engine(1), point.0, point.1, point.2, &m, &cfg).unwrap();
        let four = run_fleet(&engine(4), point.0, point.1, point.2, &m, &cfg).unwrap();
        assert_eq!(one, four);
        // PartialEq covers the statistics; pin the key floats to the bit.
        assert_eq!(one.fit.p50.to_bits(), four.fit.p50.to_bits());
        assert_eq!(one.fit.mean.to_bits(), four.fit.mean.to_bits());
        assert_eq!(
            one.lifetime_years.p95.to_bits(),
            four.lifetime_years.p95.to_bits()
        );
        assert_eq!(one.violations, four.violations);
    }

    #[test]
    fn seed_changes_the_population_deterministically() {
        let e = engine(2);
        let m = model();
        let point = (App::Gzip, ArchPoint::most_aggressive(), DvsPoint::base());
        let a = run_fleet(&e, point.0, point.1, point.2, &m, &small(2_000)).unwrap();
        let b = run_fleet(&e, point.0, point.1, point.2, &m, &small(2_000)).unwrap();
        assert_eq!(a, b, "same seed, same fleet");
        let other = FleetConfig {
            seed: 7,
            ..small(2_000)
        };
        let c = run_fleet(&e, point.0, point.1, point.2, &m, &other).unwrap();
        assert_ne!(a.fit.p50.to_bits(), c.fit.p50.to_bits());
    }

    #[test]
    fn timing_is_amortized_across_the_fleet() {
        let e = engine(2);
        let m = model();
        let fleet = run_fleet(
            &e,
            App::Gzip,
            ArchPoint::most_aggressive(),
            DvsPoint::base(),
            &m,
            &small(2_000),
        )
        .unwrap();
        // One cycle-level timing run serves the whole population.
        assert_eq!(fleet.timing_runs, 1);
    }

    #[test]
    fn partial_batches_fold_to_the_full_fleet() {
        let m = model();
        let cfg = small(10_000); // 3 batches, last one short
        let point = (App::Gzip, ArchPoint::most_aggressive(), DvsPoint::base());
        let direct = run_fleet(&engine(2), point.0, point.1, point.2, &m, &cfg).unwrap();

        // Recompute batch by batch — the cluster path — and fold in
        // batch-index order.
        let e = engine(2);
        let batches = cfg.dies.div_ceil(DIE_BATCH);
        assert_eq!(batches, 3);
        let mut acc = FleetPartial::new();
        for b in 0..batches {
            let part = fleet_partial(&e, point.0, point.1, point.2, &m, &cfg, b).unwrap();
            // A partial survives a trip through its transported parts.
            let rebuilt = FleetPartial::from_parts(
                part.fit_sketch().clone(),
                part.life_sketch().clone(),
                part.fit_sum(),
                part.life_sum(),
                part.violations(),
            );
            assert_eq!(rebuilt, part);
            acc.merge(&part);
        }
        let merged = fleet_summarize(
            &acc,
            m.target_fit().value(),
            e.timing_cache().misses(),
            e.workers(),
            Duration::ZERO,
        );
        assert_eq!(direct, merged);
        assert_eq!(direct.fit.p50.to_bits(), merged.fit.p50.to_bits());
        assert_eq!(direct.fit.mean.to_bits(), merged.fit.mean.to_bits());
        assert_eq!(
            direct.lifetime_years.p95.to_bits(),
            merged.lifetime_years.p95.to_bits()
        );
        assert_eq!(direct.violations, merged.violations);
        // One timing run serves every batch.
        assert_eq!(merged.timing_runs, 1);
        // Past-the-end batches are rejected.
        assert!(fleet_partial(&e, point.0, point.1, point.2, &m, &cfg, batches).is_err());
    }

    #[test]
    fn config_validation_rejects_nonsense() {
        assert!(small(0).validate().is_err());
        assert!(FleetConfig {
            shape: 0.01,
            ..FleetConfig::default()
        }
        .validate()
        .is_err());
        let mut v = FleetConfig::default();
        v.variation.sigma_leakage = -1.0;
        assert!(v.validate().is_err());
        v.variation.sigma_leakage = f64::NAN;
        assert!(v.validate().is_err());
        assert!(FleetConfig::default().validate().is_ok());
    }
}
