//! Evaluation slicing: checkpointed workload continuation.
//!
//! A long timing run is split into **slices** cut at interval boundaries.
//! At each cut the simulator's complete warm state — synthetic-stream
//! cursor, rename maps, branch-predictor tables, cache/MSHR contents, and
//! in-flight pipeline window — is captured as a [`Checkpoint`] and
//! persisted in the strict text format of `sim_cpu::checkpoint`. A later
//! evaluation of the same operating point restores the checkpoints and
//! runs the slices **in parallel**, folding the per-interval statistics
//! back together in slice order.
//!
//! Parity is the contract: because interval statistics are zeroed at every
//! interval boundary and a cut carries *no* statistics, a restored slice
//! replays exactly the cycles the sequential run would have produced, and
//! the concatenated intervals are bit-identical to an unsliced run. The
//! power/thermal passes downstream consume those intervals sequentially
//! either way, so temperatures, FIT, and every derived quantity match to
//! the last bit at any worker count.
//!
//! Checkpoints are keyed by workload name, stream seed, and a
//! [`slice_fingerprint`] over the timing-relevant configuration
//! ([`CoreConfig::timing_key`]) and run shape. The timing key excludes
//! supply voltage, so one checkpoint set serves an entire DVS voltage
//! grid — the same sharing rule as the batch engine's timing cache.

use std::fs;
use std::path::{Path, PathBuf};

use sim_common::SimError;
use sim_cpu::{checkpoint_from_text, checkpoint_to_text, Checkpoint, CoreConfig};

use crate::batch::default_workers;
use crate::evaluator::EvalParams;

/// File extension of persisted checkpoints.
pub const CHECKPOINT_EXT: &str = "ckpt";

/// How a sliced evaluation cuts and resumes a timing run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceParams {
    /// Instructions per slice. Must be a positive multiple of the
    /// evaluation's `interval_instructions` so cuts land exactly on
    /// interval boundaries (where statistics are freshly zeroed).
    pub instructions: u64,
    /// Directory holding persisted checkpoints. `None` still slices the
    /// run (bit-identically), but nothing is persisted, so every run pays
    /// the sequential cut pass and nothing can resume in parallel.
    pub checkpoint_dir: Option<PathBuf>,
    /// Worker threads for the parallel resume path.
    pub workers: usize,
}

impl SliceParams {
    /// Slice parameters with the default worker count
    /// ([`default_workers`]) and no checkpoint directory.
    #[must_use]
    pub fn new(instructions: u64) -> SliceParams {
        SliceParams {
            instructions,
            checkpoint_dir: None,
            workers: default_workers(),
        }
    }

    /// Sets the checkpoint directory.
    #[must_use]
    pub fn with_dir(mut self, dir: impl Into<PathBuf>) -> SliceParams {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Sets the worker count for the parallel resume path.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> SliceParams {
        self.workers = workers;
        self
    }

    /// Validates the slice shape against the evaluation parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the slice length is zero,
    /// not a multiple of the interval length, or the worker count is zero.
    pub fn validate(&self, params: &EvalParams) -> Result<(), SimError> {
        if self.instructions == 0
            || !self
                .instructions
                .is_multiple_of(params.interval_instructions)
        {
            return Err(SimError::invalid_config(format!(
                "slice length {} must be a positive multiple of the interval length {}",
                self.instructions, params.interval_instructions
            )));
        }
        if self.workers == 0 {
            return Err(SimError::invalid_config(
                "at least one slice worker is required",
            ));
        }
        Ok(())
    }
}

/// Splits `total` measured instructions into per-slice lengths. Every
/// slice is `slice` instructions except the last, which takes the
/// remainder — mirroring how `Processor::run` partitions a run into
/// intervals.
#[must_use]
pub fn slice_lengths(total: u64, slice: u64) -> Vec<u64> {
    assert!(slice > 0, "slice length must be non-zero");
    let mut lens = Vec::with_capacity((total / slice + 1) as usize);
    let mut remaining = total;
    while remaining > 0 {
        let n = remaining.min(slice);
        lens.push(n);
        remaining -= n;
    }
    lens
}

/// FNV-1a over `bytes` (64-bit). Deterministic across runs and platforms,
/// unlike the standard library's randomized default hasher — which is why
/// the evaluation store's checksums and the cluster layer's work-unit
/// routing use it too.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fingerprint of everything (besides workload name and seed, which key
/// the file name directly) that determines the machine state at a cut
/// point: the timing-relevant configuration ([`CoreConfig::timing_key`],
/// which excludes `vdd` — voltage never moves a cycle), the warmup
/// length, the prewarm footprint, and the slice length itself.
///
/// The measurement length and interval length are deliberately *not*
/// fingerprinted: cuts land at `warmup + k × slice` regardless, so one
/// checkpoint set serves shorter measurements and any interval length
/// that divides the slice (divisibility is enforced by
/// [`SliceParams::validate`]).
#[must_use]
pub fn slice_fingerprint(config: &CoreConfig, params: &EvalParams, slice_instructions: u64) -> u64 {
    let canonical = format!(
        "ramp-slice-v1|{:?}|warmup={}|prewarm={}|slice={}",
        config.timing_key(),
        params.warmup_instructions,
        params.prewarm_bytes,
        slice_instructions
    );
    fnv1a64(canonical.as_bytes())
}

fn io_err(path: &Path, op: &str, e: &std::io::Error) -> SimError {
    SimError::invalid_config(format!("checkpoint {op} {}: {e}", path.display()))
}

/// A directory of persisted checkpoints, one text file per cut point.
///
/// File names encode the lookup key —
/// `<workload>-s<seed>-<fingerprint>-k<index>.ckpt` — and the same triple
/// is stored (and verified) inside the file, so a renamed or foreign file
/// is rejected rather than silently resumed.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if needed) a checkpoint directory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the directory cannot be
    /// created.
    pub fn new(dir: impl Into<PathBuf>) -> Result<CheckpointStore, SimError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| io_err(&dir, "dir", &e))?;
        Ok(CheckpointStore { dir })
    }

    /// The directory backing this store.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the checkpoint for slice `index` of the given run key.
    #[must_use]
    pub fn path(&self, workload: &str, seed: u64, fingerprint: u64, index: usize) -> PathBuf {
        self.dir.join(format!(
            "{workload}-s{seed}-{fingerprint:016x}-k{index:04}.{CHECKPOINT_EXT}"
        ))
    }

    /// Persists `checkpoint` as slice `index`, returning the bytes
    /// written. Counts one `slice.cut` and the file size under
    /// `slice.bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the file cannot be
    /// written.
    pub fn save(&self, checkpoint: &Checkpoint, index: usize) -> Result<u64, SimError> {
        let path = self.path(
            &checkpoint.workload,
            checkpoint.seed,
            checkpoint.fingerprint,
            index,
        );
        let text = checkpoint_to_text(checkpoint);
        fs::write(&path, &text).map_err(|e| io_err(&path, "write", &e))?;
        sim_obs::counter!("slice.cut", 1);
        sim_obs::counter!("slice.bytes", text.len() as u64);
        Ok(text.len() as u64)
    }

    /// Loads the checkpoint for slice `index`, or `None` when no file
    /// exists for the key. Counts one `slice.resume` and the file size
    /// under `slice.bytes`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the file exists but does
    /// not parse, or its embedded key disagrees with the requested one.
    pub fn load(
        &self,
        workload: &str,
        seed: u64,
        fingerprint: u64,
        index: usize,
    ) -> Result<Option<Checkpoint>, SimError> {
        let path = self.path(workload, seed, fingerprint, index);
        let text = match fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(io_err(&path, "read", &e)),
        };
        let checkpoint = checkpoint_from_text(&text)
            .map_err(|e| SimError::invalid_config(format!("{}: {e}", path.display())))?;
        if checkpoint.workload != workload
            || checkpoint.seed != seed
            || checkpoint.fingerprint != fingerprint
        {
            return Err(SimError::invalid_config(format!(
                "{}: embedded key ({}, seed {}, fingerprint {:016x}) does not match the file name",
                path.display(),
                checkpoint.workload,
                checkpoint.seed,
                checkpoint.fingerprint
            )));
        }
        sim_obs::counter!("slice.resume", 1);
        sim_obs::counter!("slice.bytes", text.len() as u64);
        Ok(Some(checkpoint))
    }

    /// Loads the complete cut set for a run — checkpoints `0..count` —
    /// or `None` if *any* is missing (all-or-nothing: a partial set
    /// cannot reproduce the sequential run).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a present file is
    /// corrupt or mismatched (see [`load`](CheckpointStore::load)).
    pub fn load_run(
        &self,
        workload: &str,
        seed: u64,
        fingerprint: u64,
        count: usize,
    ) -> Result<Option<Vec<Checkpoint>>, SimError> {
        let mut cuts = Vec::with_capacity(count);
        for index in 0..count {
            match self.load(workload, seed, fingerprint, index)? {
                Some(chk) => cuts.push(chk),
                None => return Ok(None),
            }
        }
        Ok(Some(cuts))
    }

    /// Parses every `.ckpt` file in the directory, sorted by file name
    /// (`ramp checkpoint info` uses this to summarize a directory).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the directory cannot be
    /// read or a checkpoint file does not parse.
    pub fn list(&self) -> Result<Vec<(PathBuf, Checkpoint)>, SimError> {
        let entries = fs::read_dir(&self.dir).map_err(|e| io_err(&self.dir, "dir", &e))?;
        let mut paths: Vec<PathBuf> = Vec::new();
        for entry in entries {
            let path = entry.map_err(|e| io_err(&self.dir, "dir", &e))?.path();
            if path.extension().is_some_and(|ext| ext == CHECKPOINT_EXT) {
                paths.push(path);
            }
        }
        paths.sort();
        let mut out = Vec::with_capacity(paths.len());
        for path in paths {
            let text = fs::read_to_string(&path).map_err(|e| io_err(&path, "read", &e))?;
            let checkpoint = checkpoint_from_text(&text)
                .map_err(|e| SimError::invalid_config(format!("{}: {e}", path.display())))?;
            out.push((path, checkpoint));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_cpu::Processor;
    use workload::{App, InstructionSource, SyntheticStream};

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir =
            std::env::temp_dir().join(format!("ramp-slice-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn cut_checkpoint(seed: u64, fingerprint: u64) -> Checkpoint {
        let mut cpu = Processor::new(
            CoreConfig::base(),
            SyntheticStream::new(App::Gzip.profile(), seed),
        )
        .unwrap();
        cpu.prewarm(0x1000_0000, 128 * 1024, 0, 16 * 1024);
        let _ = cpu.run_instructions(10_000);
        Checkpoint {
            workload: cpu.source().name().to_owned(),
            seed,
            fingerprint,
            stream: cpu.source().state(),
            pipeline: cpu.state(),
        }
    }

    #[test]
    fn slice_lengths_partition_the_run() {
        assert_eq!(slice_lengths(120_000, 30_000), [30_000; 4]);
        assert_eq!(
            slice_lengths(100_000, 30_000),
            [30_000, 30_000, 30_000, 10_000]
        );
        assert_eq!(slice_lengths(10_000, 30_000), [10_000]);
        assert!(slice_lengths(0, 30_000).is_empty());
    }

    #[test]
    fn validation_rejects_bad_shapes() {
        let params = EvalParams::quick(); // interval 30k
        assert!(SliceParams::new(30_000).validate(&params).is_ok());
        assert!(SliceParams::new(60_000).validate(&params).is_ok());
        assert!(SliceParams::new(0).validate(&params).is_err());
        assert!(SliceParams::new(45_000).validate(&params).is_err());
        assert!(SliceParams::new(30_000)
            .with_workers(0)
            .validate(&params)
            .is_err());
    }

    #[test]
    fn fingerprint_tracks_timing_inputs_only() {
        let params = EvalParams::quick();
        let base = CoreConfig::base();
        let fp = slice_fingerprint(&base, &params, 30_000);
        // Stable across calls.
        assert_eq!(fp, slice_fingerprint(&base, &params, 30_000));
        // Voltage is not timing-relevant: a DVS voltage grid shares cuts.
        let dvs = base.with_dvs(base.frequency, sim_common::Volts(0.85));
        assert_eq!(fp, slice_fingerprint(&dvs, &params, 30_000));
        // Timing knobs, warmup, prewarm, and slice length all separate.
        let arch = base.with_adaptation(64, 4, 2).unwrap();
        assert_ne!(fp, slice_fingerprint(&arch, &params, 30_000));
        let mut warm = params;
        warm.warmup_instructions += 1;
        assert_ne!(fp, slice_fingerprint(&base, &warm, 30_000));
        let mut pre = params;
        pre.prewarm_bytes /= 2;
        assert_ne!(fp, slice_fingerprint(&base, &pre, 30_000));
        assert_ne!(fp, slice_fingerprint(&base, &params, 60_000));
        // Measurement length is deliberately shared.
        let mut longer = params;
        longer.measure_instructions *= 10;
        assert_eq!(fp, slice_fingerprint(&base, &longer, 30_000));
    }

    #[test]
    fn store_round_trips_checkpoints() {
        let store = temp_store("round-trip");
        let chk = cut_checkpoint(7, 0xFEED);
        let bytes = store.save(&chk, 0).unwrap();
        assert!(bytes > 0);
        let loaded = store.load("gzip", 7, 0xFEED, 0).unwrap().unwrap();
        assert_eq!(loaded, chk);
        // Missing index / different key → None, not an error.
        assert!(store.load("gzip", 7, 0xFEED, 1).unwrap().is_none());
        assert!(store.load("gzip", 8, 0xFEED, 0).unwrap().is_none());
        assert!(store.load_run("gzip", 7, 0xFEED, 2).unwrap().is_none());
        assert_eq!(
            store.load_run("gzip", 7, 0xFEED, 1).unwrap().unwrap().len(),
            1
        );
        let listed = store.list().unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].1, chk);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn store_rejects_tampered_files() {
        let store = temp_store("tamper");
        let chk = cut_checkpoint(7, 0xFEED);
        store.save(&chk, 0).unwrap();
        // A file renamed to a different key must be rejected: its embedded
        // key no longer matches the name it is looked up under.
        let wrong = store.path("gzip", 9, 0xFEED, 0);
        fs::rename(store.path("gzip", 7, 0xFEED, 0), &wrong).unwrap();
        assert!(store.load("gzip", 9, 0xFEED, 0).is_err());
        // Corrupt text is an error, not a silent miss.
        fs::write(store.path("gzip", 7, 0xFEED, 0), "checkpoint.version 1\n").unwrap();
        assert!(store.load("gzip", 7, 0xFEED, 0).is_err());
        let _ = fs::remove_dir_all(store.dir());
    }
}
