//! First-pass surrogate evaluator for DRM searches.
//!
//! The oracle (§5), the DTM comparison (§7.3) and the intra-application
//! scheduler all score every point of an adaptation × DVS grid, and each
//! point costs a cycle-level timing run — the dominant cost of `sweep`,
//! `drm` and server traffic. This module removes that wall with a
//! two-phase search:
//!
//! 1. **Calibrate.** A handful of *anchor* points spanning the grid run
//!    through the exact [`BatchEngine`] path. From the base run's
//!    [`TimingRun`](crate::evaluator::TimingRun) interval statistics we
//!    harvest a per-(app, op-class) cost table — the committed
//!    instruction mix over [`OpClass::ALL`] plus per-structure event
//!    rates — and fit a small linear CPI model in the microarchitectural
//!    knobs ([`ArchPoint`]: window/ALUs/FPUs) and the DVS point
//!    (frequency). The anchor evaluations double as warm cache entries.
//! 2. **Score and promote.** Every candidate is scored analytically
//!    (sub-microsecond: a dot product, one power/thermal fixed point on
//!    predicted activities, and a closed-form steady FIT). The measured
//!    surrogate-vs-exact error on the anchors — widened by a safety
//!    factor and a floor, and monotonically grown by every later
//!    verification — gives an interval around each prediction; only
//!    candidates whose interval could still contain the exact winner
//!    (the *frontier*) are promoted into the exact cycle-level path,
//!    with a conservative `top_k` floor. The oracle then escalates in
//!    exact waves: the best exactly-feasible anchor seeds an incumbent,
//!    candidates run through the cycle-level path in predicted-
//!    performance order, and each exact feasible result raises the bar
//!    that the remaining candidates' performance upper bounds must
//!    clear — so the loose (exponentially temperature-sensitive) FIT
//!    bound never gates pruning, only the tight performance bound does.
//!    The final selection loop runs over exact `Evaluation`s only, so
//!    the returned choice and all FIT numbers are bit-identical to
//!    exhaustive search whenever the error bound holds — and every
//!    promoted point is verified against its prediction, feeding the
//!    running error histogram.
//!
//! The surrogate is attached to an [`Oracle`](crate::Oracle) via
//! [`Oracle::with_surrogate`](crate::Oracle::with_surrogate) and is off
//! by default everywhere.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use ramp::{Fit, ReliabilityModel, StructureConditions};
use sim_common::{Hertz, Kelvin, SimError, Structure, StructureMap};
use sim_cpu::{CoreConfig, IntervalStats};
use workload::{App, OpClass};

use crate::batch::{BatchEngine, TimingCacheKey};
use crate::dvs::DvsPoint;
use crate::evaluator::{Evaluation, Evaluator};
use crate::space::ArchPoint;

/// Number of features of the CPI regression.
const NFEAT: usize = 6;
/// Ridge regularizer: keeps the normal equations solvable when a grid
/// varies only some knobs (e.g. a DVS-only grid holds the window fixed,
/// making the window feature collinear with the intercept).
const RIDGE: f64 = 1e-9;
/// Measured anchor residuals are in-sample; widen them by this factor
/// before using them as promotion bounds.
const SAFETY: f64 = 1.5;
/// Minimum relative error bound, however well the anchors fit.
const EPS_FLOOR: f64 = 0.02;
/// Junction clamp mirrored from the exact evaluator.
const MAX_JUNCTION_K: f64 = 500.0;

/// Tuning knobs for the two-phase search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurrogateParams {
    /// Conservative floor on the number of candidates promoted to the
    /// exact path per search. The provable frontier may exceed it.
    pub top_k: usize,
    /// Number of distinct applications that must have calibrated tables
    /// before promotion pruning activates; until then phase 1 scores but
    /// promotes every candidate (a safe warm-up that only grows the
    /// error pool).
    pub calibration_apps: usize,
}

impl Default for SurrogateParams {
    fn default() -> SurrogateParams {
        SurrogateParams {
            top_k: 8,
            calibration_apps: 1,
        }
    }
}

impl SurrogateParams {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a knob is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.top_k == 0 {
            return Err(SimError::invalid_config("surrogate top_k must be >= 1"));
        }
        if self.calibration_apps == 0 {
            return Err(SimError::invalid_config(
                "surrogate calibration_apps must be >= 1",
            ));
        }
        Ok(())
    }
}

/// One analytical prediction: performance, peak temperature, and the
/// predicted per-structure conditions from which any model's FIT can be
/// scored without re-prediction.
#[derive(Debug, Clone)]
pub struct SurrogateScore {
    /// Predicted billions of instructions per second.
    pub bips: f64,
    /// Predicted peak structure temperature.
    pub peak_temperature: Kelvin,
    conditions: StructureMap<StructureConditions>,
}

impl SurrogateScore {
    /// Predicted application FIT under `model` (closed-form steady-state
    /// scoring of the predicted conditions).
    pub fn fit(&self, model: &ReliabilityModel) -> Fit {
        model.steady_fit(&self.conditions)
    }
}

/// Effective relative error bounds used for promotion, per predicted
/// quantity. A bound ≥ 1 disables pruning on that quantity.
#[derive(Debug, Clone, Copy)]
pub struct ErrorBounds {
    /// Relative bound on predicted BIPS.
    pub perf: f64,
    /// Relative bound on predicted application FIT.
    pub fit: f64,
    /// Relative bound on predicted peak temperature.
    pub temp: f64,
}

/// The calibrated per-application cost table: instruction mix over
/// [`OpClass::ALL`], per-structure event rates, and the fitted CPI
/// coefficients. Configuration-free — one table serves every
/// ([`ArchPoint`], [`DvsPoint`]) and every reliability model.
#[derive(Debug, Clone)]
pub struct AppTable {
    /// Committed-instruction fraction per op class (`OpClass::index()`
    /// order).
    mix: [f64; 11],
    /// Structure events per committed instruction, with the same event
    /// numerators the cycle-level activity factors use.
    epi: StructureMap<f64>,
    /// CPI regression coefficients.
    coeffs: [f64; NFEAT],
    /// Anchor points whose exact evaluations calibrated the table.
    anchors: Vec<(ArchPoint, DvsPoint)>,
}

impl AppTable {
    /// The anchor points used for calibration (their exact evaluations
    /// live in the engine's cache).
    pub fn anchors(&self) -> &[(ArchPoint, DvsPoint)] {
        &self.anchors
    }

    /// The committed-instruction mix over [`OpClass::ALL`].
    pub fn mix(&self) -> &[f64; 11] {
        &self.mix
    }

    /// CPI regression features for a configuration: intercept, a memory
    /// term that grows with frequency (miss latency in cycles), window
    /// pressure, a frequency × window cross term (memory stall cycles
    /// shrink with the memory-level parallelism a larger window exposes),
    /// and per-op-class execution demand against the issue resources —
    /// the calibrated cost-table terms.
    fn features(&self, config: &CoreConfig) -> [f64; NFEAT] {
        let work = |classes: &[OpClass]| -> f64 {
            classes
                .iter()
                .map(|&c| self.mix[c.index()] * f64::from(c.latency()))
                .sum()
        };
        let int_work = work(&[OpClass::IntAlu, OpClass::IntMul, OpClass::IntDiv]);
        let fp_work = work(&[OpClass::FpAdd, OpClass::FpMul, OpClass::FpDiv]);
        let mem_frac = self.mix[OpClass::Load.index()] + self.mix[OpClass::Store.index()];
        let pressure = 16.0 / f64::from(config.window_size.max(1));
        [
            1.0,
            config.frequency.to_ghz() * mem_frac,
            pressure,
            config.frequency.to_ghz() * mem_frac * pressure,
            int_work / f64::from(config.int_alus.max(1)),
            fp_work / f64::from(config.fpus.max(1)),
        ]
    }

    /// Predicted cycles per instruction.
    fn cpi(&self, config: &CoreConfig) -> f64 {
        let phi = self.features(config);
        let raw: f64 = self.coeffs.iter().zip(phi.iter()).map(|(c, x)| c * x).sum();
        raw.max(0.05)
    }

    /// Scores one configuration analytically: CPI from the cost table,
    /// activities from the event rates against the configuration's peak
    /// bandwidths, then the same power ↔ thermal fixed point the exact
    /// evaluator iterates — on one averaged operating point instead of
    /// per interval.
    pub fn score(&self, evaluator: &Evaluator, config: &CoreConfig) -> SurrogateScore {
        let cpi = self.cpi(config);
        let ipc = (1.0 / cpi).min(f64::from(config.issue_width()));
        let issue_width = f64::from(config.issue_width());
        // Peak events per cycle, mirroring the activity-factor
        // denominators of the cycle-level interval statistics.
        let activity = StructureMap::from_fn(|s| {
            let peak = match s {
                Structure::Bpred => 2.0,
                Structure::Icache => 1.0,
                Structure::Dcache => f64::from(config.l1d_ports),
                Structure::IntAlu => f64::from(config.int_alus),
                Structure::Fpu => f64::from(config.fpus),
                Structure::IntRegFile => 3.0 * f64::from(config.int_alus + config.addr_gens),
                Structure::FpRegFile => 3.0 * f64::from(config.fpus),
                Structure::Window => f64::from(config.fetch_width) + 2.0 * issue_width,
                Structure::Lsq => f64::from(config.fetch_width) / 2.0 + f64::from(config.l1d_ports),
            };
            (self.epi[s] * ipc / peak.max(1e-9)).clamp(0.0, 1.0)
        });

        let power = evaluator.power_model();
        let thermal = evaluator.thermal_model();
        let mut temps = StructureMap::splat(Kelvin(345.0));
        let mut breakdown = power.power(config, &activity, &temps);
        let mut sink = thermal
            .steady_sink_temperature(breakdown.total())
            .min(Kelvin(MAX_JUNCTION_K));
        for _ in 0..evaluator.params().leakage_iterations {
            let solved = thermal.steady_state_with_sink(&breakdown.per_structure(), sink);
            temps = StructureMap::from_fn(|s| Kelvin(solved[s].0.min(MAX_JUNCTION_K)));
            breakdown = power.power(config, &activity, &temps);
            sink = thermal
                .steady_sink_temperature(breakdown.total())
                .min(Kelvin(MAX_JUNCTION_K));
        }

        let conditions = StructureMap::from_fn(|s| StructureConditions {
            temperature: temps[s],
            vdd: config.vdd,
            frequency: config.frequency,
            activity: activity[s],
            powered_fraction: config.powered_fraction(s),
        });
        let peak = Structure::ALL
            .into_iter()
            .map(|s| temps[s])
            .fold(Kelvin(f64::NEG_INFINITY), Kelvin::max);
        sim_obs::counter!("surrogate.score", 1);
        SurrogateScore {
            bips: ipc * config.frequency.to_ghz(),
            peak_temperature: peak,
            conditions,
        }
    }
}

/// Worst relative errors observed so far, per predicted quantity.
#[derive(Debug, Default, Clone, Copy)]
struct Observed {
    perf: f64,
    fit: f64,
    temp: f64,
}

#[derive(Debug, Default)]
struct SurrogateState {
    tables: HashMap<App, Arc<AppTable>>,
    observed: Observed,
}

/// The shared surrogate: calibrated per-application tables plus the
/// running error pool. Thread-safe; one instance is shared by every
/// clone of an [`Oracle`](crate::Oracle).
#[derive(Debug)]
pub struct Surrogate {
    params: SurrogateParams,
    state: Mutex<SurrogateState>,
}

impl Surrogate {
    /// Creates a surrogate.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `params` are invalid.
    pub fn new(params: SurrogateParams) -> Result<Surrogate, SimError> {
        params.validate()?;
        Ok(Surrogate {
            params,
            state: Mutex::new(SurrogateState::default()),
        })
    }

    /// The parameters in use.
    pub fn params(&self) -> &SurrogateParams {
        &self.params
    }

    /// The conservative promotion floor.
    pub fn k_floor(&self) -> usize {
        self.params.top_k
    }

    /// Number of applications with calibrated tables.
    pub fn calibrated_apps(&self) -> usize {
        self.state.lock().expect("surrogate lock").tables.len()
    }

    /// True once enough applications are calibrated for promotion
    /// pruning to activate (before that, every candidate is promoted).
    pub fn prune_active(&self) -> bool {
        self.calibrated_apps() >= self.params.calibration_apps
    }

    /// The calibrated table for `app`, building it on first use: anchor
    /// points spanning `candidates` (plus `base`) are evaluated exactly
    /// through `engine`, the cost table is harvested from the base
    /// timing run, and the CPI model is fitted to the anchors.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn table_for(
        &self,
        engine: &BatchEngine,
        app: App,
        candidates: &[(ArchPoint, DvsPoint)],
        base: (ArchPoint, DvsPoint),
    ) -> Result<Arc<AppTable>, SimError> {
        if let Some(table) = self.state.lock().expect("surrogate lock").tables.get(&app) {
            return Ok(table.clone());
        }
        let _span = sim_obs::span!("surrogate.calibrate");
        let anchors = select_anchors(candidates, base);
        let jobs: Vec<_> = anchors.iter().map(|&(a, d)| (app, a, d)).collect();
        engine.evaluate_all(&jobs)?;

        let base_config = base.0.apply(engine.base_config(), base.1)?;
        let timing = match engine
            .timing_cache()
            .get(&TimingCacheKey::new(app, &base_config))
        {
            Some(run) => run,
            // The cache is unbounded, so this only happens if eviction is
            // ever introduced; re-run rather than fail.
            None => Arc::new(
                engine
                    .evaluator()
                    .timing_run(&app.profile(), &base_config)?,
            ),
        };
        let (mix, epi) = harvest(timing.intervals());

        let mut probe = AppTable {
            mix,
            epi,
            coeffs: [0.0; NFEAT],
            anchors: anchors.clone(),
        };
        let mut rows = Vec::with_capacity(anchors.len());
        let mut cpis = Vec::with_capacity(anchors.len());
        for &(a, d) in &anchors {
            let config = a.apply(engine.base_config(), d)?;
            let ev = engine.evaluation(app, a, d)?;
            rows.push(probe.features(&config));
            cpis.push(if ev.ipc > 0.0 { 1.0 / ev.ipc } else { 0.0 });
        }
        probe.coeffs = solve_normal_equations(&rows, &cpis);
        let table = Arc::new(probe);

        let mut state = self.state.lock().expect("surrogate lock");
        let entry = state.tables.entry(app).or_insert_with(|| {
            sim_obs::counter!("surrogate.calibrations", 1);
            table
        });
        Ok(entry.clone())
    }

    /// Effective error bounds for promotion: the anchors are re-scored
    /// through the surrogate and compared with their cached exact
    /// evaluations; the worst residual (pooled with every error observed
    /// by verification so far) is widened by [`SAFETY`] and floored at
    /// [`EPS_FLOOR`]. With `model` absent the FIT bound is conservative
    /// infinity (temperature-only searches don't need it).
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn bounds(
        &self,
        engine: &BatchEngine,
        app: App,
        table: &AppTable,
        model: Option<&ReliabilityModel>,
    ) -> Result<ErrorBounds, SimError> {
        let mut raw = Observed::default();
        for &(a, d) in table.anchors() {
            let config = a.apply(engine.base_config(), d)?;
            let ev = engine.evaluation(app, a, d)?;
            let score = table.score(engine.evaluator(), &config);
            raw.perf = raw.perf.max(rel_err(score.bips, ev.bips));
            raw.temp = raw
                .temp
                .max(rel_err(score.peak_temperature.0, ev.max_temperature().0));
            if let Some(m) = model {
                raw.fit = raw.fit.max(rel_err(
                    score.fit(m).value(),
                    ev.application_fit(m).total().value(),
                ));
            }
        }
        let observed = self.state.lock().expect("surrogate lock").observed;
        let widen = |r: f64, o: f64| (SAFETY * r.max(o)).max(EPS_FLOOR);
        let bounds = ErrorBounds {
            perf: widen(raw.perf, observed.perf),
            fit: if model.is_some() {
                widen(raw.fit, observed.fit)
            } else {
                f64::INFINITY
            },
            temp: widen(raw.temp, observed.temp),
        };
        sim_obs::gauge!("surrogate.bound.perf", bounds.perf);
        sim_obs::gauge!("surrogate.bound.temp", bounds.temp);
        if model.is_some() {
            sim_obs::gauge!("surrogate.bound.fit", bounds.fit);
        }
        Ok(bounds)
    }

    /// Records a phase-2 verification: the promoted candidate's exact
    /// evaluation against its prediction. Grows the running error pool
    /// (future bounds only widen) and feeds the error histograms.
    pub fn record_verification(
        &self,
        predicted: &SurrogateScore,
        exact: &Evaluation,
        model: Option<&ReliabilityModel>,
    ) {
        let e_perf = rel_err(predicted.bips, exact.bips);
        let e_temp = rel_err(predicted.peak_temperature.0, exact.max_temperature().0);
        sim_obs::counter!("surrogate.verified", 1);
        sim_obs::hist!("surrogate.error.rel_perf", e_perf);
        sim_obs::hist!("surrogate.error.rel_temp", e_temp);
        let e_fit = model.map(|m| {
            let e = rel_err(
                predicted.fit(m).value(),
                exact.application_fit(m).total().value(),
            );
            sim_obs::hist!("surrogate.error.rel_fit", e);
            e
        });
        let mut state = self.state.lock().expect("surrogate lock");
        state.observed.perf = state.observed.perf.max(e_perf);
        state.observed.temp = state.observed.temp.max(e_temp);
        if let Some(e) = e_fit {
            state.observed.fit = state.observed.fit.max(e);
        }
    }
}

/// Relative error of a prediction against the exact value.
fn rel_err(predicted: f64, exact: f64) -> f64 {
    (predicted - exact).abs() / exact.abs().max(1e-300)
}

/// Guaranteed lower bound of the exact value given prediction `x` and
/// relative error bound `e` (|x − exact| ≤ e·exact).
fn lo(x: f64, e: f64) -> f64 {
    x / (1.0 + e)
}

/// Guaranteed upper bound; infinite when the bound is vacuous (`e ≥ 1`).
pub(crate) fn hi(x: f64, e: f64) -> f64 {
    if e >= 1.0 {
        f64::INFINITY
    } else {
        x / (1.0 - e)
    }
}

/// Tops `keep` up to `k` entries using `rank` (descending) to break the
/// remainder, preferring lower indices on ties — deterministic at any
/// worker count.
fn fill_to_k(keep: &mut [bool], k: usize, rank: impl Fn(usize) -> f64) {
    let kept = keep.iter().filter(|&&b| b).count();
    if kept >= k {
        return;
    }
    let mut rest: Vec<usize> = (0..keep.len()).filter(|&i| !keep[i]).collect();
    rest.sort_by(|&a, &b| {
        rank(b)
            .partial_cmp(&rank(a))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    for &i in rest.iter().take(k - kept) {
        keep[i] = true;
    }
}

/// Promotion set for the oracle search (maximize performance subject to
/// `fit ≤ target`): every candidate that could be the exact winner given
/// the bounds, in original candidate order.
///
/// A candidate is *surely feasible* when even its upper FIT bound meets
/// the target, *possibly feasible* when its lower bound does. With at
/// least one surely feasible candidate the exact search returns the best
/// feasible point, so only possibly-feasible candidates whose upper
/// performance bound reaches the best guaranteed performance can win.
/// Otherwise the exact search may fall back to the minimum-FIT point, so
/// every candidate whose FIT interval overlaps the lowest upper bound is
/// kept too.
pub fn promote_for_oracle(
    scores: &[SurrogateScore],
    fits: &[Fit],
    target: Fit,
    bounds: &ErrorBounds,
    k: usize,
) -> Vec<usize> {
    let n = scores.len();
    let target = target.value();
    let mut keep = vec![false; n];
    let best_sure = (0..n)
        .filter(|&i| hi(fits[i].value(), bounds.fit) <= target)
        .map(|i| lo(scores[i].bips, bounds.perf))
        .fold(f64::NEG_INFINITY, f64::max);
    if best_sure.is_finite() {
        for i in 0..n {
            if lo(fits[i].value(), bounds.fit) <= target
                && hi(scores[i].bips, bounds.perf) >= best_sure
            {
                keep[i] = true;
            }
        }
    } else {
        let min_hi = fits
            .iter()
            .map(|f| hi(f.value(), bounds.fit))
            .fold(f64::INFINITY, f64::min);
        for i in 0..n {
            if lo(fits[i].value(), bounds.fit) <= target
                || lo(fits[i].value(), bounds.fit) <= min_hi
            {
                keep[i] = true;
            }
        }
    }
    fill_to_k(&mut keep, k.min(n), |i| scores[i].bips);
    (0..n).filter(|&i| keep[i]).collect()
}

/// Promotion set for the DTM search (highest frequency with peak
/// temperature ≤ `t_max`, coolest-point fallback), in original order.
pub fn promote_for_dtm(
    scores: &[SurrogateScore],
    frequencies: &[Hertz],
    t_max: Kelvin,
    bounds: &ErrorBounds,
    k: usize,
) -> Vec<usize> {
    let n = scores.len();
    let mut keep = vec![false; n];
    let f_star = (0..n)
        .filter(|&i| hi(scores[i].peak_temperature.0, bounds.temp) <= t_max.0)
        .map(|i| frequencies[i].0)
        .fold(f64::NEG_INFINITY, f64::max);
    if f_star.is_finite() {
        // Some point is surely feasible: only possibly-feasible points at
        // or above its frequency can be the exact winner.
        for i in 0..n {
            if lo(scores[i].peak_temperature.0, bounds.temp) <= t_max.0
                && frequencies[i].0 >= f_star
            {
                keep[i] = true;
            }
        }
    } else {
        // Nothing is provably feasible: keep every possible winner plus
        // every potential coolest-point fallback.
        let min_hi = scores
            .iter()
            .map(|s| hi(s.peak_temperature.0, bounds.temp))
            .fold(f64::INFINITY, f64::min);
        for i in 0..n {
            if lo(scores[i].peak_temperature.0, bounds.temp) <= t_max.0.max(min_hi) {
                keep[i] = true;
            }
        }
    }
    fill_to_k(&mut keep, k.min(n), |i| frequencies[i].0);
    (0..n).filter(|&i| keep[i]).collect()
}

/// Promotion set for the intra-application scheduler, in original order:
/// a candidate is pruned only when another candidate is faster *and*
/// lower-FIT with certainty at the whole-run level (strict dominance
/// outside both error intervals). Run-level dominance does not formally
/// imply per-interval dominance, so this prunes only far-dominated
/// points; the margins make inversions vanishingly unlikely and the
/// parity suite checks the schedules bit-for-bit.
pub fn promote_for_intra(
    scores: &[SurrogateScore],
    fits: &[Fit],
    bounds: &ErrorBounds,
    k: usize,
) -> Vec<usize> {
    let n = scores.len();
    let mut keep = vec![true; n];
    for i in 0..n {
        let dominated = (0..n).any(|j| {
            j != i
                && lo(scores[j].bips, bounds.perf) > hi(scores[i].bips, bounds.perf)
                && hi(fits[j].value(), bounds.fit) < lo(fits[i].value(), bounds.fit)
        });
        if dominated {
            keep[i] = false;
        }
    }
    fill_to_k(&mut keep, k.min(n), |i| scores[i].bips);
    (0..n).filter(|&i| keep[i]).collect()
}

/// Picks calibration anchors: the base point, the ends and middle of the
/// candidate list, and the corners of the (window, frequency) envelope —
/// the regression's extrapolation extremes. Deduplicated, order-stable,
/// ≤ 8 points; every anchor is an exact evaluation the search pays for,
/// so the set is kept as small as the fit allows.
fn select_anchors(
    candidates: &[(ArchPoint, DvsPoint)],
    base: (ArchPoint, DvsPoint),
) -> Vec<(ArchPoint, DvsPoint)> {
    fn push_unique(v: &mut Vec<(ArchPoint, DvsPoint)>, c: (ArchPoint, DvsPoint)) {
        if !v.contains(&c) {
            v.push(c);
        }
    }
    let mut anchors = vec![base];
    let n = candidates.len();
    if n == 0 {
        return anchors;
    }
    for idx in [0, n / 2, n - 1] {
        push_unique(&mut anchors, candidates[idx]);
    }
    let windows: Vec<u32> = candidates.iter().map(|c| c.0.window).collect();
    for &w in &[
        *windows.iter().min().expect("non-empty"),
        *windows.iter().max().expect("non-empty"),
    ] {
        let at_w = || candidates.iter().filter(move |c| c.0.window == w);
        if let Some(&c) = at_w().min_by(|a, b| a.1.frequency.0.total_cmp(&b.1.frequency.0)) {
            push_unique(&mut anchors, c);
        }
        if let Some(&c) = at_w().max_by(|a, b| a.1.frequency.0.total_cmp(&b.1.frequency.0)) {
            push_unique(&mut anchors, c);
        }
    }
    anchors
}

/// Harvests the per-op-class commit mix and per-structure event rates
/// from cycle-level interval statistics, using the same event numerators
/// the activity factors are built from.
fn harvest(intervals: &[IntervalStats]) -> ([f64; 11], StructureMap<f64>) {
    let mut commits = [0u64; 11];
    let mut events = StructureMap::splat(0u64);
    for iv in intervals {
        for (i, &n) in iv.counters.class_commits.iter().enumerate() {
            commits[i] += n;
        }
        events[Structure::Bpred] += iv.bpred.lookups + iv.bpred.updates;
        events[Structure::Icache] += iv.l1i.accesses;
        events[Structure::Dcache] += iv.l1d.accesses;
        events[Structure::IntAlu] += iv.counters.int_busy;
        events[Structure::Fpu] += iv.counters.fp_busy;
        events[Structure::IntRegFile] += iv.int_regfile.reads + iv.int_regfile.writes;
        events[Structure::FpRegFile] += iv.fp_regfile.reads + iv.fp_regfile.writes;
        events[Structure::Window] +=
            iv.counters.window_writes + iv.counters.window_wakeups + iv.counters.window_issues;
        events[Structure::Lsq] += iv.counters.lsq_inserts + iv.counters.lsq_searches;
    }
    let instructions = intervals
        .iter()
        .map(|iv| iv.instructions)
        .sum::<u64>()
        .max(1) as f64;
    let mut mix = [0.0; 11];
    for (m, &n) in mix.iter_mut().zip(&commits) {
        *m = n as f64 / instructions;
    }
    let epi = StructureMap::from_fn(|s| events[s] as f64 / instructions);
    (mix, epi)
}

/// Solves the ridge-regularized normal equations `(XᵀX + λI)c = Xᵀy` by
/// Gaussian elimination with partial pivoting.
fn solve_normal_equations(rows: &[[f64; NFEAT]], y: &[f64]) -> [f64; NFEAT] {
    let mut a = [[0.0f64; NFEAT]; NFEAT];
    let mut b = [0.0f64; NFEAT];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..NFEAT {
            b[i] += row[i] * yi;
            for j in 0..NFEAT {
                a[i][j] += row[i] * row[j];
            }
        }
    }
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += RIDGE;
    }
    for col in 0..NFEAT {
        let pivot = (col..NFEAT)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        if diag.abs() < 1e-30 {
            continue;
        }
        let pivot_row = a[col];
        for row in col + 1..NFEAT {
            let factor = a[row][col] / diag;
            for (entry, &p) in a[row][col..].iter_mut().zip(&pivot_row[col..]) {
                *entry -= factor * p;
            }
            b[row] -= factor * b[col];
        }
    }
    let mut c = [0.0f64; NFEAT];
    for row in (0..NFEAT).rev() {
        let mut sum = b[row];
        for k in row + 1..NFEAT {
            sum -= a[row][k] * c[k];
        }
        c[row] = if a[row][row].abs() < 1e-30 {
            0.0
        } else {
            sum / a[row][row]
        };
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dvs::frequency_grid;
    use crate::evaluator::EvalParams;
    use crate::space::Strategy;
    use ramp::{FailureParams, QualificationPoint};
    use sim_common::Floorplan;

    fn fake_score(bips: f64, peak: f64) -> SurrogateScore {
        SurrogateScore {
            bips,
            peak_temperature: Kelvin(peak),
            conditions: StructureMap::from_fn(|_| StructureConditions {
                temperature: Kelvin(peak),
                vdd: sim_common::Volts(1.0),
                frequency: Hertz::from_ghz(4.0),
                activity: 0.3,
                powered_fraction: 1.0,
            }),
        }
    }

    #[test]
    fn params_validate() {
        assert!(SurrogateParams::default().validate().is_ok());
        assert!(SurrogateParams {
            top_k: 0,
            ..SurrogateParams::default()
        }
        .validate()
        .is_err());
        assert!(SurrogateParams {
            calibration_apps: 0,
            ..SurrogateParams::default()
        }
        .validate()
        .is_err());
    }

    #[test]
    fn least_squares_recovers_linear_model() {
        // y = 2 + 3·x1 − x3 exactly.
        let rows: Vec<[f64; NFEAT]> = (0..8)
            .map(|i| {
                let x1 = i as f64 * 0.5;
                let x3 = (i % 3) as f64;
                [1.0, x1, 0.25 * i as f64, x3, 0.1, (i % 2) as f64]
            })
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| 2.0 + 3.0 * r[1] - r[3]).collect();
        let c = solve_normal_equations(&rows, &y);
        for (row, want) in rows.iter().zip(&y) {
            let got: f64 = c.iter().zip(row).map(|(a, b)| a * b).sum();
            assert!((got - want).abs() < 1e-6, "{got} vs {want}");
        }
    }

    #[test]
    fn oracle_promotion_keeps_every_possible_winner() {
        // Candidate 1 is surely feasible with the best performance;
        // candidate 0 is possibly feasible and possibly faster, so it
        // must be kept; candidate 2 is surely infeasible and far slower.
        let scores = vec![
            fake_score(10.0, 360.0),
            fake_score(9.8, 350.0),
            fake_score(2.0, 420.0),
        ];
        let fits = vec![Fit(105.0), Fit(80.0), Fit(500.0)];
        let bounds = ErrorBounds {
            perf: 0.05,
            fit: 0.10,
            temp: 0.05,
        };
        let kept = promote_for_oracle(&scores, &fits, Fit(100.0), &bounds, 1);
        assert!(kept.contains(&0), "possible winner pruned");
        assert!(kept.contains(&1), "sure winner pruned");
    }

    #[test]
    fn oracle_promotion_keeps_min_fit_fallback_when_nothing_feasible() {
        let scores = vec![fake_score(10.0, 400.0), fake_score(8.0, 390.0)];
        let fits = vec![Fit(300.0), Fit(280.0)];
        let bounds = ErrorBounds {
            perf: 0.05,
            fit: 0.05,
            temp: 0.05,
        };
        // Target far below anything: the exact search falls back to the
        // minimum-FIT candidate, which the bounds cannot separate.
        let kept = promote_for_oracle(&scores, &fits, Fit(1.0), &bounds, 1);
        assert!(kept.contains(&1));
    }

    #[test]
    fn vacuous_bounds_promote_everything() {
        let scores = vec![fake_score(10.0, 400.0), fake_score(8.0, 390.0)];
        let fits = vec![Fit(90.0), Fit(80.0)];
        let bounds = ErrorBounds {
            perf: 2.0,
            fit: 2.0,
            temp: 2.0,
        };
        let kept = promote_for_oracle(&scores, &fits, Fit(100.0), &bounds, 1);
        assert_eq!(kept, vec![0, 1]);
    }

    #[test]
    fn dtm_promotion_keeps_fastest_feasible_and_possible_overtakers() {
        let scores = vec![
            fake_score(8.0, 340.0),  // 3 GHz, surely cool
            fake_score(9.0, 368.0),  // 4 GHz, possibly cool
            fake_score(10.0, 420.0), // 5 GHz, surely hot
        ];
        let freqs = vec![
            Hertz::from_ghz(3.0),
            Hertz::from_ghz(4.0),
            Hertz::from_ghz(5.0),
        ];
        let bounds = ErrorBounds {
            perf: 0.05,
            fit: f64::INFINITY,
            temp: 0.03,
        };
        let kept = promote_for_dtm(&scores, &freqs, Kelvin(370.0), &bounds, 1);
        assert!(kept.contains(&0), "surely feasible max-frequency point");
        assert!(kept.contains(&1), "possible overtaker pruned");
        assert!(!kept.contains(&2), "surely-hot point should be pruned");
    }

    #[test]
    fn k_floor_tops_up_promotions() {
        let scores: Vec<SurrogateScore> =
            (0..6).map(|i| fake_score(10.0 - i as f64, 430.0)).collect();
        let freqs: Vec<Hertz> = (0..6)
            .map(|i| Hertz::from_ghz(5.0 - i as f64 * 0.4))
            .collect();
        let bounds = ErrorBounds {
            perf: 0.02,
            fit: f64::INFINITY,
            temp: 0.02,
        };
        // Everything is surely hot, so only the coolest fallback set is
        // provably needed — the floor still promotes 4.
        let kept = promote_for_dtm(&scores, &freqs, Kelvin(300.0), &bounds, 4);
        assert!(kept.len() >= 4);
    }

    #[test]
    fn intra_promotion_never_prunes_mutually_nondominated_points() {
        // Classic DVS tradeoff: faster is always higher-FIT, so nothing
        // dominates anything and nothing may be pruned.
        let scores: Vec<SurrogateScore> =
            (0..5).map(|i| fake_score(6.0 + i as f64, 350.0)).collect();
        let fits: Vec<Fit> = (0..5).map(|i| Fit(50.0 + 20.0 * i as f64)).collect();
        let bounds = ErrorBounds {
            perf: 0.05,
            fit: 0.05,
            temp: 0.05,
        };
        let kept = promote_for_intra(&scores, &fits, &bounds, 1);
        assert_eq!(kept, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn intra_promotion_prunes_far_dominated_points() {
        let scores = vec![fake_score(10.0, 350.0), fake_score(2.0, 380.0)];
        let fits = vec![Fit(50.0), Fit(200.0)];
        let bounds = ErrorBounds {
            perf: 0.05,
            fit: 0.05,
            temp: 0.05,
        };
        let kept = promote_for_intra(&scores, &fits, &bounds, 1);
        assert_eq!(kept, vec![0]);
    }

    #[test]
    fn anchors_span_the_grid_and_include_base() {
        let candidates = Strategy::ArchDvs.candidates(0.25);
        let base = (ArchPoint::most_aggressive(), DvsPoint::base());
        let anchors = select_anchors(&candidates, base);
        assert!(anchors.contains(&base));
        assert!(anchors.len() <= 10);
        let windows: Vec<u32> = anchors.iter().map(|a| a.0.window).collect();
        assert!(windows.contains(&128));
        assert!(windows.contains(&16));
        // Dedup holds.
        let mut seen = Vec::new();
        for a in &anchors {
            assert!(!seen.contains(a), "duplicate anchor");
            seen.push(*a);
        }
    }

    #[test]
    fn empty_candidate_set_yields_base_anchor_only() {
        let base = (ArchPoint::most_aggressive(), DvsPoint::base());
        assert_eq!(select_anchors(&[], base), vec![base]);
    }

    #[test]
    fn calibrated_table_predicts_anchor_cpi_closely() {
        let engine = BatchEngine::with_workers(
            Evaluator::ibm_65nm(EvalParams::quick()).expect("evaluator"),
            1,
        );
        let surrogate = Surrogate::new(SurrogateParams::default()).expect("surrogate");
        let base = (ArchPoint::most_aggressive(), DvsPoint::base());
        let candidates: Vec<_> = frequency_grid(0.5)
            .into_iter()
            .map(|d| (ArchPoint::most_aggressive(), d))
            .collect();
        let table = surrogate
            .table_for(&engine, App::Gzip, &candidates, base)
            .expect("table");
        assert!(surrogate.prune_active());
        assert_eq!(surrogate.calibrated_apps(), 1);
        // Mix is a probability distribution over op classes.
        let total: f64 = table.mix().iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "mix sums to {total}");
        // At the anchors themselves the regression must be tight.
        for &(a, d) in table.anchors() {
            let config = a.apply(engine.base_config(), d).expect("config");
            let ev = engine.evaluation(App::Gzip, a, d).expect("cached");
            let score = table.score(engine.evaluator(), &config);
            let err = rel_err(score.bips, ev.bips);
            assert!(
                err < 0.25,
                "anchor {a} @ {:.2} GHz err {err}",
                d.frequency.to_ghz()
            );
        }
        // Bounds reflect the anchors plus the floor.
        let model = ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(370.0), 0.4),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .expect("model");
        let bounds = surrogate
            .bounds(&engine, App::Gzip, &table, Some(&model))
            .expect("bounds");
        assert!(bounds.perf >= EPS_FLOOR);
        assert!(bounds.fit >= EPS_FLOOR);
        assert!(bounds.temp >= EPS_FLOOR);
        // Second lookup is a pure cache hit returning the same table.
        let again = surrogate
            .table_for(&engine, App::Gzip, &candidates, base)
            .expect("table");
        assert!(Arc::ptr_eq(&table, &again));
    }

    #[test]
    fn verification_grows_the_error_pool() {
        let surrogate = Surrogate::new(SurrogateParams::default()).expect("surrogate");
        let engine = BatchEngine::with_workers(
            Evaluator::ibm_65nm(EvalParams::quick()).expect("evaluator"),
            1,
        );
        let base = (ArchPoint::most_aggressive(), DvsPoint::base());
        let ev = engine.evaluation(App::Gzip, base.0, base.1).expect("eval");
        // A prediction that is off by 50% must widen the perf bound past
        // the floor for all later searches.
        let bad = fake_score(ev.bips * 1.5, ev.max_temperature().0);
        surrogate.record_verification(&bad, &ev, None);
        let table = surrogate
            .table_for(&engine, App::Gzip, &[], base)
            .expect("table");
        let bounds = surrogate
            .bounds(&engine, App::Gzip, &table, None)
            .expect("bounds");
        assert!(
            bounds.perf >= SAFETY * 0.5 - 1e-9,
            "pool ignored: {}",
            bounds.perf
        );
    }
}
