//! `drm`: Dynamic Reliability Management (§4–§7 of the ISCA-04 paper).
//!
//! DRM lets a processor qualified for reliability at a chosen operating
//! point — rather than the worst case — adapt at runtime so every workload
//! still meets the lifetime FIT target:
//!
//! * on an **over-designed** processor (high `T_qual`), applications run
//!   below the qualification conditions, leaving reliability headroom that
//!   DRM converts into performance (e.g. overclocking via DVS);
//! * on an **under-designed** processor (low `T_qual`, cheaper to
//!   qualify), DRM throttles hot applications just enough to stay within
//!   the FIT budget.
//!
//! This crate assembles the full stack (synthetic workloads → `sim-cpu`
//! timing → `sim-power` → `sim-thermal` → `ramp` reliability) and provides:
//!
//! * [`Evaluator`] — the §6.3 methodology: two-pass heat-sink
//!   initialization, leakage/temperature fixed point, per-interval
//!   operating conditions;
//! * [`ArchPoint`] / [`DvsPoint`] / [`Strategy`] — the §6.1 adaptation
//!   space (18 microarchitectural configurations, 2.5–5 GHz DVS with the
//!   Pentium-M-extrapolated V(f));
//! * [`BatchEngine`] — a std-only scoped-thread worker pool that
//!   pre-evaluates whole candidate sweeps in parallel, filling the shared
//!   thread-safe [`EvalCache`] keyed on the full operating point;
//! * [`Oracle`] — the §5 oracular DRM study with shared-cache evaluation
//!   (all methods take `&self`, so one oracle serves many threads);
//! * [`dtm`] — dynamic thermal management and the §7.3 DRM-vs-DTM
//!   comparison;
//! * [`controller`] — a reactive interval-based DRM controller (the
//!   paper's "future work": an actual control algorithm rather than an
//!   oracle).
//!
//! # Examples
//!
//! ```no_run
//! use drm::{EvalParams, Evaluator, Oracle, Strategy};
//! use ramp::{FailureParams, QualificationPoint, ReliabilityModel};
//! use sim_common::{Floorplan, Kelvin};
//! use workload::App;
//!
//! let oracle = Oracle::new(Evaluator::ibm_65nm(EvalParams::quick())?);
//! let model = ReliabilityModel::qualify(
//!     FailureParams::ramp_65nm(),
//!     &QualificationPoint::at_temperature(Kelvin(370.0), 0.35),
//!     &Floorplan::r10000_65nm().area_shares(),
//!     4000.0,
//! )?;
//! let choice = oracle.best(App::Bzip2, Strategy::ArchDvs, &model, 0.5)?;
//! println!(
//!     "bzip2 @ 370 K: {} + {:.2} GHz → {:.2}x",
//!     choice.arch,
//!     choice.dvs.frequency.to_ghz(),
//!     choice.relative_performance
//! );
//! # Ok::<(), sim_common::SimError>(())
//! ```

pub mod batch;
pub mod controller;
pub mod dtm;
pub mod dvs;
pub mod evaluator;
pub mod fleet;
pub mod intra;
pub mod mix;
pub mod oracle;
pub mod scaling;
pub mod sensors;
pub mod slice;
pub mod space;
pub mod store;
pub mod surrogate;

pub use batch::{
    default_workers, BatchEngine, EvalCache, EvalKey, SweepSummary, TimingCache, TimingCacheKey,
};
pub use controller::{ControlTrace, ControllerParams, ReactiveDrm};
pub use dtm::{compare_drm_dtm, dtm_best_dvs, DrmDtmPoint, DtmChoice};
pub use dvs::{frequency_grid, voltage_for_frequency, DvsPoint, DvsRange};
pub use evaluator::{EvalParams, EvalStats, Evaluation, Evaluator, IntervalProfile, TimingRun};
pub use fleet::{
    fleet_partial, fleet_summarize, run_fleet, FleetConfig, FleetPartial, FleetStats, FleetSummary,
    VariationParams, DIE_BATCH,
};
pub use intra::{intra_app_best, IntraAppChoice};
pub use mix::WorkloadMix;
pub use oracle::{DrmChoice, Oracle};
pub use scaling::{scaling_study, ScalingRow, TechnologyNode};
pub use sensors::{SensorBank, SensorParams};
pub use slice::{fnv1a64, slice_fingerprint, slice_lengths, CheckpointStore, SliceParams};
pub use space::{ArchPoint, Strategy};
pub use store::{EvalStore, StoreRecord, STORE_EXTENSION, STORE_HEADER};
pub use surrogate::{AppTable, ErrorBounds, Surrogate, SurrogateParams, SurrogateScore};
