//! Dynamic thermal management (DTM) and its comparison with DRM (§7.3).
//!
//! DTM picks the highest frequency whose peak on-chip temperature stays at
//! or below the thermal design point `T_max`; DRM picks the highest
//! frequency whose application FIT stays within the reliability target for
//! a processor qualified at `T_qual`. The paper's Figure 4 shows that
//! neither subsumes the other: at high temperature settings DTM's
//! frequency violates the reliability requirement, at low settings DRM's
//! frequency violates the thermal limit, and the crossover moves with the
//! application.

use ramp::{Fit, ReliabilityModel};
use sim_common::{Kelvin, SimError};
use workload::App;

use crate::dvs::{frequency_grid, DvsPoint};
use crate::oracle::Oracle;
use crate::space::{ArchPoint, Strategy};
use crate::surrogate::{promote_for_dtm, SurrogateScore};

/// The frequency a DTM policy settles on for one application.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DtmChoice {
    /// Chosen DVS point (on the most aggressive microarchitecture).
    pub dvs: DvsPoint,
    /// Peak structure temperature at that point.
    pub max_temperature: Kelvin,
    /// True when the thermal constraint is met; when even the lowest
    /// frequency exceeds `T_max`, the lowest frequency is returned with
    /// `feasible = false`.
    pub feasible: bool,
}

/// DTM via DVS: the highest frequency keeping the peak temperature at or
/// below `t_max` (§7.3, curve DVS-Temp).
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn dtm_best_dvs(
    oracle: &Oracle,
    app: App,
    t_max: Kelvin,
    dvs_step_ghz: f64,
) -> Result<DtmChoice, SimError> {
    let arch = ArchPoint::most_aggressive();
    let grid = frequency_grid(dvs_step_ghz);
    // Phase 1 (when the surrogate is enabled): score the grid
    // analytically and keep only frequencies that could be the exact
    // winner under the measured temperature error bound. The selection
    // loop below runs over exact evaluations either way.
    let (selected, verify): (Vec<DvsPoint>, Option<Vec<SurrogateScore>>) = match oracle.surrogate()
    {
        Some(surrogate) if !grid.is_empty() => {
            let engine = oracle.engine();
            let candidates: Vec<_> = grid.iter().map(|&d| (arch, d)).collect();
            let base = (arch, DvsPoint::base());
            let table = surrogate.table_for(engine, app, &candidates, base)?;
            let bounds = surrogate.bounds(engine, app, &table, None)?;
            let mut scores = Vec::with_capacity(grid.len());
            for &dvs in &grid {
                let config = arch.apply(engine.base_config(), dvs)?;
                scores.push(table.score(engine.evaluator(), &config));
            }
            let promoted = if surrogate.prune_active() {
                let freqs: Vec<_> = grid.iter().map(|d| d.frequency).collect();
                promote_for_dtm(&scores, &freqs, t_max, &bounds, surrogate.k_floor())
            } else {
                (0..grid.len()).collect()
            };
            sim_obs::counter!("surrogate.promoted", promoted.len() as u64);
            (
                promoted.iter().map(|&i| grid[i]).collect(),
                Some(promoted.into_iter().map(|i| scores[i].clone()).collect()),
            )
        }
        _ => (grid, None),
    };
    // Pre-evaluate the (possibly pruned) grid in one parallel batch pass.
    let jobs: Vec<_> = selected.iter().map(|&dvs| (app, arch, dvs)).collect();
    oracle.prefetch(&jobs)?;
    let mut best: Option<DtmChoice> = None;
    let mut coolest: Option<DtmChoice> = None;
    for (k, &dvs) in selected.iter().enumerate() {
        let ev = oracle.evaluation(app, arch, dvs)?;
        if let Some(scores) = &verify {
            if let Some(surrogate) = oracle.surrogate() {
                surrogate.record_verification(&scores[k], &ev, None);
            }
        }
        let peak = ev.max_temperature();
        let choice = DtmChoice {
            dvs,
            max_temperature: peak,
            feasible: peak <= t_max,
        };
        if choice.feasible {
            let better = best
                .as_ref()
                .is_none_or(|b| choice.dvs.frequency > b.dvs.frequency);
            if better {
                best = Some(choice);
            }
        }
        let cooler = coolest
            .as_ref()
            .is_none_or(|c| choice.max_temperature < c.max_temperature);
        if cooler {
            coolest = Some(choice);
        }
    }
    best.or(coolest)
        .ok_or_else(|| SimError::infeasible("empty DVS grid"))
}

/// One row of the Figure 4 comparison at a single temperature setting.
#[derive(Debug, Clone, PartialEq)]
pub struct DrmDtmPoint {
    /// The temperature used as both `T_qual` (DRM) and `T_max` (DTM).
    pub temperature: Kelvin,
    /// Frequency chosen by DVS-for-DRM (GHz).
    pub drm_ghz: f64,
    /// Frequency chosen by DVS-for-DTM (GHz).
    pub dtm_ghz: f64,
    /// Peak temperature at the DRM-chosen frequency.
    pub drm_peak_temperature: Kelvin,
    /// Application FIT at the DTM-chosen frequency, scored against the
    /// DRM model.
    pub dtm_fit: Fit,
    /// True when the DRM choice exceeds the thermal limit `T_max` — DRM
    /// does not subsume DTM.
    pub drm_violates_thermal: bool,
    /// True when the DTM choice exceeds the reliability target — DTM does
    /// not subsume DRM.
    pub dtm_violates_reliability: bool,
}

/// Computes one Figure 4 point: DVS-Rel vs DVS-Temp at `temperature` for
/// `app`, with `model` qualified at that temperature.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn compare_drm_dtm(
    oracle: &Oracle,
    app: App,
    temperature: Kelvin,
    model: &ReliabilityModel,
    dvs_step_ghz: f64,
) -> Result<DrmDtmPoint, SimError> {
    let drm = oracle.best(app, Strategy::Dvs, model, dvs_step_ghz)?;
    let dtm = dtm_best_dvs(oracle, app, temperature, dvs_step_ghz)?;
    let arch = ArchPoint::most_aggressive();
    let drm_peak = oracle.evaluation(app, arch, drm.dvs)?.max_temperature();
    let dtm_fit = oracle
        .evaluation(app, arch, dtm.dvs)?
        .application_fit(model)
        .total();
    Ok(DrmDtmPoint {
        temperature,
        drm_ghz: drm.dvs.frequency.to_ghz(),
        dtm_ghz: dtm.dvs.frequency.to_ghz(),
        drm_peak_temperature: drm_peak,
        dtm_fit,
        drm_violates_thermal: drm_peak > temperature,
        dtm_violates_reliability: dtm_fit > model.target_fit(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::{EvalParams, Evaluator};
    use ramp::{FailureParams, QualificationPoint};
    use sim_common::Floorplan;

    fn oracle() -> Oracle {
        Oracle::new(Evaluator::ibm_65nm(EvalParams::quick()).unwrap())
    }

    fn model(t_qual: f64, alpha: f64) -> ReliabilityModel {
        ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(t_qual), alpha),
            &Floorplan::r10000_65nm().area_shares(),
            4000.0,
        )
        .unwrap()
    }

    #[test]
    fn dtm_frequency_is_monotonic_in_t_max() {
        let o = oracle();
        let f_low = dtm_best_dvs(&o, App::Bzip2, Kelvin(345.0), 0.5).unwrap();
        let f_high = dtm_best_dvs(&o, App::Bzip2, Kelvin(400.0), 0.5).unwrap();
        assert!(f_high.dvs.frequency >= f_low.dvs.frequency);
    }

    #[test]
    fn dtm_respects_thermal_limit_when_feasible() {
        let o = oracle();
        let choice = dtm_best_dvs(&o, App::MpgDec, Kelvin(380.0), 0.5).unwrap();
        if choice.feasible {
            assert!(choice.max_temperature <= Kelvin(380.0));
        }
    }

    #[test]
    fn infeasible_thermal_limit_falls_back_to_coolest() {
        let o = oracle();
        // 320 K is barely above ambient: unattainable at any frequency.
        let choice = dtm_best_dvs(&o, App::MpgDec, Kelvin(320.0), 0.5).unwrap();
        assert!(!choice.feasible);
        assert!(
            (choice.dvs.frequency.to_ghz() - 2.5).abs() < 1e-9,
            "fallback must be the slowest grid point"
        );
    }

    #[test]
    fn comparison_reports_consistent_flags() {
        let o = oracle();
        let t = Kelvin(360.0);
        let m = model(360.0, 0.35);
        let point = compare_drm_dtm(&o, App::Gzip, t, &m, 0.5).unwrap();
        assert_eq!(point.drm_violates_thermal, point.drm_peak_temperature > t);
        assert_eq!(
            point.dtm_violates_reliability,
            point.dtm_fit > m.target_fit()
        );
    }
}
