//! Parallel batch evaluation with a shared, thread-safe cache.
//!
//! The paper's methodology is sweeps: oracular DRM evaluates every
//! (application × [`ArchPoint`] × [`DvsPoint`]) candidate, and every
//! figure reproduction re-runs the full timing → power → thermal pipeline
//! per point. Evaluations are independent of the qualification point
//! (§6.3), so the expensive pipeline runs once per operating point and
//! the cheap FIT scoring happens per [`ReliabilityModel`] afterwards —
//! which makes the pipeline embarrassingly parallel.
//!
//! [`BatchEngine`] takes a work list of (App, ArchPoint, DvsPoint) jobs,
//! deduplicates it against the shared [`EvalCache`], and fans the misses
//! out across a scoped-thread worker pool (`std::thread::scope`, one
//! [`Evaluator`] clone per worker — std only, no external dependencies).
//! Results land in the cache keyed on the *full* operating point
//! ([`EvalKey`] carries both frequency and voltage in fixed-point form,
//! so same-frequency/different-voltage points can never alias).
//!
//! [`ReliabilityModel`]: ramp::ReliabilityModel

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sim_common::SimError;
use sim_cpu::{CoreConfig, TimingKey};
use workload::App;

use crate::dvs::DvsPoint;
use crate::evaluator::{Evaluation, Evaluator, TimingRun};
use crate::space::ArchPoint;
use crate::store::EvalStore;

/// Number of independently locked cache shards. Shard contention is the
/// only synchronization between workers, and evaluations take O(100 ms)
/// against O(100 ns) map operations, so a modest constant suffices.
const SHARDS: usize = 16;

/// Cache key for one (application, operating point) evaluation.
///
/// The operating point is the *full* (ArchPoint, frequency, voltage)
/// triple. Frequency and voltage are stored in fixed-point form (kHz and
/// microvolts) because [`DvsPoint`] carries `f64` fields that cannot be
/// hashed directly; at those resolutions every grid the sweeps use maps
/// to distinct keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EvalKey {
    /// The workload.
    pub app: App,
    /// The microarchitectural adaptation point.
    pub arch: ArchPoint,
    /// Clock frequency in kHz.
    pub freq_khz: u64,
    /// Supply voltage in microvolts.
    pub vdd_uv: u64,
}

impl EvalKey {
    /// Builds the key for `app` at (`arch`, `dvs`).
    #[must_use]
    pub fn new(app: App, arch: ArchPoint, dvs: DvsPoint) -> EvalKey {
        EvalKey {
            app,
            arch,
            freq_khz: (dvs.frequency.to_ghz() * 1e6).round() as u64,
            vdd_uv: (dvs.vdd.0 * 1e6).round() as u64,
        }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// Cache key for one cycle-level timing run: the workload plus the
/// timing-relevant projection of the configuration.
///
/// Timing depends on a [`CoreConfig`] only through its
/// [`timing_key`](CoreConfig::timing_key) — never the supply voltage —
/// so every voltage of a DVS grid at one frequency maps to the same
/// `TimingCacheKey` and shares one cached [`TimingRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingCacheKey {
    /// The workload.
    pub app: App,
    /// The timing-relevant configuration fields (everything except vdd).
    pub key: TimingKey,
}

impl TimingCacheKey {
    /// Builds the key for `app` on `config`.
    #[must_use]
    pub fn new(app: App, config: &CoreConfig) -> TimingCacheKey {
        TimingCacheKey {
            app,
            key: config.timing_key(),
        }
    }

    fn shard(&self) -> usize {
        let mut h = DefaultHasher::new();
        self.hash(&mut h);
        (h.finish() as usize) % SHARDS
    }
}

/// A sharded, thread-safe cache of cycle-level timing runs, shared by
/// every worker alongside the [`EvalCache`].
///
/// The timing stage dominates evaluation cost (cycle simulation vs. a
/// handful of prefactored thermal solves), so serving it from here turns
/// an N-voltage DVS grid into one timing run plus N cheap power/thermal
/// passes.
#[derive(Debug, Default)]
pub struct TimingCache {
    shards: [Mutex<HashMap<TimingCacheKey, Arc<TimingRun>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

impl TimingCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> TimingCache {
        TimingCache::default()
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&self, key: &TimingCacheKey) -> Option<Arc<TimingRun>> {
        let found = self.shards[key.shard()]
            .lock()
            .expect("timing cache shard lock poisoned")
            .get(key)
            .cloned();
        match found {
            Some(_) => {
                sim_obs::counter!("drm.timing_cache.hit", 1);
                self.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                sim_obs::counter!("drm.timing_cache.miss", 1);
                self.misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Inserts a timing run, returning the cached [`Arc`]. First insert
    /// wins on a race (timing is deterministic, so both are equal).
    pub fn insert(&self, key: TimingCacheKey, run: TimingRun) -> Arc<TimingRun> {
        self.shards[key.shard()]
            .lock()
            .expect("timing cache shard lock poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(run))
            .clone()
    }

    /// Number of cached timing runs.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("timing cache shard lock poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache — timing runs *not* re-simulated.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required a fresh cycle simulation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

/// A sharded, thread-safe evaluation cache shared by every worker (and
/// every thread holding a reference to the owning [`BatchEngine`] /
/// `Oracle`).
///
/// Completed evaluations are stored behind [`Arc`] so lookups hand out
/// cheap clones instead of holding a shard lock across use.
#[derive(Debug, Default)]
pub struct EvalCache {
    shards: [Mutex<HashMap<EvalKey, Arc<Evaluation>>>; SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
    /// Summed single-evaluation wall time of every insert (the
    /// sequential-equivalent cost of the work done so far).
    busy_ns: AtomicU64,
    /// Elapsed wall time spent inside batch passes and cache-miss
    /// evaluations.
    wall_ns: AtomicU64,
}

impl EvalCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> EvalCache {
        EvalCache::default()
    }

    /// Looks up `key`, counting a hit or a miss.
    pub fn get(&self, key: &EvalKey) -> Option<Arc<Evaluation>> {
        let found = self.shards[key.shard()]
            .lock()
            .expect("cache shard lock poisoned")
            .get(key)
            .cloned();
        match found {
            Some(_) => {
                sim_obs::counter!("drm.cache.hits", 1);
                self.hits.fetch_add(1, Ordering::Relaxed)
            }
            None => {
                sim_obs::counter!("drm.cache.misses", 1);
                self.misses.fetch_add(1, Ordering::Relaxed)
            }
        };
        found
    }

    /// Peeks at `key` without touching the hit/miss counters (used for
    /// dedup, where a hit is not a served lookup).
    pub fn peek(&self, key: &EvalKey) -> Option<Arc<Evaluation>> {
        self.shards[key.shard()]
            .lock()
            .expect("cache shard lock poisoned")
            .get(key)
            .cloned()
    }

    /// Inserts an evaluation, returning the cached [`Arc`]. If another
    /// worker raced us to the same key, the first insert wins and its
    /// value is returned (evaluations are deterministic, so both values
    /// are equal anyway).
    pub fn insert(&self, key: EvalKey, ev: Evaluation) -> Arc<Evaluation> {
        self.busy_ns
            .fetch_add(ev.stats.wall().as_nanos() as u64, Ordering::Relaxed);
        self.shards[key.shard()]
            .lock()
            .expect("cache shard lock poisoned")
            .entry(key)
            .or_insert_with(|| Arc::new(ev))
            .clone()
    }

    /// Number of cached evaluations.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard lock poisoned").len())
            .sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that required (or will require) a fresh evaluation.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Summed per-evaluation wall time across all inserts.
    pub fn busy(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed))
    }

    /// Elapsed wall time recorded by batch passes and cache-miss
    /// evaluations.
    pub fn wall(&self) -> Duration {
        Duration::from_nanos(self.wall_ns.load(Ordering::Relaxed))
    }

    fn add_wall(&self, d: Duration) {
        self.wall_ns
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Aggregate statistics for sweeps run through a [`BatchEngine`],
/// printable as the one-line sweep summary every driver emits.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepSummary {
    /// Worker threads used for parallel passes.
    pub workers: usize,
    /// Evaluations performed (cache misses that ran the pipeline).
    pub evaluations: u64,
    /// Lookups served straight from the cache.
    pub cache_hits: u64,
    /// Cycle-level timing simulations actually run (timing-cache misses).
    pub timing_runs: u64,
    /// Evaluations that reused a cached timing run instead of
    /// re-simulating (the voltage-invariance dividend).
    pub timing_reuses: u64,
    /// Wall time spent inside batch passes and cache-miss evaluations.
    pub wall: Duration,
    /// Summed single-evaluation wall time — the sequential-equivalent
    /// cost, so `busy / wall` estimates the realized speedup.
    pub busy: Duration,
}

impl SweepSummary {
    /// Folds another pass's summary into this one: counters add, wall
    /// and busy times add, and the worker count takes the maximum.
    ///
    /// Folding per-unit summaries in a deterministic order (candidate
    /// index, shard index) is how the cluster coordinator reassembles a
    /// sweep bit-identical to the single-process pass: every counter is
    /// an exact sum, so the fold order only matters for reproducibility
    /// of the (diagnostic, nondeterministic) wall/busy durations.
    pub fn merge(&mut self, other: &SweepSummary) {
        self.workers = self.workers.max(other.workers);
        self.evaluations += other.evaluations;
        self.cache_hits += other.cache_hits;
        self.timing_runs += other.timing_runs;
        self.timing_reuses += other.timing_reuses;
        self.wall += other.wall;
        self.busy += other.busy;
    }

    /// Evaluations per wall-clock second.
    #[must_use]
    pub fn evals_per_second(&self) -> f64 {
        if self.wall.is_zero() {
            0.0
        } else {
            self.evaluations as f64 / self.wall.as_secs_f64()
        }
    }

    /// Realized parallel speedup: summed per-evaluation wall time over
    /// elapsed wall time (1.0 = sequential).
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.wall.is_zero() {
            1.0
        } else {
            self.busy.as_secs_f64() / self.wall.as_secs_f64()
        }
    }
}

impl fmt::Display for SweepSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sweep: {} jobs | {} evals, {} cache hits | timing {} runs, {} reused | {:.1} evals/s | wall {:.2} s | speedup {:.2}x",
            self.workers,
            self.evaluations,
            self.cache_hits,
            self.timing_runs,
            self.timing_reuses,
            self.evals_per_second(),
            self.wall.as_secs_f64(),
            self.speedup(),
        )
    }
}

/// Returns the default worker count: `available_parallelism()`, or 1
/// when the runtime cannot tell.
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The parallel batch-evaluation engine: a scoped-thread worker pool
/// over a shared [`EvalCache`].
///
/// Cloning the engine is cheap and shares the cache (and its counters),
/// which is how one warm cache serves many sweep drivers.
#[derive(Debug, Clone)]
pub struct BatchEngine {
    evaluator: Evaluator,
    base_config: CoreConfig,
    cache: Arc<EvalCache>,
    timing: Arc<TimingCache>,
    workers: usize,
    store: Option<Arc<EvalStore>>,
}

impl BatchEngine {
    /// An engine over `evaluator` with [`default_workers`] workers.
    #[must_use]
    pub fn new(evaluator: Evaluator) -> BatchEngine {
        BatchEngine::with_workers(evaluator, default_workers())
    }

    /// An engine with an explicit worker count (`0` means the default).
    #[must_use]
    pub fn with_workers(evaluator: Evaluator, workers: usize) -> BatchEngine {
        BatchEngine {
            evaluator,
            base_config: CoreConfig::base(),
            cache: Arc::new(EvalCache::new()),
            timing: Arc::new(TimingCache::new()),
            workers: if workers == 0 {
                default_workers()
            } else {
                workers
            },
            store: None,
        }
    }

    /// Replaces the base configuration adaptation points are applied to
    /// (default: [`CoreConfig::base`]). Scenario-driven engines anchor the
    /// adaptation space to the scenario's processor instead.
    #[must_use]
    pub fn with_base_config(mut self, base_config: CoreConfig) -> BatchEngine {
        self.base_config = base_config;
        self
    }

    /// Attaches a persistent evaluation store: every record loaded from
    /// disk pre-warms the shared [`TimingCache`] (so already-stored
    /// points cost zero timing runs), and every fresh timing run is
    /// appended write-through. Call *after* [`with_base_config`]
    /// (BatchEngine::with_base_config): records are reconstructed
    /// against the engine's base configuration, and a record whose
    /// adaptation point does not apply to it (a foreign store) is
    /// skipped — the store is a cache, not a source of truth.
    ///
    /// [`with_base_config`]: BatchEngine::with_base_config
    #[must_use]
    pub fn with_store(mut self, store: EvalStore) -> BatchEngine {
        let mut warmed = 0u64;
        for rec in store.take_records() {
            let Ok(config) = rec.key.arch.apply(&self.base_config, rec.dvs()) else {
                continue;
            };
            self.timing
                .insert(TimingCacheKey::new(rec.key.app, &config), rec.run);
            warmed += 1;
        }
        sim_obs::counter!("drm.store.prewarmed", warmed);
        sim_obs::log_debug!(
            "drm.store",
            "pre-warmed timing cache with {warmed} stored run(s) from {}",
            store.path().display()
        );
        self.store = Some(Arc::new(store));
        self
    }

    /// The attached evaluation store, if any.
    pub fn store(&self) -> Option<&Arc<EvalStore>> {
        self.store.as_ref()
    }

    /// The base configuration adaptation points are applied to.
    pub fn base_config(&self) -> &CoreConfig {
        &self.base_config
    }

    /// The evaluator in use.
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// The shared cache.
    pub fn cache(&self) -> &Arc<EvalCache> {
        &self.cache
    }

    /// The shared timing cache.
    pub fn timing_cache(&self) -> &Arc<TimingCache> {
        &self.timing
    }

    /// The worker count used for batch passes.
    pub fn workers(&self) -> usize {
        self.workers
    }

    fn config_for(&self, arch: ArchPoint, dvs: DvsPoint) -> Result<CoreConfig, SimError> {
        arch.apply(&self.base_config, dvs)
    }

    /// The evaluation at one operating point: served from the cache when
    /// warm, computed inline (on the calling thread) otherwise.
    ///
    /// The hit path costs a single hash lookup; the miss path evaluates
    /// without holding any lock and then inserts.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the point cannot be
    /// applied to the base configuration.
    pub fn evaluation(
        &self,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
    ) -> Result<Arc<Evaluation>, SimError> {
        let key = EvalKey::new(app, arch, dvs);
        if let Some(ev) = self.cache.get(&key) {
            return Ok(ev);
        }
        let start = Instant::now();
        let config = self.config_for(arch, dvs)?;
        let ev = self.evaluate_cold(&self.evaluator, key, &config)?;
        self.cache.add_wall(start.elapsed());
        Ok(self.cache.insert(key, ev))
    }

    /// Write-through: appends a fresh timing run to the attached
    /// evaluation store (no-op without one).
    fn persist(&self, key: EvalKey, config: &CoreConfig, run: &TimingRun) -> Result<(), SimError> {
        match &self.store {
            Some(store) => store.append(
                key,
                config.frequency.0.to_bits(),
                config.vdd.0.to_bits(),
                run,
            ),
            None => Ok(()),
        }
    }

    /// A cache-miss evaluation: serve the timing stage from the shared
    /// timing cache (running, inserting, and persisting it on a miss),
    /// then finish the power/thermal passes. Bit-identical to
    /// [`Evaluator::evaluate`], which re-simulates timing every call.
    fn evaluate_cold(
        &self,
        evaluator: &Evaluator,
        key: EvalKey,
        config: &CoreConfig,
    ) -> Result<Evaluation, SimError> {
        let profile = key.app.profile();
        let tkey = TimingCacheKey::new(key.app, config);
        let timing = match self.timing.get(&tkey) {
            Some(t) => t,
            None => {
                let run = self
                    .timing
                    .insert(tkey, evaluator.timing_run(&profile, config)?);
                self.persist(key, config, &run)?;
                run
            }
        };
        evaluator.evaluate_with_timing(&profile, config, &timing)
    }

    /// Evaluates every job in `jobs` — deduplicated against each other
    /// and the cache — across the worker pool, filling the shared cache.
    ///
    /// Returns the summary of this pass alone. The pass is all-or-
    /// nothing: the first job error stops the remaining work and is
    /// propagated (evaluations already finished stay cached).
    ///
    /// # Errors
    ///
    /// Returns the first error any job produced.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread panics.
    pub fn evaluate_all(
        &self,
        jobs: &[(App, ArchPoint, DvsPoint)],
    ) -> Result<SweepSummary, SimError> {
        let _batch_span = sim_obs::span!("drm.batch");
        let start = Instant::now();

        // Dedup: one work item per distinct cold key.
        let mut seen = HashSet::new();
        let mut work: Vec<(EvalKey, App, ArchPoint, DvsPoint)> = Vec::new();
        let mut warm_hits = 0u64;
        for &(app, arch, dvs) in jobs {
            let key = EvalKey::new(app, arch, dvs);
            if !seen.insert(key) {
                continue;
            }
            if self.cache.peek(&key).is_some() {
                warm_hits += 1;
            } else {
                work.push((key, app, arch, dvs));
            }
        }
        let cold = work.len() as u64;

        // Group the cold work by timing key: all members of a group
        // (same app, same timing-relevant configuration — typically a
        // voltage grid at one frequency) share one cycle-level timing
        // run. One worker owns a whole group, so the pass performs
        // exactly one timing run per group, whatever the worker count.
        let mut group_index: HashMap<TimingCacheKey, usize> = HashMap::new();
        let mut groups: Vec<Vec<(EvalKey, App, CoreConfig)>> = Vec::new();
        for (key, app, arch, dvs) in work {
            let config = self.config_for(arch, dvs)?;
            let tkey = TimingCacheKey::new(app, &config);
            let idx = *group_index.entry(tkey).or_insert_with(|| {
                groups.push(Vec::new());
                groups.len() - 1
            });
            groups[idx].push((key, app, config));
        }

        let workers = self.workers.min(groups.len()).max(1);
        let next = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let first_error: Mutex<Option<SimError>> = Mutex::new(None);
        let busy_ns = AtomicU64::new(0);
        let timing_runs = AtomicU64::new(0);

        if !groups.is_empty() {
            std::thread::scope(|scope| {
                for w in 0..workers {
                    let evaluator = self.evaluator.clone();
                    let groups = &groups;
                    let next = &next;
                    let stop = &stop;
                    let first_error = &first_error;
                    let busy_ns = &busy_ns;
                    let timing_runs = &timing_runs;
                    // Named threads give each worker its own lane in
                    // trace-event exports (and readable panic messages).
                    let builder = std::thread::Builder::new().name(format!("drm-worker-{w}"));
                    builder
                        .spawn_scoped(scope, move || {
                            let _worker_span = sim_obs::span!("drm.worker");
                            let fail = |e: SimError| {
                                stop.store(true, Ordering::Relaxed);
                                first_error
                                    .lock()
                                    .expect("error slot lock poisoned")
                                    .get_or_insert(e);
                            };
                            loop {
                                if stop.load(Ordering::Relaxed) {
                                    return;
                                }
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                let Some(group) = groups.get(i) else {
                                    return;
                                };
                                // Work remaining in the shared queue as this
                                // worker claims a group.
                                sim_obs::hist!("drm.queue.depth", (groups.len() - i) as f64);
                                let profile = group[0].1.profile();
                                for (key, app, config) in group {
                                    // Every member does its own lookup so the
                                    // timing-cache hit/miss counters read as
                                    // reuses/runs; only this worker touches
                                    // the group's key, so the first member
                                    // misses (and simulates) and the rest hit.
                                    let tkey = TimingCacheKey::new(*app, config);
                                    let timing = match self.timing.get(&tkey) {
                                        Some(t) => t,
                                        None => match evaluator.timing_run(&profile, config) {
                                            Ok(run) => {
                                                timing_runs.fetch_add(1, Ordering::Relaxed);
                                                let run = self.timing.insert(tkey, run);
                                                if let Err(e) = self.persist(*key, config, &run) {
                                                    fail(e);
                                                    return;
                                                }
                                                run
                                            }
                                            Err(e) => {
                                                fail(e);
                                                return;
                                            }
                                        },
                                    };
                                    match evaluator.evaluate_with_timing(&profile, config, &timing)
                                    {
                                        Ok(ev) => {
                                            busy_ns.fetch_add(
                                                ev.stats.wall().as_nanos() as u64,
                                                Ordering::Relaxed,
                                            );
                                            self.cache.insert(*key, ev);
                                        }
                                        Err(e) => {
                                            fail(e);
                                            return;
                                        }
                                    }
                                }
                            }
                        })
                        .expect("spawn drm worker thread");
                }
            });
        }

        if let Some(e) = first_error.into_inner().expect("error slot lock poisoned") {
            return Err(e);
        }
        let wall = start.elapsed();
        self.cache.add_wall(wall);
        let busy = Duration::from_nanos(busy_ns.load(Ordering::Relaxed));
        let timing_runs = timing_runs.load(Ordering::Relaxed);
        if sim_obs::enabled() {
            sim_obs::counter!("drm.batch.passes", 1);
            sim_obs::counter!("drm.batch.evaluations", cold);
            sim_obs::counter!("drm.batch.warm_hits", warm_hits);
            sim_obs::counter!("drm.batch.timing_runs", timing_runs);
            sim_obs::counter!("drm.batch.wall_ns", wall.as_nanos() as u64);
            sim_obs::counter!("drm.batch.busy_ns", busy.as_nanos() as u64);
        }
        sim_obs::log_debug!(
            "drm.batch",
            "pass done: {} evaluation(s), {} warm hit(s), {} timing run(s), {} worker(s), {:.1} ms wall",
            cold,
            warm_hits,
            timing_runs,
            workers,
            wall.as_secs_f64() * 1e3
        );
        Ok(SweepSummary {
            workers,
            evaluations: cold,
            cache_hits: warm_hits,
            timing_runs,
            timing_reuses: cold - timing_runs,
            wall,
            busy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::EvalParams;

    fn engine(workers: usize) -> BatchEngine {
        BatchEngine::with_workers(Evaluator::ibm_65nm(EvalParams::quick()).unwrap(), workers)
    }

    #[test]
    fn key_distinguishes_voltage_at_equal_frequency() {
        use sim_common::{Hertz, Volts};
        let arch = ArchPoint::most_aggressive();
        let a = EvalKey::new(
            App::Gzip,
            arch,
            DvsPoint {
                frequency: Hertz::from_ghz(4.0),
                vdd: Volts(1.0),
            },
        );
        let b = EvalKey::new(
            App::Gzip,
            arch,
            DvsPoint {
                frequency: Hertz::from_ghz(4.0),
                vdd: Volts(0.9),
            },
        );
        assert_ne!(a, b);
        assert_eq!(a.freq_khz, b.freq_khz);
    }

    #[test]
    fn batch_deduplicates_and_caches() {
        let e = engine(2);
        let job = (App::Gzip, ArchPoint::most_aggressive(), DvsPoint::base());
        let summary = e.evaluate_all(&[job, job, job]).unwrap();
        assert_eq!(summary.evaluations, 1);
        assert_eq!(e.cache().len(), 1);
        // A second pass over the same job is a pure cache hit.
        let summary = e.evaluate_all(&[job]).unwrap();
        assert_eq!(summary.evaluations, 0);
        assert_eq!(summary.cache_hits, 1);
    }

    #[test]
    fn invalid_points_propagate_errors() {
        let e = engine(2);
        let bad = DvsPoint::at_ghz(9.0);
        assert!(
            bad.is_err() || {
                let dvs = bad.unwrap();
                e.evaluate_all(&[(App::Gzip, ArchPoint::most_aggressive(), dvs)])
                    .is_err()
            }
        );
    }

    #[test]
    fn summary_line_formats() {
        let s = SweepSummary {
            workers: 4,
            evaluations: 10,
            cache_hits: 3,
            timing_runs: 2,
            timing_reuses: 8,
            wall: Duration::from_millis(500),
            busy: Duration::from_millis(1500),
        };
        let line = s.to_string();
        assert!(line.contains("4 jobs"), "{line}");
        assert!(line.contains("10 evals"), "{line}");
        assert!(line.contains("timing 2 runs, 8 reused"), "{line}");
        assert!(line.contains("3.00x"), "{line}");
    }

    #[test]
    fn voltage_grid_runs_timing_once_per_frequency() {
        use sim_common::{Hertz, Volts};
        let e = engine(4);
        let arch = ArchPoint::most_aggressive();
        let mut jobs = Vec::new();
        for ghz in [3.0, 4.0] {
            for vdd in [0.85, 0.95, 1.05, 1.15] {
                jobs.push((
                    App::Gzip,
                    arch,
                    DvsPoint {
                        frequency: Hertz::from_ghz(ghz),
                        vdd: Volts(vdd),
                    },
                ));
            }
        }
        let summary = e.evaluate_all(&jobs).unwrap();
        assert_eq!(summary.evaluations, 8);
        assert_eq!(summary.timing_runs, 2, "one timing run per frequency");
        assert_eq!(summary.timing_reuses, 6);
        assert_eq!(e.timing_cache().len(), 2);
        assert_eq!(e.timing_cache().misses(), 2);
    }

    #[test]
    fn default_workers_is_positive() {
        assert!(default_workers() >= 1);
    }

    #[test]
    fn summaries_merge_by_summing_counters() {
        let mut acc = SweepSummary::default();
        let unit = SweepSummary {
            workers: 2,
            evaluations: 3,
            cache_hits: 1,
            timing_runs: 1,
            timing_reuses: 2,
            wall: Duration::from_millis(10),
            busy: Duration::from_millis(20),
        };
        acc.merge(&unit);
        acc.merge(&unit);
        assert_eq!(acc.workers, 2);
        assert_eq!(acc.evaluations, 6);
        assert_eq!(acc.cache_hits, 2);
        assert_eq!(acc.timing_runs, 2);
        assert_eq!(acc.timing_reuses, 4);
        assert_eq!(acc.wall, Duration::from_millis(20));
        assert_eq!(acc.busy, Duration::from_millis(40));
    }

    #[test]
    fn store_prewarms_a_restarted_engine() {
        use crate::store::EvalStore;
        let dir = std::env::temp_dir().join(format!("ramp-batch-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.evalstore");
        let job = (App::Gzip, ArchPoint::most_aggressive(), DvsPoint::base());

        let first = engine(2).with_store(EvalStore::open(&path).unwrap());
        let summary = first.evaluate_all(&[job]).unwrap();
        assert_eq!(summary.timing_runs, 1, "cold store must simulate");
        let reference = first.evaluation(job.0, job.1, job.2).unwrap();

        // "Restart": a fresh engine with cold in-memory caches, attached
        // to the now-populated store.
        let restarted = engine(2).with_store(EvalStore::open(&path).unwrap());
        assert_eq!(restarted.timing_cache().len(), 1);
        let summary = restarted.evaluate_all(&[job]).unwrap();
        assert_eq!(summary.evaluations, 1);
        assert_eq!(summary.timing_runs, 0, "stored point must not re-simulate");
        assert_eq!(summary.timing_reuses, 1);
        let replayed = restarted.evaluation(job.0, job.1, job.2).unwrap();
        assert_eq!(replayed.bips.to_bits(), reference.bips.to_bits());
        assert_eq!(replayed.ipc.to_bits(), reference.ipc.to_bits());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
