//! Dynamic voltage and frequency scaling settings (§6.1).
//!
//! The paper varies frequency from 2.5 GHz to 5.0 GHz around the 4 GHz
//! base, always setting the voltage to the level that supports the chosen
//! frequency, with the V(f) relationship "extrapolated from the information
//! available for DVS on Intel's Pentium-M (Centrino) processor". Fitting a
//! line through the published Pentium-M operating points (1.6 GHz @
//! 1.484 V down to 0.6 GHz @ 0.956 V) and rescaling to the 1.0 V / 4 GHz
//! base gives a slope near 0.57; scaled-technology DVFS curves are
//! shallower, and reproducing the paper's Figure 2 headroom requires a
//! moderate slope, so we use `V(f) = V₀ · (0.55 + 0.45 · f/f₀)`
//! (2.5 GHz → 0.83 V, 5 GHz → 1.11 V; see DESIGN.md).

use sim_common::{Hertz, SimError, Volts};

/// Fraction of the base voltage that is frequency-independent in the
/// Pentium-M-extrapolated V(f) line.
const V_INTERCEPT: f64 = 0.55;
/// Slope of the V(f) line in base-voltage units per base-frequency unit.
const V_SLOPE: f64 = 0.45;

/// Base frequency the DVS relationship is anchored to (4 GHz).
pub const DVS_BASE_FREQUENCY_GHZ: f64 = 4.0;
/// Base voltage the DVS relationship is anchored to (1.0 V).
pub const DVS_BASE_VDD: f64 = 1.0;
/// Lowest frequency the paper explores.
pub const DVS_MIN_GHZ: f64 = 2.5;
/// Highest frequency the paper explores.
pub const DVS_MAX_GHZ: f64 = 5.0;

/// One DVS operating point: a frequency and its supporting voltage.
///
/// # Examples
///
/// ```
/// use drm::DvsPoint;
/// let base = DvsPoint::at_ghz(4.0)?;
/// assert!((base.vdd.0 - 1.0).abs() < 1e-12);
/// let slow = DvsPoint::at_ghz(2.5)?;
/// assert!(slow.vdd < base.vdd);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsPoint {
    /// Clock frequency.
    pub frequency: Hertz,
    /// Supply voltage supporting that frequency.
    pub vdd: Volts,
}

impl DvsPoint {
    /// The operating point at `ghz`, with the voltage from the
    /// Pentium-M-extrapolated relationship.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `ghz` is outside the
    /// explored `[2.5, 5.0]` range.
    pub fn at_ghz(ghz: f64) -> Result<DvsPoint, SimError> {
        if !(DVS_MIN_GHZ..=DVS_MAX_GHZ).contains(&ghz) {
            return Err(SimError::invalid_config(format!(
                "frequency {ghz} GHz outside the DVS range [{DVS_MIN_GHZ}, {DVS_MAX_GHZ}]"
            )));
        }
        Ok(DvsPoint {
            frequency: Hertz::from_ghz(ghz),
            vdd: Volts(voltage_for_frequency(ghz)),
        })
    }

    /// The 4 GHz / 1.0 V base point.
    pub fn base() -> DvsPoint {
        DvsPoint::at_ghz(DVS_BASE_FREQUENCY_GHZ).expect("base frequency is in range")
    }
}

/// The supporting voltage for a frequency in GHz (unchecked range).
pub fn voltage_for_frequency(ghz: f64) -> f64 {
    DVS_BASE_VDD * (V_INTERCEPT + V_SLOPE * ghz / DVS_BASE_FREQUENCY_GHZ)
}

/// The frequency grid explored for DVS adaptations: `[2.5, 5.0]` GHz in
/// `step_ghz` increments (the base 4 GHz is always on the grid).
///
/// # Panics
///
/// Panics if `step_ghz` is not positive.
pub fn frequency_grid(step_ghz: f64) -> Vec<DvsPoint> {
    assert!(step_ghz > 0.0, "step must be positive");
    let mut points = Vec::new();
    let mut ghz = DVS_MIN_GHZ;
    while ghz <= DVS_MAX_GHZ + 1e-9 {
        points.push(DvsPoint::at_ghz(ghz.min(DVS_MAX_GHZ)).expect("grid point in range"));
        ghz += step_ghz;
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_one_volt_four_ghz() {
        let p = DvsPoint::base();
        assert!((p.frequency.to_ghz() - 4.0).abs() < 1e-12);
        assert!((p.vdd.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotonic_in_frequency() {
        let mut last = 0.0;
        for p in frequency_grid(0.25) {
            assert!(p.vdd.0 > last);
            last = p.vdd.0;
        }
    }

    #[test]
    fn endpoints_match_extrapolation() {
        assert!((voltage_for_frequency(2.5) - 0.83125).abs() < 1e-3);
        assert!((voltage_for_frequency(5.0) - 1.1125).abs() < 1e-3);
        assert!((voltage_for_frequency(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(DvsPoint::at_ghz(2.0).is_err());
        assert!(DvsPoint::at_ghz(5.5).is_err());
    }

    #[test]
    fn grid_covers_range_and_contains_base() {
        let grid = frequency_grid(0.25);
        assert_eq!(grid.len(), 11);
        assert!((grid[0].frequency.to_ghz() - 2.5).abs() < 1e-9);
        assert!((grid.last().unwrap().frequency.to_ghz() - 5.0).abs() < 1e-9);
        assert!(grid
            .iter()
            .any(|p| (p.frequency.to_ghz() - 4.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn grid_rejects_zero_step() {
        let _ = frequency_grid(0.0);
    }
}
