//! Dynamic voltage and frequency scaling settings (§6.1).
//!
//! The paper varies frequency from 2.5 GHz to 5.0 GHz around the 4 GHz
//! base, always setting the voltage to the level that supports the chosen
//! frequency, with the V(f) relationship "extrapolated from the information
//! available for DVS on Intel's Pentium-M (Centrino) processor". Fitting a
//! line through the published Pentium-M operating points (1.6 GHz @
//! 1.484 V down to 0.6 GHz @ 0.956 V) and rescaling to the 1.0 V / 4 GHz
//! base gives a slope near 0.57; scaled-technology DVFS curves are
//! shallower, and reproducing the paper's Figure 2 headroom requires a
//! moderate slope, so we use `V(f) = V₀ · (0.55 + 0.45 · f/f₀)`
//! (2.5 GHz → 0.83 V, 5 GHz → 1.11 V; see DESIGN.md).

use sim_common::{Hertz, SimError, Volts};

/// Fraction of the base voltage that is frequency-independent in the
/// Pentium-M-extrapolated V(f) line.
const V_INTERCEPT: f64 = 0.55;
/// Slope of the V(f) line in base-voltage units per base-frequency unit.
const V_SLOPE: f64 = 0.45;

/// A configurable DVS operating range: the frequency window, the grid
/// step, and the V(f) line anchoring voltages to the base point.
///
/// [`DvsRange::paper`] reproduces the paper's hard-wired constants
/// (2.5–5.0 GHz around 4 GHz / 1.0 V in 0.25 GHz steps); scenario files
/// can describe any other range without recompiling.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsRange {
    /// Frequency the V(f) relationship is anchored to, GHz.
    pub base_ghz: f64,
    /// Voltage at the anchor frequency, V.
    pub base_vdd: f64,
    /// Lowest explorable frequency, GHz.
    pub min_ghz: f64,
    /// Highest explorable frequency, GHz.
    pub max_ghz: f64,
    /// Default grid granularity, GHz.
    pub step_ghz: f64,
    /// Frequency-independent fraction of the base voltage in V(f).
    pub v_intercept: f64,
    /// Slope of V(f) in base-voltage units per base-frequency unit.
    pub v_slope: f64,
}

impl DvsRange {
    /// The paper's range: `[2.5, 5.0]` GHz around 4 GHz / 1.0 V,
    /// 0.25 GHz grid, `V(f) = V₀ · (0.55 + 0.45 · f/f₀)`.
    pub fn paper() -> DvsRange {
        DvsRange {
            base_ghz: DVS_BASE_FREQUENCY_GHZ,
            base_vdd: DVS_BASE_VDD,
            min_ghz: DVS_MIN_GHZ,
            max_ghz: DVS_MAX_GHZ,
            step_ghz: 0.25,
            v_intercept: V_INTERCEPT,
            v_slope: V_SLOPE,
        }
    }

    /// Validates the range.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-positive base point or
    /// step, an empty or inverted frequency window, a base frequency
    /// outside the window, or a V(f) line that goes non-positive anywhere
    /// in the window.
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, v) in [
            ("dvs base frequency", self.base_ghz),
            ("dvs base voltage", self.base_vdd),
            ("dvs step", self.step_ghz),
            ("dvs minimum frequency", self.min_ghz),
            ("dvs maximum frequency", self.max_ghz),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(SimError::invalid_config(format!(
                    "{label} must be positive and finite, got {v}"
                )));
            }
        }
        if !(self.v_intercept.is_finite() && self.v_slope.is_finite()) {
            return Err(SimError::invalid_config(
                "dvs V(f) coefficients must be finite",
            ));
        }
        if self.min_ghz > self.max_ghz {
            return Err(SimError::invalid_config(format!(
                "dvs range [{}, {}] GHz is inverted",
                self.min_ghz, self.max_ghz
            )));
        }
        if !(self.min_ghz..=self.max_ghz).contains(&self.base_ghz) {
            return Err(SimError::invalid_config(format!(
                "dvs base frequency {} GHz outside the range [{}, {}]",
                self.base_ghz, self.min_ghz, self.max_ghz
            )));
        }
        for ghz in [self.min_ghz, self.max_ghz] {
            if self.voltage_for(ghz) <= 0.0 {
                return Err(SimError::invalid_config(format!(
                    "dvs V(f) is non-positive at {ghz} GHz"
                )));
            }
        }
        Ok(())
    }

    /// The supporting voltage for `ghz` on this range's V(f) line
    /// (unchecked range).
    pub fn voltage_for(&self, ghz: f64) -> f64 {
        self.base_vdd * (self.v_intercept + self.v_slope * ghz / self.base_ghz)
    }

    /// The operating point at `ghz`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `ghz` is outside the range.
    pub fn at_ghz(&self, ghz: f64) -> Result<DvsPoint, SimError> {
        if !(self.min_ghz..=self.max_ghz).contains(&ghz) {
            return Err(SimError::invalid_config(format!(
                "frequency {ghz} GHz outside the DVS range [{}, {}]",
                self.min_ghz, self.max_ghz
            )));
        }
        Ok(DvsPoint {
            frequency: Hertz::from_ghz(ghz),
            vdd: Volts(self.voltage_for(ghz)),
        })
    }

    /// The anchor operating point.
    pub fn base_point(&self) -> DvsPoint {
        DvsPoint {
            frequency: Hertz::from_ghz(self.base_ghz),
            vdd: Volts(self.voltage_for(self.base_ghz)),
        }
    }

    /// The explored frequency grid: `[min, max]` GHz in [`step_ghz`]
    /// increments (the maximum is always on the grid).
    ///
    /// [`step_ghz`]: DvsRange::step_ghz
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the range fails
    /// [`DvsRange::validate`].
    pub fn grid(&self) -> Result<Vec<DvsPoint>, SimError> {
        self.validate()?;
        let mut points = Vec::new();
        let mut ghz = self.min_ghz;
        while ghz <= self.max_ghz + 1e-9 {
            points.push(
                self.at_ghz(ghz.min(self.max_ghz))
                    .expect("grid point in range"),
            );
            ghz += self.step_ghz;
        }
        Ok(points)
    }
}

impl Default for DvsRange {
    fn default() -> Self {
        DvsRange::paper()
    }
}

/// Base frequency the DVS relationship is anchored to (4 GHz).
pub const DVS_BASE_FREQUENCY_GHZ: f64 = 4.0;
/// Base voltage the DVS relationship is anchored to (1.0 V).
pub const DVS_BASE_VDD: f64 = 1.0;
/// Lowest frequency the paper explores.
pub const DVS_MIN_GHZ: f64 = 2.5;
/// Highest frequency the paper explores.
pub const DVS_MAX_GHZ: f64 = 5.0;

/// One DVS operating point: a frequency and its supporting voltage.
///
/// # Examples
///
/// ```
/// use drm::DvsPoint;
/// let base = DvsPoint::at_ghz(4.0)?;
/// assert!((base.vdd.0 - 1.0).abs() < 1e-12);
/// let slow = DvsPoint::at_ghz(2.5)?;
/// assert!(slow.vdd < base.vdd);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvsPoint {
    /// Clock frequency.
    pub frequency: Hertz,
    /// Supply voltage supporting that frequency.
    pub vdd: Volts,
}

impl DvsPoint {
    /// The operating point at `ghz`, with the voltage from the
    /// Pentium-M-extrapolated relationship.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `ghz` is outside the
    /// explored `[2.5, 5.0]` range.
    pub fn at_ghz(ghz: f64) -> Result<DvsPoint, SimError> {
        DvsRange::paper().at_ghz(ghz)
    }

    /// The 4 GHz / 1.0 V base point.
    pub fn base() -> DvsPoint {
        DvsRange::paper().base_point()
    }
}

/// The supporting voltage for a frequency in GHz on the paper's V(f) line
/// (unchecked range).
pub fn voltage_for_frequency(ghz: f64) -> f64 {
    DvsRange::paper().voltage_for(ghz)
}

/// The frequency grid explored for DVS adaptations: `[2.5, 5.0]` GHz in
/// `step_ghz` increments (the base 4 GHz is always on the grid).
///
/// # Panics
///
/// Panics if `step_ghz` is not positive.
pub fn frequency_grid(step_ghz: f64) -> Vec<DvsPoint> {
    assert!(step_ghz > 0.0, "step must be positive");
    DvsRange {
        step_ghz,
        ..DvsRange::paper()
    }
    .grid()
    .expect("paper range with a positive step is valid")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_point_is_one_volt_four_ghz() {
        let p = DvsPoint::base();
        assert!((p.frequency.to_ghz() - 4.0).abs() < 1e-12);
        assert!((p.vdd.0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn voltage_is_monotonic_in_frequency() {
        let mut last = 0.0;
        for p in frequency_grid(0.25) {
            assert!(p.vdd.0 > last);
            last = p.vdd.0;
        }
    }

    #[test]
    fn endpoints_match_extrapolation() {
        assert!((voltage_for_frequency(2.5) - 0.83125).abs() < 1e-3);
        assert!((voltage_for_frequency(5.0) - 1.1125).abs() < 1e-3);
        assert!((voltage_for_frequency(4.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_range() {
        assert!(DvsPoint::at_ghz(2.0).is_err());
        assert!(DvsPoint::at_ghz(5.5).is_err());
    }

    #[test]
    fn grid_covers_range_and_contains_base() {
        let grid = frequency_grid(0.25);
        assert_eq!(grid.len(), 11);
        assert!((grid[0].frequency.to_ghz() - 2.5).abs() < 1e-9);
        assert!((grid.last().unwrap().frequency.to_ghz() - 5.0).abs() < 1e-9);
        assert!(grid
            .iter()
            .any(|p| (p.frequency.to_ghz() - 4.0).abs() < 1e-9));
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn grid_rejects_zero_step() {
        let _ = frequency_grid(0.0);
    }

    #[test]
    fn paper_range_matches_legacy_constants() {
        let r = DvsRange::paper();
        r.validate().unwrap();
        assert_eq!(r.base_point(), DvsPoint::base());
        for ghz in [2.5, 3.0, 4.0, 5.0] {
            assert_eq!(r.at_ghz(ghz).unwrap(), DvsPoint::at_ghz(ghz).unwrap());
            assert_eq!(r.voltage_for(ghz), voltage_for_frequency(ghz));
        }
        assert_eq!(r.grid().unwrap(), frequency_grid(0.25));
    }

    #[test]
    fn custom_range_is_respected() {
        let r = DvsRange {
            min_ghz: 1.0,
            max_ghz: 3.0,
            base_ghz: 2.0,
            base_vdd: 0.9,
            step_ghz: 1.0,
            ..DvsRange::paper()
        };
        r.validate().unwrap();
        let grid = r.grid().unwrap();
        assert_eq!(grid.len(), 3);
        assert!((r.base_point().vdd.0 - 0.9).abs() < 1e-12);
        assert!(r.at_ghz(0.5).is_err());
        assert!(r.at_ghz(3.5).is_err());
        // Legacy range still rejects what the custom range accepts.
        assert!(DvsPoint::at_ghz(1.0).is_err());
    }

    #[test]
    fn range_validation_rejects_nonsense() {
        let bad_step = DvsRange {
            step_ghz: 0.0,
            ..DvsRange::paper()
        };
        assert!(bad_step.validate().is_err());
        assert!(bad_step.grid().is_err());
        let inverted = DvsRange {
            min_ghz: 5.0,
            max_ghz: 2.5,
            ..DvsRange::paper()
        };
        assert!(inverted.validate().is_err());
        let base_outside = DvsRange {
            base_ghz: 6.0,
            ..DvsRange::paper()
        };
        assert!(base_outside.validate().is_err());
        let negative_line = DvsRange {
            v_intercept: -2.0,
            ..DvsRange::paper()
        };
        assert!(negative_line.validate().is_err());
    }
}
