//! The DRM adaptation space (§6.1): 18 microarchitectural configurations
//! (combinations of instruction-window size, ALU count and FPU count,
//! from the full 128-entry / 6-ALU / 4-FPU processor down to a 16-entry /
//! 2-ALU / 1-FPU processor) crossed with the DVS frequency grid.

use sim_common::SimError;
use sim_cpu::CoreConfig;

use crate::dvs::{frequency_grid, DvsPoint, DvsRange};

/// One microarchitectural adaptation point.
///
/// # Examples
///
/// ```
/// use drm::ArchPoint;
/// assert_eq!(ArchPoint::ALL.len(), 18);
/// assert_eq!(ArchPoint::most_aggressive(), ArchPoint { window: 128, alus: 6, fpus: 4 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchPoint {
    /// Instruction window entries.
    pub window: u32,
    /// Active integer ALUs.
    pub alus: u32,
    /// Active FPUs.
    pub fpus: u32,
}

impl ArchPoint {
    /// The 18 configurations of §6.1: six window sizes crossed with three
    /// functional-unit pools, spanning the paper's stated extremes.
    pub const ALL: [ArchPoint; 18] = {
        const fn p(window: u32, alus: u32, fpus: u32) -> ArchPoint {
            ArchPoint { window, alus, fpus }
        }
        [
            p(128, 6, 4),
            p(128, 4, 2),
            p(128, 2, 1),
            p(96, 6, 4),
            p(96, 4, 2),
            p(96, 2, 1),
            p(64, 6, 4),
            p(64, 4, 2),
            p(64, 2, 1),
            p(48, 6, 4),
            p(48, 4, 2),
            p(48, 2, 1),
            p(32, 6, 4),
            p(32, 4, 2),
            p(32, 2, 1),
            p(16, 6, 4),
            p(16, 4, 2),
            p(16, 2, 1),
        ]
    };

    /// The most aggressive configuration — the base non-adaptive processor.
    pub fn most_aggressive() -> ArchPoint {
        ArchPoint {
            window: 128,
            alus: 6,
            fpus: 4,
        }
    }

    /// Applies this adaptation (and a DVS point) to a base configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the point exceeds the base
    /// resources.
    pub fn apply(&self, base: &CoreConfig, dvs: DvsPoint) -> Result<CoreConfig, SimError> {
        Ok(base
            .with_adaptation(self.window, self.alus, self.fpus)?
            .with_dvs(dvs.frequency, dvs.vdd))
    }

    /// A short display label, e.g. `w128/a6/f4`.
    pub fn label(&self) -> String {
        format!("w{}/a{}/f{}", self.window, self.alus, self.fpus)
    }
}

impl std::fmt::Display for ArchPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// The DRM adaptation strategies compared in §7.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Microarchitectural adaptation only, at base voltage/frequency.
    /// Performance can never exceed 1.0 relative to base (§6.1).
    Arch,
    /// DVS only, on the most aggressive microarchitecture.
    Dvs,
    /// Combined microarchitectural adaptation and DVS.
    ArchDvs,
}

impl Strategy {
    /// All strategies.
    pub const ALL: [Strategy; 3] = [Strategy::Arch, Strategy::Dvs, Strategy::ArchDvs];

    /// Short stable name.
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Arch => "Arch",
            Strategy::Dvs => "DVS",
            Strategy::ArchDvs => "ArchDVS",
        }
    }

    /// The candidate configurations this strategy may choose from, with the
    /// DVS grid at `dvs_step_ghz` granularity.
    pub fn candidates(self, dvs_step_ghz: f64) -> Vec<(ArchPoint, DvsPoint)> {
        match self {
            Strategy::Arch => ArchPoint::ALL
                .into_iter()
                .map(|a| (a, DvsPoint::base()))
                .collect(),
            Strategy::Dvs => frequency_grid(dvs_step_ghz)
                .into_iter()
                .map(|d| (ArchPoint::most_aggressive(), d))
                .collect(),
            Strategy::ArchDvs => {
                let grid = frequency_grid(dvs_step_ghz);
                ArchPoint::ALL
                    .into_iter()
                    .flat_map(|a| grid.iter().map(move |&d| (a, d)))
                    .collect()
            }
        }
    }

    /// Like [`Strategy::candidates`], but over an explicit adaptation
    /// space: `space` replaces the built-in 18 microarchitectural points,
    /// `base_arch`/`base_dvs` replace the hard-wired base operating point,
    /// and `range` replaces the paper's DVS grid. This is how
    /// scenario-driven sweeps explore spaces the paper never enumerated.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when `space` is empty or the
    /// range fails [`DvsRange::validate`].
    pub fn candidates_with(
        self,
        space: &[ArchPoint],
        base_arch: ArchPoint,
        base_dvs: DvsPoint,
        range: &DvsRange,
    ) -> Result<Vec<(ArchPoint, DvsPoint)>, SimError> {
        if space.is_empty() {
            return Err(SimError::invalid_config(
                "adaptation space has no microarchitectural points",
            ));
        }
        Ok(match self {
            Strategy::Arch => space.iter().map(|&a| (a, base_dvs)).collect(),
            Strategy::Dvs => range.grid()?.into_iter().map(|d| (base_arch, d)).collect(),
            Strategy::ArchDvs => {
                let grid = range.grid()?;
                space
                    .iter()
                    .flat_map(|&a| grid.iter().map(move |&d| (a, d)))
                    .collect()
            }
        })
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_matches_section_6_1() {
        assert_eq!(ArchPoint::ALL.len(), 18);
        // Extremes stated in the paper.
        assert!(ArchPoint::ALL.contains(&ArchPoint {
            window: 128,
            alus: 6,
            fpus: 4
        }));
        assert!(ArchPoint::ALL.contains(&ArchPoint {
            window: 16,
            alus: 2,
            fpus: 1
        }));
    }

    #[test]
    fn points_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for p in ArchPoint::ALL {
            assert!(seen.insert(p), "duplicate {p}");
        }
    }

    #[test]
    fn apply_produces_valid_configs() {
        let base = CoreConfig::base();
        for p in ArchPoint::ALL {
            let cfg = p.apply(&base, DvsPoint::base()).unwrap();
            cfg.validate().unwrap();
            assert_eq!(cfg.window_size, p.window);
            assert_eq!(cfg.issue_width(), p.alus + p.fpus + 2);
        }
    }

    #[test]
    fn strategy_candidate_counts() {
        assert_eq!(Strategy::Arch.candidates(0.25).len(), 18);
        assert_eq!(Strategy::Dvs.candidates(0.25).len(), 11);
        assert_eq!(Strategy::ArchDvs.candidates(0.25).len(), 18 * 11);
        assert_eq!(Strategy::Dvs.candidates(0.5).len(), 6);
    }

    #[test]
    fn arch_candidates_stay_at_base_dvs() {
        for (_, d) in Strategy::Arch.candidates(0.25) {
            assert_eq!(d, DvsPoint::base());
        }
    }

    #[test]
    fn dvs_candidates_stay_on_aggressive_arch() {
        for (a, _) in Strategy::Dvs.candidates(0.25) {
            assert_eq!(a, ArchPoint::most_aggressive());
        }
    }

    #[test]
    fn candidates_with_matches_builtin_space() {
        let range = DvsRange {
            step_ghz: 0.25,
            ..DvsRange::paper()
        };
        for strategy in Strategy::ALL {
            let explicit = strategy
                .candidates_with(
                    &ArchPoint::ALL,
                    ArchPoint::most_aggressive(),
                    DvsPoint::base(),
                    &range,
                )
                .unwrap();
            assert_eq!(explicit, strategy.candidates(0.25), "{strategy}");
        }
    }

    #[test]
    fn candidates_with_rejects_empty_space_and_bad_range() {
        assert!(Strategy::Arch
            .candidates_with(
                &[],
                ArchPoint::most_aggressive(),
                DvsPoint::base(),
                &DvsRange::paper()
            )
            .is_err());
        let bad = DvsRange {
            step_ghz: -1.0,
            ..DvsRange::paper()
        };
        assert!(Strategy::Dvs
            .candidates_with(
                &ArchPoint::ALL,
                ArchPoint::most_aggressive(),
                DvsPoint::base(),
                &bad
            )
            .is_err());
    }

    #[test]
    fn labels() {
        assert_eq!(ArchPoint::most_aggressive().label(), "w128/a6/f4");
        assert_eq!(Strategy::ArchDvs.name(), "ArchDVS");
    }
}
