//! `sim-cluster` — the distributed sweep fabric for the RAMP/DRM
//! reproduction.
//!
//! A [`Coordinator`] shards the oracular-DRM candidate grid (§5) and the
//! fleet Monte Carlo population across N `ramp-serve/1` worker shards —
//! in-process [`Server`]s it spawns itself, or external processes it
//! addresses — and folds the partial results back together exactly:
//!
//! - **Work units.** A sweep becomes one `unit sweep` request per unique
//!   operating point (candidate grid + base point, deduplicated the way
//!   a single batch pass would); a fleet run becomes one `unit fleet`
//!   request per [`drm::DIE_BATCH`]-die batch. Each unit names its full
//!   operating point on the wire with shortest-round-trip floats, so the
//!   shard evaluates exactly the point the coordinator meant.
//! - **Affinity routing.** Units are routed by an FNV-1a hash of the
//!   *timing-relevant* key (application, window, ALUs, FPUs, frequency —
//!   not voltage), so every voltage variant of a configuration lands on
//!   one shard and its voltage-invariant timing run is reused there,
//!   exactly as in a single process.
//! - **Deterministic merges.** Unit summaries fold in unit-index order
//!   and fleet sketches fold in batch-index order — the same fold
//!   [`drm::run_fleet`] performs — so the merged [`SweepSummary`],
//!   [`DrmChoice`], and [`FleetSummary`] are bit-identical to a
//!   single-process run at any shard count.
//! - **Death recovery.** A shard that stops answering is marked dead,
//!   every result it ever produced is discarded, and all its units are
//!   re-routed to the survivors (whole timing groups move together, so
//!   counter parity survives the failover). Connection and `busy` retry
//!   use the client's bounded jittered backoff.
//!
//! When the scenario's `[cluster]` section names a `store_dir`, every
//! spawned shard opens the shared append-only evaluation store there:
//! timing caches pre-warm from all existing segments and each engine
//! appends to its own, so a restarted shard answers already-seen points
//! without re-running timing.

#![warn(missing_docs)]

use std::collections::HashMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use drm::{
    fleet_summarize, fnv1a64, ArchPoint, DrmChoice, DvsPoint, FleetConfig, FleetPartial,
    FleetSummary, Strategy, SweepSummary, DIE_BATCH,
};
use ramp::Fit;
use scenario::Scenario;
use sim_common::{QuantileSketch, SimError};
use sim_server::{Client, Reply, RetryPolicy, Server, ServerConfig, ServerState, Status};
use workload::App;

/// Progress notifications a [`Coordinator`] emits while dispatching.
/// Observers run synchronously on the shard worker threads, so a chaos
/// test can act (e.g. kill a shard) between two units of one shard.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterEvent {
    /// A shard answered one work unit.
    UnitDone {
        /// Shard index.
        shard: usize,
        /// Unit index within the current dispatch.
        unit: usize,
    },
    /// A shard stopped answering; its units (including already-completed
    /// ones, whose results are discarded) re-route to the survivors.
    ShardDead {
        /// Shard index.
        shard: usize,
        /// Units being re-dispatched.
        redispatched: usize,
    },
}

/// One shard's view in [`Coordinator::status`], read via the `merge`
/// verb (cumulative per-engine evaluation counters).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStatus {
    /// Shard index.
    pub shard: usize,
    /// The shard's address.
    pub addr: SocketAddr,
    /// False once the shard was marked dead or stopped answering.
    pub alive: bool,
    /// Distinct evaluations in the shard's cache.
    pub evaluations: u64,
    /// Lookups served from the shard's cache.
    pub cache_hits: u64,
    /// Cycle-level timing simulations the shard ran.
    pub timing_runs: u64,
    /// Evaluations that reused a cached timing run.
    pub timing_reuses: u64,
    /// Records in the shard's evaluation store (0 without a store).
    pub store_records: u64,
}

/// The result of a distributed sweep: the DRM choice and the merged
/// evaluation summary.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSweep {
    /// The oracular choice — bit-identical to [`drm::Oracle::best_among`]
    /// over the same scenario grid in one process.
    pub choice: DrmChoice,
    /// Unit deltas folded in unit-index order (`wall`/`busy` are the
    /// summed per-unit times — the sequential-equivalent cost;
    /// `workers` is the live shard count).
    pub summary: SweepSummary,
    /// Unique operating points dispatched (grid + base, deduplicated).
    pub unique_points: usize,
    /// Units re-dispatched after shard deaths.
    pub redispatched: u64,
}

/// The result of a distributed fleet run.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterFleet {
    /// Population summary — equal (by [`FleetSummary`]'s semantic
    /// equality) to [`drm::run_fleet`] over the same configuration in
    /// one process.
    pub summary: FleetSummary,
    /// Die batches dispatched.
    pub batches: u64,
    /// Units re-dispatched after shard deaths.
    pub redispatched: u64,
}

/// How a shard worker thread failed.
enum ShardFailure {
    /// Transport-level: the shard is gone (or hopelessly busy); its
    /// work re-routes to the survivors.
    Dead(SimError),
    /// Protocol-level `err`: the request itself is wrong; retrying on
    /// another shard would fail identically, so the dispatch aborts.
    Request(SimError),
}

/// One work unit: a single protocol request line plus its routing group.
struct Unit {
    /// Position in the dispatch (fold order and response pairing).
    index: usize,
    /// Affinity-routing hash: units with equal groups share a shard.
    group: u64,
    /// The request line.
    line: String,
}

struct ShardSlot {
    addr: SocketAddr,
    /// The in-process worker, when this coordinator spawned it.
    server: Option<Server>,
    alive: AtomicBool,
}

/// A callback invoked on every [`ClusterEvent`] (tests use it to inject
/// faults between units).
type EventObserver = Arc<dyn Fn(&ClusterEvent) + Send + Sync>;

/// One shard's answered units: `(unit index, reply)` pairs.
type ShardReplies = Vec<(usize, Reply)>;

/// The sweep-fabric coordinator: owns the shard set, routes work units,
/// and folds partial results deterministically.
pub struct Coordinator {
    scenario: Scenario,
    shards: Vec<ShardSlot>,
    policy: RetryPolicy,
    timeout: Duration,
    observer: Option<EventObserver>,
}

impl Coordinator {
    /// Starts a coordinator for `scenario`'s `[cluster]` section: spawns
    /// `cluster.shards` in-process workers on ephemeral loopback ports,
    /// or resolves the explicit `cluster.addr` list (external shards
    /// must already run the same scenario). Spawned workers inherit
    /// `worker_config` (evaluation overrides, queue tuning).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the scenario has no
    /// `[cluster]` section, the section is invalid, a worker fails to
    /// start, or an address does not resolve.
    pub fn start(
        scenario: Scenario,
        worker_config: &ServerConfig,
    ) -> Result<Coordinator, SimError> {
        let spec = scenario.cluster.clone().ok_or_else(|| {
            SimError::invalid_config(
                "scenario has no [cluster] section (set cluster.shards or cluster.addr)",
            )
        })?;
        spec.validate()?;
        let mut shards = Vec::with_capacity(spec.shard_count());
        if spec.shard_addrs.is_empty() {
            for _ in 0..spec.shards {
                let server = Server::start(scenario.clone(), worker_config.clone(), "127.0.0.1:0")?;
                shards.push(ShardSlot {
                    addr: server.local_addr(),
                    server: Some(server),
                    alive: AtomicBool::new(true),
                });
            }
        } else {
            for addr in &spec.shard_addrs {
                let resolved = addr
                    .to_socket_addrs()
                    .map_err(|e| {
                        SimError::invalid_config(format!("cannot resolve shard `{addr}`: {e}"))
                    })?
                    .next()
                    .ok_or_else(|| {
                        SimError::invalid_config(format!("shard `{addr}` resolves to no address"))
                    })?;
                shards.push(ShardSlot {
                    addr: resolved,
                    server: None,
                    alive: AtomicBool::new(true),
                });
            }
        }
        sim_obs::gauge!("cluster.shards_live", shards.len() as f64);
        Ok(Coordinator {
            scenario,
            shards,
            policy: RetryPolicy::default(),
            timeout: Duration::from_secs(30),
            observer: None,
        })
    }

    /// Replaces the retry policy for connects and `busy` sheds.
    #[must_use]
    pub fn with_retry_policy(mut self, policy: RetryPolicy) -> Coordinator {
        self.policy = policy;
        self
    }

    /// Replaces the per-request socket timeout.
    #[must_use]
    pub fn with_timeout(mut self, timeout: Duration) -> Coordinator {
        self.timeout = timeout;
        self
    }

    /// Installs a progress observer (see [`ClusterEvent`]).
    pub fn set_observer(&mut self, observer: impl Fn(&ClusterEvent) + Send + Sync + 'static) {
        self.observer = Some(Arc::new(observer));
    }

    /// The scenario this cluster evaluates.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        &self.scenario
    }

    /// Total shards (live and dead).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shards currently believed alive.
    #[must_use]
    pub fn live_count(&self) -> usize {
        self.live_shards().len()
    }

    /// Every shard's address, in shard order.
    #[must_use]
    pub fn addrs(&self) -> Vec<SocketAddr> {
        self.shards.iter().map(|s| s.addr).collect()
    }

    /// A spawned shard's server state — lets tests and supervisors act
    /// on a worker directly (e.g. chaos-kill it via shutdown). `None`
    /// for external shards.
    #[must_use]
    pub fn shard_server_state(&self, shard: usize) -> Option<&Arc<ServerState>> {
        self.shards.get(shard)?.server.as_ref().map(Server::state)
    }

    /// Distributed oracular sweep: `strategy`'s candidate grid for `app`
    /// under the scenario's qualification, sharded across the workers
    /// and folded to the exact single-process result.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Infeasible`] when the candidate set is empty,
    /// and [`SimError::InvalidConfig`] when a request is rejected or
    /// every shard died before the grid finished.
    pub fn sweep(
        &self,
        app: App,
        strategy: Strategy,
        step_override: Option<f64>,
    ) -> Result<ClusterSweep, SimError> {
        let _span = sim_obs::span!("cluster.sweep");
        let candidates = self.scenario.candidates(strategy, step_override)?;
        if candidates.is_empty() {
            return Err(SimError::infeasible("candidate set is empty"));
        }
        let base = (self.scenario.base_arch(), self.scenario.base_dvs());

        // Unique operating points in first-seen order — the same
        // dedup a single `evaluate_all` pass performs, so the folded
        // evaluation count matches it exactly.
        let mut index_of: HashMap<PointKey, usize> = HashMap::new();
        let mut points: Vec<(ArchPoint, DvsPoint)> = Vec::new();
        for &(arch, dvs) in candidates.iter().chain(std::iter::once(&base)) {
            index_of.entry(point_key(arch, dvs)).or_insert_with(|| {
                points.push((arch, dvs));
                points.len() - 1
            });
        }
        let units: Vec<Unit> = points
            .iter()
            .enumerate()
            .map(|(i, &(arch, dvs))| Unit {
                index: i,
                group: route_group(app, arch, dvs),
                line: unit_sweep_line(app, i, arch, dvs),
            })
            .collect();
        let (replies, redispatched) = self.dispatch(&units)?;

        let mut summary = SweepSummary::default();
        let mut scores = Vec::with_capacity(replies.len());
        for (i, reply) in replies.iter().enumerate() {
            if reply.u64("index")? != i as u64 {
                return Err(SimError::invalid_config(format!(
                    "shard answered unit {} where {i} was expected: {}",
                    reply.u64("index")?,
                    reply.raw
                )));
            }
            summary.merge(&unit_delta(reply)?);
            scores.push(UnitScore {
                bips: reply.f64("bips")?,
                fit: reply.f64("fit")?,
                feasible: reply.get("feasible") == Some("true"),
            });
        }
        summary.workers = self.live_count();

        // The exact selection fold of `Oracle::select_exact`, over the
        // candidate list in original order, on wire-recovered bits.
        let base_bips = scores[index_of[&point_key(base.0, base.1)]].bips;
        let mut best_feasible: Option<DrmChoice> = None;
        let mut min_fit: Option<DrmChoice> = None;
        for &(arch, dvs) in &candidates {
            let score = &scores[index_of[&point_key(arch, dvs)]];
            let choice = DrmChoice {
                arch,
                dvs,
                relative_performance: score.bips / base_bips,
                fit: Fit(score.fit),
                feasible: score.feasible,
            };
            if choice.feasible {
                let better = best_feasible
                    .as_ref()
                    .is_none_or(|b| choice.relative_performance > b.relative_performance);
                if better {
                    best_feasible = Some(choice.clone());
                }
            }
            let lower = min_fit.as_ref().is_none_or(|b| choice.fit < b.fit);
            if lower {
                min_fit = Some(choice);
            }
        }
        let choice = best_feasible
            .or(min_fit)
            .ok_or_else(|| SimError::infeasible("candidate set is empty"))?;
        sim_obs::counter!("cluster.sweeps", 1);
        Ok(ClusterSweep {
            choice,
            summary,
            unique_points: points.len(),
            redispatched,
        })
    }

    /// Distributed fleet Monte Carlo at the scenario's base operating
    /// point: `config.dies` virtual dies in [`DIE_BATCH`]-die units,
    /// sketches folded in batch-index order — the exact fold
    /// [`drm::run_fleet`] performs in one process.
    ///
    /// Die-to-die variation magnitudes come from the scenario (the wire
    /// carries `dies`/`seed`/`shape` only), so `config.variation` must
    /// equal the scenario's.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the configuration is
    /// invalid or inconsistent with the scenario, a request is rejected,
    /// or every shard died before the population finished.
    pub fn fleet(&self, app: App, config: &FleetConfig) -> Result<ClusterFleet, SimError> {
        let _span = sim_obs::span!("cluster.fleet");
        config.validate()?;
        if config.variation != self.scenario.fleet.variation {
            return Err(SimError::invalid_config(
                "fleet variation magnitudes are fixed by the scenario \
                 (the wire carries dies/seed/shape only)",
            ));
        }
        let model = self.scenario.model()?;
        let start = Instant::now();
        let batches = config.dies.div_ceil(DIE_BATCH);
        let units: Vec<Unit> = (0..batches)
            .map(|b| Unit {
                index: usize::try_from(b).expect("batch index fits usize"),
                group: fnv1a64(&b.to_le_bytes()),
                line: format!(
                    "unit fleet {} batch={b} dies={} seed={} shape={}",
                    app.name(),
                    config.dies,
                    config.seed,
                    config.shape
                ),
            })
            .collect();
        let (replies, redispatched) = self.dispatch(&units)?;

        let mut acc = FleetPartial::new();
        for (b, reply) in replies.iter().enumerate() {
            if reply.u64("batch")? != b as u64 {
                return Err(SimError::invalid_config(format!(
                    "shard answered batch {} where {b} was expected: {}",
                    reply.u64("batch")?,
                    reply.raw
                )));
            }
            acc.merge(&FleetPartial::from_parts(
                sketch_field(reply, "fit_sketch")?,
                sketch_field(reply, "life_sketch")?,
                reply.f64("fit_sum")?,
                reply.f64("life_sum")?,
                reply.u64("violations")?,
            ));
        }
        let timing_runs = self
            .status()
            .iter()
            .filter(|s| s.alive)
            .map(|s| s.timing_runs)
            .sum();
        let summary = fleet_summarize(
            &acc,
            model.target_fit().value(),
            timing_runs,
            self.live_count(),
            start.elapsed(),
        );
        sim_obs::counter!("cluster.fleets", 1);
        Ok(ClusterFleet {
            summary,
            batches,
            redispatched,
        })
    }

    /// Polls every shard's `merge` line: cumulative per-engine cache and
    /// store counters. Read-only — an unreachable shard reports
    /// `alive: false` here without being marked dead for dispatch.
    #[must_use]
    pub fn status(&self) -> Vec<ShardStatus> {
        self.shards
            .iter()
            .enumerate()
            .map(|(i, slot)| {
                let dead = ShardStatus {
                    shard: i,
                    addr: slot.addr,
                    alive: false,
                    evaluations: 0,
                    cache_hits: 0,
                    timing_runs: 0,
                    timing_reuses: 0,
                    store_records: 0,
                };
                if !slot.alive.load(Ordering::Relaxed) {
                    return dead;
                }
                let merged = Client::connect_timeout(slot.addr, self.timeout)
                    .and_then(|mut c| c.request("merge"));
                match merged {
                    Ok(reply) if reply.is_ok() => ShardStatus {
                        alive: true,
                        evaluations: reply.u64("evaluations").unwrap_or(0),
                        cache_hits: reply.u64("cache_hits").unwrap_or(0),
                        timing_runs: reply.u64("timing_runs").unwrap_or(0),
                        timing_reuses: reply.u64("timing_reuses").unwrap_or(0),
                        store_records: reply.u64("store_records").unwrap_or(0),
                        ..dead
                    },
                    _ => dead,
                }
            })
            .collect()
    }

    /// Shuts down every spawned shard and waits for them to drain.
    /// External shards are left running.
    pub fn shutdown(mut self) {
        for slot in &self.shards {
            if let Some(server) = &slot.server {
                server.shutdown();
            }
        }
        for slot in self.shards.drain(..) {
            if let Some(server) = slot.server {
                server.join();
            }
        }
    }

    fn live_shards(&self) -> Vec<usize> {
        self.shards
            .iter()
            .enumerate()
            .filter(|(_, s)| s.alive.load(Ordering::Relaxed))
            .map(|(i, _)| i)
            .collect()
    }

    fn emit(&self, event: &ClusterEvent) {
        if let Some(observer) = &self.observer {
            observer(event);
        }
    }

    /// Routes `units` across the live shards, runs one worker thread per
    /// shard, and recovers from shard deaths until every unit has a
    /// result. Returns the replies in unit-index order plus the number
    /// of re-dispatched units.
    fn dispatch(&self, units: &[Unit]) -> Result<(Vec<Reply>, u64), SimError> {
        let mut results: Vec<Option<Reply>> = (0..units.len()).map(|_| None).collect();
        // Everything ever sent to a shard, completed or not: a death
        // poisons all of it, because a timing group split between a
        // shard's surviving results and a new home would double-count
        // timing runs against the single-process fold.
        let mut assigned: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
        let mut pending: Vec<usize> = (0..units.len()).collect();
        let mut redispatched = 0u64;

        while !pending.is_empty() {
            let live = self.live_shards();
            if live.is_empty() {
                return Err(SimError::invalid_config(format!(
                    "all {} worker shard(s) died with {} unit(s) unfinished",
                    self.shards.len(),
                    pending.len()
                )));
            }
            sim_obs::gauge!("cluster.shards_live", live.len() as f64);

            // Pure function of (group, live set): a re-dispatch keeps
            // whole groups together on the survivors.
            let mut round: Vec<Vec<usize>> = (0..self.shards.len()).map(|_| Vec::new()).collect();
            for &u in &pending {
                let shard = live[(units[u].group % live.len() as u64) as usize];
                round[shard].push(u);
                assigned[shard].push(u);
            }
            pending.clear();

            let outcomes: Vec<(usize, Result<ShardReplies, ShardFailure>)> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = round
                        .iter()
                        .enumerate()
                        .filter(|(_, queue)| !queue.is_empty())
                        .map(|(shard, queue)| {
                            let queue: Vec<&Unit> = queue.iter().map(|&u| &units[u]).collect();
                            (shard, scope.spawn(move || self.run_shard(shard, &queue)))
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|(shard, handle)| {
                            (shard, handle.join().expect("shard thread panicked"))
                        })
                        .collect()
                });

            let mut fatal: Option<SimError> = None;
            for (shard, outcome) in outcomes {
                match outcome {
                    Ok(list) => {
                        for (u, reply) in list {
                            results[u] = Some(reply);
                        }
                    }
                    Err(ShardFailure::Dead(e)) => {
                        self.shards[shard].alive.store(false, Ordering::Relaxed);
                        sim_obs::counter!("cluster.shard_deaths", 1);
                        sim_obs::log_debug!("cluster", "shard {shard} died: {e}");
                    }
                    Err(ShardFailure::Request(e)) => fatal = Some(e),
                }
            }
            if let Some(e) = fatal {
                return Err(e);
            }

            for (shard, history) in assigned.iter_mut().enumerate() {
                if self.shards[shard].alive.load(Ordering::Relaxed) || history.is_empty() {
                    continue;
                }
                let n = history.len();
                for u in history.drain(..) {
                    results[u] = None;
                    pending.push(u);
                }
                redispatched += n as u64;
                sim_obs::counter!("cluster.redispatched", n as u64);
                self.emit(&ClusterEvent::ShardDead {
                    shard,
                    redispatched: n,
                });
            }
            pending.sort_unstable();
        }

        let replies = results
            .into_iter()
            .map(|r| r.expect("dispatch left a unit unresolved"))
            .collect();
        Ok((replies, redispatched))
    }

    /// One shard's round: connect (with retry), handshake the shard
    /// role, then answer the queue sequentially. Sequential dispatch
    /// keeps the shard's timing-reuse order deterministic — the first
    /// unit of a timing group runs the simulation, the rest reuse it.
    fn run_shard(&self, shard: usize, queue: &[&Unit]) -> Result<ShardReplies, ShardFailure> {
        let slot = &self.shards[shard];
        let mut client = Client::connect_with_retry(slot.addr, self.timeout, &self.policy)
            .map_err(ShardFailure::Dead)?;
        let handshake = client
            .request(&format!("shard index={shard} shards={}", self.shards.len()))
            .map_err(ShardFailure::Dead)?;
        if !handshake.is_ok() {
            return Err(ShardFailure::Request(SimError::invalid_config(format!(
                "shard {shard} rejected the handshake: {}",
                handshake.raw
            ))));
        }
        let mut out = Vec::with_capacity(queue.len());
        for unit in queue {
            let reply = client
                .request_with_retry(&unit.line, &self.policy)
                .map_err(ShardFailure::Dead)?;
            match reply.status {
                Status::Ok => {
                    sim_obs::counter!("cluster.units", 1);
                    self.emit(&ClusterEvent::UnitDone {
                        shard,
                        unit: unit.index,
                    });
                    out.push((unit.index, reply));
                }
                Status::Err => {
                    return Err(ShardFailure::Request(SimError::invalid_config(format!(
                        "shard {shard} rejected `{}`: {}",
                        unit.line, reply.raw
                    ))))
                }
                Status::Busy => {
                    return Err(ShardFailure::Dead(SimError::invalid_config(format!(
                        "shard {shard} still busy after retries: {}",
                        reply.raw
                    ))))
                }
            }
        }
        Ok(out)
    }
}

/// One decoded `unit sweep` score.
struct UnitScore {
    bips: f64,
    fit: f64,
    feasible: bool,
}

/// The full operating-point identity (voltage included) — the dedup key,
/// mirroring the engine's evaluation-cache key.
type PointKey = (u32, u32, u32, u64, u64);

fn point_key(arch: ArchPoint, dvs: DvsPoint) -> PointKey {
    (
        arch.window,
        arch.alus,
        arch.fpus,
        dvs.frequency.0.to_bits(),
        dvs.vdd.0.to_bits(),
    )
}

/// The affinity-routing hash over the *timing-relevant* key: voltage is
/// deliberately absent, so all voltage variants of a configuration share
/// a shard and its timing cache.
fn route_group(app: App, arch: ArchPoint, dvs: DvsPoint) -> u64 {
    let mut bytes = Vec::with_capacity(32);
    bytes.extend_from_slice(app.name().as_bytes());
    for v in [arch.window, arch.alus, arch.fpus] {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes.extend_from_slice(&dvs.frequency.0.to_bits().to_le_bytes());
    fnv1a64(&bytes)
}

/// Formats one `unit sweep` request. Floats print shortest-round-trip,
/// and the server takes an explicit `freq`+`vdd` pair verbatim, so the
/// shard reconstructs this exact operating point.
fn unit_sweep_line(app: App, index: usize, arch: ArchPoint, dvs: DvsPoint) -> String {
    format!(
        "unit sweep {} index={index} freq={} vdd={} window={} alus={} fpus={}",
        app.name(),
        dvs.frequency.0,
        dvs.vdd.0,
        arch.window,
        arch.alus,
        arch.fpus
    )
}

/// Decodes a unit's pass-local evaluation delta (workers deliberately 0:
/// the merged summary reports the cluster width instead).
fn unit_delta(reply: &Reply) -> Result<SweepSummary, SimError> {
    Ok(SweepSummary {
        workers: 0,
        evaluations: reply.u64("evaluations")?,
        cache_hits: reply.u64("cache_hits")?,
        timing_runs: reply.u64("timing_runs")?,
        timing_reuses: reply.u64("timing_reuses")?,
        wall: Duration::from_nanos(reply.u64("wall_ns")?),
        busy: Duration::from_nanos(reply.u64("busy_ns")?),
    })
}

fn sketch_field(reply: &Reply, key: &str) -> Result<QuantileSketch, SimError> {
    let raw = reply.get(key).ok_or_else(|| {
        SimError::invalid_config(format!("response missing `{key}`: {}", reply.raw))
    })?;
    QuantileSketch::from_compact_string(raw)
        .map_err(|e| SimError::invalid_config(format!("bad `{key}` sketch: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_server::{parse_request, Request};

    fn arch(window: u32) -> ArchPoint {
        ArchPoint {
            window,
            alus: 6,
            fpus: 4,
        }
    }

    fn dvs(ghz: f64, vdd: f64) -> DvsPoint {
        DvsPoint {
            frequency: sim_common::Hertz::from_ghz(ghz),
            vdd: sim_common::Volts(vdd),
        }
    }

    #[test]
    fn routing_groups_voltage_variants_together() {
        // Same timing key (app, arch, frequency), different voltage:
        // one group, one shard, one timing run.
        let a = route_group(App::Gzip, arch(128), dvs(4.0, 1.0));
        let b = route_group(App::Gzip, arch(128), dvs(4.0, 0.9));
        assert_eq!(a, b);
        // Any timing-relevant difference splits the group.
        assert_ne!(a, route_group(App::Gzip, arch(64), dvs(4.0, 1.0)));
        assert_ne!(a, route_group(App::Gzip, arch(128), dvs(3.5, 1.0)));
        assert_ne!(a, route_group(App::Twolf, arch(128), dvs(4.0, 1.0)));
    }

    #[test]
    fn unit_sweep_line_round_trips_the_exact_point() {
        // An awkward frequency (ulp-sensitive) and voltage must survive
        // the wire bit-for-bit: format here, parse with the server's own
        // grammar, compare bits.
        let point = dvs(3.700000000000001, 0.9349999999999999);
        let line = unit_sweep_line(App::Equake, 17, arch(96), point);
        let request = parse_request(&line).expect("parses");
        let Request::UnitSweep(unit) = request else {
            panic!("parsed to the wrong verb");
        };
        assert_eq!(unit.index.value, 17);
        assert_eq!(unit.app.value, "equake");
        assert_eq!(
            unit.point.freq_hz.unwrap().value.to_bits(),
            point.frequency.0.to_bits()
        );
        assert_eq!(
            unit.point.vdd.unwrap().value.to_bits(),
            point.vdd.0.to_bits()
        );
        assert_eq!(unit.point.window.unwrap().value, 96);
        assert_eq!(unit.point.alus.unwrap().value, 6);
        assert_eq!(unit.point.fpus.unwrap().value, 4);
    }

    #[test]
    fn coordinator_requires_a_cluster_section() {
        let err = match Coordinator::start(Scenario::paper_default(), &ServerConfig::default()) {
            Ok(_) => panic!("paper default has no [cluster] section"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("[cluster]"), "{err}");
    }

    #[test]
    fn point_key_distinguishes_voltage_but_route_group_does_not() {
        let a = point_key(arch(128), dvs(4.0, 1.0));
        let b = point_key(arch(128), dvs(4.0, 0.9));
        assert_ne!(a, b, "the dedup key must keep distinct voltages apart");
    }
}
