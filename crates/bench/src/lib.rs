//! `bench-suite`: the harness that regenerates every table and figure of
//! the ISCA-04 RAMP/DRM paper.
//!
//! One binary per artifact:
//!
//! | Binary   | Paper artifact | What it prints |
//! |----------|----------------|----------------|
//! | `table1` | Table 1        | the base processor parameters |
//! | `table2` | Table 2        | per-app IPC and base power |
//! | `fig1`   | Figure 1       | app FIT vs `T_qual` on three processors |
//! | `fig2`   | Figure 2       | ArchDVS DRM performance, all apps × 4 `T_qual` |
//! | `fig3`   | Figure 3       | Arch vs DVS vs ArchDVS for bzip2 vs `T_qual` |
//! | `fig4`   | Figure 4       | DVS frequency chosen by DRM vs DTM per app |
//!
//! Std-only micro-benchmarks (`cargo bench`, via the in-tree
//! [`microbench`] harness) cover the substrate layers (timing simulator,
//! thermal solver, RAMP evaluation) and the end-to-end pipeline, plus
//! ablation studies of the design choices called out in DESIGN.md.
//!
//! Every figure driver shares one [`Oracle`] whose batch engine fans
//! evaluations across `RAMP_JOBS` worker threads (0 or unset = all
//! cores) and ends with a one-line sweep summary.
//!
//! ## The `T_qual` axis mapping
//!
//! The paper chose its qualification temperatures relative to the thermal
//! range its simulator produced (coolest app ≈ 325 K, hottest ≈ 400 K).
//! Our substrate's range is 351–405 K, so each sweep point is mapped to
//! the same *semantic* landmark (see EXPERIMENTS.md):
//!
//! | Paper | Meaning | Ours |
//! |-------|---------|------|
//! | 400 K | worst-case observed temperature | 405 K |
//! | 370 K | hottest apps just meet the target at base | 394 K |
//! | 345 K | the "average application" point | 366 K |
//! | 325 K | drastic underdesign | 340 K |

use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, Once};
use std::time::{Duration, Instant};

use sim_obs::json::{parse_object, JsonObject};

use drm::{EvalParams, Oracle};
use ramp::ReliabilityModel;
use scenario::Scenario;
use sim_common::{Kelvin, SimError};
use workload::App;

/// Our analogue of the paper's 400 K point: the worst-case (hottest
/// observed) temperature on the base processor.
pub const T_WORST_CASE: f64 = 405.0;
/// Our analogue of the paper's 370 K: the hottest applications just meet
/// the FIT target at base settings ("application-oriented" qualification).
pub const T_APP_ORIENTED: f64 = 394.0;
/// Our analogue of the paper's 345 K: qualification for the average
/// application.
pub const T_AVERAGE_APP: f64 = 366.0;
/// Our analogue of the paper's 325 K: drastic underdesign.
pub const T_UNDERDESIGNED: f64 = 340.0;

/// The four Figure 2 sweep points, hottest (most expensive) first, paired
/// with the paper's nominal temperature for reporting.
pub const FIG2_SWEEP: [(f64, f64); 4] = [
    (T_WORST_CASE, 400.0),
    (T_APP_ORIENTED, 370.0),
    (T_AVERAGE_APP, 345.0),
    (T_UNDERDESIGNED, 325.0),
];

/// The six Figure 3/Figure 4 sweep points (ours, paper's nominal).
pub const FIG34_SWEEP: [(f64, f64); 6] = [
    (340.0, 325.0),
    (350.0, 335.0),
    (366.0, 345.0),
    (380.0, 360.0),
    (394.0, 370.0),
    (405.0, 400.0),
];

/// DVS grid granularity used by the figure reproductions, GHz.
pub const DVS_STEP_GHZ: f64 = 0.25;

/// Simulation lengths: `EvalParams::standard()` by default, or
/// `EvalParams::quick()` when the `RAMP_FAST` environment variable is set
/// (for smoke-testing the binaries).
pub fn eval_params() -> EvalParams {
    if std::env::var_os("RAMP_FAST").is_some() {
        EvalParams::quick()
    } else {
        EvalParams::standard()
    }
}

/// Sweep worker count: `RAMP_JOBS` when set (0 = all cores), otherwise
/// every available core.
pub fn sweep_workers() -> usize {
    std::env::var("RAMP_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(0)
}

/// Installs the observability sinks requested by the environment, once
/// per process: `RAMP_TRACE=<path.jsonl>` records a JSONL trace of the
/// run (readable with `ramp report`), and `RAMP_METRICS=1` turns on the
/// shared metric aggregator so [`print_sweep_summary`] reports from the
/// batch engine's own counters. Called automatically by [`make_oracle`],
/// so every figure driver shares one aggregator.
pub fn init_observability() {
    static OBS_INIT: Once = Once::new();
    OBS_INIT.call_once(|| {
        let mut enable = false;
        if let Some(path) = std::env::var_os("RAMP_TRACE") {
            match sim_obs::JsonlSink::create(Path::new(&path)) {
                Ok(sink) => {
                    sim_obs::install_sink(Arc::new(sink));
                    enable = true;
                }
                Err(e) => eprintln!("warning: cannot create RAMP_TRACE file: {e}"),
            }
        }
        if let Some(path) = std::env::var_os("RAMP_TRACE_OUT") {
            match sim_obs::TraceEventSink::create(Path::new(&path)) {
                Ok(sink) => {
                    sim_obs::install_sink(Arc::new(sink));
                    enable = true;
                }
                Err(e) => eprintln!("warning: cannot create RAMP_TRACE_OUT file: {e}"),
            }
        }
        if std::env::var_os("RAMP_METRICS").is_some_and(|v| !v.is_empty()) {
            enable = true;
        }
        if enable {
            sim_obs::set_enabled(true);
        }
    });
}

/// Prints the driver's one-line sweep summary (jobs, evals, cache hits,
/// evals/s, wall time, realized speedup).
///
/// With metrics enabled (`RAMP_METRICS`/`RAMP_TRACE`), the line is
/// rebuilt from the sim-obs aggregator — the same `drm.batch.*` counters
/// a trace records — so the printed summary and the trace cannot drift
/// apart. Otherwise it falls back to the oracle's own bookkeeping.
pub fn print_sweep_summary(oracle: &Oracle) {
    if sim_obs::enabled() {
        let snapshot = sim_obs::flush();
        let counter = |name: &str| {
            snapshot.iter().find_map(|m| match m.value {
                sim_obs::MetricValue::Counter(c) if m.name == name => Some(c),
                _ => None,
            })
        };
        if let (Some(evals), Some(hits), Some(wall_ns), Some(busy_ns)) = (
            counter("drm.batch.evaluations"),
            counter("drm.batch.warm_hits"),
            counter("drm.batch.wall_ns"),
            counter("drm.batch.busy_ns"),
        ) {
            // `drm.batch.evaluations` counts only cold jobs fanned out
            // (the batch engine dedups warm keys into `warm_hits`), and
            // `drm.batch.timing_runs` how many of those actually paid for
            // a cycle-level timing simulation (the rest reused one).
            let runs = counter("drm.batch.timing_runs").unwrap_or(evals);
            let wall_s = wall_ns as f64 / 1e9;
            println!(
                "sweep: {} jobs | {evals} evals, {hits} cache hits | timing {runs} runs, {} reused | {:.1} evals/s | wall {:.2} s | speedup {:.2}x",
                oracle.workers(),
                evals.saturating_sub(runs),
                if wall_s > 0.0 { evals as f64 / wall_s } else { 0.0 },
                wall_s,
                if wall_ns > 0 { busy_ns as f64 / wall_ns as f64 } else { 1.0 },
            );
            return;
        }
    }
    println!("{}", oracle.summary());
}

/// The scenario every figure driver builds from: `RAMP_SCENARIO=<file>`
/// when set, the paper's own setup otherwise.
///
/// # Errors
///
/// Propagates scenario load errors.
pub fn base_scenario() -> Result<Scenario, SimError> {
    match std::env::var("RAMP_SCENARIO") {
        Ok(path) if !path.is_empty() => Scenario::load(&path),
        _ => Ok(Scenario::paper_default()),
    }
}

/// Builds a reliability model qualified at `t_qual` with the given
/// suite-maximum activity (§3.7: the scenario's FIT budget, even
/// mechanism split, area-proportional structure split) over the
/// [`base_scenario`]'s processor and floorplan.
///
/// # Errors
///
/// Propagates qualification errors.
pub fn qualified_model(t_qual: f64, alpha_qual: f64) -> Result<ReliabilityModel, SimError> {
    base_scenario()?.model_at(Kelvin(t_qual), alpha_qual)
}

/// Creates a fresh oracle over the [`base_scenario`]'s stack, sized by
/// [`sweep_workers`].
///
/// # Errors
///
/// Propagates construction errors.
pub fn make_oracle() -> Result<Oracle, SimError> {
    init_observability();
    let scn = base_scenario()?;
    let params = if std::env::var_os("RAMP_FAST").is_some() {
        EvalParams::quick()
    } else {
        scn.eval
    };
    scn.oracle_with(params, sweep_workers())
}

/// The suite-maximum activity factor `α_qual` (§3.7), measured on the base
/// processor over all nine applications.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn suite_alpha_qual(oracle: &Oracle) -> Result<f64, SimError> {
    oracle.suite_max_activity(&App::ALL)
}

/// Runs `job` for every application, all sharing `oracle` (and hence one
/// evaluation cache). The expensive pipeline work should already be
/// prefetched through the oracle's batch engine (`Oracle::prefetch_suite`);
/// the per-app jobs then run on scoped threads and mostly score cache
/// hits, so results stay cheap and deterministic. Results come back in
/// [`App::ALL`] order.
///
/// # Panics
///
/// Panics if a worker thread panics or a job returns an error.
pub fn parallel_over_apps<R, F>(oracle: &Oracle, job: F) -> Vec<(App, R)>
where
    R: Send,
    F: Fn(App, &Oracle) -> Result<R, SimError> + Sync,
{
    let results: Mutex<Vec<(usize, App, R)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for (i, app) in App::ALL.into_iter().enumerate() {
            let results = &results;
            let job = &job;
            scope.spawn(move || {
                let r = job(app, oracle).unwrap_or_else(|e| panic!("job for {app} failed: {e}"));
                results.lock().expect("no poisoned lock").push((i, app, r));
            });
        }
    });
    let mut collected = results.into_inner().expect("no poisoned lock");
    collected.sort_by_key(|(i, _, _)| *i);
    collected.into_iter().map(|(_, app, r)| (app, r)).collect()
}

/// A minimal wall-clock micro-benchmark harness (std-only stand-in for
/// an external benchmarking crate, keeping the build hermetic).
///
/// Runs `f` until at least `min_time` has elapsed (after one warmup
/// call), prints mean time per iteration, and returns it in seconds so
/// drivers can fold the result into a [`BenchReport`].
pub fn microbench<R>(name: &str, min_time: Duration, mut f: impl FnMut() -> R) -> f64 {
    let _ = std::hint::black_box(f());
    let start = Instant::now();
    let mut iters = 0u64;
    while start.elapsed() < min_time {
        let _ = std::hint::black_box(f());
        iters += 1;
    }
    let per = start.elapsed().as_secs_f64() / iters as f64;
    let (value, unit) = if per >= 1.0 {
        (per, "s")
    } else if per >= 1e-3 {
        (per * 1e3, "ms")
    } else if per >= 1e-6 {
        (per * 1e6, "us")
    } else {
        (per * 1e9, "ns")
    };
    println!("{name:<40} {value:>10.2} {unit}/iter  ({iters} iters)");
    per
}

/// Minimum sampling time per micro-benchmark: 300 ms normally, 40 ms
/// under `RAMP_FAST` so CI can smoke-test the whole driver quickly.
#[must_use]
pub fn bench_min_time() -> Duration {
    if std::env::var_os("RAMP_FAST").is_some() {
        Duration::from_millis(40)
    } else {
        Duration::from_millis(300)
    }
}

/// Version marker every `BENCH_pipeline.json` carries; CI greps for it.
pub const BENCH_SCHEMA: &str = "ramp-bench-pipeline/1";

/// Version marker the server load-generator report carries.
pub const BENCH_SERVER_SCHEMA: &str = "ramp-bench-server/1";

/// Version marker the fleet population-throughput report carries.
pub const BENCH_FLEET_SCHEMA: &str = "ramp-bench-fleet/1";

/// Version marker the telemetry-overhead report carries.
pub const BENCH_OBS_SCHEMA: &str = "ramp-bench-obs/1";

/// Version marker the sliced-evaluation speedup report carries.
pub const BENCH_SLICE_SCHEMA: &str = "ramp-bench-slice/1";

/// Version marker the surrogate-search speedup report carries.
pub const BENCH_SURROGATE_SCHEMA: &str = "ramp-bench-surrogate/1";

/// Version marker the cluster sweep-fabric report carries.
pub const BENCH_CLUSTER_SCHEMA: &str = "ramp-bench-cluster/1";

/// Where a bench driver writes its machine-readable results:
/// `RAMP_BENCH_OUT` when set, otherwise `file_name` (e.g.
/// `BENCH_pipeline.json`) at the repository root. Every driver resolves
/// its output through this one helper, so the environment override and
/// the root-relative layout cannot drift between reports.
#[must_use]
pub fn bench_report_path_for(file_name: &str) -> PathBuf {
    match std::env::var_os("RAMP_BENCH_OUT") {
        Some(p) if !p.is_empty() => PathBuf::from(p),
        _ => Path::new(env!("CARGO_MANIFEST_DIR")).join(format!("../../{file_name}")),
    }
}

/// Where the pipeline bench driver writes its results (see
/// [`bench_report_path_for`]).
#[must_use]
pub fn bench_report_path() -> PathBuf {
    bench_report_path_for("BENCH_pipeline.json")
}

/// A machine-readable micro-benchmark report: one flat JSON object
/// (dotted keys, no nesting) reusing the trace format's in-tree JSON
/// builder, so the perf-regression harness stays dependency-free.
///
/// The object always carries a `schema` marker ([`BENCH_SCHEMA`] by
/// default); the writer re-parses its own output before touching the
/// filesystem, so a malformed report fails the producing run, not the
/// consuming one.
#[derive(Debug)]
pub struct BenchReport {
    obj: JsonObject,
    schema: String,
}

impl BenchReport {
    /// Starts a report carrying the default pipeline schema marker.
    #[must_use]
    pub fn new() -> BenchReport {
        BenchReport::with_schema(BENCH_SCHEMA)
    }

    /// Starts a report carrying an explicit schema marker (e.g.
    /// [`BENCH_SERVER_SCHEMA`] for the server load generator).
    #[must_use]
    pub fn with_schema(schema: &str) -> BenchReport {
        let mut obj = JsonObject::new();
        obj.str("schema", schema);
        BenchReport {
            obj,
            schema: schema.to_owned(),
        }
    }

    /// Records a float metric (seconds, rates, ratios).
    pub fn f64(&mut self, key: &str, value: f64) {
        self.obj.f64(key, value);
    }

    /// Records an integer metric (counts).
    pub fn u64(&mut self, key: &str, value: u64) {
        self.obj.u64(key, value);
    }

    /// Serializes, self-validates (the line must parse back as a flat
    /// object with the right schema marker), and writes to `path`.
    ///
    /// # Errors
    ///
    /// Fails when the serialized report does not round-trip through
    /// [`parse_object`] or the file cannot be written.
    pub fn write(self, path: &Path) -> std::io::Result<()> {
        let line = self.obj.finish();
        let ok =
            parse_object(&line).is_some_and(|p| p.get_str("schema") == Some(self.schema.as_str()));
        if !ok {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "bench report failed self-validation",
            ));
        }
        std::fs::write(path, line + "\n")
    }

    /// Resolves the destination for `file_name` via
    /// [`bench_report_path_for`], writes the self-validated report, and
    /// prints where it landed — the shared tail every driver ends with.
    ///
    /// # Errors
    ///
    /// Propagates [`BenchReport::write`] errors.
    pub fn emit(self, file_name: &str) -> std::io::Result<PathBuf> {
        let path = bench_report_path_for(file_name);
        self.write(&path)?;
        println!("wrote {}", path.display());
        Ok(path)
    }
}

impl Default for BenchReport {
    fn default() -> Self {
        BenchReport::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ramp::FIT_TARGET_STANDARD;

    #[test]
    fn sweeps_are_descending_and_in_range() {
        let mut last = f64::INFINITY;
        for (t, _) in FIG2_SWEEP {
            assert!(t < last);
            assert!((330.0..=410.0).contains(&t));
            last = t;
        }
        let mut last = 0.0;
        for (t, _) in FIG34_SWEEP {
            assert!(t > last);
            last = t;
        }
    }

    #[test]
    fn qualified_model_round_trips_target() {
        let m = qualified_model(T_AVERAGE_APP, 0.4).unwrap();
        assert_eq!(m.target_fit().value(), FIT_TARGET_STANDARD);
    }

    #[test]
    fn bench_report_round_trips_and_validates() {
        let mut r = BenchReport::new();
        r.f64("sweep.naive_s", 0.25);
        r.u64("sweep.timing_runs", 2);
        let dir = std::env::temp_dir().join(format!("ramp-bench-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_pipeline.json");
        r.write(&path).unwrap();
        let line = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_object(line.trim()).expect("valid flat JSON");
        assert_eq!(parsed.get_str("schema"), Some(BENCH_SCHEMA));
        assert_eq!(parsed.get_f64("sweep.naive_s"), Some(0.25));
        assert_eq!(parsed.get_u64("sweep.timing_runs"), Some(2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn server_report_carries_its_own_schema() {
        let mut r = BenchReport::with_schema(BENCH_SERVER_SCHEMA);
        r.f64("server.throughput_8c_rps", 1234.5);
        let dir = std::env::temp_dir().join(format!("ramp-bench-srv-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_server.json");
        r.write(&path).unwrap();
        let line = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_object(line.trim()).expect("valid flat JSON");
        assert_eq!(parsed.get_str("schema"), Some(BENCH_SERVER_SCHEMA));
        assert_eq!(parsed.get_f64("server.throughput_8c_rps"), Some(1234.5));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bench_report_path_defaults_to_repo_root() {
        if std::env::var_os("RAMP_BENCH_OUT").is_none() {
            let p = bench_report_path();
            assert!(p.ends_with("BENCH_pipeline.json"), "{}", p.display());
        }
    }

    #[test]
    fn parallel_runner_preserves_order() {
        let oracle = make_oracle().unwrap();
        let out = parallel_over_apps(&oracle, |app, _| Ok(app.name().len()));
        assert_eq!(out.len(), App::ALL.len());
        for ((a, n), expect) in out.iter().zip(App::ALL) {
            assert_eq!(*a, expect);
            assert_eq!(*n, expect.name().len());
        }
    }
}
