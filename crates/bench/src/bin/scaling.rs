//! Technology-scaling study (§1.2): the same core design projected across
//! 90 nm → 65 nm → 45 nm. For a fixed qualification cost (`T_qual`), FIT
//! grows with scaling; equivalently, each generation needs a costlier
//! qualification for the same workload — the paper's motivating claim.

use bench_suite::{eval_params, T_APP_ORIENTED};
use drm::scaling::{required_qualification_temperature, scaling_study, TechnologyNode};
use ramp::QualificationPoint;
use sim_common::Kelvin;
use workload::App;

fn main() {
    let params = eval_params();
    let alpha = 0.48;
    let qual = QualificationPoint::at_temperature(Kelvin(T_APP_ORIENTED), alpha);
    let nodes = TechnologyNode::all();

    for app in [App::MpgDec, App::Gzip, App::Art] {
        println!("== {app}: same design across process generations ==");
        println!(
            "{:>6} {:>7} {:>8} {:>8} {:>9} {:>9} {:>10} {:>10}",
            "node", "f(GHz)", "Vdd", "die mm2", "P (W)", "Tmax (K)", "FIT", "req Tq(K)"
        );
        let rows = scaling_study(app, &nodes, &qual, params).expect("study");
        for row in rows {
            let req = required_qualification_temperature(&row.node, app, alpha, params)
                .expect("bisection");
            println!(
                "{:>6} {:>7.1} {:>8.2} {:>8.1} {:>9.1} {:>9.1} {:>10.0} {:>10.1}",
                row.node.name,
                row.node.frequency.to_ghz(),
                row.node.vdd.0,
                row.node.floorplan().expect("floorplan").total_area().0,
                row.evaluation.average_power().0,
                row.evaluation.max_temperature().0,
                row.fit.value(),
                req.0,
            );
        }
        println!();
    }
    println!("Reading: at a fixed T_qual = {T_APP_ORIENTED:.0} K the FIT grows every");
    println!("generation (power density and leakage outpace the area shrink), and");
    println!("the qualification temperature needed to stay at 4000 FIT climbs —");
    println!("§1.2's case that scaling makes worst-case qualification untenable.");
}
