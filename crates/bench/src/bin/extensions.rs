//! Extension studies beyond the paper's evaluation:
//!
//! 1. **Intra-application DRM** — per-interval adaptation vs the paper's
//!    once-per-run oracle (§5 notes its oracle "does not exploit
//!    intra-application variability").
//! 2. **Workload mixes** — DRM for a time-shared consolidation profile
//!    (§3.6's weighted-average workload FIT).
//! 3. **Budget allocation policies** — generalizing §3.7's even/area
//!    split.

use bench_suite::{
    eval_params, make_oracle, print_sweep_summary, qualified_model, suite_alpha_qual,
    T_APP_ORIENTED, T_AVERAGE_APP, T_WORST_CASE,
};
use drm::{intra_app_best, Strategy, WorkloadMix};
use ramp::{FailureParams, FitBudget, QualificationPoint, ReliabilityModel};
use sim_common::{Kelvin, StructureMap};
use workload::App;

fn main() {
    let oracle = make_oracle().expect("oracle");
    let alpha = suite_alpha_qual(&oracle).expect("alpha");
    let _ = eval_params();

    println!("Extension 1: intra-application DRM (per-interval schedules)");
    println!(
        "{:>10} {:>10} {:>12} {:>12} {:>9}",
        "app", "T_qual(K)", "inter-app", "intra-app", "switches"
    );
    for app in [App::MpgDec, App::Mp3Dec, App::Bzip2] {
        for t in [T_AVERAGE_APP, T_APP_ORIENTED, T_WORST_CASE] {
            let m = qualified_model(t, alpha).expect("model");
            let inter = oracle.best(app, Strategy::Dvs, &m, 0.25).expect("inter");
            let intra = intra_app_best(&oracle, app, Strategy::Dvs, &m, 0.25).expect("intra");
            println!(
                "{:>10} {:>10.0} {:>11.2}{} {:>11.2}{} {:>9}",
                app.name(),
                t,
                inter.relative_performance,
                if inter.feasible { ' ' } else { '!' },
                intra.relative_performance,
                if intra.feasible { ' ' } else { '!' },
                intra.switches
            );
        }
    }
    println!();

    println!("Extension 2: DRM for workload mixes (weighted FIT, SS3.6)");
    let m = qualified_model(T_APP_ORIENTED, alpha).expect("model");
    let mixes = [
        ("pure MPGdec", vec![(App::MpgDec, 1.0)]),
        (
            "80/20 MPGdec/art",
            vec![(App::MpgDec, 0.8), (App::Art, 0.2)],
        ),
        (
            "50/50 MPGdec/art",
            vec![(App::MpgDec, 0.5), (App::Art, 0.5)],
        ),
        (
            "20/80 MPGdec/art",
            vec![(App::MpgDec, 0.2), (App::Art, 0.8)],
        ),
    ];
    println!("{:>20} {:>10} {:>10}", "mix", "DVS (GHz)", "perf");
    for (label, entries) in mixes {
        let mix = WorkloadMix::new(entries).expect("mix");
        let choice = mix
            .best(&oracle, Strategy::Dvs, &m, 0.25)
            .expect("mix search");
        println!(
            "{:>20} {:>10.2} {:>9.2}{}",
            label,
            choice.dvs.frequency.to_ghz(),
            choice.relative_performance,
            if choice.feasible { ' ' } else { '!' }
        );
    }
    println!("(cooler companions let the hot decoder clock higher: budget is");
    println!("banked across the mix exactly as it is across time)");
    println!();

    println!("Extension 3: FIT budget allocation policies (SS3.7 generalized)");
    let shares = sim_common::Floorplan::r10000_65nm().area_shares();
    let qual = QualificationPoint::at_temperature(Kelvin(T_APP_ORIENTED), alpha);
    // Utilization-weighted: budget follows observed structure activity.
    let hot_structs = {
        let ev = oracle.base_evaluation(App::MpgDec).expect("eval");
        let mut w: StructureMap<f64> = StructureMap::splat(0.0);
        for iv in &ev.intervals {
            for (s, c) in iv.conditions.iter() {
                w[s] += c.activity;
            }
        }
        w
    };
    let policies: [(&str, FitBudget); 3] = [
        (
            "area (paper)",
            FitBudget::even_by_area(4000.0, &shares).expect("budget"),
        ),
        ("uniform", FitBudget::uniform(4000.0).expect("budget")),
        (
            "utilization",
            FitBudget::weighted(4000.0, &hot_structs).expect("budget"),
        ),
    ];
    println!("{:>14} {:>10} {:>10}", "policy", "MPGdec", "twolf");
    for (label, budget) in policies {
        let model =
            ReliabilityModel::qualify_with_budget(FailureParams::ramp_65nm(), &qual, &budget)
                .expect("qualification");
        let mut cells = Vec::new();
        for app in [App::MpgDec, App::Twolf] {
            let c = oracle
                .best(app, Strategy::Dvs, &model, 0.25)
                .expect("search");
            cells.push(format!(
                "{:.2}{}",
                c.relative_performance,
                if c.feasible { "" } else { "!" }
            ));
        }
        println!("{:>14} {:>10} {:>10}", label, cells[0], cells[1]);
    }
    println!("(the allocation policy is worth real performance: the uniform");
    println!("split beats the paper's area-proportional one for the hot app,");
    println!("because the large cache blocks do not consume their area share");
    println!("of the wear budget)");
    println!();
    print_sweep_summary(&oracle);
}
