//! Figure 3 reproduction: comparison of the three DRM adaptation
//! strategies (Arch, DVS, ArchDVS) for bzip2 across qualification
//! temperatures.
//!
//! Expected shape (paper §7.2): DVS and ArchDVS are nearly identical and
//! far outperform Arch (which can never exceed 1.0 since it cannot change
//! the frequency); at low `T_qual` the gap is largest.

use bench_suite::{
    make_oracle, print_sweep_summary, qualified_model, suite_alpha_qual, DVS_STEP_GHZ, FIG34_SWEEP,
};
use drm::Strategy;
use workload::App;

fn main() {
    let app = App::Bzip2;
    let oracle = make_oracle().expect("oracle");
    let alpha = suite_alpha_qual(&oracle).expect("alpha_qual");
    // All three strategies draw from ArchDVS's candidate set: one batch
    // pass warms the cache for the entire figure.
    oracle
        .prefetch_suite(&[app], Strategy::ArchDvs, DVS_STEP_GHZ)
        .expect("sweep");

    println!("Figure 3: DRM adaptations for {app} (performance relative to base)");
    println!("==================================================================");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10}",
        "T_qual(K)", "(paper K)", "Arch", "DVS", "ArchDVS"
    );
    for (t_qual, paper_t) in FIG34_SWEEP {
        let model = qualified_model(t_qual, alpha).expect("qualification");
        let mut perfs = Vec::new();
        for strategy in Strategy::ALL {
            let choice = oracle
                .best(app, strategy, &model, DVS_STEP_GHZ)
                .expect("search");
            perfs.push((choice.relative_performance, choice.feasible));
        }
        println!(
            "{:>10.0} {:>10.0} {:>9.2}{} {:>9.2}{} {:>9.2}{}",
            t_qual,
            paper_t,
            perfs[0].0,
            if perfs[0].1 { ' ' } else { '!' },
            perfs[1].0,
            if perfs[1].1 { ' ' } else { '!' },
            perfs[2].0,
            if perfs[2].1 { ' ' } else { '!' },
        );
    }
    println!();
    println!("('!' marks points where no candidate of the strategy meets the");
    println!("target; the minimum-FIT configuration is reported instead.)");
    println!();
    print_sweep_summary(&oracle);
}
