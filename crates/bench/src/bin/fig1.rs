//! Figure 1 reproduction: the DRM motivation scenario.
//!
//! Three processors with decreasing qualification temperatures (and hence
//! decreasing reliability design cost) run two applications — A, a hot
//! multimedia decoder, and B, a cool integer code. On the expensive
//! processor both applications exceed the reliability target; on the
//! middle one only B meets it; on the cheap one neither does. DRM closes
//! the gap by adapting the failing cases.

use bench_suite::{make_oracle, print_sweep_summary, qualified_model, suite_alpha_qual};
use drm::{ArchPoint, DvsPoint};
use ramp::FIT_TARGET_STANDARD;
use workload::App;

fn main() {
    let oracle = make_oracle().expect("oracle");
    let alpha = suite_alpha_qual(&oracle).expect("alpha_qual");
    let app_a = App::MpgDec; // hot
    let app_b = App::Twolf; // cool
    let processors = [(1, 405.0), (2, 375.0), (3, 345.0)];

    println!("Figure 1: FIT of applications A ({app_a}) and B ({app_b})");
    println!("on three processors with decreasing qualification cost");
    println!("(FIT target = {FIT_TARGET_STANDARD}; alpha_qual = {alpha:.3})");
    println!();
    println!(
        "{:>10} {:>8} {:>12} {:>8} {:>12} {:>8}",
        "T_qual(K)", "FIT(A)", "A meets?", "FIT(B)", "B meets?", "cost"
    );
    for (idx, t_qual) in processors {
        let model = qualified_model(t_qual, alpha).expect("qualification");
        let mut fits = Vec::new();
        for app in [app_a, app_b] {
            let ev = oracle
                .evaluation(app, ArchPoint::most_aggressive(), DvsPoint::base())
                .expect("evaluation")
                .clone();
            fits.push(ev.application_fit(&model).total());
        }
        println!(
            "{:>10.0} {:>8.0} {:>12} {:>8.0} {:>12} {:>8}",
            t_qual,
            fits[0].value(),
            if fits[0].value() <= FIT_TARGET_STANDARD {
                "yes"
            } else {
                "NO -> DRM"
            },
            fits[1].value(),
            if fits[1].value() <= FIT_TARGET_STANDARD {
                "yes"
            } else {
                "NO -> DRM"
            },
            match idx {
                1 => "highest",
                2 => "middle",
                _ => "lowest",
            }
        );
    }
    println!();
    println!("Expected shape (paper Figure 1): processor 1 over-designed (both");
    println!("meet), processor 2 mixed (A fails, B meets), processor 3 under-");
    println!("designed (both fail). DRM adapts the failing runs to the target.");
    println!();
    print_sweep_summary(&oracle);
}
