//! Ablation studies for the design choices called out in DESIGN.md.
//!
//! Each section removes or varies one modeling ingredient and reports its
//! effect on the quantities the paper's conclusions rest on (IPC, power,
//! temperature, FIT).

use bench_suite::{eval_params, qualified_model};
use drm::{EvalParams, Evaluator};
use ramp::ReliabilityModel;
use sim_common::Floorplan;
use sim_cpu::CoreConfig;
use sim_power::{PowerModel, PowerParams};
use sim_thermal::{ThermalModel, ThermalParams};
use workload::App;

fn evaluator_with(power: PowerParams, thermal: ThermalParams, params: EvalParams) -> Evaluator {
    Evaluator::new(
        PowerModel::new(power, Floorplan::r10000_65nm()).expect("power params"),
        ThermalModel::new(thermal, Floorplan::r10000_65nm()).expect("thermal params"),
        params,
    )
    .expect("eval params")
}

fn report(label: &str, evaluator: &Evaluator, app: App, model: &ReliabilityModel) {
    let ev = evaluator
        .evaluate(app, &CoreConfig::base())
        .expect("evaluation");
    println!(
        "  {label:34} IPC {:.2}  P {:5.1} W  Tmax {:.1} K  FIT {:6.0}",
        ev.ipc,
        ev.average_power().0,
        ev.max_temperature().0,
        ev.application_fit(model).total().value()
    );
}

fn main() {
    let params = eval_params();
    let model = qualified_model(394.0, 0.48).expect("model");

    println!("Ablation 1: clock-gating idle charge (Wattch models 10%)");
    for idle in [0.0, 0.10, 0.25] {
        let mut p = PowerParams::ibm_65nm();
        p.idle_fraction = idle;
        let e = evaluator_with(p, ThermalParams::hotspot_65nm(), params);
        report(&format!("idle fraction {idle:.2}"), &e, App::Twolf, &model);
    }
    println!();

    println!("Ablation 2: leakage/temperature feedback (fixed-point depth)");
    for iters in [1, 2, 4] {
        let e = evaluator_with(
            PowerParams::ibm_65nm(),
            ThermalParams::hotspot_65nm(),
            EvalParams {
                leakage_iterations: iters,
                ..params
            },
        );
        report(&format!("{iters} iteration(s)"), &e, App::MpgDec, &model);
    }
    println!();

    println!("Ablation 3: cooling solution (sink-to-ambient resistance)");
    for r in [0.6, 0.8, 1.0] {
        let mut t = ThermalParams::hotspot_65nm();
        t.r_sink_ambient = r;
        let e = evaluator_with(PowerParams::ibm_65nm(), t, params);
        report(&format!("R_convection {r:.1} K/W"), &e, App::MpgDec, &model);
    }
    println!();

    println!("Ablation 4: FIT sampling granularity (SS3.6 time averaging)");
    println!("  (MPGdec is frame-phased; coarse sampling hides the phases)");
    for divisor in [1, 5, 20] {
        let e = evaluator_with(
            PowerParams::ibm_65nm(),
            ThermalParams::hotspot_65nm(),
            EvalParams {
                interval_instructions: (params.measure_instructions / divisor).max(1),
                ..params
            },
        );
        report(&format!("{divisor} interval(s)"), &e, App::MpgDec, &model);
    }
    println!();

    println!("Ablation 5: memory-level parallelism (L1D MSHRs; Table 1 has 12)");
    let e = evaluator_with(
        PowerParams::ibm_65nm(),
        ThermalParams::hotspot_65nm(),
        params,
    );
    for mshrs in [1, 4, 12] {
        let mut cfg = CoreConfig::base();
        cfg.mshrs = mshrs;
        let ev = e.evaluate(App::Art, &cfg).expect("evaluation");
        println!(
            "  {:34} IPC {:.2}  P {:5.1} W",
            format!("{mshrs} MSHR(s), art"),
            ev.ipc,
            ev.average_power().0
        );
    }
    println!();

    println!("Ablation 6: branch predictor capacity (Table 1 has 8192 counters)");
    for counters in [512, 2048, 8192] {
        let mut cfg = CoreConfig::base();
        cfg.bpred.counters = counters;
        let ev = e.evaluate(App::Gzip, &cfg).expect("evaluation");
        println!(
            "  {:34} IPC {:.2}",
            format!("{counters} counters, gzip"),
            ev.ipc
        );
    }
    println!();

    println!("Ablation 7: next-line prefetch (not in Table 1; default off)");
    for (app, label) in [
        (App::Equake, "equake (streaming)"),
        (App::Twolf, "twolf (pointer-chasing)"),
    ] {
        for prefetch in [false, true] {
            let mut cfg = CoreConfig::base();
            cfg.prefetch_next_line = prefetch;
            let ev = e.evaluate(app, &cfg).expect("evaluation");
            let fit = ev.application_fit(&model).total().value();
            println!(
                "  {:34} IPC {:.2}  P {:5.1} W  FIT {:6.0}",
                format!("{label}, prefetch {}", if prefetch { "on" } else { "off" }),
                ev.ipc,
                ev.average_power().0,
                fit
            );
        }
    }
}
