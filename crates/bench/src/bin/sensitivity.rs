//! Robustness/sensitivity studies: how much do the reproduction's
//! conclusions depend on (a) the qualification activity factor `α_qual`
//! (§3.7 fixes it to the suite maximum), (b) the synthetic workload seed,
//! and (c) the simulation length?

use bench_suite::{
    eval_params, print_sweep_summary, qualified_model, sweep_workers, T_APP_ORIENTED,
};
use drm::{EvalParams, Evaluator, Oracle, Strategy};
use sim_cpu::CoreConfig;
use workload::App;

fn main() {
    let params = eval_params();

    println!("Sensitivity 1: qualification activity factor alpha_qual");
    println!("(DRM DVS choice for two apps at T_qual = {T_APP_ORIENTED:.0})");
    println!("{:>8} {:>14} {:>14}", "alpha", "MPGdec", "twolf");
    let oracle = Oracle::with_workers(
        Evaluator::ibm_65nm(params).expect("evaluator"),
        sweep_workers(),
    );
    for alpha in [0.3, 0.48, 0.6, 0.8] {
        let model = qualified_model(T_APP_ORIENTED, alpha).expect("model");
        let mut cells = Vec::new();
        for app in [App::MpgDec, App::Twolf] {
            let c = oracle
                .best(app, Strategy::Dvs, &model, 0.25)
                .expect("search");
            cells.push(format!(
                "{:.2}GHz/{:.2}x",
                c.dvs.frequency.to_ghz(),
                c.relative_performance
            ));
        }
        println!("{:>8.2} {:>14} {:>14}", alpha, cells[0], cells[1]);
    }
    println!("(a larger alpha_qual inflates the EM budget constants, buying");
    println!("headroom for every app: the cost proxy is multi-dimensional)");
    println!();

    println!("Sensitivity 2: synthetic workload seed (base-config IPC)");
    println!(
        "{:>10} {:>8} {:>8} {:>8}",
        "app", "seed 1", "seed 2", "seed 3"
    );
    for app in [App::MpgDec, App::Bzip2, App::Art] {
        let mut row = Vec::new();
        for seed in [12_345u64, 777, 31_415] {
            let e = Evaluator::ibm_65nm(EvalParams { seed, ..params }).expect("evaluator");
            let ev = e.evaluate(app, &CoreConfig::base()).expect("evaluation");
            row.push(ev.ipc);
        }
        println!(
            "{:>10} {:>8.2} {:>8.2} {:>8.2}",
            app.name(),
            row[0],
            row[1],
            row[2]
        );
    }
    println!("(seed-to-seed IPC spread bounds the statistical noise of the");
    println!("synthetic-workload substitution)");
    println!();

    println!("Sensitivity 3: simulation length (bzip2 base IPC / power)");
    for (label, factor) in [("0.5x", 1u64), ("1x", 2), ("2x", 4)] {
        let p = EvalParams {
            measure_instructions: params.measure_instructions * factor / 2,
            ..params
        };
        let e = Evaluator::ibm_65nm(p).expect("evaluator");
        let ev = e
            .evaluate(App::Bzip2, &CoreConfig::base())
            .expect("evaluation");
        println!(
            "  {:>4} ({:>7} insts): IPC {:.3}, P {:.1} W, Tmax {:.1} K",
            label,
            p.measure_instructions,
            ev.ipc,
            ev.average_power().0,
            ev.max_temperature().0
        );
    }
    println!();
    print_sweep_summary(&oracle);
}
