//! Figure 4 reproduction: design for reliability vs design for
//! temperature. For each application and each temperature setting, prints
//! the frequency chosen by DVS-for-DRM (temperature = `T_qual`) and by
//! DVS-for-DTM (temperature = `T_max`), plus the constraint each choice
//! violates from the other regime's point of view.
//!
//! Expected shape (paper §7.3): the DTM curve is steeper than the DRM
//! curve; at high temperature settings DTM's frequency violates the
//! reliability target, at low settings DRM's frequency violates the
//! thermal limit, and the crossover point moves with the application —
//! neither policy subsumes the other.

use bench_suite::{
    make_oracle, parallel_over_apps, print_sweep_summary, qualified_model, suite_alpha_qual,
    DVS_STEP_GHZ, FIG34_SWEEP,
};
use drm::{compare_drm_dtm, Strategy};
use sim_common::Kelvin;
use workload::App;

fn main() {
    let oracle = make_oracle().expect("oracle");
    let alpha = suite_alpha_qual(&oracle).expect("alpha_qual");
    // DRM and DTM both search the DVS grid: one parallel pass per suite
    // covers every evaluation the comparison needs.
    oracle
        .prefetch_suite(&App::ALL, Strategy::Dvs, DVS_STEP_GHZ)
        .expect("sweep");

    println!("Figure 4: DVS frequency (GHz) chosen by DRM (T_qual) vs DTM (T_max)");
    println!("====================================================================");
    println!("cells: DRM-GHz/DTM-GHz, R = DTM violates reliability, T = DRM");
    println!("violates the thermal limit");
    print!("{:9}", "App");
    for (ours, paper) in FIG34_SWEEP {
        print!(" {:>12}", format!("{ours:.0}K(~{paper:.0})"));
    }
    println!();

    let rows = parallel_over_apps(&oracle, |app, oracle| {
        let mut row = Vec::new();
        for (t, _) in FIG34_SWEEP {
            let model = qualified_model(t, alpha)?;
            let point = compare_drm_dtm(oracle, app, Kelvin(t), &model, DVS_STEP_GHZ)?;
            row.push(point);
        }
        Ok(row)
    });

    let mut crossovers = Vec::new();
    for (app, row) in rows {
        print!("{:9}", app.name());
        for p in &row {
            print!(
                " {:>7}",
                format!(
                    "{:.2}/{:.2}{}{}",
                    p.drm_ghz,
                    p.dtm_ghz,
                    if p.dtm_violates_reliability { "R" } else { "" },
                    if p.drm_violates_thermal { "T" } else { "" }
                )
            );
        }
        println!();
        // Crossover: first sweep point where DRM's frequency overtakes DTM's.
        let cross = row
            .iter()
            .position(|p| p.drm_ghz < p.dtm_ghz)
            .map(|i| FIG34_SWEEP[i].0);
        crossovers.push((app, cross));
    }
    println!();
    println!("Crossover temperature (DTM first chooses a higher frequency than DRM):");
    for (app, cross) in crossovers {
        match cross {
            Some(t) => println!("  {:9} {t:.0} K", app.name()),
            None => println!("  {:9} none within the sweep", app.name()),
        }
    }
    println!();
    print_sweep_summary(&oracle);
}
