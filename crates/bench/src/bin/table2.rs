//! Table 2 reproduction: per-application IPC and base power
//! (dynamic + leakage) on the base non-adaptive processor.

use bench_suite::{make_oracle, parallel_over_apps, print_sweep_summary};

fn main() {
    let oracle = make_oracle().expect("oracle");
    println!("Table 2: Workload description (measured on the base processor)");
    println!("===============================================================");
    println!(
        "{:10} {:12} {:>6} {:>8}   {:>10} {:>12}",
        "App", "Type", "IPC", "Power(W)", "paper IPC", "paper P(W)"
    );
    let rows = parallel_over_apps(&oracle, |app, oracle| {
        let ev = oracle.base_evaluation(app)?;
        Ok((ev.ipc, ev.average_power().0))
    });
    for (app, (ipc, power)) in rows {
        let class = if app.is_multimedia() {
            "Multimedia"
        } else if matches!(
            app,
            workload::App::Bzip2 | workload::App::Gzip | workload::App::Twolf
        ) {
            "SpecInt"
        } else {
            "SpecFP"
        };
        println!(
            "{:10} {:12} {:>6.2} {:>8.1}   {:>10.1} {:>12.1}",
            app.name(),
            class,
            ipc,
            power,
            app.paper_ipc(),
            app.paper_power_watts()
        );
    }
    println!();
    print_sweep_summary(&oracle);
}
