//! Table 2 reproduction: per-application IPC and base power
//! (dynamic + leakage) on the base non-adaptive processor.

use bench_suite::parallel_over_apps;
use sim_cpu::CoreConfig;

fn main() {
    println!("Table 2: Workload description (measured on the base processor)");
    println!("===============================================================");
    println!(
        "{:10} {:12} {:>6} {:>8}   {:>10} {:>12}",
        "App", "Type", "IPC", "Power(W)", "paper IPC", "paper P(W)"
    );
    let rows = parallel_over_apps(|app, oracle| {
        let ev = oracle
            .evaluator()
            .evaluate(app, &CoreConfig::base())?
            .clone();
        Ok((ev.ipc, ev.average_power().0))
    });
    for (app, (ipc, power)) in rows {
        let class = if app.is_multimedia() {
            "Multimedia"
        } else if matches!(
            app,
            workload::App::Bzip2 | workload::App::Gzip | workload::App::Twolf
        ) {
            "SpecInt"
        } else {
            "SpecFP"
        };
        println!(
            "{:10} {:12} {:>6.2} {:>8.1}   {:>10.1} {:>12.1}",
            app.name(),
            class,
            ipc,
            power,
            app.paper_ipc(),
            app.paper_power_watts()
        );
    }
}
