//! Table 1 reproduction: the base non-adaptive processor parameters.

use sim_cpu::CoreConfig;

fn main() {
    let c = CoreConfig::base();
    println!("Table 1: Base non-adaptive processor");
    println!("====================================");
    println!("Technology Parameters");
    println!("  Process technology                     65 nm");
    println!("  Vdd                                    {:.1} V", c.vdd.0);
    println!(
        "  Processor frequency                    {:.1} GHz",
        c.frequency.to_ghz()
    );
    let plan = sim_common::Floorplan::r10000_65nm();
    println!(
        "  Processor core size (no L2)            {:.2} mm^2 ({:.1} mm x {:.1} mm)",
        plan.total_area().0,
        plan.die_width(),
        plan.die_height()
    );
    println!("  Leakage power density at 383 K         0.5 W/mm^2");
    println!("Base Processor Parameters");
    println!(
        "  Fetch/retire rate                      {} per cycle",
        c.fetch_width
    );
    println!(
        "  Functional units                       {} Int, {} FP, {} Add. gen.",
        c.int_alus, c.fpus, c.addr_gens
    );
    println!("  Integer FU latencies                   1/7/12 add/multiply/divide");
    println!("  FP FU latencies                        4 default, 12 div (not pipelined)");
    println!(
        "  Instruction window (reorder buffer)    {} entries",
        c.window_size
    );
    println!(
        "  Register file size                     {} integer and {} FP",
        c.int_regs, c.fp_regs
    );
    println!(
        "  Memory queue size                      {} entries",
        c.mem_queue
    );
    println!(
        "  Branch prediction                      2KB bimodal agree ({} counters), {} entry RAS",
        c.bpred.counters, c.bpred.ras_entries
    );
    println!("Base Memory Hierarchy Parameters");
    println!(
        "  L1 (Data)                              {}KB, {}-way, {}B line, {} ports, {} MSHRs",
        c.l1d.size_bytes / 1024,
        c.l1d.assoc,
        c.l1d.line_bytes,
        c.l1d_ports,
        c.mshrs
    );
    println!(
        "  L1 (Instr)                             {}KB, {}-way associative",
        c.l1i.size_bytes / 1024,
        c.l1i.assoc
    );
    println!(
        "  L2 (Unified)                           {}MB, {}-way, {}B line",
        c.l2.size_bytes / (1024 * 1024),
        c.l2.assoc,
        c.l2.line_bytes
    );
    println!("Base Contentionless Memory Latencies");
    println!(
        "  L1 (Data) hit time (on-chip)           {} cycles",
        c.l1_hit_cycles
    );
    println!(
        "  L2 hit time (off-chip)                 {} cycles",
        c.l2_hit_cycles()
    );
    println!(
        "  Main memory (off-chip)                 {} cycles",
        c.mem_cycles()
    );
}
