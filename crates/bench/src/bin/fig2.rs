//! Figure 2 reproduction: performance of ArchDVS DRM relative to the base
//! non-adaptive processor, for all nine applications, across four
//! qualification temperatures (the paper's 400/370/345/325 K, mapped to
//! this substrate's thermal range — see EXPERIMENTS.md).

use bench_suite::{
    make_oracle, parallel_over_apps, print_sweep_summary, qualified_model, suite_alpha_qual,
    DVS_STEP_GHZ, FIG2_SWEEP,
};
use drm::Strategy;
use workload::App;

fn main() {
    let oracle = make_oracle().expect("oracle");
    let alpha = suite_alpha_qual(&oracle).expect("alpha_qual");
    // One parallel pass evaluates every (app, candidate) pair; the
    // per-model scoring below is then pure cache hits.
    oracle
        .prefetch_suite(&App::ALL, Strategy::ArchDvs, DVS_STEP_GHZ)
        .expect("sweep");

    println!("Figure 2: ArchDVS DRM performance relative to base (4 GHz)");
    println!("===========================================================");
    println!("alpha_qual = {alpha:.3}; '!' = no configuration meets the target");
    print!("{:10}", "App");
    for (ours, paper) in FIG2_SWEEP {
        print!("  {:>14}", format!("{ours:.0}K(~{paper:.0})"));
    }
    println!();

    let rows = parallel_over_apps(&oracle, |app, oracle| {
        let mut row = Vec::new();
        for (t_qual, _) in FIG2_SWEEP {
            let model = qualified_model(t_qual, alpha)?;
            let choice = oracle.best(app, Strategy::ArchDvs, &model, DVS_STEP_GHZ)?;
            row.push(choice);
        }
        Ok(row)
    });

    for (app, row) in rows {
        print!("{:10}", app.name());
        for choice in &row {
            print!(
                "  {:>13.2}{}",
                choice.relative_performance,
                if choice.feasible { ' ' } else { '!' }
            );
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): at the worst-case point every app gains");
    println!("(low-IPC apps gain most, multimedia least); at the app-oriented");
    println!("point the hottest apps sit at ~1.0 with no loss; at the average-");
    println!("app point losses stay within ~10%; at the underdesigned point");
    println!("high-IPC multimedia loses most.");
    println!();
    print_sweep_summary(&oracle);
}
