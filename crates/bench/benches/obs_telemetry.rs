//! Telemetry-overhead bench: the live-telemetry layer (metric recording
//! plus a 100 ms window ticker with SLO evaluation) must stay within a
//! few percent of an untelemetered sweep, and serializing a dashboard
//! frame from the window ring must be cheap enough to never matter
//! (>1e5 frames/s, versus the ~1 frame/s a `watch` client asks for).
//!
//! Both claims are enforced where the numbers are produced. Writes a
//! machine-readable `BENCH_obs.json` (schema `ramp-bench-obs/1`, flat
//! keys) that `scripts/check.sh` validates.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench_suite::{bench_min_time, microbench, BenchReport, BENCH_OBS_SCHEMA};
use drm::{EvalParams, Strategy};
use scenario::Scenario;
use sim_obs::{SloObjective, SloSet, Ticker, WindowRing};
use workload::App;

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

/// One cold sweep over the ArchDVS grid, optionally with the full
/// telemetry stack live: metrics enabled, a 100 ms window ticker, and an
/// SLO set evaluated every tick. A fresh oracle per call keeps both arms
/// on identical (cold-cache) work.
fn sweep_wall(scn: &Scenario, telemetry: bool) -> f64 {
    sim_obs::set_enabled(telemetry);
    let ticker = telemetry.then(|| {
        let slo = SloSet {
            objectives: vec![SloObjective {
                name: "queue".to_owned(),
                metric: "drm.queue.depth".to_owned(),
                quantile: 0.99,
                target_ms: 1e12,
            }],
            fit_burn: None,
        };
        Ticker::start(
            Arc::new(WindowRing::new(64)),
            Duration::from_millis(100),
            move |ring| {
                let _ = slo.evaluate(ring);
            },
        )
    });
    let oracle = scn.oracle_with(tiny_params(), 0).expect("oracle");
    let candidates = scn.candidates(Strategy::ArchDvs, None).expect("grid");
    let jobs: Vec<_> = candidates.iter().map(|&(a, d)| (App::Gzip, a, d)).collect();
    let start = Instant::now();
    oracle.prefetch(&jobs).expect("sweep");
    let wall = start.elapsed().as_secs_f64();
    if let Some(ticker) = ticker {
        ticker.stop();
    }
    sim_obs::set_enabled(false);
    wall
}

fn main() {
    let scn = Scenario::paper_default();

    // Warm the process (code paths, allocator) before timing anything.
    let _ = sweep_wall(&scn, false);

    // Interleaved min-of-3 per arm: the minimum is the least-noisy
    // estimate of each arm's true cost, and interleaving keeps slow
    // drift (thermal, scheduler) from biasing one arm.
    let mut off = f64::INFINITY;
    let mut on = f64::INFINITY;
    for _ in 0..3 {
        off = off.min(sweep_wall(&scn, false));
        on = on.min(sweep_wall(&scn, true));
    }
    let overhead_pct = ((on - off) / off * 100.0).max(0.0);
    println!("obs/sweep_telemetry_off                    {:>10.3} s", off);
    println!("obs/sweep_telemetry_on                     {:>10.3} s", on);
    println!("obs/telemetry_overhead                     {overhead_pct:>10.2} %");

    // Frame serialization: build a representative windowed frame (the
    // payload a `watch` subscriber receives) from a ring holding live
    // latency histograms, counters, and gauges — ~50 series, like a
    // busy server.
    sim_obs::set_enabled(true);
    for series in 0..10 {
        let name = format!("bench.latency_ms.{series}");
        for sample in 0..32 {
            sim_obs::hist!(&name, 0.5 + f64::from(sample) * 0.25);
        }
    }
    for series in 0..20 {
        sim_obs::counter!(&format!("bench.count.{series}"), 17);
        sim_obs::gauge!(&format!("bench.gauge.{series}"), 42.5);
    }
    let ring = WindowRing::new(8);
    ring.tick();
    for series in 0..10 {
        let name = format!("bench.latency_ms.{series}");
        for sample in 0..32 {
            sim_obs::hist!(&name, 1.0 + f64::from(sample) * 0.125);
        }
    }
    ring.tick();
    let window = ring.window().expect("two ticks give a window");
    let mut seq = 0u64;
    let per_frame = microbench("obs/frame_serialize", bench_min_time(), || {
        seq += 1;
        let mut line = String::with_capacity(512);
        line.push_str("ok watch-frame/1");
        let _ = write!(line, " seq={seq} interval_ms=1000");
        for series in 0..10 {
            let name = format!("bench.latency_ms.{series}");
            for (label, q) in [("p50", 0.50), ("p99", 0.99)] {
                if let Some(ms) = window.quantile(&name, q) {
                    let _ = write!(line, " {label}_{series}={ms}");
                }
            }
        }
        for series in 0..20 {
            let d = window.counter_delta(&format!("bench.count.{series}"));
            let _ = write!(line, " d{series}={}", d.unwrap_or(0));
        }
        line
    });
    sim_obs::set_enabled(false);
    let frames_per_sec = 1.0 / per_frame;
    println!("obs/frames_per_sec                         {frames_per_sec:>10.0} frames/s");

    let mut report = BenchReport::with_schema(BENCH_OBS_SCHEMA);
    report.f64("obs.sweep_off_s", off);
    report.f64("obs.sweep_on_s", on);
    report.f64("obs.telemetry_overhead_pct", overhead_pct);
    report.f64("obs.frame_serialize_s", per_frame);
    report.f64("obs.frames_per_sec", frames_per_sec);
    report.emit("BENCH_obs.json").expect("write bench report");

    // The two claims the telemetry layer is allowed to ship under.
    assert!(
        overhead_pct <= 3.0,
        "telemetry overhead ({overhead_pct:.2}%) exceeded the 3% budget \
         (off {off:.3} s, on {on:.3} s)"
    );
    assert!(
        frames_per_sec > 1e5,
        "frame serialization ({frames_per_sec:.0} frames/s) fell below 1e5/s"
    );
}
