//! Surrogate-accelerated DRM search: end-to-end speedup and parity.
//!
//! Runs the paper's ArchDVS oracle search twice over the same scenario —
//! once exhaustively (every candidate through the cycle-level pipeline),
//! once with the `[surrogate]` section enabled (analytical first pass,
//! top-k exact second pass) — and checks the two claims the subsystem
//! ships under, where the numbers are produced:
//!
//! 1. the final adaptation choices are bit-identical, and
//! 2. the surrogate search is at least 10x faster end to end.
//!
//! Writes a machine-readable `BENCH_surrogate.json` (schema
//! `ramp-bench-surrogate/1`) with the timings, the speedup, and the
//! phase-1/phase-2 funnel counts.

use std::time::Instant;

use bench_suite::{eval_params, sweep_workers, BenchReport, BENCH_SURROGATE_SCHEMA, DVS_STEP_GHZ};
use drm::{DrmChoice, Oracle, Strategy};
use scenario::{Scenario, SurrogateSpec};
use sim_common::SimError;
use workload::App;

/// Apps under test: the full suite normally, a representative trio under
/// `RAMP_FAST` (hot, cool, and phased) so CI smoke runs stay short.
fn apps() -> Vec<App> {
    if std::env::var_os("RAMP_FAST").is_some() {
        vec![App::Gzip, App::Twolf, App::MpgDec]
    } else {
        App::ALL.to_vec()
    }
}

/// One timed end-to-end search: fresh oracle (cold caches), every app
/// through the full ArchDVS grid.
fn timed_search(scn: &Scenario, apps: &[App]) -> Result<(f64, Vec<DrmChoice>), SimError> {
    let oracle: Oracle = scn.oracle(sweep_workers())?;
    let model = scn.model()?;
    let start = Instant::now();
    let choices = apps
        .iter()
        .map(|&app| oracle.best(app, Strategy::ArchDvs, &model, DVS_STEP_GHZ))
        .collect::<Result<Vec<_>, _>>()?;
    Ok((start.elapsed().as_secs_f64(), choices))
}

fn main() {
    let apps = apps();
    let mut scn = Scenario::paper_default();
    scn.eval = eval_params();
    let candidates = Strategy::ArchDvs.candidates(DVS_STEP_GHZ).len();

    // Collect the surrogate's own funnel counters alongside the timings.
    sim_obs::set_enabled(true);
    let _ = sim_obs::flush();

    scn.surrogate = None;
    let (exhaustive_s, exact) = timed_search(&scn, &apps).expect("exhaustive search");

    scn.surrogate = Some(SurrogateSpec::default());
    let (surrogate_s, two_phase) = timed_search(&scn, &apps).expect("surrogate search");

    let snapshot = sim_obs::flush();
    sim_obs::set_enabled(false);
    let counter = |name: &str| {
        snapshot.iter().find_map(|m| match m.value {
            sim_obs::MetricValue::Counter(c) if m.name == name => Some(c),
            _ => None,
        })
    };
    let scored = counter("surrogate.score").unwrap_or(0);
    let promoted = counter("surrogate.promoted").unwrap_or(0);
    let verified = counter("surrogate.verified").unwrap_or(0);
    let calibrations = counter("surrogate.calibrations").unwrap_or(0);
    let gauge = |name: &str| {
        snapshot.iter().find_map(|m| match m.value {
            sim_obs::MetricValue::Gauge(g) if m.name == name => Some(g),
            _ => None,
        })
    };
    let bound_perf = gauge("surrogate.bound.perf").unwrap_or(0.0);
    let bound_temp = gauge("surrogate.bound.temp").unwrap_or(0.0);
    let bound_fit = gauge("surrogate.bound.fit").unwrap_or(0.0);

    // Claim 1: the two-phase search changes nothing about the answer.
    // Bit-identical floats, not approximately-equal ones — the promoted
    // subset re-runs the same exact evaluations through the same code.
    assert_eq!(exact.len(), two_phase.len());
    let mut identical = true;
    for (app, (a, b)) in apps.iter().zip(exact.iter().zip(&two_phase)) {
        let same = a.arch == b.arch
            && a.dvs == b.dvs
            && a.feasible == b.feasible
            && a.relative_performance.to_bits() == b.relative_performance.to_bits()
            && a.fit.value().to_bits() == b.fit.value().to_bits();
        if !same {
            identical = false;
            eprintln!("{app}: exhaustive chose {a:?}, surrogate chose {b:?}");
        }
    }
    assert!(identical, "surrogate search changed an adaptation choice");

    let speedup = exhaustive_s / surrogate_s;
    println!(
        "surrogate/apps                             {:>10}",
        apps.len()
    );
    println!("surrogate/candidates_per_app               {candidates:>10}");
    println!("surrogate/exhaustive_s                     {exhaustive_s:>10.3}");
    println!("surrogate/two_phase_s                      {surrogate_s:>10.3}");
    println!("surrogate/speedup                          {speedup:>10.2}x");
    println!("surrogate/scored                           {scored:>10}");
    println!("surrogate/promoted                         {promoted:>10}");
    println!("surrogate/verified                         {verified:>10}");
    println!("surrogate/bound_perf                       {bound_perf:>10.4}");
    println!("surrogate/bound_temp                       {bound_temp:>10.4}");
    println!("surrogate/bound_fit                        {bound_fit:>10.4}");

    let mut report = BenchReport::with_schema(BENCH_SURROGATE_SCHEMA);
    report.u64("surrogate.apps", apps.len() as u64);
    report.u64("surrogate.candidates_per_app", candidates as u64);
    report.f64("surrogate.exhaustive_s", exhaustive_s);
    report.f64("surrogate.two_phase_s", surrogate_s);
    report.f64("surrogate.speedup", speedup);
    report.u64("surrogate.scored", scored);
    report.u64("surrogate.promoted", promoted);
    report.u64("surrogate.verified", verified);
    report.u64("surrogate.calibrations", calibrations);
    report.f64("surrogate.bound_perf", bound_perf);
    report.f64("surrogate.bound_temp", bound_temp);
    report.f64("surrogate.bound_fit", bound_fit);
    report.u64("surrogate.identical_choices", u64::from(identical));
    report
        .emit("BENCH_surrogate.json")
        .expect("write bench report");

    // Claim 2: the first pass pays for itself, with a wide margin — the
    // whole point of scoring 198 candidates analytically is to promote a
    // provably sufficient handful into the cycle-level path.
    assert!(
        speedup >= 10.0,
        "surrogate search speedup {speedup:.2}x is below the 10x the design promises"
    );
}
