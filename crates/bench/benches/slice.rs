//! Sliced-evaluation speedup bench: one long trace (10× the standard
//! measurement length), evaluated unsliced and then sliced over warm
//! checkpoints at 1 and 4 workers.
//!
//! The interesting claims, enforced where the numbers are produced: the
//! sliced runs — cold cut pass, warm resume at any worker count — fold
//! back per-interval statistics **bit-identical** to the unsliced run,
//! and the warm 4-worker resume beats the unsliced wall clock by more
//! than 1.5× (the whole point of paying the cut pass once). The speedup
//! gate needs hardware that can actually run 4 workers at once, so it is
//! enforced only when ≥ 4 cores are available; the report always records
//! the core count so a snapshot stays interpretable.
//!
//! Writes a machine-readable `BENCH_slice.json` (schema
//! `ramp-bench-slice/1`, flat keys) that `scripts/check.sh` validates.

use std::time::Instant;

use bench_suite::{BenchReport, BENCH_SLICE_SCHEMA};
use drm::{EvalParams, SliceParams};
use scenario::Scenario;
use workload::App;

/// The long trace: 10× the standard measurement length, cut into 8
/// slices. `RAMP_FAST` shrinks everything 10× for CI smoke runs while
/// keeping the same slice count (so the parallel path is still
/// exercised at 4 workers).
fn long_params() -> (EvalParams, u64) {
    let fast = std::env::var_os("RAMP_FAST").is_some();
    let params = if fast {
        EvalParams {
            measure_instructions: 600_000,
            interval_instructions: 15_000,
            ..EvalParams::quick()
        }
    } else {
        EvalParams {
            measure_instructions: 6_000_000,
            interval_instructions: 75_000,
            ..EvalParams::standard()
        }
    };
    let slice = params.measure_instructions / 8;
    assert_eq!(slice % params.interval_instructions, 0, "slice alignment");
    (params, slice)
}

fn main() {
    let scn = Scenario::paper_default();
    let (params, slice_instructions) = long_params();
    let evaluator = scn.evaluator_with(params).expect("evaluator");
    let profile = App::Gzip.profile();
    let config = scn
        .base_arch()
        .apply(&scn.core, scn.base_dvs())
        .expect("config");

    let dir = std::env::temp_dir().join(format!("ramp-bench-slice-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let slice_at = |workers: usize| {
        SliceParams::new(slice_instructions)
            .with_dir(&dir)
            .with_workers(workers)
    };

    // Unsliced baseline: the plain sequential timing run.
    let t0 = Instant::now();
    let plain = evaluator
        .timing_run(&profile, &config)
        .expect("unsliced run");
    let unsliced_s = t0.elapsed().as_secs_f64();
    println!(
        "slice/unsliced                             {unsliced_s:>10.3} s  ({} intervals)",
        plain.intervals().len()
    );

    // Cold cut pass: sequential, persists one checkpoint per slice.
    let t0 = Instant::now();
    let cold = evaluator
        .timing_run_sliced(&profile, &config, &slice_at(1))
        .expect("cut pass");
    let cut_s = t0.elapsed().as_secs_f64();
    println!("slice/cut_pass                             {cut_s:>10.3} s  (8 checkpoints)");
    assert_eq!(
        cold.intervals(),
        plain.intervals(),
        "cut pass diverged from the unsliced run"
    );

    // Warm resumes: the parallel continuation path the checkpoints buy.
    let mut warm_s = [0.0f64; 2];
    for (i, workers) in [1usize, 4].into_iter().enumerate() {
        let t0 = Instant::now();
        let sliced = evaluator
            .timing_run_sliced(&profile, &config, &slice_at(workers))
            .expect("warm resume");
        warm_s[i] = t0.elapsed().as_secs_f64();
        println!(
            "slice/warm_resume_{workers}w                         {:>10.3} s",
            warm_s[i]
        );
        assert_eq!(
            sliced.intervals(),
            plain.intervals(),
            "warm resume at {workers} worker(s) diverged from the unsliced run"
        );
    }
    let speedup = unsliced_s / warm_s[1];
    println!("slice/speedup_4w                           {speedup:>10.2} x");

    let bytes: u64 = std::fs::read_dir(&dir)
        .expect("checkpoint dir")
        .filter_map(|e| e.ok()?.metadata().ok().map(|m| m.len()))
        .sum();
    println!("slice/checkpoint_bytes                     {bytes:>10}");
    let _ = std::fs::remove_dir_all(&dir);

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut report = BenchReport::with_schema(BENCH_SLICE_SCHEMA);
    report.u64("slice.cores", cores as u64);
    report.u64("slice.measure_instructions", params.measure_instructions);
    report.u64("slice.slice_instructions", slice_instructions);
    report.u64("slice.slices", 8);
    report.u64("slice.intervals", plain.intervals().len() as u64);
    report.f64("slice.unsliced_s", unsliced_s);
    report.f64("slice.cut_pass_s", cut_s);
    report.f64("slice.warm_resume_1w_s", warm_s[0]);
    report.f64("slice.warm_resume_4w_s", warm_s[1]);
    report.f64("slice.speedup_4w", speedup);
    report.u64("slice.checkpoint_bytes", bytes);
    report.emit("BENCH_slice.json").expect("write bench report");

    // The claim the whole subsystem exists for: warm sliced evaluation
    // at 4 workers beats the sequential run by a clear margin. Only
    // enforceable where 4 workers can actually run at once.
    if cores >= 4 {
        assert!(
            speedup > 1.5,
            "4-worker sliced speedup ({speedup:.2}x) fell below 1.5x"
        );
    } else {
        println!("slice/speedup gate skipped: {cores} core(s) cannot run 4 workers in parallel");
    }
}
