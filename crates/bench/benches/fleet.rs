//! Fleet population-throughput bench: streams virtual dies with sampled
//! process variation through one cached operating point and measures
//! dies/second on a single worker, then at full parallelism.
//!
//! The interesting claims, enforced where the numbers are produced:
//! the per-die fast path sustains ≥ 1e5 dies/s on ONE core (the die
//! loop is closed-form — no per-die timing, thermal solve, or sort),
//! and the whole population rides a single cycle-level timing run
//! (`timing_runs ≪ dies` — the amortization that makes 10⁶-die fleets
//! affordable at all).
//!
//! Writes a machine-readable `BENCH_fleet.json` (schema
//! `ramp-bench-fleet/1`, flat keys) that `scripts/check.sh` validates.

use bench_suite::{BenchReport, BENCH_FLEET_SCHEMA};
use drm::{run_fleet, BatchEngine, EvalParams, FleetConfig};
use scenario::Scenario;
use workload::App;

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

/// Population size: large enough that the die loop dominates the (one)
/// timing run behind it; `RAMP_FAST` shrinks it for CI smoke runs.
fn dies() -> u64 {
    if std::env::var_os("RAMP_FAST").is_some() {
        100_000
    } else {
        1_000_000
    }
}

fn main() {
    let scn = Scenario::paper_default();
    let model = scn.model().expect("model");
    let config = FleetConfig {
        dies: dies(),
        ..scn.fleet
    };
    let engine = |workers: usize| {
        BatchEngine::with_workers(
            scn.evaluator_with(tiny_params()).expect("evaluator"),
            workers,
        )
        .with_base_config(scn.core.clone())
    };
    let (app, arch, dvs) = (App::Twolf, scn.base_arch(), scn.base_dvs());

    // Warm phase: a small fleet pays the single timing run and the
    // thermal baseline, so the measured phases time the die loop alone.
    let one = engine(1);
    let warm = FleetConfig {
        dies: 1_000,
        ..config
    };
    run_fleet(&one, app, arch, dvs, &model, &warm).expect("warm fleet");

    let serial = run_fleet(&one, app, arch, dvs, &model, &config).expect("serial fleet");
    let serial_rate = serial.dies_per_second();
    println!("fleet/dies_per_sec_1_worker                {serial_rate:>10.0} dies/s");

    let wide = engine(0);
    run_fleet(&wide, app, arch, dvs, &model, &warm).expect("warm fleet");
    let parallel = run_fleet(&wide, app, arch, dvs, &model, &config).expect("parallel fleet");
    let parallel_rate = parallel.dies_per_second();
    println!(
        "fleet/dies_per_sec_{}_workers               {parallel_rate:>10.0} dies/s",
        parallel.workers
    );
    assert_eq!(
        serial, parallel,
        "fleet summary must be bit-identical at any worker count"
    );
    println!(
        "fleet/population                           {:>10} dies ({} FIT-budget violations)",
        serial.dies, serial.violations
    );
    println!(
        "fleet/timing_runs                          {:>10} (amortized over the whole fleet)",
        serial.timing_runs
    );

    let mut report = BenchReport::with_schema(BENCH_FLEET_SCHEMA);
    report.u64("fleet.dies", serial.dies);
    report.u64("fleet.violations", serial.violations);
    report.f64("fleet.violation_fraction", serial.violation_fraction());
    report.f64("fleet.dies_per_sec_1w", serial_rate);
    report.f64("fleet.dies_per_sec_mw", parallel_rate);
    report.u64("fleet.workers_mw", parallel.workers as u64);
    report.u64("fleet.timing_runs", serial.timing_runs);
    report.f64("fleet.fit_p50", serial.fit.p50);
    report.f64("fleet.fit_p95", serial.fit.p95);
    report.f64("fleet.life_p1_y", serial.lifetime_years.p1);
    report.f64("fleet.life_p50_y", serial.lifetime_years.p50);
    report.f64("fleet.rank_error", serial.rank_error);
    report.emit("BENCH_fleet.json").expect("write bench report");

    // The throughput claim on one core, and the amortization claim that
    // justifies calling the fleet loop "cheap".
    assert!(
        serial_rate >= 1e5,
        "single-worker fleet rate ({serial_rate:.0} dies/s) fell below 1e5 dies/s"
    );
    assert!(
        serial.timing_runs * 100 <= serial.dies,
        "timing runs ({}) are not ≪ dies ({})",
        serial.timing_runs,
        serial.dies
    );
}
