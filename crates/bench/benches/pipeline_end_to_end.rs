//! Benchmarks of the full evaluation pipeline (workload → timing →
//! power → thermal → RAMP), the oracular DRM search, the parallel batch
//! engine, and the voltage-invariant timing reuse path, at reduced
//! simulation lengths. Uses the in-tree [`bench_suite::microbench`]
//! harness (std-only, hermetic) and writes a machine-readable
//! `BENCH_pipeline.json` (see [`bench_suite::BenchReport`]) that
//! `scripts/check.sh` validates — the perf-regression harness.

use bench_suite::{bench_min_time, microbench, qualified_model, BenchReport};
use drm::{ArchPoint, DvsPoint, EvalParams, Evaluator, Oracle, Strategy};
use sim_common::{Hertz, Volts};
use sim_cpu::CoreConfig;
use workload::App;

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

fn bench_full_evaluation(report: &mut BenchReport) {
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let per = microbench("evaluator/full_stack_20k_insts", bench_min_time(), || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
    report.f64("bench.full_stack_s", per);

    // Per-stage wall times of one representative evaluation, straight
    // from its `EvalStats` stage clock.
    let ev = evaluator
        .evaluate(App::Gzip, &CoreConfig::base())
        .expect("evaluation");
    for (stage, wall) in ev.stats.stages.iter() {
        report.f64(&format!("stage.{stage}_s"), wall.as_secs_f64());
    }
}

fn bench_fit_scoring(report: &mut BenchReport) {
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let ev = evaluator
        .evaluate(App::Gzip, &CoreConfig::base())
        .expect("evaluation");
    let model = qualified_model(370.0, 0.4).expect("model");
    let per = microbench("evaluator/fit_scoring", bench_min_time(), || {
        ev.application_fit(std::hint::black_box(&model)).total()
    });
    report.f64("bench.fit_scoring_s", per);
}

fn bench_oracle_search(report: &mut BenchReport) {
    let model = qualified_model(394.0, 0.4).expect("model");
    // One oracle reused: after the first iteration every evaluation is
    // cached, so this measures the pure search/scoring cost.
    let oracle = Oracle::new(Evaluator::ibm_65nm(tiny_params()).expect("params"));
    oracle
        .best(App::Twolf, Strategy::Dvs, &model, 0.5)
        .expect("warm the cache");
    let per = microbench("oracle/dvs_search_cached", bench_min_time(), || {
        oracle
            .best(App::Twolf, Strategy::Dvs, &model, 0.5)
            .expect("search")
    });
    report.f64("bench.dvs_search_cached_s", per);
}

fn bench_batch_engine(report: &mut BenchReport) {
    // Cold-cache sweep of the DVS grid for one app, sequential vs all
    // cores: the wall-clock ratio is the realized parallel speedup.
    let jobs: Vec<_> = (0..8)
        .map(|i| {
            let f = 3.0 + 0.25 * f64::from(i);
            (
                App::Twolf,
                ArchPoint::most_aggressive(),
                DvsPoint::at_ghz(f).expect("in range"),
            )
        })
        .collect();
    for (label, key, workers) in [
        ("oracle/dvs_sweep_1_worker", "bench.dvs_sweep_1_worker_s", 1),
        (
            "oracle/dvs_sweep_all_cores",
            "bench.dvs_sweep_all_cores_s",
            0,
        ),
    ] {
        let per = microbench(label, bench_min_time(), || {
            let oracle =
                Oracle::with_workers(Evaluator::ibm_65nm(tiny_params()).expect("params"), workers);
            oracle.prefetch(&jobs).expect("sweep");
            oracle.evaluations_performed()
        });
        report.f64(key, per);
    }
}

/// The tentpole measurement: a DVS voltage grid (2 frequencies × 4
/// voltages) evaluated naively — the scalar `Evaluator` path, which
/// re-runs cycle-level timing for every point — versus through the batch
/// engine's timing cache, which runs timing once per frequency. Both run
/// single-worker so the ratio isolates the algorithmic reuse win from
/// thread-level parallelism.
fn bench_voltage_grid(report: &mut BenchReport) {
    let arch = ArchPoint::most_aggressive();
    let freqs = [3.0, 4.0];
    let vdds = [0.85, 0.95, 1.05, 1.15];
    let jobs: Vec<_> = freqs
        .iter()
        .flat_map(|&ghz| {
            vdds.iter().map(move |&vdd| {
                (
                    App::Gzip,
                    arch,
                    DvsPoint {
                        frequency: Hertz::from_ghz(ghz),
                        vdd: Volts(vdd),
                    },
                )
            })
        })
        .collect();
    let configs: Vec<_> = jobs
        .iter()
        .map(|&(_, arch, dvs)| arch.apply(&CoreConfig::base(), dvs).expect("config"))
        .collect();

    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let naive = microbench("sweep/voltage_grid_naive", bench_min_time(), || {
        for config in &configs {
            std::hint::black_box(evaluator.evaluate(App::Gzip, config).expect("evaluation"));
        }
    });
    let reused = microbench("sweep/voltage_grid_reused", bench_min_time(), || {
        let oracle = Oracle::with_workers(Evaluator::ibm_65nm(tiny_params()).expect("params"), 1);
        oracle.prefetch(&jobs).expect("sweep");
    });

    // One instrumented run for the cache-counter sanity numbers.
    let oracle = Oracle::with_workers(Evaluator::ibm_65nm(tiny_params()).expect("params"), 1);
    let summary = oracle.prefetch(&jobs).expect("sweep");
    let timing = oracle.engine().timing_cache();
    assert_eq!(
        summary.timing_runs,
        freqs.len() as u64,
        "one timing run per frequency"
    );
    let speedup = if reused > 0.0 { naive / reused } else { 0.0 };
    println!("sweep/voltage_grid_speedup                 {speedup:>10.2} x (naive/reused)");

    report.f64("sweep.jobs", jobs.len() as f64);
    report.f64("sweep.naive_s", naive);
    report.f64("sweep.reused_s", reused);
    report.f64("sweep.reuse_speedup", speedup);
    report.f64(
        "sweep.evals_per_s",
        if reused > 0.0 {
            jobs.len() as f64 / reused
        } else {
            0.0
        },
    );
    report.u64("sweep.timing_runs", summary.timing_runs);
    report.u64("sweep.timing_reuses", summary.timing_reuses);
    report.f64(
        "sweep.timing_hit_rate",
        timing.hits() as f64 / (timing.hits() + timing.misses()) as f64,
    );
}

fn bench_observability_overhead(report: &mut BenchReport) {
    // The disabled path (one relaxed atomic load per instrumentation
    // site) must stay within noise of the plain evaluation above; the
    // NullSink row bounds the cost of recording with dispatch enabled.
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let per = microbench("obs/disabled_full_stack", bench_min_time(), || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
    report.f64("bench.obs_disabled_s", per);
    sim_obs::install_sink(std::sync::Arc::new(sim_obs::NullSink::new()));
    sim_obs::set_enabled(true);
    let per = microbench("obs/null_sink_full_stack", bench_min_time(), || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
    report.f64("bench.obs_null_sink_s", per);
    sim_obs::set_enabled(false);
}

fn main() {
    let mut report = BenchReport::new();
    bench_full_evaluation(&mut report);
    bench_fit_scoring(&mut report);
    bench_oracle_search(&mut report);
    bench_batch_engine(&mut report);
    bench_voltage_grid(&mut report);
    bench_observability_overhead(&mut report);
    report
        .emit("BENCH_pipeline.json")
        .expect("write bench report");
}
