//! Criterion benchmarks of the full evaluation pipeline (workload →
//! timing → power → thermal → RAMP) and the oracular DRM search, at
//! reduced simulation lengths.

use criterion::{criterion_group, criterion_main, Criterion};

use bench_suite::qualified_model;
use drm::{EvalParams, Evaluator, Oracle, Strategy};
use sim_cpu::CoreConfig;
use workload::App;

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

fn bench_full_evaluation(c: &mut Criterion) {
    let mut group = c.benchmark_group("evaluator");
    group.sample_size(10);
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    group.bench_function("full_stack_20k_insts", |b| {
        b.iter(|| {
            evaluator
                .evaluate(App::Gzip, &CoreConfig::base())
                .expect("evaluation")
        })
    });
    group.finish();
}

fn bench_fit_scoring(c: &mut Criterion) {
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let ev = evaluator
        .evaluate(App::Gzip, &CoreConfig::base())
        .expect("evaluation");
    let model = qualified_model(370.0, 0.4).expect("model");
    c.bench_function("evaluator/fit_scoring", |b| {
        b.iter(|| ev.application_fit(std::hint::black_box(&model)).total())
    });
}

fn bench_oracle_search(c: &mut Criterion) {
    let mut group = c.benchmark_group("oracle");
    group.sample_size(10);
    let model = qualified_model(394.0, 0.4).expect("model");
    group.bench_function("dvs_search_cached", |b| {
        // One oracle reused: after the first iteration every evaluation is
        // cached, so this measures the pure search/scoring cost.
        let mut oracle = Oracle::new(Evaluator::ibm_65nm(tiny_params()).expect("params"));
        oracle
            .best(App::Twolf, Strategy::Dvs, &model, 0.5)
            .expect("warm the cache");
        b.iter(|| {
            oracle
                .best(App::Twolf, Strategy::Dvs, &model, 0.5)
                .expect("search")
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_full_evaluation,
    bench_fit_scoring,
    bench_oracle_search
);
criterion_main!(benches);
