//! Benchmarks of the full evaluation pipeline (workload → timing →
//! power → thermal → RAMP), the oracular DRM search, and the parallel
//! batch engine, at reduced simulation lengths. Uses the in-tree
//! [`bench_suite::microbench`] harness (std-only, hermetic).

use std::time::Duration;

use bench_suite::{microbench, qualified_model};
use drm::{ArchPoint, DvsPoint, EvalParams, Evaluator, Oracle, Strategy};
use sim_cpu::CoreConfig;
use workload::App;

const MIN_TIME: Duration = Duration::from_millis(300);

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

fn bench_full_evaluation() {
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    microbench("evaluator/full_stack_20k_insts", MIN_TIME, || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
}

fn bench_fit_scoring() {
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    let ev = evaluator
        .evaluate(App::Gzip, &CoreConfig::base())
        .expect("evaluation");
    let model = qualified_model(370.0, 0.4).expect("model");
    microbench("evaluator/fit_scoring", MIN_TIME, || {
        ev.application_fit(std::hint::black_box(&model)).total()
    });
}

fn bench_oracle_search() {
    let model = qualified_model(394.0, 0.4).expect("model");
    // One oracle reused: after the first iteration every evaluation is
    // cached, so this measures the pure search/scoring cost.
    let oracle = Oracle::new(Evaluator::ibm_65nm(tiny_params()).expect("params"));
    oracle
        .best(App::Twolf, Strategy::Dvs, &model, 0.5)
        .expect("warm the cache");
    microbench("oracle/dvs_search_cached", MIN_TIME, || {
        oracle
            .best(App::Twolf, Strategy::Dvs, &model, 0.5)
            .expect("search")
    });
}

fn bench_batch_engine() {
    // Cold-cache sweep of the DVS grid for one app, sequential vs all
    // cores: the wall-clock ratio is the realized parallel speedup.
    let jobs: Vec<_> = (0..8)
        .map(|i| {
            let f = 3.0 + 0.25 * f64::from(i);
            (
                App::Twolf,
                ArchPoint::most_aggressive(),
                DvsPoint::at_ghz(f).expect("in range"),
            )
        })
        .collect();
    for (label, workers) in [
        ("oracle/dvs_sweep_1_worker", 1),
        ("oracle/dvs_sweep_all_cores", 0),
    ] {
        microbench(label, MIN_TIME, || {
            let oracle =
                Oracle::with_workers(Evaluator::ibm_65nm(tiny_params()).expect("params"), workers);
            oracle.prefetch(&jobs).expect("sweep");
            oracle.evaluations_performed()
        });
    }
}

fn bench_observability_overhead() {
    // The disabled path (one relaxed atomic load per instrumentation
    // site) must stay within noise of the plain evaluation above; the
    // NullSink row bounds the cost of recording with dispatch enabled.
    let evaluator = Evaluator::ibm_65nm(tiny_params()).expect("params");
    microbench("obs/disabled_full_stack", MIN_TIME, || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
    sim_obs::install_sink(std::sync::Arc::new(sim_obs::NullSink::new()));
    sim_obs::set_enabled(true);
    microbench("obs/null_sink_full_stack", MIN_TIME, || {
        evaluator
            .evaluate(App::Gzip, &CoreConfig::base())
            .expect("evaluation")
    });
    sim_obs::set_enabled(false);
}

fn main() {
    bench_full_evaluation();
    bench_fit_scoring();
    bench_oracle_search();
    bench_batch_engine();
    bench_observability_overhead();
}
