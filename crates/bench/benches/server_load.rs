//! Load generator for the evaluation server: measures request
//! throughput and latency against an in-process `sim-server` instance at
//! 1 and 8 concurrent clients, over a warm operating-point set so the
//! numbers isolate the serving layer (protocol, queue, micro-batching)
//! from simulation cost.
//!
//! The interesting claim on any machine — including a single core — is
//! that concurrent clients beat one client: a lone client pays a full
//! round trip (plus the batcher's linger window) per request, while
//! overlapping requests ride the same batch pass. The report asserts
//! `server.scaling > 1`.
//!
//! Writes a machine-readable `BENCH_server.json` (schema
//! `ramp-bench-server/1`, flat keys) that `scripts/check.sh` validates.

use std::time::Instant;

use bench_suite::{BenchReport, BENCH_SERVER_SCHEMA};
use drm::EvalParams;
use scenario::Scenario;
use sim_common::quantile::quantile_sorted;
use sim_server::{Client, Server, ServerConfig};

fn tiny_params() -> EvalParams {
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: 20_000,
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

/// The request mix: a small DVS grid across two applications. Twelve
/// distinct points — enough to exercise the cache sharding and keep
/// batches heterogeneous, few enough to warm quickly.
fn request_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for app in ["gzip", "twolf"] {
        for half_ghz in 5..11 {
            lines.push(format!(
                "eval {app} freq={}",
                (f64::from(half_ghz) * 0.5 * 1e9) as u64
            ));
        }
    }
    lines
}

/// Requests each client issues per measured phase.
fn per_client_requests() -> usize {
    if std::env::var_os("RAMP_FAST").is_some() {
        150
    } else {
        600
    }
}

/// One client's measured run: issues `count` requests round-robin over
/// `lines`, returning each request's wall latency.
fn drive_client(addr: std::net::SocketAddr, lines: &[String], count: usize) -> Vec<f64> {
    let mut client = Client::connect(addr).expect("connect");
    let mut latencies = Vec::with_capacity(count);
    for i in 0..count {
        let line = &lines[i % lines.len()];
        let start = Instant::now();
        let raw = client.request_raw(line).expect("request");
        latencies.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(raw.starts_with("ok "), "{line}: {raw}");
    }
    latencies
}

/// A load phase at `clients` concurrency: returns (throughput in
/// requests/s, sorted latencies in ms).
fn run_phase(addr: std::net::SocketAddr, lines: &[String], clients: usize) -> (f64, Vec<f64>) {
    let count = per_client_requests();
    let start = Instant::now();
    let mut latencies: Vec<f64> = if clients == 1 {
        drive_client(addr, lines, count)
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|_| scope.spawn(|| drive_client(addr, lines, count)))
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("client thread"))
                .collect()
        })
    };
    let wall = start.elapsed().as_secs_f64();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    ((clients * count) as f64 / wall, latencies)
}

fn main() {
    let config = ServerConfig {
        eval: Some(tiny_params()),
        ..ServerConfig::default()
    };
    let server =
        Server::start(Scenario::paper_default(), config, "127.0.0.1:0").expect("server start");
    let addr = server.local_addr();
    let lines = request_lines();

    // Warm every point through one client so both measured phases run
    // against the shared cache (transport + batching cost only), and the
    // cold/warm split is attributable.
    let warm_start = Instant::now();
    drive_client(addr, &lines, lines.len());
    println!(
        "server/warmup                              {:>10.2} ms ({} points)",
        warm_start.elapsed().as_secs_f64() * 1e3,
        lines.len()
    );

    let (thr1, lat1) = run_phase(addr, &lines, 1);
    println!("server/throughput_1_client                 {thr1:>10.0} req/s");
    let (thr8, lat8) = run_phase(addr, &lines, 8);
    println!("server/throughput_8_clients                {thr8:>10.0} req/s");
    let scaling = thr8 / thr1;
    println!("server/scaling_8c_over_1c                  {scaling:>10.2} x");
    println!(
        "server/latency_8c_p50_p99                  {:>10.2} / {:.2} ms",
        quantile_sorted(&lat8, 0.50),
        quantile_sorted(&lat8, 0.99)
    );

    let stats = server.stats();
    let summary = server.sweep_summary();
    server.shutdown();
    server.join();

    let lookups = summary.evaluations + summary.cache_hits;
    let hit_rate = if lookups > 0 {
        summary.cache_hits as f64 / lookups as f64
    } else {
        0.0
    };
    println!(
        "server/batch_occupancy                     {:>10.2} req/batch",
        stats.batch_occupancy()
    );
    println!("server/cache_hit_rate                      {hit_rate:>10.3}");

    let mut report = BenchReport::with_schema(BENCH_SERVER_SCHEMA);
    report.u64("server.points", lines.len() as u64);
    report.u64("server.requests_per_client", per_client_requests() as u64);
    report.f64("server.throughput_1c_rps", thr1);
    report.f64("server.throughput_8c_rps", thr8);
    report.f64("server.scaling", scaling);
    report.f64("server.p50_ms_1c", quantile_sorted(&lat1, 0.50));
    report.f64("server.p99_ms_1c", quantile_sorted(&lat1, 0.99));
    report.f64("server.p50_ms_8c", quantile_sorted(&lat8, 0.50));
    report.f64("server.p99_ms_8c", quantile_sorted(&lat8, 0.99));
    report.f64("server.batch_occupancy", stats.batch_occupancy());
    report.f64("server.cache_hit_rate", hit_rate);
    report.u64("server.shed", stats.shed);
    report.u64("server.evaluations", summary.evaluations);
    report
        .emit("BENCH_server.json")
        .expect("write bench report");

    // The batching claim, enforced where the numbers are produced:
    // overlapping clients must beat a lone client.
    assert!(
        scaling > 1.0,
        "8-client throughput ({thr8:.0} req/s) did not exceed 1-client ({thr1:.0} req/s)"
    );
}
