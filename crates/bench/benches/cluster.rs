//! Scaling study for the distributed sweep fabric: the same cold
//! candidate grid swept by one in-process engine, then by 2-shard and
//! 4-shard coordinators, every engine pinned to one worker thread so
//! the comparison isolates the fabric (routing, transport, folding)
//! from batch-level parallelism.
//!
//! The honest claim depends on the host: shards are processes' worth of
//! parallelism, so on a single-core container the fabric can only add
//! transport overhead (scaling ≈ 1×, and that overhead staying small is
//! the interesting number). On a ≥4-core host the 4-shard sweep must
//! beat the direct engine by >1.5×, and the report asserts it there.
//! Parity is asserted unconditionally: whatever the speed, the folded
//! choice must carry exactly the direct bits.
//!
//! Writes a machine-readable `BENCH_cluster.json` (schema
//! `ramp-bench-cluster/1`, flat keys) that `scripts/check.sh` validates.

use std::time::Instant;

use bench_suite::{BenchReport, BENCH_CLUSTER_SCHEMA};
use drm::{DrmChoice, EvalParams, Oracle, Strategy};
use scenario::{ClusterSpec, Scenario};
use sim_cluster::Coordinator;
use sim_server::ServerConfig;
use workload::App;

fn params() -> EvalParams {
    let fast = std::env::var_os("RAMP_FAST").is_some();
    EvalParams {
        warmup_instructions: 5_000,
        measure_instructions: if fast { 20_000 } else { 100_000 },
        interval_instructions: 5_000,
        seed: 3,
        leakage_iterations: 2,
        prewarm_bytes: 1 << 20,
    }
}

const APP: App = App::Gzip;
const STRATEGY: Strategy = Strategy::Dvs;

/// Bits-level equality of two choices (f64 `==` would also accept
/// -0.0/0.0 confusion; the fabric promises exact bits).
fn same_bits(a: &DrmChoice, b: &DrmChoice) -> bool {
    a.arch == b.arch
        && a.dvs.frequency.0.to_bits() == b.dvs.frequency.0.to_bits()
        && a.dvs.vdd.0.to_bits() == b.dvs.vdd.0.to_bits()
        && a.relative_performance.to_bits() == b.relative_performance.to_bits()
        && a.fit.value().to_bits() == b.fit.value().to_bits()
        && a.feasible == b.feasible
}

fn main() {
    let scn = Scenario::paper_default();
    let model = scn.model().expect("model");
    let candidates = scn.candidates(STRATEGY, None).expect("grid");
    let base = (scn.base_arch(), scn.base_dvs());

    // The single-process reference: one engine, one worker, cold caches.
    let oracle = Oracle::from_engine(
        drm::BatchEngine::with_workers(scn.evaluator_with(params()).expect("evaluator"), 1)
            .with_base_config(scn.core.clone()),
    );
    let start = Instant::now();
    let direct = oracle
        .best_among(APP, &candidates, base, &model)
        .expect("direct sweep");
    let direct_s = start.elapsed().as_secs_f64();
    println!(
        "cluster/direct_sweep                       {:>10.2} ms ({} candidates)",
        direct_s * 1e3,
        candidates.len()
    );

    let worker_config = ServerConfig {
        jobs: 1,
        eval: Some(params()),
        ..ServerConfig::default()
    };
    let mut walls = Vec::new();
    let mut points = 0u64;
    for shards in [2u32, 4] {
        let mut clustered = Scenario::paper_default();
        clustered.cluster = Some(ClusterSpec {
            shards,
            shard_addrs: Vec::new(),
            store_dir: None,
        });
        let cluster = Coordinator::start(clustered, &worker_config).expect("coordinator");
        let start = Instant::now();
        let swept = cluster.sweep(APP, STRATEGY, None).expect("cluster sweep");
        let wall = start.elapsed().as_secs_f64();
        cluster.shutdown();
        assert!(
            same_bits(&swept.choice, &direct),
            "{shards}-shard fold diverged from the direct sweep"
        );
        assert_eq!(swept.redispatched, 0, "healthy run must not re-dispatch");
        points = swept.unique_points as u64;
        println!(
            "cluster/sweep_{shards}_shards                      {:>10.2} ms ({:.2}x direct)",
            wall * 1e3,
            direct_s / wall
        );
        walls.push(wall);
    }
    let scaling_2 = direct_s / walls[0];
    let scaling_4 = direct_s / walls[1];
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(1);
    println!("cluster/scaling_4_shards                   {scaling_4:>10.2} x ({cores} core(s))");

    let mut report = BenchReport::with_schema(BENCH_CLUSTER_SCHEMA);
    report.u64("cluster.candidates", candidates.len() as u64);
    report.u64("cluster.unique_points", points);
    report.u64("cluster.cores", cores as u64);
    report.f64("cluster.direct_s", direct_s);
    report.f64("cluster.wall_2_shards_s", walls[0]);
    report.f64("cluster.wall_4_shards_s", walls[1]);
    report.f64("cluster.scaling_2_shards", scaling_2);
    report.f64("cluster.scaling_4_shards", scaling_4);
    report.u64("cluster.parity", 1); // asserted above, per shard count
    report
        .emit("BENCH_cluster.json")
        .expect("write bench report");

    // The scaling claim needs the cores to exist: shards are processes'
    // worth of parallelism, so a 1-core container can only interleave
    // them. Assert only where the hardware can deliver.
    if cores >= 4 {
        assert!(
            scaling_4 > 1.5,
            "4-shard sweep scaled {scaling_4:.2}x on a {cores}-core host (need > 1.5x)"
        );
    } else {
        println!("cluster/scaling gate skipped: {cores} core(s) < 4");
    }
}
