//! Criterion micro-benchmarks for the substrate layers: timing-simulator
//! throughput, thermal solvers, and RAMP model evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use ramp::{FailureParams, FitTracker, QualificationPoint, ReliabilityModel, StructureConditions};
use sim_common::{Floorplan, Hertz, Kelvin, Seconds, Structure, StructureMap, Volts, Watts};
use sim_cpu::{CoreConfig, Processor};
use sim_power::PowerModel;
use sim_thermal::ThermalModel;
use workload::{App, InstructionSource, SyntheticStream};

fn bench_workload_generation(c: &mut Criterion) {
    c.bench_function("workload/generate_10k_ops", |b| {
        let mut stream = SyntheticStream::new(App::Bzip2.profile(), 7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc = acc.wrapping_add(stream.next_op().pc);
            }
            acc
        });
    });
}

fn bench_timing_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu");
    group.sample_size(10);
    for app in [App::MpgDec, App::Art] {
        group.bench_function(format!("simulate_20k_insts/{}", app.name()), |b| {
            b.iter_batched(
                || {
                    let mut cpu = Processor::new(
                        CoreConfig::base(),
                        SyntheticStream::new(app.profile(), 11),
                    )
                    .expect("valid config");
                    cpu.prewarm(0x1000_0000, 1 << 20, 0, 32 * 1024);
                    cpu
                },
                |mut cpu| cpu.run_instructions(20_000),
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_thermal_solvers(c: &mut Criterion) {
    let model = ThermalModel::hotspot_65nm();
    let mut power = StructureMap::splat(Watts(2.5));
    power[Structure::Window] = Watts(6.0);
    c.bench_function("thermal/steady_state", |b| {
        b.iter(|| model.steady_state(std::hint::black_box(&power)))
    });
    c.bench_function("thermal/transient_100ms", |b| {
        b.iter_batched(
            || model.ambient_state(),
            |mut state| {
                model.transient_step(&mut state, &power, 0.1);
                state
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_power_model(c: &mut Criterion) {
    let model = PowerModel::ibm_65nm();
    let config = CoreConfig::base();
    let activity = StructureMap::splat(0.25);
    let temps = StructureMap::splat(Kelvin(360.0));
    c.bench_function("power/full_breakdown", |b| {
        b.iter(|| {
            model.power(
                std::hint::black_box(&config),
                std::hint::black_box(&activity),
                std::hint::black_box(&temps),
            )
        })
    });
}

fn bench_ramp_model(c: &mut Criterion) {
    let model = ReliabilityModel::qualify(
        FailureParams::ramp_65nm(),
        &QualificationPoint::at_temperature(Kelvin(370.0), 0.4),
        &Floorplan::r10000_65nm().area_shares(),
        4000.0,
    )
    .expect("qualification");
    let conds = StructureMap::splat(StructureConditions {
        temperature: Kelvin(362.0),
        vdd: Volts(1.0),
        frequency: Hertz::from_ghz(4.0),
        activity: 0.3,
        powered_fraction: 1.0,
    });
    c.bench_function("ramp/steady_fit", |b| {
        b.iter(|| model.steady_fit(std::hint::black_box(&conds)))
    });
    c.bench_function("ramp/track_100_intervals", |b| {
        b.iter(|| {
            let mut tracker = FitTracker::new();
            for _ in 0..100 {
                tracker.record(&model, Seconds(1e-3), &conds);
            }
            tracker.finish(&model).total()
        })
    });
}

criterion_group!(
    benches,
    bench_workload_generation,
    bench_timing_simulator,
    bench_thermal_solvers,
    bench_power_model,
    bench_ramp_model
);
criterion_main!(benches);
