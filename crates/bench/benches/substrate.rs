//! Micro-benchmarks for the substrate layers: timing-simulator
//! throughput, thermal solvers, and RAMP model evaluation. Uses the
//! in-tree [`bench_suite::microbench`] harness (std-only, hermetic).

use std::time::Duration;

use bench_suite::microbench;
use ramp::{FailureParams, FitTracker, QualificationPoint, ReliabilityModel, StructureConditions};
use sim_common::{Floorplan, Hertz, Kelvin, Seconds, Structure, StructureMap, Volts, Watts};
use sim_cpu::{CoreConfig, Processor};
use sim_power::PowerModel;
use sim_thermal::ThermalModel;
use workload::{App, InstructionSource, SyntheticStream};

const MIN_TIME: Duration = Duration::from_millis(300);

fn bench_workload_generation() {
    let mut stream = SyntheticStream::new(App::Bzip2.profile(), 7);
    microbench("workload/generate_10k_ops", MIN_TIME, || {
        let mut acc = 0u64;
        for _ in 0..10_000 {
            acc = acc.wrapping_add(stream.next_op().pc);
        }
        acc
    });
}

fn bench_timing_simulator() {
    for app in [App::MpgDec, App::Art] {
        microbench(
            &format!("cpu/simulate_20k_insts/{}", app.name()),
            MIN_TIME,
            || {
                let mut cpu =
                    Processor::new(CoreConfig::base(), SyntheticStream::new(app.profile(), 11))
                        .expect("valid config");
                cpu.prewarm(0x1000_0000, 1 << 20, 0, 32 * 1024);
                cpu.run_instructions(20_000)
            },
        );
    }
}

fn bench_thermal_solvers() {
    let model = ThermalModel::hotspot_65nm();
    let mut power = StructureMap::splat(Watts(2.5));
    power[Structure::Window] = Watts(6.0);
    microbench("thermal/steady_state", MIN_TIME, || {
        model.steady_state(std::hint::black_box(&power))
    });
    microbench("thermal/transient_100ms", MIN_TIME, || {
        let mut state = model.ambient_state();
        model.transient_step(&mut state, &power, 0.1);
        state
    });
}

fn bench_power_model() {
    let model = PowerModel::ibm_65nm();
    let config = CoreConfig::base();
    let activity = StructureMap::splat(0.25);
    let temps = StructureMap::splat(Kelvin(360.0));
    microbench("power/full_breakdown", MIN_TIME, || {
        model.power(
            std::hint::black_box(&config),
            std::hint::black_box(&activity),
            std::hint::black_box(&temps),
        )
    });
}

fn bench_ramp_model() {
    let model = ReliabilityModel::qualify(
        FailureParams::ramp_65nm(),
        &QualificationPoint::at_temperature(Kelvin(370.0), 0.4),
        &Floorplan::r10000_65nm().area_shares(),
        4000.0,
    )
    .expect("qualification");
    let conds = StructureMap::splat(StructureConditions {
        temperature: Kelvin(362.0),
        vdd: Volts(1.0),
        frequency: Hertz::from_ghz(4.0),
        activity: 0.3,
        powered_fraction: 1.0,
    });
    microbench("ramp/steady_fit", MIN_TIME, || {
        model.steady_fit(std::hint::black_box(&conds))
    });
    microbench("ramp/track_100_intervals", MIN_TIME, || {
        let mut tracker = FitTracker::new();
        for _ in 0..100 {
            tracker.record(&model, Seconds(1e-3), &conds);
        }
        tracker.finish(&model).total()
    });
}

fn main() {
    bench_workload_generation();
    bench_timing_simulator();
    bench_thermal_solvers();
    bench_power_model();
    bench_ramp_model();
}
