//! Property-based tests of the synthetic workload generator: any valid
//! profile must yield a deterministic, well-formed instruction stream.

use proptest::prelude::*;
use workload::{App, AppProfile, InstructionSource, OpClass, OpMix, RegClass, SyntheticStream};

const DATA_BASE: u64 = 0x1000_0000;

fn arb_profile() -> impl Strategy<Value = AppProfile> {
    (
        0.2..0.6f64,  // int weight
        0.0..0.3f64,  // fp weight
        0.1..0.35f64, // load weight
        0.02..0.12f64, // store weight
        0.03..0.18f64, // branch weight
        2.0..20.0f64, // dep mean
        0.0..1.0f64,  // fp load fraction
        0.0..0.2f64,  // branch noise
        0.3..0.9f64,  // taken bias
        (0.5..0.98f64, 0.0..0.3f64), // (hot, spatial)
        1usize..8,    // streams
        12u64..64,    // code footprint KiB
    )
        .prop_map(
            |(int_w, fp_w, load_w, store_w, br_w, dep, fpl, noise, bias, (hot, spatial), streams, code_kb)| {
                let mid = ((1.0 - hot) * 0.5).min(0.2);
                AppProfile {
                    name: "generated".to_owned(),
                    mix: OpMix::from_weights([
                        (OpClass::IntAlu, int_w),
                        (OpClass::FpAdd, fp_w * 0.6),
                        (OpClass::FpMul, fp_w * 0.4),
                        (OpClass::Load, load_w),
                        (OpClass::Store, store_w),
                        (OpClass::Branch, br_w),
                    ])
                    .expect("weights are positive"),
                    dep_mean_int: dep,
                    dep_mean_fp: dep,
                    fp_load_fraction: fpl,
                    code_footprint: code_kb * 1024,
                    branch_taken_bias: bias,
                    branch_noise: noise,
                    hot_fraction: hot,
                    hot_bytes: 8 * 1024,
                    mid_fraction: mid,
                    mid_bytes: 256 * 1024,
                    data_working_set: 4 * 1024 * 1024,
                    spatial_fraction: spatial,
                    access_streams: streams,
                    phases: Vec::new(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Same profile + seed ⇒ identical stream; different seeds diverge.
    #[test]
    fn determinism(profile in arb_profile(), seed in 0u64..1_000_000) {
        let mut a = SyntheticStream::new(profile.clone(), seed);
        let mut b = SyntheticStream::new(profile.clone(), seed);
        let mut diverged_from_other_seed = false;
        let mut c = SyntheticStream::new(profile, seed.wrapping_add(1));
        for _ in 0..2_000 {
            let oa = a.next_op();
            prop_assert_eq!(oa, b.next_op());
            if oa != c.next_op() {
                diverged_from_other_seed = true;
            }
        }
        prop_assert!(diverged_from_other_seed);
    }

    /// Every generated op is well formed: PCs aligned and inside the code
    /// footprint, data addresses inside the working set, operand register
    /// classes consistent with the op class.
    #[test]
    fn ops_are_well_formed(profile in arb_profile(), seed in 0u64..1_000_000) {
        let footprint = profile.code_footprint;
        let ws = profile.data_working_set;
        let mut stream = SyntheticStream::new(profile, seed);
        for _ in 0..5_000 {
            let op = stream.next_op();
            prop_assert_eq!(op.pc % 4, 0);
            prop_assert!(op.pc < footprint);
            match op.class {
                OpClass::Load | OpClass::Store => {
                    let addr = op.addr.expect("memory op has an address");
                    prop_assert!(addr >= DATA_BASE && addr < DATA_BASE + ws);
                }
                _ => prop_assert!(op.addr.is_none()),
            }
            if op.class.is_fp() {
                prop_assert_eq!(op.dest.expect("fp ops write").class(), RegClass::Fp);
                for s in op.sources() {
                    prop_assert_eq!(s.class(), RegClass::Fp);
                }
            }
            if op.class == OpClass::Branch {
                prop_assert!(op.dest.is_none());
            }
            if matches!(op.class, OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv) {
                prop_assert_eq!(op.dest.expect("int ops write").class(), RegClass::Int);
            }
        }
    }

    /// The realized class mix converges to the requested mix.
    #[test]
    fn mix_converges(profile in arb_profile(), seed in 0u64..100) {
        let mix = profile.mix;
        let mut stream = SyntheticStream::new(profile, seed);
        let n = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(stream.next_op().class).or_insert(0u64) += 1;
        }
        for class in OpClass::ALL {
            let observed = *counts.get(&class).unwrap_or(&0) as f64 / n as f64;
            let expected = mix.fraction(class);
            prop_assert!(
                (observed - expected).abs() < 0.05,
                "{class}: observed {observed:.3} vs expected {expected:.3}"
            );
        }
    }
}

#[test]
fn paper_profiles_satisfy_the_same_properties() {
    // The calibrated profiles go through the identical well-formedness
    // checks as the generated ones.
    for app in App::ALL {
        let profile = app.profile();
        let footprint = profile.code_footprint;
        let mut stream = SyntheticStream::new(profile, 99);
        for _ in 0..5_000 {
            let op = stream.next_op();
            assert_eq!(op.pc % 4, 0);
            assert!(op.pc < footprint, "{app}: pc outside footprint");
        }
    }
}
