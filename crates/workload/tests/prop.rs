//! Randomized property tests of the synthetic workload generator: any
//! valid profile must yield a deterministic, well-formed instruction
//! stream. Cases are drawn from the in-tree deterministic PRNG.

use sim_common::Xoshiro256pp;
use workload::{App, AppProfile, InstructionSource, OpClass, OpMix, RegClass, SyntheticStream};

const DATA_BASE: u64 = 0x1000_0000;

fn random_profile(rng: &mut Xoshiro256pp) -> AppProfile {
    let int_w = rng.gen_f64(0.2..0.6);
    let fp_w = rng.gen_f64(0.0..0.3);
    let load_w = rng.gen_f64(0.1..0.35);
    let store_w = rng.gen_f64(0.02..0.12);
    let br_w = rng.gen_f64(0.03..0.18);
    let dep = rng.gen_f64(2.0..20.0);
    let fpl = rng.gen_f64(0.0..1.0);
    let noise = rng.gen_f64(0.0..0.2);
    let bias = rng.gen_f64(0.3..0.9);
    let hot = rng.gen_f64(0.5..0.98);
    let spatial = rng.gen_f64(0.0..0.3);
    let streams = rng.gen_usize(1..8);
    let code_kb = rng.gen_u64(12..64);
    let mid = ((1.0 - hot) * 0.5).min(0.2);
    AppProfile {
        name: "generated".to_owned(),
        mix: OpMix::from_weights([
            (OpClass::IntAlu, int_w),
            (OpClass::FpAdd, fp_w * 0.6),
            (OpClass::FpMul, fp_w * 0.4),
            (OpClass::Load, load_w),
            (OpClass::Store, store_w),
            (OpClass::Branch, br_w),
        ])
        .expect("weights are positive"),
        dep_mean_int: dep,
        dep_mean_fp: dep,
        fp_load_fraction: fpl,
        code_footprint: code_kb * 1024,
        branch_taken_bias: bias,
        branch_noise: noise,
        hot_fraction: hot,
        hot_bytes: 8 * 1024,
        mid_fraction: mid,
        mid_bytes: 256 * 1024,
        data_working_set: 4 * 1024 * 1024,
        spatial_fraction: spatial,
        access_streams: streams,
        phases: Vec::new(),
    }
}

/// Same profile + seed ⇒ identical stream; different seeds diverge.
#[test]
fn determinism() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x2001);
    for _ in 0..32 {
        let profile = random_profile(&mut rng);
        let seed = rng.gen_u64(0..1_000_000);
        let mut a = SyntheticStream::new(profile.clone(), seed);
        let mut b = SyntheticStream::new(profile.clone(), seed);
        let mut diverged_from_other_seed = false;
        let mut c = SyntheticStream::new(profile, seed.wrapping_add(1));
        for _ in 0..2_000 {
            let oa = a.next_op();
            assert_eq!(oa, b.next_op());
            if oa != c.next_op() {
                diverged_from_other_seed = true;
            }
        }
        assert!(diverged_from_other_seed);
    }
}

/// Every generated op is well formed: PCs aligned and inside the code
/// footprint, data addresses inside the working set, operand register
/// classes consistent with the op class.
#[test]
fn ops_are_well_formed() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x2002);
    for _ in 0..32 {
        let profile = random_profile(&mut rng);
        let seed = rng.gen_u64(0..1_000_000);
        let footprint = profile.code_footprint;
        let ws = profile.data_working_set;
        let mut stream = SyntheticStream::new(profile, seed);
        for _ in 0..5_000 {
            let op = stream.next_op();
            assert_eq!(op.pc % 4, 0);
            assert!(op.pc < footprint);
            match op.class {
                OpClass::Load | OpClass::Store => {
                    let addr = op.addr.expect("memory op has an address");
                    assert!(addr >= DATA_BASE && addr < DATA_BASE + ws);
                }
                _ => assert!(op.addr.is_none()),
            }
            if op.class.is_fp() {
                assert_eq!(op.dest.expect("fp ops write").class(), RegClass::Fp);
                for s in op.sources() {
                    assert_eq!(s.class(), RegClass::Fp);
                }
            }
            if op.class == OpClass::Branch {
                assert!(op.dest.is_none());
            }
            if matches!(
                op.class,
                OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv
            ) {
                assert_eq!(op.dest.expect("int ops write").class(), RegClass::Int);
            }
        }
    }
}

/// The realized class mix converges to the requested mix.
#[test]
fn mix_converges() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x2003);
    for _ in 0..8 {
        let profile = random_profile(&mut rng);
        let seed = rng.gen_u64(0..100);
        let mix = profile.mix;
        let mut stream = SyntheticStream::new(profile, seed);
        let n = 60_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(stream.next_op().class).or_insert(0u64) += 1;
        }
        for class in OpClass::ALL {
            let observed = *counts.get(&class).unwrap_or(&0) as f64 / n as f64;
            let expected = mix.fraction(class);
            assert!(
                (observed - expected).abs() < 0.05,
                "{class}: observed {observed:.3} vs expected {expected:.3}"
            );
        }
    }
}

#[test]
fn paper_profiles_satisfy_the_same_properties() {
    // The calibrated profiles go through the identical well-formedness
    // checks as the generated ones.
    for app in App::ALL {
        let profile = app.profile();
        let footprint = profile.code_footprint;
        let mut stream = SyntheticStream::new(profile, 99);
        for _ in 0..5_000 {
            let op = stream.next_op();
            assert_eq!(op.pc % 4, 0);
            assert!(op.pc < footprint, "{app}: pc outside footprint");
        }
    }
}
