//! Trace recording and replay.
//!
//! A [`RecordedTrace`] captures a finite window of an instruction source so
//! it can be replayed repeatedly — e.g. to evaluate many processor
//! configurations on *literally identical* instructions (beyond the
//! same-seed determinism of [`crate::SyntheticStream`]), to build regression
//! fixtures, or to splice hand-written instruction sequences into tests.

use crate::op::MicroOp;
use crate::InstructionSource;

/// A finite recorded instruction trace, replayed cyclically.
///
/// # Examples
///
/// ```
/// use workload::{App, InstructionSource, RecordedTrace, SyntheticStream};
///
/// let mut live = SyntheticStream::new(App::Gzip.profile(), 7);
/// let trace = RecordedTrace::record(&mut live, 1_000);
/// let mut replay_a = trace.replayer();
/// let mut replay_b = trace.replayer();
/// for _ in 0..2_000 {
///     // Replays are identical and wrap around the recorded window.
///     assert_eq!(replay_a.next_op(), replay_b.next_op());
/// }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    name: String,
    ops: Vec<MicroOp>,
}

impl RecordedTrace {
    /// Records `count` micro-ops from `source`.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero (an empty trace cannot be replayed).
    pub fn record(source: &mut impl InstructionSource, count: usize) -> RecordedTrace {
        assert!(count > 0, "cannot record an empty trace");
        let name = format!("{}@recorded", source.name());
        let ops = (0..count).map(|_| source.next_op()).collect();
        RecordedTrace { name, ops }
    }

    /// Builds a trace from explicit micro-ops (for hand-written fixtures).
    ///
    /// # Panics
    ///
    /// Panics if `ops` is empty.
    pub fn from_ops(name: impl Into<String>, ops: Vec<MicroOp>) -> RecordedTrace {
        assert!(!ops.is_empty(), "cannot replay an empty trace");
        RecordedTrace {
            name: name.into(),
            ops,
        }
    }

    /// The recorded micro-ops.
    pub fn ops(&self) -> &[MicroOp] {
        &self.ops
    }

    /// Number of recorded micro-ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Always false: construction forbids empty traces.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// A fresh replayer starting at the beginning of the trace.
    pub fn replayer(&self) -> TraceReplayer<'_> {
        TraceReplayer {
            trace: self,
            cursor: 0,
        }
    }
}

/// An [`InstructionSource`] that cycles through a recorded trace.
#[derive(Debug, Clone)]
pub struct TraceReplayer<'t> {
    trace: &'t RecordedTrace,
    cursor: usize,
}

impl InstructionSource for TraceReplayer<'_> {
    fn next_op(&mut self) -> MicroOp {
        let op = self.trace.ops[self.cursor];
        self.cursor = (self.cursor + 1) % self.trace.ops.len();
        op
    }

    fn name(&self) -> &str {
        &self.trace.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{OpClass, RegClass};
    use crate::profile::App;
    use crate::stream::SyntheticStream;
    use crate::ArchReg;

    #[test]
    fn records_exactly_the_live_stream() {
        let mut live = SyntheticStream::new(App::Twolf.profile(), 5);
        let trace = RecordedTrace::record(&mut live, 500);
        let mut fresh = SyntheticStream::new(App::Twolf.profile(), 5);
        for (i, op) in trace.ops().iter().enumerate() {
            assert_eq!(*op, fresh.next_op(), "op {i}");
        }
        assert_eq!(trace.len(), 500);
        assert!(!trace.is_empty());
        assert_eq!(trace.replayer().name(), "twolf@recorded");
    }

    #[test]
    fn replay_wraps_cyclically() {
        let mut live = SyntheticStream::new(App::Art.profile(), 2);
        let trace = RecordedTrace::record(&mut live, 100);
        let mut replay = trace.replayer();
        let first: Vec<_> = (0..100).map(|_| replay.next_op()).collect();
        let second: Vec<_> = (0..100).map(|_| replay.next_op()).collect();
        assert_eq!(first, second);
        assert_eq!(first.as_slice(), trace.ops());
    }

    #[test]
    fn hand_written_fixture() {
        let op = MicroOp {
            pc: 0,
            class: OpClass::IntAlu,
            dest: Some(ArchReg::new(RegClass::Int, 1)),
            srcs: [None, None],
            addr: None,
            taken: false,
        };
        let trace = RecordedTrace::from_ops("fixture", vec![op; 3]);
        let mut r = trace.replayer();
        for _ in 0..9 {
            assert_eq!(r.next_op(), op);
        }
        assert_eq!(r.name(), "fixture");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn rejects_empty() {
        let _ = RecordedTrace::from_ops("x", Vec::new());
    }
}
