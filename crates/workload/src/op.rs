//! Micro-operation vocabulary shared between the workload generator and the
//! timing simulator.

use std::fmt;

/// Functional class of a micro-operation.
///
/// Latencies follow Table 1 of the paper: integer 1/7/12 for
/// add/multiply/divide, floating point 4 by default and 12 for divide
/// (divide is not pipelined).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Single-cycle integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply (7 cycles, pipelined).
    IntMul,
    /// Integer divide (12 cycles, not pipelined).
    IntDiv,
    /// Floating-point add/subtract/convert (4 cycles, pipelined).
    FpAdd,
    /// Floating-point multiply (4 cycles, pipelined).
    FpMul,
    /// Floating-point divide (12 cycles, not pipelined).
    FpDiv,
    /// Memory load (L1 data cache hit: 2 cycles).
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Function call (unconditional; pushes the return address).
    Call,
    /// Function return (unconditional; target comes from the call stack).
    Return,
}

impl OpClass {
    /// All classes, in a fixed order (used to express instruction mixes).
    pub const ALL: [OpClass; 11] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Call,
        OpClass::Return,
    ];

    /// Position of this class in [`OpClass::ALL`] — the canonical dense
    /// index used by per-class tables (commit counters, cost tables).
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
            OpClass::Call => 9,
            OpClass::Return => 10,
        }
    }

    /// True for instructions that change control flow.
    pub fn is_control(self) -> bool {
        matches!(self, OpClass::Branch | OpClass::Call | OpClass::Return)
    }

    /// True for the three floating-point execution classes.
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// True for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Execution latency in cycles (Table 1). Loads report their address
    /// generation latency; the cache adds the access time.
    pub fn latency(self) -> u32 {
        match self {
            OpClass::IntAlu | OpClass::Branch | OpClass::Call | OpClass::Return => 1,
            OpClass::IntMul => 7,
            OpClass::IntDiv => 12,
            OpClass::FpAdd | OpClass::FpMul => 4,
            OpClass::FpDiv => 12,
            OpClass::Load | OpClass::Store => 1,
        }
    }

    /// True when the functional unit cannot accept a new operation every
    /// cycle (divides are not pipelined).
    pub fn is_unpipelined(self) -> bool {
        matches!(self, OpClass::IntDiv | OpClass::FpDiv)
    }

    /// Parses the [`Display`](fmt::Display) name back to a class (the
    /// inverse used by text formats: profiles, checkpoints).
    pub fn from_name(name: &str) -> Option<OpClass> {
        OpClass::ALL.into_iter().find(|c| c.to_string() == name)
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            OpClass::IntAlu => "int-alu",
            OpClass::IntMul => "int-mul",
            OpClass::IntDiv => "int-div",
            OpClass::FpAdd => "fp-add",
            OpClass::FpMul => "fp-mul",
            OpClass::FpDiv => "fp-div",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Call => "call",
            OpClass::Return => "return",
        };
        f.write_str(name)
    }
}

/// Register file class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegClass {
    /// Integer architectural registers.
    Int,
    /// Floating-point architectural registers.
    Fp,
}

/// Number of architectural registers per class (MIPS-like ISA).
pub const ARCH_REGS_PER_CLASS: u16 = 64;

/// An architectural register: a class and an index in
/// `0..`[`ARCH_REGS_PER_CLASS`].
///
/// # Examples
///
/// ```
/// use workload::{ArchReg, RegClass};
/// let r = ArchReg::new(RegClass::Fp, 3);
/// assert_eq!(r.class(), RegClass::Fp);
/// assert_eq!(r.index(), 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArchReg(u16);

impl ArchReg {
    /// Creates a register reference.
    ///
    /// # Panics
    ///
    /// Panics if `index >= ARCH_REGS_PER_CLASS`.
    pub fn new(class: RegClass, index: u16) -> ArchReg {
        assert!(
            index < ARCH_REGS_PER_CLASS,
            "register index {index} out of range"
        );
        match class {
            RegClass::Int => ArchReg(index),
            RegClass::Fp => ArchReg(index + ARCH_REGS_PER_CLASS),
        }
    }

    /// The register's class.
    pub fn class(self) -> RegClass {
        if self.0 < ARCH_REGS_PER_CLASS {
            RegClass::Int
        } else {
            RegClass::Fp
        }
    }

    /// Index within the class, in `0..ARCH_REGS_PER_CLASS`.
    pub fn index(self) -> u16 {
        self.0 % ARCH_REGS_PER_CLASS
    }

    /// Flat index across both classes, in `0..2*ARCH_REGS_PER_CLASS`.
    /// Useful for dense rename tables.
    pub fn flat_index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds a register from its [`flat_index`](ArchReg::flat_index)
    /// (the inverse used by checkpoint serialization).
    ///
    /// # Panics
    ///
    /// Panics if `flat >= 2 * ARCH_REGS_PER_CLASS`.
    pub fn from_flat_index(flat: usize) -> ArchReg {
        assert!(
            flat < 2 * ARCH_REGS_PER_CLASS as usize,
            "flat register index {flat} out of range"
        );
        ArchReg(flat as u16)
    }
}

impl fmt::Display for ArchReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.class() {
            RegClass::Int => write!(f, "r{}", self.index()),
            RegClass::Fp => write!(f, "f{}", self.index()),
        }
    }
}

/// A decoded micro-operation, as produced by an instruction source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicroOp {
    /// Synthetic program counter (byte address, 4-byte instructions).
    pub pc: u64,
    /// Functional class.
    pub class: OpClass,
    /// Destination register, if the op writes one.
    pub dest: Option<ArchReg>,
    /// Up to two source registers.
    pub srcs: [Option<ArchReg>; 2],
    /// Effective byte address for loads/stores.
    pub addr: Option<u64>,
    /// Actual branch direction (meaningful only for [`OpClass::Branch`]).
    pub taken: bool,
}

impl MicroOp {
    /// Iterates over the present source registers.
    pub fn sources(&self) -> impl Iterator<Item = ArchReg> + '_ {
        self.srcs.iter().flatten().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latencies_match_table1() {
        assert_eq!(OpClass::IntAlu.latency(), 1);
        assert_eq!(OpClass::IntMul.latency(), 7);
        assert_eq!(OpClass::IntDiv.latency(), 12);
        assert_eq!(OpClass::FpAdd.latency(), 4);
        assert_eq!(OpClass::FpMul.latency(), 4);
        assert_eq!(OpClass::FpDiv.latency(), 12);
    }

    #[test]
    fn divides_are_unpipelined() {
        for class in OpClass::ALL {
            assert_eq!(
                class.is_unpipelined(),
                matches!(class, OpClass::IntDiv | OpClass::FpDiv)
            );
        }
    }

    #[test]
    fn class_predicates() {
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::Load.is_fp());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
        assert!(OpClass::Branch.is_control());
        assert!(OpClass::Call.is_control());
        assert!(OpClass::Return.is_control());
        assert!(!OpClass::IntAlu.is_control());
        assert_eq!(OpClass::Call.latency(), 1);
        assert_eq!(OpClass::Return.latency(), 1);
    }

    #[test]
    fn arch_reg_round_trip() {
        for class in [RegClass::Int, RegClass::Fp] {
            for idx in [0u16, 1, 63] {
                let r = ArchReg::new(class, idx);
                assert_eq!(r.class(), class);
                assert_eq!(r.index(), idx);
            }
        }
    }

    #[test]
    fn class_index_matches_all_order() {
        for (i, class) in OpClass::ALL.into_iter().enumerate() {
            assert_eq!(class.index(), i, "{class}");
        }
    }

    #[test]
    fn flat_index_and_name_round_trip() {
        for flat in 0..2 * ARCH_REGS_PER_CLASS as usize {
            let r = ArchReg::from_flat_index(flat);
            assert_eq!(r.flat_index(), flat);
        }
        for class in OpClass::ALL {
            assert_eq!(OpClass::from_name(&class.to_string()), Some(class));
        }
        assert_eq!(OpClass::from_name("warp-drive"), None);
    }

    #[test]
    fn flat_indices_are_distinct() {
        let a = ArchReg::new(RegClass::Int, 5);
        let b = ArchReg::new(RegClass::Fp, 5);
        assert_ne!(a.flat_index(), b.flat_index());
        assert_eq!(b.flat_index(), 5 + ARCH_REGS_PER_CLASS as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn arch_reg_rejects_out_of_range() {
        let _ = ArchReg::new(RegClass::Int, ARCH_REGS_PER_CLASS);
    }

    #[test]
    fn sources_iterates_present_only() {
        let op = MicroOp {
            pc: 0,
            class: OpClass::IntAlu,
            dest: None,
            srcs: [Some(ArchReg::new(RegClass::Int, 1)), None],
            addr: None,
            taken: false,
        };
        assert_eq!(op.sources().count(), 1);
    }

    #[test]
    fn display_forms() {
        assert_eq!(ArchReg::new(RegClass::Int, 7).to_string(), "r7");
        assert_eq!(ArchReg::new(RegClass::Fp, 7).to_string(), "f7");
        assert_eq!(OpClass::FpDiv.to_string(), "fp-div");
    }
}
