//! Synthetic workload generation for the RAMP/DRM reproduction.
//!
//! The paper drives its study with three multimedia codecs (MPGdec, MP3dec,
//! H263enc), three SpecInt2000 (bzip2, gzip, twolf) and three SpecFP2000
//! (art, equake, ammp) applications. Those binaries cannot be shipped with a
//! reproduction, so this crate provides a *statistical substitute*: each
//! application becomes an [`AppProfile`] — instruction-class mix, a
//! dependency-distance model controlling exploitable ILP, a static-branch
//! bias model controlling predictability, and a working-set/stride model
//! controlling cache behaviour — from which [`SyntheticStream`] produces a
//! deterministic, seeded instruction stream.
//!
//! Profiles are calibrated so that the base 8-wide 4 GHz processor of Table 1
//! reproduces the IPC spread of Table 2 (from 0.7 for `art` up to 3.2 for
//! `MPGdec`); the reliability study consumes only IPC, per-structure
//! activity, and power, all of which the synthetic streams reproduce.
//!
//! # Examples
//!
//! ```
//! use workload::{App, InstructionSource, SyntheticStream};
//!
//! let mut stream = SyntheticStream::new(App::Bzip2.profile(), 42);
//! let op = stream.next_op();
//! assert_eq!(op.pc % 4, 0);
//! ```

pub mod op;
pub mod profile;
pub mod stream;
pub mod textfmt;
pub mod trace;

pub use op::{ArchReg, MicroOp, OpClass, RegClass, ARCH_REGS_PER_CLASS};
pub use profile::{App, AppProfile, OpMix, PhaseSegment};
pub use stream::{StreamState, SyntheticStream};
pub use textfmt::{profile_from_text, profile_to_text};
pub use trace::{RecordedTrace, TraceReplayer};

/// A source of decoded micro-operations for the timing simulator.
///
/// Streams are conceptually infinite; the simulator decides how many
/// instructions to consume. Implementations must be deterministic for a
/// given construction (same profile + seed ⇒ same stream) so that every
/// DRM configuration sweep sees identical work.
pub trait InstructionSource {
    /// Produces the next micro-op in program order.
    fn next_op(&mut self) -> MicroOp;

    /// Human-readable name of the workload (used in reports).
    fn name(&self) -> &str;
}
