//! Application profiles: the statistical stand-ins for the paper's nine
//! workloads (Table 2).

use crate::op::OpClass;
use sim_common::SimError;

/// An instruction-class mix: the stationary probability of each
/// [`OpClass`] in the dynamic instruction stream.
///
/// # Examples
///
/// ```
/// use workload::{OpMix, OpClass};
/// let mix = OpMix::from_weights([
///     (OpClass::IntAlu, 5.0),
///     (OpClass::Load, 3.0),
///     (OpClass::Branch, 2.0),
/// ])?;
/// assert!((mix.fraction(OpClass::IntAlu) - 0.5).abs() < 1e-12);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    fractions: [f64; OpClass::ALL.len()],
}

impl OpMix {
    /// Builds a mix from per-class weights; weights are normalized so they
    /// need not sum to one. Classes not listed get weight zero.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any weight is negative or
    /// non-finite, or when all weights are zero.
    pub fn from_weights(
        weights: impl IntoIterator<Item = (OpClass, f64)>,
    ) -> Result<OpMix, SimError> {
        let mut fractions = [0.0; OpClass::ALL.len()];
        for (class, w) in weights {
            if !w.is_finite() || w < 0.0 {
                return Err(SimError::invalid_config(format!(
                    "op-mix weight for {class} must be finite and non-negative, got {w}"
                )));
            }
            fractions[Self::slot(class)] += w;
        }
        let total: f64 = fractions.iter().sum();
        if total <= 0.0 {
            return Err(SimError::invalid_config("op mix has zero total weight"));
        }
        // Already-normalized weights (e.g. fractions re-read from a printed
        // scenario or profile file) are kept bit-exact: dividing by a total
        // within one ulp of 1.0 could perturb the last bit and break
        // print → parse round-trips.
        if (total - 1.0).abs() > 1e-9 {
            for f in &mut fractions {
                *f /= total;
            }
        }
        Ok(OpMix { fractions })
    }

    fn slot(class: OpClass) -> usize {
        OpClass::ALL
            .iter()
            .position(|&c| c == class)
            .expect("class present in ALL")
    }

    /// Probability of `class` in the stream.
    pub fn fraction(&self, class: OpClass) -> f64 {
        self.fractions[Self::slot(class)]
    }

    /// Cumulative distribution in [`OpClass::ALL`] order, for sampling.
    pub(crate) fn cumulative(&self) -> [f64; OpClass::ALL.len()] {
        let mut cum = [0.0; OpClass::ALL.len()];
        let mut acc = 0.0;
        for (i, f) in self.fractions.iter().enumerate() {
            acc += f;
            cum[i] = acc;
        }
        // Guard against rounding: the last entry must cover 1.0 exactly.
        cum[OpClass::ALL.len() - 1] = 1.0;
        cum
    }
}

/// A phase of execution with optional overrides of the stationary behaviour.
///
/// Multimedia codecs are frame-periodic: the paper's workloads run "at least
/// 400 application frames". Segments are cycled in order, each lasting
/// `instructions` dynamic instructions.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSegment {
    /// Length of the segment in dynamic instructions.
    pub instructions: u64,
    /// Mix override for the duration of the segment.
    pub mix: Option<OpMix>,
    /// Cold data working-set override (bytes).
    pub working_set: Option<u64>,
    /// Spatial-locality override for cold accesses.
    pub spatial_fraction: Option<f64>,
}

/// A complete statistical description of an application.
///
/// Use [`App::profile`] for the nine calibrated paper workloads, or build a
/// custom profile and adjust fields for sensitivity studies.
///
/// Data accesses follow a three-level locality hierarchy: a `hot` region
/// (stack and loop temporaries, essentially L1-resident), a `mid` region
/// (L2-resident footprint), and a `cold` working set walked by sequential
/// streams and random references.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Workload name, e.g. `"bzip2"`.
    pub name: String,
    /// Stationary instruction mix.
    pub mix: OpMix,
    /// Mean register dependency distance for integer values (larger ⇒ more
    /// exploitable ILP).
    pub dep_mean_int: f64,
    /// Mean register dependency distance for floating-point values.
    pub dep_mean_fp: f64,
    /// Fraction of loads that write a floating-point register.
    pub fp_load_fraction: f64,
    /// Static code footprint in bytes (drives L1 I-cache behaviour).
    pub code_footprint: u64,
    /// Probability that a static branch is biased taken.
    pub branch_taken_bias: f64,
    /// Branch outcome noise in `[0, 0.5]`: per-branch probability of
    /// deviating from its bias. This is approximately the steady-state
    /// misprediction rate of a bimodal predictor on the stream.
    pub branch_noise: f64,
    /// Fraction of data accesses landing in the hot region.
    pub hot_fraction: f64,
    /// Hot region size in bytes.
    pub hot_bytes: u64,
    /// Fraction of data accesses landing in the mid region.
    pub mid_fraction: f64,
    /// Mid region size in bytes.
    pub mid_bytes: u64,
    /// Cold working-set size in bytes (receives `1 - hot - mid` of
    /// accesses).
    pub data_working_set: u64,
    /// Fraction of cold accesses that walk sequential streams.
    pub spatial_fraction: f64,
    /// Number of concurrent sequential access streams.
    pub access_streams: usize,
    /// Frame/phase structure; empty for stationary workloads.
    pub phases: Vec<PhaseSegment>,
}

impl AppProfile {
    /// Validates the profile's numeric ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a probability field is
    /// outside `[0, 1]`, fractions sum past 1, a mean distance is below 1,
    /// or a size is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        let prob = |label: &str, v: f64| -> Result<(), SimError> {
            if !(0.0..=1.0).contains(&v) {
                return Err(SimError::invalid_config(format!(
                    "{label} must be in [0,1], got {v}"
                )));
            }
            Ok(())
        };
        prob("fp_load_fraction", self.fp_load_fraction)?;
        prob("branch_taken_bias", self.branch_taken_bias)?;
        prob("spatial_fraction", self.spatial_fraction)?;
        prob("hot_fraction", self.hot_fraction)?;
        prob("mid_fraction", self.mid_fraction)?;
        if self.hot_fraction + self.mid_fraction > 1.0 {
            return Err(SimError::invalid_config(
                "hot_fraction + mid_fraction must not exceed 1",
            ));
        }
        if self.hot_bytes == 0 || self.mid_bytes == 0 {
            return Err(SimError::invalid_config(
                "hot and mid region sizes must be non-zero",
            ));
        }
        if !(0.0..=0.5).contains(&self.branch_noise) {
            return Err(SimError::invalid_config(format!(
                "branch_noise must be in [0,0.5], got {}",
                self.branch_noise
            )));
        }
        if self.dep_mean_int < 1.0 || self.dep_mean_fp < 1.0 {
            return Err(SimError::invalid_config(
                "dependency distances must be at least 1",
            ));
        }
        if self.code_footprint == 0 || self.data_working_set == 0 {
            return Err(SimError::invalid_config(
                "code footprint and working set must be non-zero",
            ));
        }
        if self.access_streams == 0 {
            return Err(SimError::invalid_config(
                "at least one access stream is required",
            ));
        }
        for (i, seg) in self.phases.iter().enumerate() {
            if seg.instructions == 0 {
                return Err(SimError::invalid_config(format!(
                    "phase segment {i} has zero length"
                )));
            }
            if let Some(s) = seg.spatial_fraction {
                prob("phase spatial_fraction", s)?;
            }
        }
        Ok(())
    }
}

/// The nine paper workloads (Table 2).
///
/// # Examples
///
/// ```
/// use workload::App;
/// assert_eq!(App::ALL.len(), 9);
/// assert_eq!(App::Art.name(), "art");
/// assert!(App::MpgDec.is_multimedia());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// MPEG video decoder (multimedia, IPC 3.2 in the paper).
    MpgDec,
    /// MP3 audio decoder (multimedia, IPC 2.8).
    Mp3Dec,
    /// H263 video encoder (multimedia, IPC 1.9).
    H263Enc,
    /// SpecInt bzip2 (IPC 1.7).
    Bzip2,
    /// SpecInt gzip (IPC 1.5).
    Gzip,
    /// SpecInt twolf (IPC 0.8).
    Twolf,
    /// SpecFP art (IPC 0.7).
    Art,
    /// SpecFP equake (IPC 1.4).
    Equake,
    /// SpecFP ammp (IPC 1.1).
    Ammp,
}

impl App {
    /// All workloads in Table 2 order.
    pub const ALL: [App; 9] = [
        App::MpgDec,
        App::Mp3Dec,
        App::H263Enc,
        App::Bzip2,
        App::Gzip,
        App::Twolf,
        App::Art,
        App::Equake,
        App::Ammp,
    ];

    /// Workload name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::MpgDec => "MPGdec",
            App::Mp3Dec => "MP3dec",
            App::H263Enc => "H263enc",
            App::Bzip2 => "bzip2",
            App::Gzip => "gzip",
            App::Twolf => "twolf",
            App::Art => "art",
            App::Equake => "equake",
            App::Ammp => "ammp",
        }
    }

    /// True for the three multimedia codecs.
    pub fn is_multimedia(self) -> bool {
        matches!(self, App::MpgDec | App::Mp3Dec | App::H263Enc)
    }

    /// IPC reported by the paper on the base non-adaptive processor
    /// (Table 2); used as the calibration target.
    pub fn paper_ipc(self) -> f64 {
        match self {
            App::MpgDec => 3.2,
            App::Mp3Dec => 2.8,
            App::H263Enc => 1.9,
            App::Bzip2 => 1.7,
            App::Gzip => 1.5,
            App::Twolf => 0.8,
            App::Art => 0.7,
            App::Equake => 1.4,
            App::Ammp => 1.1,
        }
    }

    /// Base power (dynamic + leakage, watts) reported by the paper
    /// (Table 2); used as the calibration target.
    pub fn paper_power_watts(self) -> f64 {
        match self {
            App::MpgDec => 36.5,
            App::Mp3Dec => 34.7,
            App::H263Enc => 30.8,
            App::Bzip2 => 23.9,
            App::Gzip => 23.4,
            App::Twolf => 15.6,
            App::Art => 17.0,
            App::Equake => 20.9,
            App::Ammp => 19.7,
        }
    }

    /// The calibrated statistical profile for this workload.
    pub fn profile(self) -> AppProfile {
        let mix = |weights: &[(OpClass, f64)]| {
            OpMix::from_weights(weights.iter().copied()).expect("static mixes are valid")
        };
        use OpClass::*;
        const KB: u64 = 1024;
        const MB: u64 = 1024 * 1024;
        let profile = match self {
            App::MpgDec => AppProfile {
                name: "MPGdec".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.470),
                    (IntMul, 0.030),
                    (IntDiv, 0.001),
                    (FpAdd, 0.070),
                    (FpMul, 0.050),
                    (FpDiv, 0.002),
                    (Load, 0.220),
                    (Store, 0.090),
                    (Branch, 0.067),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 13.5,
                dep_mean_fp: 12.0,
                fp_load_fraction: 0.25,
                code_footprint: 20 * KB,
                branch_taken_bias: 0.65,
                branch_noise: 0.015,
                hot_fraction: 0.96,
                hot_bytes: 8 * KB,
                mid_fraction: 0.03,
                mid_bytes: 192 * KB,
                data_working_set: 512 * KB,
                spatial_fraction: 0.97,
                access_streams: 6,
                phases: vec![
                    // IDCT / motion-compensation heavy segment …
                    PhaseSegment {
                        instructions: 150_000,
                        mix: Some(mix(&[
                            (IntAlu, 0.42),
                            (IntMul, 0.04),
                            (FpAdd, 0.10),
                            (FpMul, 0.08),
                            (Load, 0.21),
                            (Store, 0.08),
                            (Branch, 0.07),
                            (Call, 0.008),
                            (Return, 0.008),
                        ])),
                        working_set: None,
                        spatial_fraction: None,
                    },
                    // … followed by frame output (store heavy, streaming).
                    PhaseSegment {
                        instructions: 100_000,
                        mix: Some(mix(&[
                            (IntAlu, 0.52),
                            (IntMul, 0.02),
                            (FpAdd, 0.03),
                            (FpMul, 0.02),
                            (Load, 0.22),
                            (Store, 0.12),
                            (Branch, 0.07),
                            (Call, 0.008),
                            (Return, 0.008),
                        ])),
                        working_set: Some(MB),
                        spatial_fraction: Some(0.98),
                    },
                ],
            },
            App::Mp3Dec => AppProfile {
                name: "MP3dec".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.380),
                    (IntMul, 0.020),
                    (IntDiv, 0.001),
                    (FpAdd, 0.120),
                    (FpMul, 0.100),
                    (FpDiv, 0.004),
                    (Load, 0.230),
                    (Store, 0.080),
                    (Branch, 0.065),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 7.0,
                dep_mean_fp: 6.5,
                fp_load_fraction: 0.45,
                code_footprint: 16 * KB,
                branch_taken_bias: 0.6,
                branch_noise: 0.015,
                hot_fraction: 0.965,
                hot_bytes: 8 * KB,
                mid_fraction: 0.025,
                mid_bytes: 160 * KB,
                data_working_set: 384 * KB,
                spatial_fraction: 0.95,
                access_streams: 4,
                phases: vec![
                    PhaseSegment {
                        instructions: 120_000,
                        mix: None,
                        working_set: None,
                        spatial_fraction: None,
                    },
                    PhaseSegment {
                        instructions: 60_000,
                        mix: Some(mix(&[
                            (IntAlu, 0.40),
                            (FpAdd, 0.14),
                            (FpMul, 0.13),
                            (Load, 0.20),
                            (Store, 0.07),
                            (Branch, 0.06),
                            (Call, 0.008),
                            (Return, 0.008),
                        ])),
                        working_set: Some(256 * KB),
                        spatial_fraction: Some(0.95),
                    },
                ],
            },
            App::H263Enc => AppProfile {
                name: "H263enc".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.500),
                    (IntMul, 0.040),
                    (IntDiv, 0.004),
                    (FpAdd, 0.020),
                    (FpMul, 0.012),
                    (Load, 0.240),
                    (Store, 0.070),
                    (Branch, 0.114),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 8.0,
                dep_mean_fp: 7.0,
                fp_load_fraction: 0.1,
                code_footprint: 28 * KB,
                branch_taken_bias: 0.6,
                branch_noise: 0.035,
                hot_fraction: 0.943,
                hot_bytes: 12 * KB,
                mid_fraction: 0.045,
                mid_bytes: 384 * KB,
                data_working_set: 768 * KB,
                spatial_fraction: 0.95,
                access_streams: 5,
                phases: Vec::new(),
            },
            App::Bzip2 => AppProfile {
                name: "bzip2".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.450),
                    (IntMul, 0.010),
                    (IntDiv, 0.002),
                    (Load, 0.260),
                    (Store, 0.090),
                    (Branch, 0.130),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 8.0,
                dep_mean_fp: 7.0,
                fp_load_fraction: 0.0,
                code_footprint: 32 * KB,
                branch_taken_bias: 0.55,
                branch_noise: 0.055,
                hot_fraction: 0.947,
                hot_bytes: 16 * KB,
                mid_fraction: 0.043,
                mid_bytes: 320 * KB,
                data_working_set: 4 * MB,
                spatial_fraction: 0.8,
                access_streams: 4,
                phases: Vec::new(),
            },
            App::Gzip => AppProfile {
                name: "gzip".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.440),
                    (IntMul, 0.005),
                    (IntDiv, 0.001),
                    (Load, 0.250),
                    (Store, 0.100),
                    (Branch, 0.140),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 6.0,
                dep_mean_fp: 5.0,
                fp_load_fraction: 0.0,
                code_footprint: 32 * KB,
                branch_taken_bias: 0.55,
                branch_noise: 0.075,
                hot_fraction: 0.948,
                hot_bytes: 16 * KB,
                mid_fraction: 0.04,
                mid_bytes: 320 * KB,
                data_working_set: 3 * MB,
                spatial_fraction: 0.8,
                access_streams: 3,
                phases: Vec::new(),
            },
            App::Twolf => AppProfile {
                name: "twolf".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.400),
                    (IntMul, 0.008),
                    (IntDiv, 0.002),
                    (Load, 0.280),
                    (Store, 0.070),
                    (Branch, 0.160),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 6.0,
                dep_mean_fp: 5.0,
                fp_load_fraction: 0.02,
                code_footprint: 48 * KB,
                branch_taken_bias: 0.52,
                branch_noise: 0.09,
                hot_fraction: 0.90,
                hot_bytes: 24 * KB,
                mid_fraction: 0.062,
                mid_bytes: 512 * KB,
                data_working_set: 3 * MB,
                spatial_fraction: 0.35,
                access_streams: 2,
                phases: Vec::new(),
            },
            App::Art => AppProfile {
                name: "art".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.250),
                    (FpAdd, 0.180),
                    (FpMul, 0.140),
                    (FpDiv, 0.002),
                    (Load, 0.300),
                    (Store, 0.045),
                    (Branch, 0.083),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 10.0,
                dep_mean_fp: 9.0,
                fp_load_fraction: 0.7,
                code_footprint: 16 * KB,
                branch_taken_bias: 0.7,
                branch_noise: 0.01,
                hot_fraction: 0.55,
                hot_bytes: 16 * KB,
                mid_fraction: 0.10,
                mid_bytes: 512 * KB,
                data_working_set: 16 * MB,
                spatial_fraction: 0.6,
                access_streams: 8,
                phases: Vec::new(),
            },
            App::Equake => AppProfile {
                name: "equake".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.270),
                    (FpAdd, 0.160),
                    (FpMul, 0.120),
                    (FpDiv, 0.005),
                    (IntMul, 0.005),
                    (Load, 0.280),
                    (Store, 0.070),
                    (Branch, 0.090),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 9.0,
                dep_mean_fp: 8.0,
                fp_load_fraction: 0.6,
                code_footprint: 24 * KB,
                branch_taken_bias: 0.65,
                branch_noise: 0.025,
                hot_fraction: 0.855,
                hot_bytes: 16 * KB,
                mid_fraction: 0.045,
                mid_bytes: 512 * KB,
                data_working_set: 8 * MB,
                spatial_fraction: 0.95,
                access_streams: 6,
                phases: Vec::new(),
            },
            App::Ammp => AppProfile {
                name: "ammp".to_owned(),
                mix: mix(&[
                    (IntAlu, 0.280),
                    (FpAdd, 0.150),
                    (FpMul, 0.120),
                    (FpDiv, 0.020),
                    (Load, 0.260),
                    (Store, 0.070),
                    (Branch, 0.100),
                    (Call, 0.008),
                    (Return, 0.008),
                ]),
                dep_mean_int: 8.0,
                dep_mean_fp: 7.0,
                fp_load_fraction: 0.55,
                code_footprint: 24 * KB,
                branch_taken_bias: 0.6,
                branch_noise: 0.03,
                hot_fraction: 0.845,
                hot_bytes: 16 * KB,
                mid_fraction: 0.065,
                mid_bytes: 512 * KB,
                data_working_set: 6 * MB,
                spatial_fraction: 0.6,
                access_streams: 4,
                phases: Vec::new(),
            },
        };
        debug_assert!(profile.validate().is_ok());
        profile
    }
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_normalizes_weights() {
        let mix = OpMix::from_weights([(OpClass::IntAlu, 2.0), (OpClass::Load, 2.0)]).unwrap();
        assert!((mix.fraction(OpClass::IntAlu) - 0.5).abs() < 1e-12);
        assert!((mix.fraction(OpClass::Load) - 0.5).abs() < 1e-12);
        assert_eq!(mix.fraction(OpClass::FpDiv), 0.0);
    }

    #[test]
    fn mix_rejects_negative_weight() {
        let err = OpMix::from_weights([(OpClass::IntAlu, -1.0)]).unwrap_err();
        assert!(err.to_string().contains("non-negative"));
    }

    #[test]
    fn mix_rejects_all_zero() {
        let err = OpMix::from_weights([(OpClass::IntAlu, 0.0)]).unwrap_err();
        assert!(err.to_string().contains("zero total"));
    }

    #[test]
    fn mix_cumulative_ends_at_one() {
        for app in App::ALL {
            let cum = app.profile().mix.cumulative();
            assert_eq!(*cum.last().unwrap(), 1.0);
            for w in cum.windows(2) {
                assert!(w[1] >= w[0]);
            }
        }
    }

    #[test]
    fn all_profiles_validate() {
        for app in App::ALL {
            app.profile().validate().unwrap_or_else(|e| {
                panic!("profile for {app} is invalid: {e}");
            });
        }
    }

    #[test]
    fn profile_names_match_app_names() {
        for app in App::ALL {
            assert_eq!(app.profile().name, app.name());
        }
    }

    #[test]
    fn multimedia_classification() {
        let mm: Vec<_> = App::ALL.into_iter().filter(|a| a.is_multimedia()).collect();
        assert_eq!(mm, vec![App::MpgDec, App::Mp3Dec, App::H263Enc]);
    }

    #[test]
    fn paper_targets_match_table2() {
        assert_eq!(App::MpgDec.paper_ipc(), 3.2);
        assert_eq!(App::Art.paper_ipc(), 0.7);
        assert_eq!(App::MpgDec.paper_power_watts(), 36.5);
        assert_eq!(App::Twolf.paper_power_watts(), 15.6);
    }

    #[test]
    fn multimedia_have_phases() {
        assert!(!App::MpgDec.profile().phases.is_empty());
        assert!(!App::Mp3Dec.profile().phases.is_empty());
        assert!(App::Bzip2.profile().phases.is_empty());
    }

    #[test]
    fn validate_rejects_bad_probability() {
        let mut p = App::Bzip2.profile();
        p.spatial_fraction = 1.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_overfull_locality_mixture() {
        let mut p = App::Bzip2.profile();
        p.hot_fraction = 0.8;
        p.mid_fraction = 0.3;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_region() {
        let mut p = App::Bzip2.profile();
        p.hot_bytes = 0;
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_phase() {
        let mut p = App::Bzip2.profile();
        p.phases.push(PhaseSegment {
            instructions: 0,
            mix: None,
            working_set: None,
            spatial_fraction: None,
        });
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_small_dep_mean() {
        let mut p = App::Bzip2.profile();
        p.dep_mean_int = 0.5;
        assert!(p.validate().is_err());
    }

    #[test]
    fn locality_hierarchy_is_ordered() {
        // Hot fits in L1, mid fits in L2, cold exceeds L2 — for every app.
        for app in App::ALL {
            let p = app.profile();
            assert!(p.hot_bytes <= 32 * 1024, "{app}: hot region too large");
            assert!(p.mid_bytes <= 1024 * 1024, "{app}: mid region beyond L2");
            assert!(
                p.data_working_set > p.mid_bytes,
                "{app}: cold set smaller than mid"
            );
        }
    }
}
