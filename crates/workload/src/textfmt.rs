//! A small, dependency-free text format for workload profiles.
//!
//! Downstream users can describe their own applications in a plain text
//! file and run the full pipeline on them (`ramp evaluate --profile f`):
//!
//! ```text
//! # my-codec.profile
//! name            my-codec
//! dep_mean_int    12
//! dep_mean_fp     10
//! fp_load_fraction 0.3
//! code_footprint  24576
//! branch_taken_bias 0.6
//! branch_noise    0.03
//! hot_fraction    0.94
//! hot_bytes       8192
//! mid_fraction    0.03
//! mid_bytes       196608
//! data_working_set 1048576
//! spatial_fraction 0.9
//! access_streams  4
//! mix int-alu 0.45
//! mix fp-add 0.1
//! mix load 0.25
//! mix store 0.08
//! mix branch 0.1
//! mix call 0.01
//! mix return 0.01
//! phase instructions=150000
//! phase instructions=50000 working_set=2097152 spatial=0.97
//! ```
//!
//! Unknown keys are errors (typos fail loudly); the parsed profile is
//! validated with [`AppProfile::validate`].

use crate::op::OpClass;
use crate::profile::{AppProfile, OpMix, PhaseSegment};
use sim_common::SimError;

/// Parses a profile from the text format.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] for syntax errors, unknown keys,
/// missing required fields, or a profile failing validation.
pub fn profile_from_text(text: &str) -> Result<AppProfile, SimError> {
    let mut name: Option<String> = None;
    let mut scalars: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    let mut mix_weights: Vec<(OpClass, f64)> = Vec::new();
    let mut phases: Vec<PhaseSegment> = Vec::new();

    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut parts = line.split_whitespace();
        let key = parts.next().expect("non-empty line has a first token");
        let err = |msg: String| SimError::invalid_config(format!("line {}: {msg}", lineno + 1));
        match key {
            "name" => {
                let value = parts
                    .next()
                    .ok_or_else(|| err("name needs a value".into()))?;
                name = Some(value.to_owned());
            }
            "mix" => {
                let class_name = parts
                    .next()
                    .ok_or_else(|| err("mix needs a class and a weight".into()))?;
                let class = OpClass::ALL
                    .into_iter()
                    .find(|c| c.to_string() == class_name)
                    .ok_or_else(|| err(format!("unknown op class `{class_name}`")))?;
                let weight: f64 = parts
                    .next()
                    .ok_or_else(|| err("mix needs a weight".into()))?
                    .parse()
                    .map_err(|_| err("mix weight must be a number".into()))?;
                mix_weights.push((class, weight));
            }
            "phase" => {
                let mut segment = PhaseSegment {
                    instructions: 0,
                    mix: None,
                    working_set: None,
                    spatial_fraction: None,
                };
                for kv in parts.by_ref() {
                    let (k, v) = kv
                        .split_once('=')
                        .ok_or_else(|| err(format!("phase expects key=value, got `{kv}`")))?;
                    match k {
                        "instructions" => {
                            segment.instructions = v
                                .parse()
                                .map_err(|_| err("instructions must be an integer".into()))?;
                        }
                        "working_set" => {
                            segment.working_set = Some(
                                v.parse()
                                    .map_err(|_| err("working_set must be an integer".into()))?,
                            );
                        }
                        "spatial" => {
                            segment.spatial_fraction = Some(
                                v.parse()
                                    .map_err(|_| err("spatial must be a number".into()))?,
                            );
                        }
                        other => return Err(err(format!("unknown phase key `{other}`"))),
                    }
                }
                phases.push(segment);
            }
            "dep_mean_int" | "dep_mean_fp" | "fp_load_fraction" | "code_footprint"
            | "branch_taken_bias" | "branch_noise" | "hot_fraction" | "hot_bytes"
            | "mid_fraction" | "mid_bytes" | "data_working_set" | "spatial_fraction"
            | "access_streams" => {
                let value: f64 = parts
                    .next()
                    .ok_or_else(|| err(format!("{key} needs a value")))?
                    .parse()
                    .map_err(|_| err(format!("{key} must be a number")))?;
                scalars.insert(
                    match key {
                        "dep_mean_int" => "dep_mean_int",
                        "dep_mean_fp" => "dep_mean_fp",
                        "fp_load_fraction" => "fp_load_fraction",
                        "code_footprint" => "code_footprint",
                        "branch_taken_bias" => "branch_taken_bias",
                        "branch_noise" => "branch_noise",
                        "hot_fraction" => "hot_fraction",
                        "hot_bytes" => "hot_bytes",
                        "mid_fraction" => "mid_fraction",
                        "mid_bytes" => "mid_bytes",
                        "data_working_set" => "data_working_set",
                        "spatial_fraction" => "spatial_fraction",
                        _ => "access_streams",
                    },
                    value,
                );
            }
            other => return Err(err(format!("unknown key `{other}`"))),
        }
        if parts.next().is_some() {
            return Err(SimError::invalid_config(format!(
                "line {}: trailing tokens",
                lineno + 1
            )));
        }
    }

    let name = name.ok_or_else(|| SimError::invalid_config("missing `name`"))?;
    if mix_weights.is_empty() {
        return Err(SimError::invalid_config(
            "at least one `mix` line is required",
        ));
    }
    let get = |key: &str, default: f64| scalars.get(key).copied().unwrap_or(default);
    let profile = AppProfile {
        name,
        mix: OpMix::from_weights(mix_weights)?,
        dep_mean_int: get("dep_mean_int", 8.0),
        dep_mean_fp: get("dep_mean_fp", 7.0),
        fp_load_fraction: get("fp_load_fraction", 0.0),
        code_footprint: get("code_footprint", 32.0 * 1024.0) as u64,
        branch_taken_bias: get("branch_taken_bias", 0.6),
        branch_noise: get("branch_noise", 0.05),
        hot_fraction: get("hot_fraction", 0.93),
        hot_bytes: get("hot_bytes", 16.0 * 1024.0) as u64,
        mid_fraction: get("mid_fraction", 0.04),
        mid_bytes: get("mid_bytes", 384.0 * 1024.0) as u64,
        data_working_set: get("data_working_set", 2.0 * 1024.0 * 1024.0) as u64,
        spatial_fraction: get("spatial_fraction", 0.8),
        access_streams: get("access_streams", 4.0) as usize,
        phases,
    };
    profile.validate()?;
    Ok(profile)
}

/// Serializes a profile to the text format (round-trips through
/// [`profile_from_text`] up to mix normalization).
pub fn profile_to_text(profile: &AppProfile) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "name {}", profile.name);
    let _ = writeln!(out, "dep_mean_int {}", profile.dep_mean_int);
    let _ = writeln!(out, "dep_mean_fp {}", profile.dep_mean_fp);
    let _ = writeln!(out, "fp_load_fraction {}", profile.fp_load_fraction);
    let _ = writeln!(out, "code_footprint {}", profile.code_footprint);
    let _ = writeln!(out, "branch_taken_bias {}", profile.branch_taken_bias);
    let _ = writeln!(out, "branch_noise {}", profile.branch_noise);
    let _ = writeln!(out, "hot_fraction {}", profile.hot_fraction);
    let _ = writeln!(out, "hot_bytes {}", profile.hot_bytes);
    let _ = writeln!(out, "mid_fraction {}", profile.mid_fraction);
    let _ = writeln!(out, "mid_bytes {}", profile.mid_bytes);
    let _ = writeln!(out, "data_working_set {}", profile.data_working_set);
    let _ = writeln!(out, "spatial_fraction {}", profile.spatial_fraction);
    let _ = writeln!(out, "access_streams {}", profile.access_streams);
    for class in OpClass::ALL {
        let f = profile.mix.fraction(class);
        if f > 0.0 {
            let _ = writeln!(out, "mix {class} {f}");
        }
    }
    for phase in &profile.phases {
        let _ = write!(out, "phase instructions={}", phase.instructions);
        if let Some(ws) = phase.working_set {
            let _ = write!(out, " working_set={ws}");
        }
        if let Some(sp) = phase.spatial_fraction {
            let _ = write!(out, " spatial={sp}");
        }
        let _ = writeln!(out);
        // Phase-specific mixes are not representable in the text format;
        // they are dropped (documented limitation).
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::App;

    const EXAMPLE: &str = r"
# a made-up codec
name            my-codec
dep_mean_int    12
dep_mean_fp     10
fp_load_fraction 0.3
code_footprint  24576
branch_noise    0.03
hot_fraction    0.94
mid_fraction    0.03
data_working_set 1048576
mix int-alu 0.45
mix fp-add 0.1
mix load 0.25
mix store 0.08
mix branch 0.1   # comments allowed anywhere
phase instructions=150000
phase instructions=50000 working_set=2097152 spatial=0.97
";

    #[test]
    fn parses_the_example() {
        let p = profile_from_text(EXAMPLE).unwrap();
        assert_eq!(p.name, "my-codec");
        assert_eq!(p.dep_mean_int, 12.0);
        assert_eq!(p.code_footprint, 24576);
        assert_eq!(p.phases.len(), 2);
        assert_eq!(p.phases[1].working_set, Some(2_097_152));
        assert_eq!(p.phases[1].spatial_fraction, Some(0.97));
        // Mix normalized: int-alu weight 0.45 of 0.98 total.
        assert!((p.mix.fraction(OpClass::IntAlu) - 0.45 / 0.98).abs() < 1e-9);
        // Defaults fill unspecified fields.
        assert_eq!(p.access_streams, 4);
    }

    #[test]
    fn round_trips_paper_profiles() {
        for app in App::ALL {
            let original = app.profile();
            let text = profile_to_text(&original);
            let parsed = profile_from_text(&text).unwrap_or_else(|e| panic!("{app}: {e}\n{text}"));
            assert_eq!(parsed.name, original.name);
            assert_eq!(parsed.code_footprint, original.code_footprint);
            assert_eq!(parsed.data_working_set, original.data_working_set);
            assert_eq!(parsed.phases.len(), original.phases.len());
            for class in OpClass::ALL {
                assert!(
                    (parsed.mix.fraction(class) - original.mix.fraction(class)).abs() < 1e-9,
                    "{app}: {class}"
                );
            }
        }
    }

    #[test]
    fn rejects_unknown_keys_and_classes() {
        assert!(profile_from_text("name x\nmix int-alu 1\nfrobnicate 3")
            .unwrap_err()
            .to_string()
            .contains("unknown key"));
        assert!(profile_from_text("name x\nmix warp-drive 1")
            .unwrap_err()
            .to_string()
            .contains("unknown op class"));
        assert!(
            profile_from_text("name x\nmix int-alu 1\nphase instructions=5 color=red")
                .unwrap_err()
                .to_string()
                .contains("unknown phase key")
        );
    }

    #[test]
    fn rejects_missing_requireds_and_bad_numbers() {
        assert!(profile_from_text("mix int-alu 1")
            .unwrap_err()
            .to_string()
            .contains("name"));
        assert!(profile_from_text("name x")
            .unwrap_err()
            .to_string()
            .contains("mix"));
        assert!(profile_from_text("name x\nmix int-alu abc").is_err());
        assert!(profile_from_text("name x\nmix int-alu 1\ndep_mean_int zero").is_err());
        // Validation still applies: a zero-length phase is rejected.
        assert!(profile_from_text("name x\nmix int-alu 1\nphase instructions=0").is_err());
    }

    #[test]
    fn rejects_trailing_tokens() {
        assert!(profile_from_text("name x y\nmix int-alu 1").is_err());
    }
}
