//! Deterministic synthetic instruction stream generation.

use std::collections::VecDeque;

use sim_common::{splitmix64, Xoshiro256pp};

use crate::op::{ArchReg, MicroOp, OpClass, RegClass, ARCH_REGS_PER_CLASS};
use crate::profile::AppProfile;
use crate::InstructionSource;

/// Base virtual address of the synthetic data region. Code lives at 0, data
/// far away, so instruction and data addresses never collide in the caches.
const DATA_BASE: u64 = 0x1000_0000;

/// Depth of the recent-destination ring used for dependency construction.
/// Matches the architectural register count so ring entries are never
/// overwritten before they can be referenced.
const RING_DEPTH: usize = ARCH_REGS_PER_CLASS as usize;

/// Maximum modeled call depth; deeper calls degenerate to plain jumps
/// (matching how a bounded hardware RAS behaves under deep recursion).
const MAX_CALL_DEPTH: usize = 24;

/// Per-class micro-op tally, flushed to `workload.ops.<class>` /
/// `workload.ops.total` counters when the stream is dropped (one counter
/// update per stream lifetime, nothing in the per-op path). Cloned
/// streams start a fresh tally so replays never double-report.
#[derive(Debug)]
struct OpTally {
    counts: [u64; OpClass::ALL.len()],
}

impl OpTally {
    fn new() -> OpTally {
        OpTally {
            counts: [0; OpClass::ALL.len()],
        }
    }

    #[inline]
    fn record(&mut self, class: OpClass) {
        // `OpClass::ALL` is in declaration order, so the discriminant is
        // the index.
        self.counts[class as usize] += 1;
    }
}

impl Clone for OpTally {
    fn clone(&self) -> OpTally {
        OpTally::new()
    }
}

impl Drop for OpTally {
    fn drop(&mut self) {
        if !sim_obs::enabled() {
            return;
        }
        let total: u64 = self.counts.iter().sum();
        if total == 0 {
            return;
        }
        sim_obs::counter!("workload.ops.total", total);
        for (class, &n) in OpClass::ALL.iter().zip(self.counts.iter()) {
            if n > 0 {
                sim_obs::counter!(format!("workload.ops.{class}"), n);
            }
        }
    }
}

/// The serializable warm state of a [`SyntheticStream`], captured at an
/// instruction boundary by [`SyntheticStream::state`] and restored with
/// [`SyntheticStream::restore`].
///
/// Every field is an integer, so a text encoding round-trips bit-exactly.
/// The profile and seed are *not* part of the state — a checkpoint names
/// them separately and the restore path re-derives everything they imply
/// (branch-bias salt, phase parameters), which keeps the state minimal
/// and impossible to desynchronize from its profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamState {
    /// Raw xoshiro256++ generator state.
    pub rng: [u64; 4],
    /// Recent integer destination ring, oldest first (flat indices).
    pub recent_int: Vec<u16>,
    /// Recent floating-point destination ring, oldest first (flat indices).
    pub recent_fp: Vec<u16>,
    /// Next round-robin integer destination register.
    pub next_int_reg: u16,
    /// Next round-robin floating-point destination register.
    pub next_fp_reg: u16,
    /// Current program counter.
    pub pc: u64,
    /// Current loop back-edge target.
    pub loop_start: u64,
    /// Micro-ops emitted so far.
    pub emitted: u64,
    /// Return addresses of calls in flight, outermost first.
    pub call_stack: Vec<u64>,
    /// Sequential access-stream cursors into the data working set.
    pub stream_offsets: Vec<u64>,
    /// Current phase index (monotonic; wraps modulo the phase count).
    pub phase_idx: u64,
    /// Instructions left in the current phase (`u64::MAX` = phase-less).
    pub phase_remaining: u64,
}

/// A deterministic, seeded instruction stream realizing an [`AppProfile`].
///
/// The same `(profile, seed)` pair always generates the identical stream, so
/// configuration sweeps (DRM's adaptation search) see identical work.
///
/// # Examples
///
/// ```
/// use workload::{App, InstructionSource, SyntheticStream};
/// let mut a = SyntheticStream::new(App::Art.profile(), 7);
/// let mut b = SyntheticStream::new(App::Art.profile(), 7);
/// for _ in 0..1000 {
///     assert_eq!(a.next_op(), b.next_op());
/// }
/// ```
#[derive(Debug, Clone)]
pub struct SyntheticStream {
    profile: AppProfile,
    rng: Xoshiro256pp,
    bias_salt: u64,

    // Recent destination registers, most recent at the back.
    recent_int: VecDeque<ArchReg>,
    recent_fp: VecDeque<ArchReg>,
    next_int_reg: u16,
    next_fp_reg: u16,

    pc: u64,
    loop_start: u64,
    emitted: u64,
    tally: OpTally,
    /// Return addresses of calls in flight (bounded; deeper recursion
    /// degenerates to plain jumps).
    call_stack: Vec<u64>,

    // Sequential access streams into the data working set.
    stream_offsets: Vec<u64>,

    // Phase state: effective parameters after segment overrides.
    phase_idx: usize,
    phase_remaining: u64,
    cur_cum: [f64; OpClass::ALL.len()],
    cur_working_set: u64,
    cur_spatial: f64,
}

impl SyntheticStream {
    /// Creates a stream for `profile` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the profile fails [`AppProfile::validate`]; construct
    /// profiles through validated paths to avoid this.
    pub fn new(profile: AppProfile, seed: u64) -> SyntheticStream {
        profile
            .validate()
            .unwrap_or_else(|e| panic!("invalid profile {}: {e}", profile.name));
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let streams = (0..profile.access_streams)
            .map(|_| rng.gen_u64(0..profile.data_working_set.max(8)) & !7)
            .collect();
        let mut s = SyntheticStream {
            bias_salt: seed ^ 0x9E37_79B9_7F4A_7C15,
            cur_cum: profile.mix.cumulative(),
            cur_working_set: profile.data_working_set,
            cur_spatial: profile.spatial_fraction,
            profile,
            rng,
            recent_int: VecDeque::with_capacity(RING_DEPTH),
            recent_fp: VecDeque::with_capacity(RING_DEPTH),
            next_int_reg: 1,
            next_fp_reg: 1,
            pc: 0,
            loop_start: 0,
            emitted: 0,
            tally: OpTally::new(),
            call_stack: Vec::with_capacity(MAX_CALL_DEPTH),
            stream_offsets: streams,
            phase_idx: 0,
            phase_remaining: 0,
        };
        s.enter_phase(0);
        s
    }

    /// The profile this stream realizes.
    pub fn profile(&self) -> &AppProfile {
        &self.profile
    }

    /// Number of micro-ops emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Captures the stream's warm state for checkpointing. Restoring it
    /// with [`SyntheticStream::restore`] (same profile, same seed)
    /// continues the generated sequence bit for bit.
    #[must_use]
    pub fn state(&self) -> StreamState {
        let flat = |ring: &VecDeque<ArchReg>| ring.iter().map(|r| r.flat_index() as u16).collect();
        StreamState {
            rng: self.rng.state(),
            recent_int: flat(&self.recent_int),
            recent_fp: flat(&self.recent_fp),
            next_int_reg: self.next_int_reg,
            next_fp_reg: self.next_fp_reg,
            pc: self.pc,
            loop_start: self.loop_start,
            emitted: self.emitted,
            call_stack: self.call_stack.clone(),
            stream_offsets: self.stream_offsets.clone(),
            phase_idx: self.phase_idx as u64,
            phase_remaining: self.phase_remaining,
        }
    }

    /// Rebuilds a stream from a captured [`StreamState`]. `profile` and
    /// `seed` must be the ones the original stream was constructed with —
    /// the salt and phase parameters are re-derived from them, so a
    /// mismatched pair silently produces a different stream (checkpoint
    /// callers guard this with a fingerprint).
    ///
    /// # Panics
    ///
    /// Panics when the state is inconsistent with the profile (ring or
    /// cursor counts out of range), or the profile itself is invalid.
    #[must_use]
    pub fn restore(profile: AppProfile, seed: u64, state: &StreamState) -> SyntheticStream {
        let mut s = SyntheticStream::new(profile, seed);
        assert_eq!(
            state.stream_offsets.len(),
            s.stream_offsets.len(),
            "stream cursor count does not match the profile's access_streams"
        );
        assert!(
            state.recent_int.len() <= RING_DEPTH && state.recent_fp.len() <= RING_DEPTH,
            "destination ring deeper than RING_DEPTH"
        );
        assert!(
            state.call_stack.len() <= MAX_CALL_DEPTH,
            "call stack deeper than MAX_CALL_DEPTH"
        );
        s.rng = Xoshiro256pp::from_state(state.rng);
        let unflat = |flat: &[u16]| {
            flat.iter()
                .map(|&i| ArchReg::from_flat_index(i as usize))
                .collect()
        };
        s.recent_int = unflat(&state.recent_int);
        s.recent_fp = unflat(&state.recent_fp);
        s.next_int_reg = state.next_int_reg;
        s.next_fp_reg = state.next_fp_reg;
        s.pc = state.pc;
        s.loop_start = state.loop_start;
        s.emitted = state.emitted;
        s.call_stack = state.call_stack.clone();
        s.stream_offsets = state.stream_offsets.clone();
        // Re-derive the phase-dependent mix/working-set/stride parameters
        // from the phase index, then overwrite the intra-phase position
        // (`enter_phase` resets it to the segment length).
        s.enter_phase(state.phase_idx as usize);
        s.phase_remaining = state.phase_remaining;
        s
    }

    fn enter_phase(&mut self, idx: usize) {
        self.phase_idx = idx;
        if self.profile.phases.is_empty() {
            self.phase_remaining = u64::MAX;
            return;
        }
        let seg = &self.profile.phases[idx % self.profile.phases.len()];
        self.phase_remaining = seg.instructions;
        self.cur_cum = seg.mix.as_ref().unwrap_or(&self.profile.mix).cumulative();
        self.cur_working_set = seg.working_set.unwrap_or(self.profile.data_working_set);
        self.cur_spatial = seg
            .spatial_fraction
            .unwrap_or(self.profile.spatial_fraction);
    }

    fn advance_phase(&mut self) {
        if self.phase_remaining != u64::MAX {
            self.phase_remaining = self.phase_remaining.saturating_sub(1);
            if self.phase_remaining == 0 {
                self.enter_phase(self.phase_idx + 1);
            }
        }
    }

    /// Instruction class at `pc`: a deterministic function of the synthetic
    /// code layout, so loops replay the same instruction sequence (the
    /// branch predictor and I-cache see realistic repetition). The class
    /// distribution over the footprint follows the phase's mix.
    fn class_at(&self, pc: u64) -> OpClass {
        let phase_salt = if self.profile.phases.is_empty() {
            0
        } else {
            (self.phase_idx % self.profile.phases.len()) as u64
        };
        let h = splitmix64(
            pc ^ self.bias_salt.rotate_left(17) ^ phase_salt.wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        let slot = self.cur_cum.iter().position(|&c| u <= c).unwrap_or(0);
        OpClass::ALL[slot]
    }

    /// Samples a dependency distance with the given mean (geometric).
    fn sample_distance(&mut self, mean: f64) -> usize {
        let p = (1.0 / mean).clamp(1e-6, 1.0);
        let u: f64 = self.rng.gen_f64(f64::EPSILON..1.0);
        let d = 1.0 + (u.ln() / (1.0 - p).ln()).floor();
        d as usize
    }

    fn source_from_ring(&mut self, class: RegClass, mean: f64) -> Option<ArchReg> {
        let d = self.sample_distance(mean);
        let ring = match class {
            RegClass::Int => &self.recent_int,
            RegClass::Fp => &self.recent_fp,
        };
        if ring.is_empty() {
            return None;
        }
        let idx = ring.len().saturating_sub(d);
        ring.get(idx).copied().or_else(|| ring.front().copied())
    }

    fn alloc_dest(&mut self, class: RegClass) -> ArchReg {
        // Round-robin over registers 1..N; register 0 is never written, so a
        // source that maps to it is architecturally always ready.
        let reg = match class {
            RegClass::Int => {
                let r = ArchReg::new(RegClass::Int, self.next_int_reg);
                self.next_int_reg = 1 + (self.next_int_reg % (ARCH_REGS_PER_CLASS - 1));
                r
            }
            RegClass::Fp => {
                let r = ArchReg::new(RegClass::Fp, self.next_fp_reg);
                self.next_fp_reg = 1 + (self.next_fp_reg % (ARCH_REGS_PER_CLASS - 1));
                r
            }
        };
        let ring = match class {
            RegClass::Int => &mut self.recent_int,
            RegClass::Fp => &mut self.recent_fp,
        };
        if ring.len() == RING_DEPTH {
            ring.pop_front();
        }
        ring.push_back(reg);
        reg
    }

    fn data_address(&mut self) -> u64 {
        // Three-level locality hierarchy: hot (L1-resident) and mid
        // (L2-resident) regions at the bottom of the data segment, cold
        // streaming/random traffic over the full working set.
        let u: f64 = self.rng.next_f64();
        if u < self.profile.hot_fraction {
            return DATA_BASE + (self.rng.gen_u64(0..self.profile.hot_bytes.max(64)) & !7);
        }
        if u < self.profile.hot_fraction + self.profile.mid_fraction {
            return DATA_BASE + (self.rng.gen_u64(0..self.profile.mid_bytes.max(64)) & !7);
        }
        let ws = self.cur_working_set.max(64);
        if self.rng.gen_bool(self.cur_spatial) {
            let n = self.stream_offsets.len();
            let slot = self.rng.gen_usize(0..n);
            let off = self.stream_offsets[slot];
            self.stream_offsets[slot] = (off + 8) % ws;
            DATA_BASE + off
        } else {
            DATA_BASE + (self.rng.gen_u64(0..ws) & !7)
        }
    }

    /// Deterministic per-branch behaviour derived from the branch PC.
    /// Returns `(base_taken, flip_probability)`.
    fn branch_character(&self, pc: u64) -> (bool, f64) {
        let h = splitmix64(pc ^ self.bias_salt);
        let u1 = (h >> 11) as f64 / (1u64 << 53) as f64;
        let u2 = (splitmix64(h) >> 11) as f64 / (1u64 << 53) as f64;
        let base_taken = u1 < self.profile.branch_taken_bias;
        let flip = u2 * 2.0 * self.profile.branch_noise;
        (base_taken, flip)
    }

    fn step_pc_sequential(&mut self) {
        self.pc += 4;
        if self.pc >= self.profile.code_footprint {
            self.pc = 0;
            self.loop_start = 0;
        }
    }
}

impl InstructionSource for SyntheticStream {
    fn next_op(&mut self) -> MicroOp {
        let pc = self.pc;
        let class = self.class_at(pc);
        let dep_int = self.profile.dep_mean_int;
        let dep_fp = self.profile.dep_mean_fp;

        let mut op = MicroOp {
            pc,
            class,
            dest: None,
            srcs: [None, None],
            addr: None,
            taken: false,
        };

        match class {
            OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv => {
                op.srcs[0] = self.source_from_ring(RegClass::Int, dep_int);
                op.srcs[1] = self.source_from_ring(RegClass::Int, dep_int);
                op.dest = Some(self.alloc_dest(RegClass::Int));
                self.step_pc_sequential();
            }
            OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                op.srcs[0] = self.source_from_ring(RegClass::Fp, dep_fp);
                op.srcs[1] = self.source_from_ring(RegClass::Fp, dep_fp);
                op.dest = Some(self.alloc_dest(RegClass::Fp));
                self.step_pc_sequential();
            }
            OpClass::Load => {
                op.srcs[0] = self.source_from_ring(RegClass::Int, dep_int);
                op.addr = Some(self.data_address());
                let fp_dest = self.rng.gen_bool(self.profile.fp_load_fraction);
                op.dest = Some(if fp_dest {
                    self.alloc_dest(RegClass::Fp)
                } else {
                    self.alloc_dest(RegClass::Int)
                });
                self.step_pc_sequential();
            }
            OpClass::Store => {
                op.srcs[0] = self.source_from_ring(RegClass::Int, dep_int);
                let fp_data = self.rng.gen_bool(self.profile.fp_load_fraction);
                op.srcs[1] = if fp_data {
                    self.source_from_ring(RegClass::Fp, dep_fp)
                } else {
                    self.source_from_ring(RegClass::Int, dep_int)
                };
                op.addr = Some(self.data_address());
                self.step_pc_sequential();
            }
            OpClass::Branch => {
                op.srcs[0] = self.source_from_ring(RegClass::Int, dep_int);
                let (base_taken, flip) = self.branch_character(pc);
                let taken = base_taken ^ self.rng.gen_bool(flip);
                op.taken = taken;
                if taken {
                    // Mostly loop back-edges; occasionally a fresh region.
                    if self.rng.gen_bool(0.85) {
                        self.pc = self.loop_start;
                    } else {
                        let footprint = self.profile.code_footprint;
                        self.pc = self.rng.gen_u64(0..footprint) & !3;
                        self.loop_start = self.pc;
                    }
                } else {
                    self.step_pc_sequential();
                }
            }
            OpClass::Call => {
                // Unconditional; the callee entry is a fixed function of
                // the call site (a static call graph). Depth-limited:
                // beyond the cap the call behaves as a plain jump.
                op.taken = true;
                if self.call_stack.len() < MAX_CALL_DEPTH {
                    self.call_stack.push((pc + 4) % self.profile.code_footprint);
                }
                let entry =
                    splitmix64(pc ^ self.bias_salt.rotate_left(29)) % self.profile.code_footprint;
                self.pc = entry & !3;
                self.loop_start = self.pc;
            }
            OpClass::Return => {
                // Pops the matching call; with an empty stack (entered a
                // function body sideways) it falls through sequentially.
                match self.call_stack.pop() {
                    Some(ret) => {
                        op.taken = true;
                        self.pc = ret & !3;
                        self.loop_start = self.pc;
                    }
                    None => {
                        op.taken = false;
                        self.step_pc_sequential();
                    }
                }
            }
        }

        self.emitted += 1;
        self.tally.record(class);
        self.advance_phase();
        op
    }

    fn name(&self) -> &str {
        &self.profile.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::App;

    fn collect(app: App, seed: u64, n: usize) -> Vec<MicroOp> {
        let mut s = SyntheticStream::new(app.profile(), seed);
        (0..n).map(|_| s.next_op()).collect()
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = collect(App::Twolf, 99, 20_000);
        let b = collect(App::Twolf, 99, 20_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = collect(App::Twolf, 1, 5_000);
        let b = collect(App::Twolf, 2, 5_000);
        assert_ne!(a, b);
    }

    #[test]
    fn class_frequencies_converge_to_mix() {
        let app = App::Gzip;
        let profile = app.profile();
        let n = 300_000;
        let ops = collect(app, 5, n);
        for class in OpClass::ALL {
            let observed = ops.iter().filter(|o| o.class == class).count() as f64 / n as f64;
            let expected = profile.mix.fraction(class);
            // Class-by-PC layout plus loop concentration gives more variance
            // than i.i.d. sampling would; 0.03 absolute is still tight enough
            // to pin the mix.
            assert!(
                (observed - expected).abs() < 0.03,
                "{class}: observed {observed:.4}, expected {expected:.4}"
            );
        }
    }

    #[test]
    fn pcs_stay_in_code_footprint() {
        let app = App::Bzip2;
        let footprint = app.profile().code_footprint;
        for op in collect(app, 3, 100_000) {
            assert!(op.pc < footprint, "pc {} outside footprint", op.pc);
            assert_eq!(op.pc % 4, 0);
        }
    }

    #[test]
    fn data_addresses_stay_in_working_set() {
        let app = App::Equake;
        let ws = app.profile().data_working_set;
        for op in collect(app, 3, 100_000) {
            if let Some(addr) = op.addr {
                assert!(op.class.is_mem());
                assert!(addr >= DATA_BASE);
                assert!(addr < DATA_BASE + ws, "addr {addr:#x} outside working set");
            } else {
                assert!(!op.class.is_mem());
            }
        }
    }

    #[test]
    fn operand_classes_are_consistent() {
        for app in App::ALL {
            for op in collect(app, 11, 20_000) {
                if op.class.is_fp() {
                    assert_eq!(op.dest.unwrap().class(), RegClass::Fp, "{op:?}");
                    for s in op.sources() {
                        assert_eq!(s.class(), RegClass::Fp, "{op:?}");
                    }
                }
                if op.class == OpClass::Branch {
                    assert!(op.dest.is_none());
                }
                if matches!(
                    op.class,
                    OpClass::IntAlu | OpClass::IntMul | OpClass::IntDiv
                ) {
                    assert_eq!(op.dest.unwrap().class(), RegClass::Int);
                }
            }
        }
    }

    #[test]
    fn branch_taken_rate_is_plausible() {
        let ops = collect(App::MpgDec, 17, 200_000);
        let branches: Vec<_> = ops.iter().filter(|o| o.class == OpClass::Branch).collect();
        assert!(!branches.is_empty());
        let taken = branches.iter().filter(|o| o.taken).count() as f64;
        let rate = taken / branches.len() as f64;
        // Bias is 0.65 taken; allow generous slack for per-branch variation.
        assert!(
            (0.35..=0.9).contains(&rate),
            "taken rate {rate} implausible"
        );
    }

    #[test]
    fn branch_outcomes_are_biased_per_pc() {
        // A given static branch should be strongly biased: the bimodal
        // predictor must be able to learn most branches.
        use std::collections::HashMap;
        let ops = collect(App::MpgDec, 23, 400_000);
        let mut per_pc: HashMap<u64, (u64, u64)> = HashMap::new();
        for op in ops.iter().filter(|o| o.class == OpClass::Branch) {
            let e = per_pc.entry(op.pc).or_default();
            if op.taken {
                e.0 += 1;
            }
            e.1 += 1;
        }
        let hot: Vec<_> = per_pc.values().filter(|(_, n)| *n >= 100).collect();
        assert!(!hot.is_empty());
        let strongly_biased = hot
            .iter()
            .filter(|(t, n)| {
                let r = *t as f64 / *n as f64;
                !(0.25..=0.75).contains(&r)
            })
            .count();
        // MPGdec has noise 0.03: nearly all hot branches must be decisively
        // biased one way.
        assert!(
            strongly_biased as f64 >= 0.9 * hot.len() as f64,
            "{strongly_biased}/{} branches strongly biased",
            hot.len()
        );
    }

    #[test]
    fn phases_cycle_and_change_working_set() {
        let profile = App::MpgDec.profile();
        let phase_len: u64 = profile.phases.iter().map(|p| p.instructions).sum();
        let mut s = SyntheticStream::new(profile.clone(), 9);
        let mut saw_big_ws = false;
        // Run through several frames; the output segment enlarges the cold
        // working set (to 1 MiB), so addresses beyond the stationary
        // 512 KiB set must appear.
        for _ in 0..6 * phase_len {
            let op = s.next_op();
            if let Some(addr) = op.addr {
                if addr - DATA_BASE >= 512 * 1024 {
                    saw_big_ws = true;
                }
            }
        }
        assert!(saw_big_ws, "phase working-set override never observed");
    }

    #[test]
    fn emitted_counts_ops() {
        let mut s = SyntheticStream::new(App::Ammp.profile(), 1);
        for _ in 0..123 {
            s.next_op();
        }
        assert_eq!(s.emitted(), 123);
    }

    #[test]
    fn tally_counts_ops_and_clone_starts_fresh() {
        let mut s = SyntheticStream::new(App::Ammp.profile(), 1);
        for _ in 0..10 {
            s.next_op();
        }
        assert_eq!(s.tally.counts.iter().sum::<u64>(), 10);
        let c = s.clone();
        assert_eq!(c.tally.counts.iter().sum::<u64>(), 0);
    }

    #[test]
    fn restored_stream_continues_bit_for_bit() {
        for app in [App::Twolf, App::MpgDec, App::Art] {
            let mut original = SyntheticStream::new(app.profile(), 77);
            // Stop mid-phase, mid-call, with warm rings and cursors.
            for _ in 0..12_345 {
                original.next_op();
            }
            let state = original.state();
            let mut resumed = SyntheticStream::restore(app.profile(), 77, &state);
            assert_eq!(resumed.emitted(), original.emitted());
            for i in 0..50_000 {
                assert_eq!(resumed.next_op(), original.next_op(), "{app} op {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "access_streams")]
    fn restore_rejects_mismatched_cursor_count() {
        let s = SyntheticStream::new(App::Twolf.profile(), 1);
        let mut state = s.state();
        state.stream_offsets.push(0);
        let _ = SyntheticStream::restore(App::Twolf.profile(), 1, &state);
    }

    #[test]
    fn name_matches_profile() {
        let s = SyntheticStream::new(App::H263Enc.profile(), 1);
        assert_eq!(s.name(), "H263enc");
    }

    #[test]
    fn splitmix_is_stable() {
        // Regression pin: branch characters must not change between runs.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }
}
