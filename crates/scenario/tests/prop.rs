//! Randomized property tests of the scenario text format, on the same
//! seeded-loop harness as `workload/tests/prop.rs`: every valid scenario —
//! however its knobs are turned — must round-trip through the text format
//! bit-identically, and corrupted files must fail with line numbers.

use drm::{ArchPoint, DvsRange, EvalParams};
use scenario::{Qualification, Scenario, SliceSpec, SurrogateSpec, WorkloadSpec};
use sim_common::{Hertz, Kelvin, Volts, Xoshiro256pp};
use workload::{App, OpClass, OpMix};

/// A scenario with every layer independently perturbed. Values are drawn
/// straight from the RNG — arbitrary `f64`s must survive the format, not
/// just round numbers.
fn random_scenario(rng: &mut Xoshiro256pp, i: usize) -> Scenario {
    let mut s = Scenario::paper_default();
    s.name = format!("rand-{i}");

    let ghz = rng.gen_f64(2.0..6.0);
    s.core.frequency = Hertz::from_ghz(ghz);
    s.core.vdd = Volts(rng.gen_f64(0.8..1.3));
    s.core.window_size = [128, 96, 64][rng.gen_usize(0..3)];
    s.core.int_alus = rng.gen_usize(2..7) as u32;
    s.core.fpus = rng.gen_usize(1..5) as u32;
    s.core.mshrs = rng.gen_usize(4..24) as u32;
    s.core.l1d.size_bytes = 1 << rng.gen_usize(13..17);
    s.core.l2_hit_ns = rng.gen_f64(3.0..8.0);
    s.core.mem_ns = rng.gen_f64(20.0..40.0);
    s.core.prefetch_next_line = rng.gen_bool(0.5);

    s.dvs = DvsRange {
        base_ghz: ghz,
        base_vdd: s.core.vdd.0,
        min_ghz: ghz * rng.gen_f64(0.5..0.8),
        max_ghz: ghz * rng.gen_f64(1.1..1.4),
        step_ghz: rng.gen_f64(0.1..0.6),
        ..DvsRange::paper()
    };

    s.power.idle_fraction = rng.gen_f64(0.05..0.2);
    s.power.leakage_density = rng.gen_f64(0.3..0.8);
    s.power.leakage_beta = rng.gen_f64(0.01..0.03);
    s.thermal.r_sink_ambient = rng.gen_f64(0.3..2.5);
    s.thermal.ambient = Kelvin(rng.gen_f64(300.0..330.0));
    s.failure.em_ea = rng.gen_f64(0.7..1.1);
    s.failure.tc_q = rng.gen_f64(2.0..3.0);

    s.qualification = Qualification {
        t_qual: Kelvin(rng.gen_f64(325.0..405.0)),
        alpha: rng.gen_f64(0.3..0.7),
        target_fit: rng.gen_f64(1_000.0..10_000.0),
    };

    let n_apps = rng.gen_usize(1..App::ALL.len());
    s.workloads = App::ALL[..n_apps]
        .iter()
        .map(|&a| WorkloadSpec::Builtin(a))
        .collect();
    if rng.gen_bool(0.5) {
        // An inline profile with random (normalized) mix fractions.
        let mut profile = App::ALL[rng.gen_usize(0..App::ALL.len())].profile();
        profile.name = format!("inline-{i}");
        profile.phases.clear();
        profile.mix = OpMix::from_weights(OpClass::ALL.map(|c| (c, rng.gen_f64(0.01..1.0))))
            .expect("positive weights");
        profile.data_working_set = rng.gen_u64(1 << 18..1 << 24);
        profile.spatial_fraction = rng.gen_f64(0.5..0.99);
        s.workloads.push(WorkloadSpec::Inline(profile));
    }

    let n_points = rng.gen_usize(1..ArchPoint::ALL.len());
    s.arch_points = ArchPoint::ALL[..n_points].to_vec();

    let measure = rng.gen_u64(100_000..800_000);
    s.eval = EvalParams {
        warmup_instructions: rng.gen_u64(10_000..100_000),
        measure_instructions: measure,
        interval_instructions: measure / rng.gen_u64(2..10),
        seed: rng.next_u64(),
        leakage_iterations: rng.gen_usize(1..5) as u32,
        prewarm_bytes: rng.gen_u64(0..1 << 22),
    };
    if rng.gen_bool(0.5) {
        // A slice section: the length must be a multiple of the interval.
        s.slice = Some(SliceSpec {
            instructions: s.eval.interval_instructions * rng.gen_u64(1..5),
            checkpoint_dir: rng.gen_bool(0.5).then(|| format!("ckpt/rand-{i}")),
        });
    }
    if rng.gen_bool(0.5) {
        // A surrogate section, sometimes disabled (the kill switch must
        // survive the round trip too).
        s.surrogate = Some(SurrogateSpec {
            enabled: rng.gen_bool(0.75),
            top_k: rng.gen_usize(1..32) as u32,
            calibration_apps: rng.gen_usize(1..4) as u32,
        });
    }
    s
}

/// print → parse reproduces every random scenario bit-identically, and the
/// printed form is a fixed point of the round trip.
#[test]
fn random_scenarios_round_trip_bit_identically() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5001);
    for i in 0..64 {
        let original = random_scenario(&mut rng, i);
        original
            .validate()
            .unwrap_or_else(|e| panic!("case {i} generated an invalid scenario: {e}"));
        let text = original.to_text();
        let reparsed = Scenario::from_text(&text)
            .unwrap_or_else(|e| panic!("case {i} failed to reparse: {e}\n{text}"));
        assert_eq!(reparsed, original, "case {i} did not round-trip\n{text}");
        assert_eq!(
            reparsed.to_text(),
            text,
            "case {i} print is not a fixed point"
        );
    }
}

/// Corrupting any random content line of a valid file yields an error that
/// names a line number — never a panic, never silent acceptance of
/// garbage tokens.
#[test]
fn corrupted_files_fail_with_line_numbers() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5002);
    let text = Scenario::paper_default().to_text();
    let content_lines: Vec<usize> = text
        .lines()
        .enumerate()
        .filter(|(_, l)| {
            let body = l.split('#').next().unwrap_or("").trim();
            // Skip blanks, comments, and workload/profile lines (app names
            // are matched case-insensitively, so appending to them can
            // produce a different but still-valid file).
            !body.is_empty() && !body.starts_with("workload") && !body.starts_with("profile")
        })
        .map(|(i, _)| i)
        .collect();
    for _ in 0..32 {
        let target = content_lines[rng.gen_usize(0..content_lines.len())];
        let mutated: String = text
            .lines()
            .enumerate()
            .map(|(i, l)| {
                if i == target {
                    format!(
                        "{} bogus-token\n",
                        l.split('#').next().unwrap_or("").trim_end()
                    )
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let err = Scenario::from_text(&mutated)
            .expect_err("corrupted scenario must not parse")
            .to_string();
        assert!(
            err.contains("line "),
            "error for corrupted line {} lacks a line number: {err}",
            target + 1
        );
    }
}

/// Deleting any single required `section.key` line fails loudly, naming
/// the missing key.
#[test]
fn every_required_key_is_enforced() {
    let text = Scenario::paper_default().to_text();
    for (i, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        let Some(key) = body.split_whitespace().next() else {
            continue;
        };
        if !key.contains('.') || key == "floorplan.block" || key == "power.pmax" {
            continue;
        }
        let without: String = text
            .lines()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let err = Scenario::from_text(&without)
            .map(|_| ())
            .expect_err(&format!("deleting `{key}` parsed anyway"))
            .to_string();
        assert!(
            err.contains(&format!("missing required key `{key}`")),
            "deleting `{key}` gave an unrelated error: {err}"
        );
    }
}
