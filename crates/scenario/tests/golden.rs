//! The checked-in example scenarios stay in sync with the code: every
//! file parses and validates, and `paper.scn` *is* the built-in default.

use std::path::PathBuf;

use scenario::Scenario;

fn scenarios_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scenarios")
}

#[test]
fn every_example_scenario_parses_and_validates() {
    let dir = scenarios_dir();
    let mut seen = 0;
    for entry in std::fs::read_dir(&dir).expect("examples/scenarios exists") {
        let path = entry.expect("read dir entry").path();
        if path.extension().is_none_or(|e| e != "scn") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read scenario file");
        let scn = Scenario::from_text(&text)
            .unwrap_or_else(|e| panic!("{} does not parse: {e}", path.display()));
        // The on-disk form must also be reproducible from the parsed value
        // (comments aside, the content round-trips).
        let reparsed = Scenario::from_text(&scn.to_text()).expect("round-trip");
        assert_eq!(
            reparsed,
            scn,
            "{} round-trip changed the value",
            path.display()
        );
        seen += 1;
    }
    assert!(
        seen >= 4,
        "expected the four golden scenarios, found {seen}"
    );
}

/// `paper.scn` is not merely *similar* to [`Scenario::paper_default`] —
/// it is the same value, byte-identically printable. This is what makes
/// `ramp fit --scenario examples/scenarios/paper.scn` reproduce the
/// no-scenario output exactly.
#[test]
fn paper_scn_is_the_built_in_default() {
    let text = std::fs::read_to_string(scenarios_dir().join("paper.scn")).expect("read paper.scn");
    let parsed = Scenario::from_text(&text).expect("paper.scn parses");
    assert_eq!(parsed, Scenario::paper_default());
    assert_eq!(
        text,
        Scenario::paper_default().to_text(),
        "paper.scn drifted"
    );
}

/// The two variant scenarios differ from the default only where they
/// mean to: the package and the qualification point.
#[test]
fn variant_scenarios_are_deliberate_deltas() {
    let dir = scenarios_dir();
    let hot =
        Scenario::from_text(&std::fs::read_to_string(dir.join("hot-lowcost.scn")).expect("read"))
            .expect("hot-lowcost.scn parses");
    assert_eq!(hot.name, "hot-lowcost");
    let paper = Scenario::paper_default();
    assert!(hot.thermal.r_sink_ambient > paper.thermal.r_sink_ambient);
    assert!(hot.qualification.t_qual.0 < paper.qualification.t_qual.0);
    assert_eq!(hot.core, paper.core);
    assert_eq!(hot.workloads, paper.workloads);

    let server = Scenario::from_text(
        &std::fs::read_to_string(dir.join("server-overdesign.scn")).expect("read"),
    )
    .expect("server-overdesign.scn parses");
    assert_eq!(server.name, "server-overdesign");
    assert!(server.qualification.t_qual.0 > paper.qualification.t_qual.0);
    assert_eq!(server.thermal, paper.thermal);

    // surrogate-search.scn is the paper default plus the `[surrogate]`
    // section — the same experiment, searched in two phases.
    let surrogate = Scenario::from_text(
        &std::fs::read_to_string(dir.join("surrogate-search.scn")).expect("read"),
    )
    .expect("surrogate-search.scn parses");
    assert_eq!(surrogate.name, "surrogate-search");
    let spec = surrogate.surrogate.expect("surrogate section present");
    assert!(spec.enabled);
    assert_eq!(surrogate.core, paper.core);
    assert_eq!(surrogate.workloads, paper.workloads);
    assert_eq!(surrogate.qualification, paper.qualification);
}
