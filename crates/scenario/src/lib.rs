//! `scenario`: one description of a whole experiment.
//!
//! The paper's methodology is a single fixed processor (Table 1) over nine
//! applications, but every interesting question — §7's sensitivity to
//! `T_qual` and package cost, different adaptation spaces, different
//! workload suites — is a *different operating scenario* over the same
//! pipeline. A [`Scenario`] captures everything that was previously
//! hard-coded across six crates:
//!
//! * the processor ([`CoreConfig`], cpu) and its DVS range
//!   ([`DvsRange`], drm);
//! * the power model calibration ([`PowerParams`], power);
//! * the package ([`ThermalParams`], thermal) and floorplan geometry
//!   ([`Floorplan`], common);
//! * the failure-mechanism device models ([`FailureParams`]), the
//!   qualification point and the FIT budget ([`Qualification`], core);
//! * the workload suite — built-in profile names and/or inline
//!   [`AppProfile`]s ([`WorkloadSpec`], workload);
//! * the DRM microarchitectural adaptation space ([`ArchPoint`]s, drm)
//!   and the evaluation lengths ([`EvalParams`]).
//!
//! [`Scenario::paper_default`] reproduces the paper's setup exactly; every
//! constructor elsewhere in the stack builds from it. Scenarios serialize
//! to a human-readable text format (see [`textfmt`]) with strict
//! validation and line-numbered parse errors, so new experiments are text
//! files, not recompiles:
//!
//! ```text
//! ramp scenario run examples/scenarios/paper.scn
//! ramp fit --scenario examples/scenarios/server-overdesign.scn
//! ```
//!
//! # Examples
//!
//! ```
//! use scenario::Scenario;
//! let s = Scenario::paper_default();
//! s.validate()?;
//! // The text format round-trips bit-identically.
//! let reparsed = Scenario::from_text(&s.to_text())?;
//! assert_eq!(reparsed, s);
//! # Ok::<(), sim_common::SimError>(())
//! ```

pub mod textfmt;

use drm::{
    ArchPoint, BatchEngine, DvsPoint, DvsRange, EvalParams, Evaluator, FleetConfig, Oracle,
    SliceParams, Strategy, SurrogateParams,
};
use ramp::{FailureParams, QualificationPoint, ReliabilityModel, FIT_TARGET_STANDARD};
use sim_common::{Floorplan, Kelvin, SimError};
use sim_cpu::CoreConfig;
use sim_power::{PowerModel, PowerParams};
use sim_thermal::{ThermalModel, ThermalParams};
use workload::{App, AppProfile};

/// The reliability qualification of a scenario: the conditions the
/// processor is qualified at (§3.7) and the chip-wide FIT budget.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Qualification {
    /// Qualification temperature `T_qual`.
    pub t_qual: Kelvin,
    /// Activity factor assumed at qualification (the suite's worst-case
    /// sustained activity, `alpha_qual`).
    pub alpha: f64,
    /// Chip-wide failure-rate target in FIT.
    pub target_fit: f64,
}

impl Qualification {
    /// Validates the qualification point.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a non-positive temperature
    /// or FIT target, or an activity outside `(0, 1]`.
    pub fn validate(&self) -> Result<(), SimError> {
        if !self.t_qual.0.is_finite() || self.t_qual.0 <= 0.0 {
            return Err(SimError::invalid_config(
                "qualification temperature must be positive",
            ));
        }
        if !self.alpha.is_finite() || self.alpha <= 0.0 || self.alpha > 1.0 {
            return Err(SimError::invalid_config(
                "qualification activity must be in (0, 1]",
            ));
        }
        if !self.target_fit.is_finite() || self.target_fit <= 0.0 {
            return Err(SimError::invalid_config("FIT target must be positive"));
        }
        Ok(())
    }
}

/// One per-verb latency objective of a scenario's optional `[slo]`
/// section: "quantile `quantile` of the server's `verb` latency stays
/// below `target_ms`", evaluated over the server's sliding telemetry
/// window (`sim_obs` metric `server.request.latency_ms.<verb>`).
#[derive(Debug, Clone, PartialEq)]
pub struct SloVerb {
    /// The server verb the objective applies to (`eval`, `fit`, `sweep`,
    /// `fleet`, `sleep`).
    pub verb: String,
    /// The objective quantile in `(0, 1)`, e.g. `0.99`.
    pub quantile: f64,
    /// The latency target in milliseconds.
    pub target_ms: f64,
}

/// Service-level objectives a serving scenario declares. Absent in the
/// paper default — `[slo]` lines are optional, and a scenario without
/// them serializes without the section, bit-identically to before the
/// section existed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SloPolicy {
    /// Per-verb latency objectives.
    pub verbs: Vec<SloVerb>,
    /// Allowed burn of the qualified FIT budget as a fraction (1.0 = the
    /// whole [`Qualification::target_fit`] budget), tracked against the
    /// last reported `fit.total` gauge.
    pub max_fit_burn: Option<f64>,
}

impl SloPolicy {
    /// Validates the objectives.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an empty policy, a
    /// duplicate verb, a quantile outside `(0, 1)`, or a non-positive
    /// target.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.verbs.is_empty() && self.max_fit_burn.is_none() {
            return Err(SimError::invalid_config(
                "slo section declares no objectives (add `slo.verb` or `slo.fit_burn`)",
            ));
        }
        for (i, v) in self.verbs.iter().enumerate() {
            if v.verb.is_empty() || v.verb.split_whitespace().count() != 1 {
                return Err(SimError::invalid_config(
                    "slo verb must be a single non-empty token",
                ));
            }
            if self.verbs[..i].iter().any(|prev| prev.verb == v.verb) {
                return Err(SimError::invalid_config(format!(
                    "duplicate slo objective for verb `{}`",
                    v.verb
                )));
            }
            if !(v.quantile > 0.0 && v.quantile < 1.0) {
                return Err(SimError::invalid_config(format!(
                    "slo quantile for `{}` must be in (0, 1)",
                    v.verb
                )));
            }
            if !v.target_ms.is_finite() || v.target_ms <= 0.0 {
                return Err(SimError::invalid_config(format!(
                    "slo target for `{}` must be a positive latency in ms",
                    v.verb
                )));
            }
        }
        if let Some(burn) = self.max_fit_burn {
            if !burn.is_finite() || burn <= 0.0 {
                return Err(SimError::invalid_config(
                    "slo.fit_burn must be a positive fraction of the FIT budget",
                ));
            }
        }
        Ok(())
    }
}

/// Sliced-evaluation settings of a scenario's optional `[slice]` section:
/// every timing run of the scenario's evaluators is cut into checkpointed
/// slices (see `drm::slice`), bit-identically to the unsliced pipeline.
/// Absent in the paper default — a scenario without the section
/// serializes without `slice.` lines, bit-identically to before the
/// section existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceSpec {
    /// Instructions per slice (`slice.instructions`); must be a positive
    /// multiple of the evaluation's `interval_instructions`.
    pub instructions: u64,
    /// Directory persisted checkpoints live in
    /// (`slice.checkpoint_dir`). Without it the run is still sliced but
    /// nothing is persisted, so nothing can resume in parallel.
    pub checkpoint_dir: Option<String>,
}

impl SliceSpec {
    /// The [`SliceParams`] this spec resolves to, with `workers` threads
    /// for the parallel resume path.
    #[must_use]
    pub fn params(&self, workers: usize) -> SliceParams {
        let params = SliceParams::new(self.instructions).with_workers(workers);
        match &self.checkpoint_dir {
            Some(dir) => params.with_dir(dir),
            None => params,
        }
    }

    /// Validates the slice shape against the scenario's evaluation
    /// lengths.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the slice length is not a
    /// positive multiple of the interval length, or the checkpoint
    /// directory is not a single non-empty token (the text format is
    /// whitespace-separated, so such a path could not round-trip).
    pub fn validate(&self, eval: &EvalParams) -> Result<(), SimError> {
        self.params(1).validate(eval)?;
        if let Some(dir) = &self.checkpoint_dir {
            if dir.is_empty() || dir.split_whitespace().count() != 1 {
                return Err(SimError::invalid_config(
                    "slice.checkpoint_dir must be a single non-empty token",
                ));
            }
        }
        Ok(())
    }
}

/// Two-phase surrogate search settings of a scenario's optional
/// `[surrogate]` section: DRM searches (oracle, DTM, intra-application)
/// first score every candidate with a calibrated analytical model and
/// promote only the provable frontier to cycle-level evaluation (see
/// `drm::surrogate`). Absent in the paper default — a scenario without
/// the section serializes without `surrogate.` lines, bit-identically to
/// before the section existed, and searches run exhaustively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SurrogateSpec {
    /// Master switch (`surrogate.enabled`); `false` keeps the section in
    /// the file but runs every search exhaustively.
    pub enabled: bool,
    /// Conservative promotion floor (`surrogate.top_k`).
    pub top_k: u32,
    /// Applications that must be calibrated before pruning activates
    /// (`surrogate.calibration_apps`).
    pub calibration_apps: u32,
}

impl Default for SurrogateSpec {
    fn default() -> SurrogateSpec {
        SurrogateSpec {
            enabled: true,
            top_k: 8,
            calibration_apps: 1,
        }
    }
}

impl SurrogateSpec {
    /// The [`SurrogateParams`] this spec resolves to.
    #[must_use]
    pub fn params(&self) -> SurrogateParams {
        SurrogateParams {
            top_k: self.top_k as usize,
            calibration_apps: self.calibration_apps as usize,
        }
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a knob is zero.
    pub fn validate(&self) -> Result<(), SimError> {
        self.params().validate()
    }
}

/// Distributed-sweep settings of a scenario's optional `[cluster]`
/// section: how many worker shards a coordinator (`ramp cluster serve`)
/// spawns or addresses, and the shared evaluation-store directory shard
/// caches persist to (see `drm::store`). Absent in the paper default — a
/// scenario without the section serializes without `cluster.` lines,
/// bit-identically to before the section existed, and everything runs
/// single-process.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Local worker shards the coordinator spawns (`cluster.shards`).
    /// `0` is allowed only when explicit addresses are given.
    pub shards: u32,
    /// External shard addresses (`cluster.addr`, repeatable, in shard
    /// order). When present these replace spawned shards.
    pub shard_addrs: Vec<String>,
    /// Shared append-only evaluation-store directory
    /// (`cluster.store_dir`): shards pre-warm their timing caches from
    /// every segment in it and append their own.
    pub store_dir: Option<String>,
}

impl ClusterSpec {
    /// The effective shard count: explicit addresses win over spawned
    /// shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        if self.shard_addrs.is_empty() {
            self.shards as usize
        } else {
            self.shard_addrs.len()
        }
    }

    /// Validates the cluster shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when neither shards nor
    /// addresses yield at least one worker, when both are given, or when
    /// an address or the store directory would not survive the
    /// whitespace-separated text format.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.shards > 0 && !self.shard_addrs.is_empty() {
            return Err(SimError::invalid_config(
                "cluster.shards and cluster.addr are mutually exclusive \
                 (spawned shards or external addresses, not both)",
            ));
        }
        if self.shard_count() == 0 {
            return Err(SimError::invalid_config(
                "cluster section declares no workers (add `cluster.shards` or `cluster.addr`)",
            ));
        }
        for addr in &self.shard_addrs {
            if addr.is_empty() || addr.split_whitespace().count() != 1 {
                return Err(SimError::invalid_config(
                    "cluster.addr must be a single non-empty token",
                ));
            }
        }
        if let Some(dir) = &self.store_dir {
            if dir.is_empty() || dir.split_whitespace().count() != 1 {
                return Err(SimError::invalid_config(
                    "cluster.store_dir must be a single non-empty token",
                ));
            }
        }
        Ok(())
    }
}

/// One entry of a scenario's workload suite.
// Inline profiles are ~240 bytes vs the Builtin discriminant, but a suite
// holds at most a handful of config-time entries; boxing would only add
// indirection to every accessor.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// A built-in paper application, referenced by name.
    Builtin(App),
    /// A user-supplied profile, inlined in the scenario file.
    Inline(AppProfile),
}

impl WorkloadSpec {
    /// The workload's display name.
    pub fn name(&self) -> &str {
        match self {
            WorkloadSpec::Builtin(app) => app.name(),
            WorkloadSpec::Inline(profile) => &profile.name,
        }
    }

    /// The full profile (built-ins resolve to their paper calibration).
    pub fn profile(&self) -> AppProfile {
        match self {
            WorkloadSpec::Builtin(app) => app.profile(),
            WorkloadSpec::Inline(profile) => profile.clone(),
        }
    }

    /// The built-in [`App`], when this entry is one.
    pub fn builtin(&self) -> Option<App> {
        match self {
            WorkloadSpec::Builtin(app) => Some(*app),
            WorkloadSpec::Inline(_) => None,
        }
    }
}

/// A complete experiment description. See the [crate docs](self) for the
/// role of each field; [`Scenario::paper_default`] is the canonical
/// instance every other configuration is a delta against.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Scenario name (one token; used in reports and filenames).
    pub name: String,
    /// The processor under study.
    pub core: CoreConfig,
    /// The DVS frequency/voltage range around the core's nominal point.
    pub dvs: DvsRange,
    /// Power-model calibration.
    pub power: PowerParams,
    /// Package thermal parameters.
    pub thermal: ThermalParams,
    /// Die floorplan.
    pub floorplan: Floorplan,
    /// Failure-mechanism device models.
    pub failure: FailureParams,
    /// Qualification conditions and FIT budget.
    pub qualification: Qualification,
    /// Workload suite, in run order.
    pub workloads: Vec<WorkloadSpec>,
    /// DRM microarchitectural adaptation space.
    pub arch_points: Vec<ArchPoint>,
    /// Simulation lengths and seeds.
    pub eval: EvalParams,
    /// Fleet population Monte Carlo: die count, seed, wear-out shape and
    /// die-to-die variation magnitudes.
    pub fleet: FleetConfig,
    /// Optional service-level objectives for the evaluation server.
    pub slo: Option<SloPolicy>,
    /// Optional sliced evaluation (checkpointed workload continuation).
    pub slice: Option<SliceSpec>,
    /// Optional two-phase surrogate search for DRM verbs.
    pub surrogate: Option<SurrogateSpec>,
    /// Optional distributed-sweep fabric (coordinator/worker shards).
    pub cluster: Option<ClusterSpec>,
}

impl Scenario {
    /// The paper's complete setup: Table 1 processor, 65 nm power and
    /// thermal calibrations, the R10000-style floorplan, RAMP failure
    /// parameters, qualification at 394 K with the suite's worst sustained
    /// activity (0.48) against the 4000 FIT budget, all nine applications,
    /// and the §6.1 18-point adaptation space.
    pub fn paper_default() -> Scenario {
        Scenario {
            name: "paper-default".to_owned(),
            core: CoreConfig::base(),
            dvs: DvsRange::paper(),
            power: PowerParams::ibm_65nm(),
            thermal: ThermalParams::hotspot_65nm(),
            floorplan: Floorplan::r10000_65nm(),
            failure: FailureParams::ramp_65nm(),
            qualification: Qualification {
                t_qual: Kelvin(394.0),
                alpha: 0.48,
                target_fit: FIT_TARGET_STANDARD,
            },
            workloads: App::ALL.into_iter().map(WorkloadSpec::Builtin).collect(),
            arch_points: ArchPoint::ALL.to_vec(),
            eval: EvalParams::standard(),
            fleet: FleetConfig::default(),
            slo: None,
            slice: None,
            surrogate: None,
            cluster: None,
        }
    }

    /// Validates every layer of the scenario.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any section fails its own
    /// validation, the suite or adaptation space is empty, or an
    /// adaptation point does not apply to the processor.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.name.is_empty() || self.name.split_whitespace().count() != 1 {
            return Err(SimError::invalid_config(
                "scenario name must be a single non-empty token",
            ));
        }
        self.core.validate()?;
        self.dvs.validate()?;
        self.power.validate()?;
        self.thermal.validate()?;
        self.failure.validate()?;
        self.qualification.validate()?;
        // The floorplan was validated at construction; geometry is
        // immutable behind accessors.
        if self.workloads.is_empty() {
            return Err(SimError::invalid_config(
                "scenario has no workloads (add `workload <name>` or an inline profile)",
            ));
        }
        for w in &self.workloads {
            if let WorkloadSpec::Inline(profile) = w {
                profile.validate()?;
                if profile.phases.iter().any(|p| p.mix.is_some()) {
                    // The profile text format cannot carry per-phase op
                    // mixes, so such a profile would not survive
                    // serialization; reference a built-in by name instead.
                    return Err(SimError::invalid_config(format!(
                        "inline profile `{}` has phase-specific op mixes, which the \
                         scenario text format cannot represent",
                        profile.name
                    )));
                }
            }
        }
        if self.arch_points.is_empty() {
            return Err(SimError::invalid_config(
                "scenario has no adaptation points (add `arch <window> <alus> <fpus>`)",
            ));
        }
        let base_dvs = self.dvs.base_point();
        for p in &self.arch_points {
            p.apply(&self.core, base_dvs)
                .map_err(|e| SimError::invalid_config(format!("adaptation point {p}: {e}")))?;
        }
        self.eval.validate()?;
        self.fleet.validate()?;
        if let Some(slo) = &self.slo {
            slo.validate()?;
        }
        if let Some(slice) = &self.slice {
            slice.validate(&self.eval)?;
        }
        if let Some(surrogate) = &self.surrogate {
            surrogate.validate()?;
        }
        if let Some(cluster) = &self.cluster {
            cluster.validate()?;
        }
        Ok(())
    }

    /// Parses a scenario from its text form. See [`textfmt`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] with a line number for syntax
    /// errors, and the failing section's message for semantic errors.
    pub fn from_text(text: &str) -> Result<Scenario, SimError> {
        textfmt::scenario_from_text(text)
    }

    /// Serializes to the text form; [`Scenario::from_text`] of the result
    /// reproduces `self` bit-identically.
    pub fn to_text(&self) -> String {
        textfmt::scenario_to_text(self)
    }

    /// Reads and parses a scenario file.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the file cannot be read or
    /// fails to parse/validate.
    pub fn load(path: &str) -> Result<Scenario, SimError> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| SimError::invalid_config(format!("cannot read scenario {path}: {e}")))?;
        Scenario::from_text(&text).map_err(|e| SimError::invalid_config(format!("{path}: {e}")))
    }

    /// The most aggressive microarchitectural point: the processor itself.
    pub fn base_arch(&self) -> ArchPoint {
        ArchPoint {
            window: self.core.window_size,
            alus: self.core.int_alus,
            fpus: self.core.fpus,
        }
    }

    /// The base DVS operating point of the range.
    pub fn base_dvs(&self) -> DvsPoint {
        self.dvs.base_point()
    }

    /// The power model over this scenario's calibration and floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the parameters are invalid.
    pub fn power_model(&self) -> Result<PowerModel, SimError> {
        PowerModel::new(self.power.clone(), self.floorplan.clone())
    }

    /// The thermal model over this scenario's package and floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the parameters are invalid.
    pub fn thermal_model(&self) -> Result<ThermalModel, SimError> {
        ThermalModel::new(self.thermal.clone(), self.floorplan.clone())
    }

    /// The full-stack evaluator with the scenario's own [`EvalParams`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any layer's parameters are
    /// invalid.
    pub fn evaluator(&self) -> Result<Evaluator, SimError> {
        self.evaluator_with(self.eval)
    }

    /// The full-stack evaluator with explicit [`EvalParams`] (e.g. the
    /// quick settings for tests).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any layer's parameters are
    /// invalid.
    pub fn evaluator_with(&self, params: EvalParams) -> Result<Evaluator, SimError> {
        let evaluator = Evaluator::new(self.power_model()?, self.thermal_model()?, params)?;
        match &self.slice {
            // The scenario's `[slice]` section makes every evaluator —
            // and everything built on one (batch engine, oracle, server
            // verbs) — run sliced, with the default worker count for the
            // parallel resume path.
            Some(spec) => evaluator.with_slice(spec.params(drm::default_workers())),
            None => Ok(evaluator),
        }
    }

    /// The conditions the processor is qualified at: `T_qual` with the
    /// scenario's own nominal voltage, frequency and qualification
    /// activity.
    pub fn qualification_point(&self) -> QualificationPoint {
        QualificationPoint {
            temperature: self.qualification.t_qual,
            vdd: self.core.vdd,
            frequency: self.core.frequency,
            activity: self.qualification.alpha,
        }
    }

    /// The reliability model qualified for this scenario (§3.7):
    /// per-structure/mechanism constants calibrated so the scenario's
    /// processor exactly consumes the FIT budget at the qualification
    /// point, distributed by floorplan area.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when qualification fails.
    pub fn model(&self) -> Result<ReliabilityModel, SimError> {
        ReliabilityModel::qualify(
            self.failure,
            &self.qualification_point(),
            &self.floorplan.area_shares(),
            self.qualification.target_fit,
        )
    }

    /// A reliability model qualified at a different `T_qual`/activity
    /// (the §7 sensitivity sweeps vary these while everything else stays
    /// fixed).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when qualification fails.
    pub fn model_at(&self, t_qual: Kelvin, alpha: f64) -> Result<ReliabilityModel, SimError> {
        Scenario {
            qualification: Qualification {
                t_qual,
                alpha,
                ..self.qualification
            },
            ..self.clone()
        }
        .model()
    }

    /// A DRM oracle whose engine evaluates candidates against this
    /// scenario's processor, with `workers` parallel evaluation threads.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any layer's parameters are
    /// invalid.
    pub fn oracle(&self, workers: usize) -> Result<Oracle, SimError> {
        self.attach_surrogate(Oracle::from_engine(
            BatchEngine::with_workers(self.evaluator()?, workers)
                .with_base_config(self.core.clone()),
        ))
    }

    /// Like [`Scenario::oracle`] but with explicit [`EvalParams`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any layer's parameters are
    /// invalid.
    pub fn oracle_with(&self, params: EvalParams, workers: usize) -> Result<Oracle, SimError> {
        self.attach_surrogate(Oracle::from_engine(
            BatchEngine::with_workers(self.evaluator_with(params)?, workers)
                .with_base_config(self.core.clone()),
        ))
    }

    /// Attaches the scenario's `[surrogate]` section, when present and
    /// enabled, to a freshly built oracle.
    fn attach_surrogate(&self, oracle: Oracle) -> Result<Oracle, SimError> {
        match &self.surrogate {
            Some(spec) if spec.enabled => oracle.with_surrogate(spec.params()),
            _ => Ok(oracle),
        }
    }

    /// The candidate set a DRM strategy may choose from under this
    /// scenario: the scenario's adaptation space crossed with its DVS
    /// grid. `step_override` substitutes a different grid granularity
    /// (e.g. the CLI's `--step`).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the space is empty or the
    /// range is invalid.
    pub fn candidates(
        &self,
        strategy: Strategy,
        step_override: Option<f64>,
    ) -> Result<Vec<(ArchPoint, DvsPoint)>, SimError> {
        let range = match step_override {
            Some(step_ghz) => DvsRange {
                step_ghz,
                ..self.dvs
            },
            None => self.dvs,
        };
        strategy.candidates_with(&self.arch_points, self.base_arch(), self.base_dvs(), &range)
    }

    /// The resolved profiles of the workload suite, in run order.
    pub fn profiles(&self) -> Vec<AppProfile> {
        self.workloads.iter().map(WorkloadSpec::profile).collect()
    }
}

impl Default for Scenario {
    fn default() -> Self {
        Scenario::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_common::Volts;

    #[test]
    fn paper_default_validates() {
        Scenario::paper_default().validate().unwrap();
    }

    #[test]
    fn paper_default_matches_legacy_constructors() {
        let s = Scenario::paper_default();
        assert_eq!(s.core, CoreConfig::base());
        assert_eq!(s.dvs, DvsRange::paper());
        assert_eq!(s.power, PowerParams::ibm_65nm());
        assert_eq!(s.thermal, ThermalParams::hotspot_65nm());
        assert_eq!(s.floorplan, Floorplan::r10000_65nm());
        assert_eq!(s.failure, FailureParams::ramp_65nm());
        assert_eq!(s.qualification.target_fit, FIT_TARGET_STANDARD);
        assert_eq!(s.workloads.len(), 9);
        assert_eq!(s.arch_points.len(), 18);
        assert_eq!(s.base_arch(), ArchPoint::most_aggressive());
        assert_eq!(s.base_dvs(), DvsPoint::base());
    }

    #[test]
    fn qualification_point_matches_legacy_helper() {
        // `QualificationPoint::at_temperature` hard-codes the paper's
        // 1.0 V / 4 GHz; the scenario derives them from its core, which
        // must agree for the paper default.
        let s = Scenario::paper_default();
        let q = s.qualification_point();
        let legacy = QualificationPoint::at_temperature(Kelvin(394.0), 0.48);
        assert_eq!(q.temperature, legacy.temperature);
        assert_eq!(q.vdd, legacy.vdd);
        assert_eq!(q.frequency, legacy.frequency);
        assert_eq!(q.activity, legacy.activity);
    }

    #[test]
    fn model_matches_legacy_construction() {
        let s = Scenario::paper_default();
        let from_scenario = s.model().unwrap();
        let legacy = ReliabilityModel::qualify(
            FailureParams::ramp_65nm(),
            &QualificationPoint::at_temperature(Kelvin(394.0), 0.48),
            &Floorplan::r10000_65nm().area_shares(),
            FIT_TARGET_STANDARD,
        )
        .unwrap();
        // Spot-check equality through behavior: both models are built from
        // identical inputs, so their qualified budgets agree.
        assert_eq!(
            format!("{from_scenario:?}"),
            format!("{legacy:?}"),
            "scenario-built model must equal the legacy construction"
        );
    }

    #[test]
    fn candidates_match_builtin_strategies() {
        let s = Scenario::paper_default();
        for strategy in Strategy::ALL {
            assert_eq!(
                s.candidates(strategy, Some(0.25)).unwrap(),
                strategy.candidates(0.25),
                "{strategy}"
            );
        }
        // The scenario's own step matches the paper grid too.
        assert_eq!(
            s.candidates(Strategy::Dvs, None).unwrap(),
            Strategy::Dvs.candidates(0.25)
        );
    }

    #[test]
    fn validation_rejects_broken_scenarios() {
        let mut s = Scenario::paper_default();
        s.name = "two tokens".to_owned();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.workloads.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.arch_points.clear();
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.arch_points.push(ArchPoint {
            window: 512,
            alus: 6,
            fpus: 4,
        });
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.core.vdd = Volts(-1.0);
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.qualification.alpha = 1.5;
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.fleet.dies = 0;
        assert!(s.validate().is_err());

        let mut s = Scenario::paper_default();
        s.fleet.variation.sigma_ea = -0.1;
        assert!(s.validate().is_err());

        // Slice length must land on interval boundaries, and the
        // checkpoint directory must survive tokenization.
        let mut s = Scenario::paper_default();
        s.slice = Some(SliceSpec {
            instructions: 90_001,
            checkpoint_dir: None,
        });
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.slice = Some(SliceSpec {
            instructions: 120_000,
            checkpoint_dir: Some("two tokens".to_owned()),
        });
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.slice = Some(SliceSpec {
            instructions: 120_000,
            checkpoint_dir: Some("checkpoints".to_owned()),
        });
        s.validate().unwrap();

        // Surrogate budgets must be positive; a disabled section is
        // still checked (it documents an experiment that can be
        // re-enabled without edits elsewhere).
        let mut s = Scenario::paper_default();
        s.surrogate = Some(SurrogateSpec {
            enabled: true,
            top_k: 0,
            calibration_apps: 1,
        });
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.surrogate = Some(SurrogateSpec {
            enabled: false,
            top_k: 8,
            calibration_apps: 0,
        });
        assert!(s.validate().is_err());
        let mut s = Scenario::paper_default();
        s.surrogate = Some(SurrogateSpec::default());
        s.validate().unwrap();

        // A cluster section needs at least one worker, exactly one way
        // of naming them, and token-safe paths/addresses.
        let mut s = Scenario::paper_default();
        s.cluster = Some(ClusterSpec::default());
        assert!(s.validate().is_err(), "no workers");
        let mut s = Scenario::paper_default();
        s.cluster = Some(ClusterSpec {
            shards: 2,
            shard_addrs: vec!["127.0.0.1:7777".to_owned()],
            store_dir: None,
        });
        assert!(s.validate().is_err(), "shards and addrs are exclusive");
        let mut s = Scenario::paper_default();
        s.cluster = Some(ClusterSpec {
            shards: 2,
            shard_addrs: Vec::new(),
            store_dir: Some("two tokens".to_owned()),
        });
        assert!(s.validate().is_err(), "store_dir must be one token");
        let mut s = Scenario::paper_default();
        s.cluster = Some(ClusterSpec {
            shards: 4,
            shard_addrs: Vec::new(),
            store_dir: Some("evalstore".to_owned()),
        });
        s.validate().unwrap();
        assert_eq!(s.cluster.as_ref().unwrap().shard_count(), 4);
    }

    #[test]
    fn surrogate_spec_reaches_the_oracle() {
        // `Scenario::oracle` honors the section: enabled → two-phase
        // oracle; disabled or absent → the exact-only oracle.
        let mut s = Scenario::paper_default();
        s.eval = EvalParams::quick();
        assert!(s.oracle(1).unwrap().surrogate().is_none());
        s.surrogate = Some(SurrogateSpec::default());
        assert!(s.oracle(1).unwrap().surrogate().is_some());
        s.surrogate = Some(SurrogateSpec {
            enabled: false,
            ..SurrogateSpec::default()
        });
        assert!(s.oracle(1).unwrap().surrogate().is_none());
    }

    #[test]
    fn workload_spec_resolution() {
        let builtin = WorkloadSpec::Builtin(App::Gzip);
        assert_eq!(builtin.name(), "gzip");
        assert_eq!(builtin.profile(), App::Gzip.profile());
        assert_eq!(builtin.builtin(), Some(App::Gzip));

        let inline = WorkloadSpec::Inline(App::Art.profile());
        assert_eq!(inline.name(), "art");
        assert_eq!(inline.builtin(), None);
    }
}
