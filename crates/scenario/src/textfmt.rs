//! The plain-text scenario format.
//!
//! Follows the `workload::textfmt` conventions: std-only, `#` comments,
//! whitespace-separated tokens, unknown keys and trailing tokens are
//! line-numbered errors. Every scalar is written with Rust's shortest
//! round-trip float formatting, so `parse(print(s)) == s` bit-identically.
//!
//! The format is flat `section.key value...` lines:
//!
//! ```text
//! scenario.name my-experiment
//! core.frequency_hz 4000000000
//! core.l1d 65536 2 64              # size assoc line_bytes
//! dvs.min_ghz 2.5
//! power.pmax int-alu 11            # one line per structure
//! floorplan.die 4.5 4.5
//! floorplan.block icache 0 0 2 1.5 # structure x y w h (mm)
//! qual.t_qual_k 394
//! arch 128 6 4                     # window alus fpus, repeated
//! workload gzip                    # built-in app, repeated
//! profile begin                    # or an inline workload profile
//! name my-codec
//! mix int-alu 1
//! profile end
//! ```
//!
//! All scalar keys are required — a scenario file is a complete experiment
//! record, not a patch. The one exception is the optional `[slo]` section
//! (`slo.verb <verb> <quantile> <target_ms>` lines plus `slo.fit_burn`),
//! which declares service-level objectives for the evaluation server and
//! may be omitted entirely. `ramp scenario print` emits the canonical
//! form to start from.

use std::collections::HashMap;
use std::fmt::Write as _;

use drm::{ArchPoint, DvsRange, EvalParams, FleetConfig, VariationParams};
use ramp::FailureParams;
use sim_common::{
    Block, Floorplan, Hertz, Kelvin, Rect, SimError, Structure, StructureMap, Volts, Watts,
};
use sim_cpu::{BpredConfig, CacheConfig, CoreConfig};
use sim_power::PowerParams;
use sim_thermal::ThermalParams;
use workload::textfmt::{profile_from_text, profile_to_text};
use workload::App;

use crate::{
    ClusterSpec, Qualification, Scenario, SliceSpec, SloPolicy, SloVerb, SurrogateSpec,
    WorkloadSpec,
};

/// Every singleton `section.key` the format accepts, used to distinguish
/// typos (unknown key) from omissions (missing key) in error messages.
const SINGLETON_KEYS: &[&str] = &[
    "scenario.name",
    "core.frequency_hz",
    "core.vdd",
    "core.fetch_width",
    "core.retire_width",
    "core.frontend_latency",
    "core.mispredict_redirect",
    "core.window",
    "core.int_regs",
    "core.fp_regs",
    "core.mem_queue",
    "core.int_alus",
    "core.fpus",
    "core.addr_gens",
    "core.bpred_counters",
    "core.bpred_ras",
    "core.l1d",
    "core.l1i",
    "core.l2",
    "core.l1d_ports",
    "core.l1_hit_cycles",
    "core.l2_hit_ns",
    "core.mem_ns",
    "core.mshrs",
    "core.prefetch_next_line",
    "dvs.base_ghz",
    "dvs.base_vdd",
    "dvs.min_ghz",
    "dvs.max_ghz",
    "dvs.step_ghz",
    "dvs.v_intercept",
    "dvs.v_slope",
    "power.idle_fraction",
    "power.leakage_density",
    "power.leakage_ref_k",
    "power.leakage_beta",
    "power.base_vdd",
    "power.base_frequency_hz",
    "thermal.r_vertical_per_area",
    "thermal.r_lateral_per_edge",
    "thermal.r_spreader_sink",
    "thermal.r_sink_ambient",
    "thermal.c_block_per_area",
    "thermal.c_spreader",
    "thermal.c_sink",
    "thermal.ambient_k",
    "floorplan.die",
    "failure.em_n",
    "failure.em_ea",
    "failure.sm_n",
    "failure.sm_ea",
    "failure.sm_t0_k",
    "failure.tddb_a",
    "failure.tddb_b",
    "failure.tddb_x",
    "failure.tddb_y",
    "failure.tddb_z",
    "failure.tc_q",
    "failure.tc_ambient_k",
    "qual.t_qual_k",
    "qual.alpha",
    "qual.target_fit",
    "eval.warmup_instructions",
    "eval.measure_instructions",
    "eval.interval_instructions",
    "eval.seed",
    "eval.leakage_iterations",
    "eval.prewarm_bytes",
    "fleet.dies",
    "fleet.seed",
    "fleet.shape",
    "fleet.sigma_leakage",
    "fleet.sigma_beta",
    "fleet.sigma_ea",
    "fleet.sigma_geometry",
    "slo.fit_burn",
    "slice.instructions",
    "slice.checkpoint_dir",
    "surrogate.enabled",
    "surrogate.top_k",
    "surrogate.calibration_apps",
    "cluster.shards",
    "cluster.store_dir",
];

/// Singleton keys that may be omitted (every other singleton is
/// required — a scenario file is a complete experiment record, but the
/// `[slo]` and `[slice]` sections are opt-in add-ons).
const OPTIONAL_KEYS: &[&str] = &[
    "slo.fit_burn",
    "slice.instructions",
    "slice.checkpoint_dir",
    "surrogate.enabled",
    "surrogate.top_k",
    "surrogate.calibration_apps",
    "cluster.shards",
    "cluster.store_dir",
];

fn line_err(lineno: usize, msg: impl std::fmt::Display) -> SimError {
    SimError::invalid_config(format!("line {}: {msg}", lineno + 1))
}

#[derive(Debug)]
struct Entry {
    lineno: usize,
    values: Vec<String>,
}

impl Entry {
    fn expect_len(&self, key: &str, n: usize) -> Result<(), SimError> {
        if self.values.len() != n {
            return Err(line_err(
                self.lineno,
                format!(
                    "`{key}` expects {n} value{}, got {}",
                    if n == 1 { "" } else { "s" },
                    self.values.len()
                ),
            ));
        }
        Ok(())
    }

    fn f64_at(&self, key: &str, idx: usize) -> Result<f64, SimError> {
        self.values[idx]
            .parse()
            .map_err(|_| line_err(self.lineno, format!("`{key}` must be a number")))
    }

    fn u64_at(&self, key: &str, idx: usize) -> Result<u64, SimError> {
        self.values[idx].parse().map_err(|_| {
            line_err(
                self.lineno,
                format!("`{key}` must be a non-negative integer"),
            )
        })
    }

    fn u32_at(&self, key: &str, idx: usize) -> Result<u32, SimError> {
        self.values[idx].parse().map_err(|_| {
            line_err(
                self.lineno,
                format!("`{key}` must be a non-negative integer"),
            )
        })
    }
}

/// The scanned file: singleton entries plus the repeated forms.
struct Scanned {
    singles: HashMap<String, Entry>,
    pmax: Vec<Entry>,
    blocks: Vec<Entry>,
    arch: Vec<Entry>,
    slo_verbs: Vec<Entry>,
    cluster_addrs: Vec<Entry>,
    /// Workload suite in encounter order.
    workloads: Vec<WorkloadSpec>,
}

fn scan(text: &str) -> Result<Scanned, SimError> {
    let mut singles: HashMap<String, Entry> = HashMap::new();
    let mut pmax = Vec::new();
    let mut blocks = Vec::new();
    let mut arch = Vec::new();
    let mut slo_verbs = Vec::new();
    let mut cluster_addrs = Vec::new();
    let mut workloads = Vec::new();

    let mut lines = text.lines().enumerate();
    while let Some((lineno, raw)) = lines.next() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut tokens = line.split_whitespace();
        let key = tokens.next().expect("non-empty line has a first token");
        let values: Vec<String> = tokens.map(str::to_owned).collect();
        let entry = Entry { lineno, values };
        match key {
            "profile" => {
                if entry.values.as_slice() != ["begin"] {
                    return Err(line_err(
                        lineno,
                        "expected `profile begin` to open an inline profile block",
                    ));
                }
                let mut body = String::new();
                let mut closed = false;
                for (inner_no, inner_raw) in lines.by_ref() {
                    let inner = inner_raw.split('#').next().unwrap_or("").trim();
                    if inner == "profile end" {
                        closed = true;
                        break;
                    }
                    if inner == "profile begin" {
                        return Err(line_err(inner_no, "nested `profile begin`"));
                    }
                    body.push_str(inner_raw);
                    body.push('\n');
                }
                if !closed {
                    return Err(line_err(lineno, "`profile begin` without `profile end`"));
                }
                let profile = profile_from_text(&body).map_err(|e| {
                    SimError::invalid_config(format!(
                        "inline profile starting at line {}: {e}",
                        lineno + 2
                    ))
                })?;
                workloads.push(WorkloadSpec::Inline(profile));
            }
            "workload" => {
                entry.expect_len("workload", 1)?;
                let name = &entry.values[0];
                let app = App::ALL
                    .into_iter()
                    .find(|a| a.name().eq_ignore_ascii_case(name))
                    .ok_or_else(|| {
                        line_err(lineno, format!("unknown built-in workload `{name}`"))
                    })?;
                workloads.push(WorkloadSpec::Builtin(app));
            }
            "power.pmax" => pmax.push(entry),
            "floorplan.block" => blocks.push(entry),
            "arch" => arch.push(entry),
            "slo.verb" => slo_verbs.push(entry),
            "cluster.addr" => cluster_addrs.push(entry),
            _ => {
                if !SINGLETON_KEYS.contains(&key) {
                    return Err(line_err(lineno, format!("unknown key `{key}`")));
                }
                if let Some(first) = singles.get(key) {
                    return Err(line_err(
                        lineno,
                        format!("duplicate key `{key}` (first at line {})", first.lineno + 1),
                    ));
                }
                singles.insert(key.to_owned(), entry);
            }
        }
    }
    Ok(Scanned {
        singles,
        pmax,
        blocks,
        arch,
        slo_verbs,
        cluster_addrs,
        workloads,
    })
}

/// Removes a required singleton key and checks its arity.
fn req(scanned: &mut Scanned, key: &str, arity: usize) -> Result<Entry, SimError> {
    let entry = scanned
        .singles
        .remove(key)
        .ok_or_else(|| SimError::invalid_config(format!("missing required key `{key}`")))?;
    entry.expect_len(key, arity)?;
    Ok(entry)
}

fn req_f64(scanned: &mut Scanned, key: &str) -> Result<f64, SimError> {
    req(scanned, key, 1)?.f64_at(key, 0)
}

/// Removes an optional singleton key (see [`OPTIONAL_KEYS`]).
fn opt_f64(scanned: &mut Scanned, key: &str) -> Result<Option<f64>, SimError> {
    debug_assert!(OPTIONAL_KEYS.contains(&key), "`{key}` is required");
    match scanned.singles.remove(key) {
        None => Ok(None),
        Some(entry) => {
            entry.expect_len(key, 1)?;
            Ok(Some(entry.f64_at(key, 0)?))
        }
    }
}

fn req_u64(scanned: &mut Scanned, key: &str) -> Result<u64, SimError> {
    req(scanned, key, 1)?.u64_at(key, 0)
}

/// Removes an optional singleton key (see [`OPTIONAL_KEYS`]).
fn opt_u64(scanned: &mut Scanned, key: &str) -> Result<Option<u64>, SimError> {
    debug_assert!(OPTIONAL_KEYS.contains(&key), "`{key}` is required");
    match scanned.singles.remove(key) {
        None => Ok(None),
        Some(entry) => {
            entry.expect_len(key, 1)?;
            Ok(Some(entry.u64_at(key, 0)?))
        }
    }
}

/// Removes an optional single-token string key (see [`OPTIONAL_KEYS`]).
fn opt_token(scanned: &mut Scanned, key: &str) -> Result<Option<String>, SimError> {
    debug_assert!(OPTIONAL_KEYS.contains(&key), "`{key}` is required");
    match scanned.singles.remove(key) {
        None => Ok(None),
        Some(entry) => {
            entry.expect_len(key, 1)?;
            Ok(Some(entry.values[0].clone()))
        }
    }
}

/// Removes an optional single-token `u32` key (see [`OPTIONAL_KEYS`]).
fn opt_u32(scanned: &mut Scanned, key: &str) -> Result<Option<u32>, SimError> {
    debug_assert!(OPTIONAL_KEYS.contains(&key), "`{key}` is required");
    match scanned.singles.remove(key) {
        None => Ok(None),
        Some(entry) => {
            entry.expect_len(key, 1)?;
            Ok(Some(entry.u32_at(key, 0)?))
        }
    }
}

/// Removes an optional boolean key (see [`OPTIONAL_KEYS`]).
fn opt_bool(scanned: &mut Scanned, key: &str) -> Result<Option<bool>, SimError> {
    debug_assert!(OPTIONAL_KEYS.contains(&key), "`{key}` is required");
    match scanned.singles.remove(key) {
        None => Ok(None),
        Some(entry) => {
            entry.expect_len(key, 1)?;
            match entry.values[0].as_str() {
                "true" => Ok(Some(true)),
                "false" => Ok(Some(false)),
                other => Err(line_err(
                    entry.lineno,
                    format!("`{key}` must be `true` or `false`, got `{other}`"),
                )),
            }
        }
    }
}

fn req_u32(scanned: &mut Scanned, key: &str) -> Result<u32, SimError> {
    req(scanned, key, 1)?.u32_at(key, 0)
}

fn req_kelvin(scanned: &mut Scanned, key: &str) -> Result<Kelvin, SimError> {
    Ok(Kelvin(req_f64(scanned, key)?))
}

fn req_bool(scanned: &mut Scanned, key: &str) -> Result<bool, SimError> {
    let entry = req(scanned, key, 1)?;
    match entry.values[0].as_str() {
        "true" => Ok(true),
        "false" => Ok(false),
        other => Err(line_err(
            entry.lineno,
            format!("`{key}` must be `true` or `false`, got `{other}`"),
        )),
    }
}

fn req_cache(scanned: &mut Scanned, key: &str) -> Result<CacheConfig, SimError> {
    let entry = req(scanned, key, 3)?;
    let config = CacheConfig {
        size_bytes: entry.u64_at(key, 0)?,
        assoc: entry.u32_at(key, 1)?,
        line_bytes: entry.u32_at(key, 2)?,
    };
    config
        .validate(key)
        .map_err(|e| line_err(entry.lineno, e))?;
    Ok(config)
}

fn structure_at(entry: &Entry, key: &str, idx: usize) -> Result<Structure, SimError> {
    let name = &entry.values[idx];
    Structure::from_name(name)
        .ok_or_else(|| line_err(entry.lineno, format!("`{key}`: unknown structure `{name}`")))
}

/// Parses a scenario from the text format.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] with a line number for syntax
/// errors (unknown/duplicate/malformed keys), and a descriptive message
/// for missing keys or failed semantic validation.
pub fn scenario_from_text(text: &str) -> Result<Scenario, SimError> {
    let mut s = scan(text)?;

    let name_entry = req(&mut s, "scenario.name", 1)?;
    let name = name_entry.values[0].clone();

    let core = CoreConfig {
        frequency: Hertz(req_f64(&mut s, "core.frequency_hz")?),
        vdd: Volts(req_f64(&mut s, "core.vdd")?),
        fetch_width: req_u32(&mut s, "core.fetch_width")?,
        retire_width: req_u32(&mut s, "core.retire_width")?,
        frontend_latency: req_u32(&mut s, "core.frontend_latency")?,
        mispredict_redirect: req_u32(&mut s, "core.mispredict_redirect")?,
        window_size: req_u32(&mut s, "core.window")?,
        int_regs: req_u32(&mut s, "core.int_regs")?,
        fp_regs: req_u32(&mut s, "core.fp_regs")?,
        mem_queue: req_u32(&mut s, "core.mem_queue")?,
        int_alus: req_u32(&mut s, "core.int_alus")?,
        fpus: req_u32(&mut s, "core.fpus")?,
        addr_gens: req_u32(&mut s, "core.addr_gens")?,
        bpred: BpredConfig {
            counters: req_u32(&mut s, "core.bpred_counters")?,
            ras_entries: req_u32(&mut s, "core.bpred_ras")?,
        },
        l1d: req_cache(&mut s, "core.l1d")?,
        l1i: req_cache(&mut s, "core.l1i")?,
        l2: req_cache(&mut s, "core.l2")?,
        l1d_ports: req_u32(&mut s, "core.l1d_ports")?,
        l1_hit_cycles: req_u32(&mut s, "core.l1_hit_cycles")?,
        l2_hit_ns: req_f64(&mut s, "core.l2_hit_ns")?,
        mem_ns: req_f64(&mut s, "core.mem_ns")?,
        mshrs: req_u32(&mut s, "core.mshrs")?,
        prefetch_next_line: req_bool(&mut s, "core.prefetch_next_line")?,
    };

    let dvs = DvsRange {
        base_ghz: req_f64(&mut s, "dvs.base_ghz")?,
        base_vdd: req_f64(&mut s, "dvs.base_vdd")?,
        min_ghz: req_f64(&mut s, "dvs.min_ghz")?,
        max_ghz: req_f64(&mut s, "dvs.max_ghz")?,
        step_ghz: req_f64(&mut s, "dvs.step_ghz")?,
        v_intercept: req_f64(&mut s, "dvs.v_intercept")?,
        v_slope: req_f64(&mut s, "dvs.v_slope")?,
    };

    let mut pmax: StructureMap<Option<Watts>> = StructureMap::from_fn(|_| None);
    for entry in s.pmax.drain(..) {
        entry.expect_len("power.pmax", 2)?;
        let structure = structure_at(&entry, "power.pmax", 0)?;
        let watts = entry.f64_at("power.pmax", 1)?;
        if pmax[structure].is_some() {
            return Err(line_err(
                entry.lineno,
                format!("duplicate `power.pmax {structure}`"),
            ));
        }
        pmax[structure] = Some(Watts(watts));
    }
    for structure in Structure::ALL {
        if pmax[structure].is_none() {
            return Err(SimError::invalid_config(format!(
                "missing `power.pmax {structure}` line"
            )));
        }
    }
    let power = PowerParams {
        pmax_dynamic: pmax.map(|_, w| (*w).expect("checked complete")),
        idle_fraction: req_f64(&mut s, "power.idle_fraction")?,
        leakage_density: req_f64(&mut s, "power.leakage_density")?,
        leakage_ref: req_kelvin(&mut s, "power.leakage_ref_k")?,
        leakage_beta: req_f64(&mut s, "power.leakage_beta")?,
        base_vdd: Volts(req_f64(&mut s, "power.base_vdd")?),
        base_frequency: Hertz(req_f64(&mut s, "power.base_frequency_hz")?),
    };

    let thermal = ThermalParams {
        r_vertical_per_area: req_f64(&mut s, "thermal.r_vertical_per_area")?,
        r_lateral_per_edge: req_f64(&mut s, "thermal.r_lateral_per_edge")?,
        r_spreader_sink: req_f64(&mut s, "thermal.r_spreader_sink")?,
        r_sink_ambient: req_f64(&mut s, "thermal.r_sink_ambient")?,
        c_block_per_area: req_f64(&mut s, "thermal.c_block_per_area")?,
        c_spreader: req_f64(&mut s, "thermal.c_spreader")?,
        c_sink: req_f64(&mut s, "thermal.c_sink")?,
        ambient: req_kelvin(&mut s, "thermal.ambient_k")?,
    };

    let die_entry = req(&mut s, "floorplan.die", 2)?;
    let die_width = die_entry.f64_at("floorplan.die", 0)?;
    let die_height = die_entry.f64_at("floorplan.die", 1)?;
    let mut floorplan_blocks = Vec::with_capacity(s.blocks.len());
    for entry in s.blocks.drain(..) {
        entry.expect_len("floorplan.block", 5)?;
        let structure = structure_at(&entry, "floorplan.block", 0)?;
        let [x, y, w, h] = [1usize, 2, 3, 4].map(|i| entry.f64_at("floorplan.block", i));
        let (x, y, w, h) = (x?, y?, w?, h?);
        if !(w > 0.0 && h > 0.0 && w.is_finite() && h.is_finite()) {
            return Err(line_err(
                entry.lineno,
                format!("`floorplan.block {structure}` must have positive finite extent"),
            ));
        }
        floorplan_blocks.push(Block {
            structure,
            rect: Rect { x, y, w, h },
        });
    }
    let floorplan = Floorplan::new(floorplan_blocks, die_width, die_height)?;

    let failure = FailureParams {
        em_n: req_f64(&mut s, "failure.em_n")?,
        em_ea: req_f64(&mut s, "failure.em_ea")?,
        sm_n: req_f64(&mut s, "failure.sm_n")?,
        sm_ea: req_f64(&mut s, "failure.sm_ea")?,
        sm_t0: req_kelvin(&mut s, "failure.sm_t0_k")?,
        tddb_a: req_f64(&mut s, "failure.tddb_a")?,
        tddb_b: req_f64(&mut s, "failure.tddb_b")?,
        tddb_x: req_f64(&mut s, "failure.tddb_x")?,
        tddb_y: req_f64(&mut s, "failure.tddb_y")?,
        tddb_z: req_f64(&mut s, "failure.tddb_z")?,
        tc_q: req_f64(&mut s, "failure.tc_q")?,
        tc_ambient: req_kelvin(&mut s, "failure.tc_ambient_k")?,
    };

    let qualification = Qualification {
        t_qual: req_kelvin(&mut s, "qual.t_qual_k")?,
        alpha: req_f64(&mut s, "qual.alpha")?,
        target_fit: req_f64(&mut s, "qual.target_fit")?,
    };

    let eval = EvalParams {
        warmup_instructions: req_u64(&mut s, "eval.warmup_instructions")?,
        measure_instructions: req_u64(&mut s, "eval.measure_instructions")?,
        interval_instructions: req_u64(&mut s, "eval.interval_instructions")?,
        seed: req_u64(&mut s, "eval.seed")?,
        leakage_iterations: req_u32(&mut s, "eval.leakage_iterations")?,
        prewarm_bytes: req_u64(&mut s, "eval.prewarm_bytes")?,
    };

    let fleet = FleetConfig {
        dies: req_u64(&mut s, "fleet.dies")?,
        seed: req_u64(&mut s, "fleet.seed")?,
        shape: req_f64(&mut s, "fleet.shape")?,
        variation: VariationParams {
            sigma_leakage: req_f64(&mut s, "fleet.sigma_leakage")?,
            sigma_beta: req_f64(&mut s, "fleet.sigma_beta")?,
            sigma_ea: req_f64(&mut s, "fleet.sigma_ea")?,
            sigma_geometry: req_f64(&mut s, "fleet.sigma_geometry")?,
        },
    };

    let mut arch_points = Vec::with_capacity(s.arch.len());
    for entry in s.arch.drain(..) {
        entry.expect_len("arch", 3)?;
        let point = ArchPoint {
            window: entry.u32_at("arch", 0)?,
            alus: entry.u32_at("arch", 1)?,
            fpus: entry.u32_at("arch", 2)?,
        };
        if arch_points.contains(&point) {
            return Err(line_err(
                entry.lineno,
                format!("duplicate adaptation point {point}"),
            ));
        }
        arch_points.push(point);
    }

    let mut slo_verbs = Vec::with_capacity(s.slo_verbs.len());
    for entry in s.slo_verbs.drain(..) {
        entry.expect_len("slo.verb", 3)?;
        slo_verbs.push(SloVerb {
            verb: entry.values[0].clone(),
            quantile: entry.f64_at("slo.verb", 1)?,
            target_ms: entry.f64_at("slo.verb", 2)?,
        });
    }
    let max_fit_burn = opt_f64(&mut s, "slo.fit_burn")?;
    let slo = if slo_verbs.is_empty() && max_fit_burn.is_none() {
        None
    } else {
        Some(SloPolicy {
            verbs: slo_verbs,
            max_fit_burn,
        })
    };

    let slice_instructions = opt_u64(&mut s, "slice.instructions")?;
    let slice_dir = opt_token(&mut s, "slice.checkpoint_dir")?;
    let slice = match (slice_instructions, slice_dir) {
        (Some(instructions), checkpoint_dir) => Some(SliceSpec {
            instructions,
            checkpoint_dir,
        }),
        (None, Some(_)) => {
            return Err(SimError::invalid_config(
                "`slice.checkpoint_dir` requires `slice.instructions`",
            ))
        }
        (None, None) => None,
    };

    let surrogate_enabled = opt_bool(&mut s, "surrogate.enabled")?;
    let surrogate_top_k = opt_u32(&mut s, "surrogate.top_k")?;
    let surrogate_cal = opt_u32(&mut s, "surrogate.calibration_apps")?;
    let surrogate = match surrogate_enabled {
        Some(enabled) => {
            let defaults = SurrogateSpec::default();
            Some(SurrogateSpec {
                enabled,
                top_k: surrogate_top_k.unwrap_or(defaults.top_k),
                calibration_apps: surrogate_cal.unwrap_or(defaults.calibration_apps),
            })
        }
        None => {
            for (key, present) in [
                ("surrogate.top_k", surrogate_top_k.is_some()),
                ("surrogate.calibration_apps", surrogate_cal.is_some()),
            ] {
                if present {
                    return Err(SimError::invalid_config(format!(
                        "`{key}` requires `surrogate.enabled`"
                    )));
                }
            }
            None
        }
    };

    let cluster_shards = opt_u32(&mut s, "cluster.shards")?;
    let cluster_store = opt_token(&mut s, "cluster.store_dir")?;
    let mut cluster_addrs = Vec::with_capacity(s.cluster_addrs.len());
    for entry in s.cluster_addrs.drain(..) {
        entry.expect_len("cluster.addr", 1)?;
        cluster_addrs.push(entry.values[0].clone());
    }
    let cluster = if cluster_shards.is_none() && cluster_addrs.is_empty() && cluster_store.is_none()
    {
        None
    } else {
        Some(ClusterSpec {
            shards: cluster_shards.unwrap_or(0),
            shard_addrs: cluster_addrs,
            store_dir: cluster_store,
        })
    };

    debug_assert!(s.singles.is_empty(), "unknown keys rejected during scan");
    let scenario = Scenario {
        name,
        core,
        dvs,
        power,
        thermal,
        floorplan,
        failure,
        qualification,
        workloads: std::mem::take(&mut s.workloads),
        arch_points,
        eval,
        fleet,
        slo,
        slice,
        surrogate,
        cluster,
    };
    scenario.validate()?;
    Ok(scenario)
}

/// Serializes a scenario to the text format; parsing the result with
/// [`scenario_from_text`] reproduces the input bit-identically.
pub fn scenario_to_text(scenario: &Scenario) -> String {
    let mut out = String::new();
    let w = &mut out;
    let _ = writeln!(
        w,
        "# RAMP scenario — edit freely; `ramp scenario validate` checks it."
    );
    let _ = writeln!(w, "scenario.name {}", scenario.name);

    let c = &scenario.core;
    let _ = writeln!(w, "\n# Processor (Table 1)");
    let _ = writeln!(w, "core.frequency_hz {}", c.frequency.0);
    let _ = writeln!(w, "core.vdd {}", c.vdd.0);
    let _ = writeln!(w, "core.fetch_width {}", c.fetch_width);
    let _ = writeln!(w, "core.retire_width {}", c.retire_width);
    let _ = writeln!(w, "core.frontend_latency {}", c.frontend_latency);
    let _ = writeln!(w, "core.mispredict_redirect {}", c.mispredict_redirect);
    let _ = writeln!(w, "core.window {}", c.window_size);
    let _ = writeln!(w, "core.int_regs {}", c.int_regs);
    let _ = writeln!(w, "core.fp_regs {}", c.fp_regs);
    let _ = writeln!(w, "core.mem_queue {}", c.mem_queue);
    let _ = writeln!(w, "core.int_alus {}", c.int_alus);
    let _ = writeln!(w, "core.fpus {}", c.fpus);
    let _ = writeln!(w, "core.addr_gens {}", c.addr_gens);
    let _ = writeln!(w, "core.bpred_counters {}", c.bpred.counters);
    let _ = writeln!(w, "core.bpred_ras {}", c.bpred.ras_entries);
    for (key, cache) in [("core.l1d", c.l1d), ("core.l1i", c.l1i), ("core.l2", c.l2)] {
        let _ = writeln!(
            w,
            "{key} {} {} {}  # size assoc line_bytes",
            cache.size_bytes, cache.assoc, cache.line_bytes
        );
    }
    let _ = writeln!(w, "core.l1d_ports {}", c.l1d_ports);
    let _ = writeln!(w, "core.l1_hit_cycles {}", c.l1_hit_cycles);
    let _ = writeln!(w, "core.l2_hit_ns {}", c.l2_hit_ns);
    let _ = writeln!(w, "core.mem_ns {}", c.mem_ns);
    let _ = writeln!(w, "core.mshrs {}", c.mshrs);
    let _ = writeln!(w, "core.prefetch_next_line {}", c.prefetch_next_line);

    let d = &scenario.dvs;
    let _ = writeln!(
        w,
        "\n# DVS range: V(f) = base_vdd * (v_intercept + v_slope * f / base_ghz)"
    );
    let _ = writeln!(w, "dvs.base_ghz {}", d.base_ghz);
    let _ = writeln!(w, "dvs.base_vdd {}", d.base_vdd);
    let _ = writeln!(w, "dvs.min_ghz {}", d.min_ghz);
    let _ = writeln!(w, "dvs.max_ghz {}", d.max_ghz);
    let _ = writeln!(w, "dvs.step_ghz {}", d.step_ghz);
    let _ = writeln!(w, "dvs.v_intercept {}", d.v_intercept);
    let _ = writeln!(w, "dvs.v_slope {}", d.v_slope);

    let p = &scenario.power;
    let _ = writeln!(w, "\n# Power model");
    for (structure, watts) in p.pmax_dynamic.iter() {
        let _ = writeln!(w, "power.pmax {structure} {}", watts.0);
    }
    let _ = writeln!(w, "power.idle_fraction {}", p.idle_fraction);
    let _ = writeln!(w, "power.leakage_density {}", p.leakage_density);
    let _ = writeln!(w, "power.leakage_ref_k {}", p.leakage_ref.0);
    let _ = writeln!(w, "power.leakage_beta {}", p.leakage_beta);
    let _ = writeln!(w, "power.base_vdd {}", p.base_vdd.0);
    let _ = writeln!(w, "power.base_frequency_hz {}", p.base_frequency.0);

    let t = &scenario.thermal;
    let _ = writeln!(w, "\n# Package / thermal network");
    let _ = writeln!(w, "thermal.r_vertical_per_area {}", t.r_vertical_per_area);
    let _ = writeln!(w, "thermal.r_lateral_per_edge {}", t.r_lateral_per_edge);
    let _ = writeln!(w, "thermal.r_spreader_sink {}", t.r_spreader_sink);
    let _ = writeln!(w, "thermal.r_sink_ambient {}", t.r_sink_ambient);
    let _ = writeln!(w, "thermal.c_block_per_area {}", t.c_block_per_area);
    let _ = writeln!(w, "thermal.c_spreader {}", t.c_spreader);
    let _ = writeln!(w, "thermal.c_sink {}", t.c_sink);
    let _ = writeln!(w, "thermal.ambient_k {}", t.ambient.0);

    let f = &scenario.floorplan;
    let _ = writeln!(w, "\n# Floorplan (mm)");
    let _ = writeln!(w, "floorplan.die {} {}", f.die_width(), f.die_height());
    for block in f.blocks() {
        let r = block.rect;
        let _ = writeln!(
            w,
            "floorplan.block {} {} {} {} {}",
            block.structure, r.x, r.y, r.w, r.h
        );
    }

    let m = &scenario.failure;
    let _ = writeln!(w, "\n# Failure mechanisms");
    let _ = writeln!(w, "failure.em_n {}", m.em_n);
    let _ = writeln!(w, "failure.em_ea {}", m.em_ea);
    let _ = writeln!(w, "failure.sm_n {}", m.sm_n);
    let _ = writeln!(w, "failure.sm_ea {}", m.sm_ea);
    let _ = writeln!(w, "failure.sm_t0_k {}", m.sm_t0.0);
    let _ = writeln!(w, "failure.tddb_a {}", m.tddb_a);
    let _ = writeln!(w, "failure.tddb_b {}", m.tddb_b);
    let _ = writeln!(w, "failure.tddb_x {}", m.tddb_x);
    let _ = writeln!(w, "failure.tddb_y {}", m.tddb_y);
    let _ = writeln!(w, "failure.tddb_z {}", m.tddb_z);
    let _ = writeln!(w, "failure.tc_q {}", m.tc_q);
    let _ = writeln!(w, "failure.tc_ambient_k {}", m.tc_ambient.0);

    let q = &scenario.qualification;
    let _ = writeln!(w, "\n# Qualification and FIT budget");
    let _ = writeln!(w, "qual.t_qual_k {}", q.t_qual.0);
    let _ = writeln!(w, "qual.alpha {}", q.alpha);
    let _ = writeln!(w, "qual.target_fit {}", q.target_fit);

    let e = &scenario.eval;
    let _ = writeln!(w, "\n# Evaluation lengths");
    let _ = writeln!(w, "eval.warmup_instructions {}", e.warmup_instructions);
    let _ = writeln!(w, "eval.measure_instructions {}", e.measure_instructions);
    let _ = writeln!(w, "eval.interval_instructions {}", e.interval_instructions);
    let _ = writeln!(w, "eval.seed {}", e.seed);
    let _ = writeln!(w, "eval.leakage_iterations {}", e.leakage_iterations);
    let _ = writeln!(w, "eval.prewarm_bytes {}", e.prewarm_bytes);

    if let Some(slice) = &scenario.slice {
        let _ = writeln!(w, "\n# Sliced evaluation: checkpointed continuation");
        let _ = writeln!(w, "slice.instructions {}", slice.instructions);
        if let Some(dir) = &slice.checkpoint_dir {
            let _ = writeln!(w, "slice.checkpoint_dir {dir}");
        }
    }

    if let Some(surrogate) = &scenario.surrogate {
        let _ = writeln!(w, "\n# Surrogate-accelerated DRM search");
        let _ = writeln!(w, "surrogate.enabled {}", surrogate.enabled);
        let _ = writeln!(w, "surrogate.top_k {}", surrogate.top_k);
        let _ = writeln!(
            w,
            "surrogate.calibration_apps {}",
            surrogate.calibration_apps
        );
    }

    if let Some(cluster) = &scenario.cluster {
        let _ = writeln!(w, "\n# Distributed sweep fabric");
        if cluster.shards > 0 {
            let _ = writeln!(w, "cluster.shards {}", cluster.shards);
        }
        for addr in &cluster.shard_addrs {
            let _ = writeln!(w, "cluster.addr {addr}");
        }
        if let Some(dir) = &cluster.store_dir {
            let _ = writeln!(w, "cluster.store_dir {dir}");
        }
    }

    let fl = &scenario.fleet;
    let _ = writeln!(w, "\n# Fleet population Monte Carlo");
    let _ = writeln!(w, "fleet.dies {}", fl.dies);
    let _ = writeln!(w, "fleet.seed {}", fl.seed);
    let _ = writeln!(w, "fleet.shape {}", fl.shape);
    let _ = writeln!(w, "fleet.sigma_leakage {}", fl.variation.sigma_leakage);
    let _ = writeln!(w, "fleet.sigma_beta {}", fl.variation.sigma_beta);
    let _ = writeln!(w, "fleet.sigma_ea {}", fl.variation.sigma_ea);
    let _ = writeln!(w, "fleet.sigma_geometry {}", fl.variation.sigma_geometry);

    if let Some(slo) = &scenario.slo {
        let _ = writeln!(w, "\n# Service-level objectives: verb quantile target_ms");
        for v in &slo.verbs {
            let _ = writeln!(w, "slo.verb {} {} {}", v.verb, v.quantile, v.target_ms);
        }
        if let Some(burn) = slo.max_fit_burn {
            let _ = writeln!(w, "slo.fit_burn {burn}");
        }
    }

    let _ = writeln!(w, "\n# DRM adaptation space: window alus fpus");
    for point in &scenario.arch_points {
        let _ = writeln!(w, "arch {} {} {}", point.window, point.alus, point.fpus);
    }

    let _ = writeln!(w, "\n# Workload suite, in run order");
    for spec in &scenario.workloads {
        match spec {
            WorkloadSpec::Builtin(app) => {
                let _ = writeln!(w, "workload {}", app.name());
            }
            WorkloadSpec::Inline(profile) => {
                let _ = writeln!(w, "profile begin");
                let _ = write!(w, "{}", profile_to_text(profile));
                let _ = writeln!(w, "profile end");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_round_trips_bit_identically() {
        let original = Scenario::paper_default();
        let text = scenario_to_text(&original);
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, original);
        // And the canonical print is a fixed point.
        assert_eq!(scenario_to_text(&reparsed), text);
    }

    #[test]
    fn fleet_section_round_trips_and_validates() {
        let mut s = Scenario::paper_default();
        s.fleet.dies = 2_000_000;
        s.fleet.seed = 99;
        s.fleet.shape = 3.5;
        s.fleet.variation.sigma_leakage = 0.4;
        let text = scenario_to_text(&s);
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);

        let bad = text.replace("fleet.shape 3.5", "fleet.shape 0.01");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("fleet.shape"), "{err}");

        let missing: String = text
            .lines()
            .filter(|l| !l.starts_with("fleet.dies"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = scenario_from_text(&missing).unwrap_err().to_string();
        assert!(err.contains("missing required key `fleet.dies`"), "{err}");
    }

    #[test]
    fn slo_section_round_trips_and_validates() {
        use crate::{SloPolicy, SloVerb};
        let mut s = Scenario::paper_default();
        s.slo = Some(SloPolicy {
            verbs: vec![
                SloVerb {
                    verb: "eval".to_owned(),
                    quantile: 0.99,
                    target_ms: 250.0,
                },
                SloVerb {
                    verb: "fleet".to_owned(),
                    quantile: 0.5,
                    target_ms: 2000.0,
                },
            ],
            max_fit_burn: Some(1.25),
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("slo.verb eval 0.99 250"), "{text}");
        assert!(text.contains("slo.fit_burn 1.25"), "{text}");
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
        assert_eq!(scenario_to_text(&reparsed), text);

        // Bad objectives are rejected with the scenario's own messages.
        let bad = text.replace("slo.verb eval 0.99 250", "slo.verb eval 1.5 250");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("quantile"), "{err}");
        let bad = text.replace("slo.fit_burn 1.25", "slo.fit_burn -1");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("fit_burn"), "{err}");
        let bad = text.replace(
            "slo.verb fleet 0.5 2000",
            "slo.verb eval 0.5 2000", // duplicate verb
        );
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("duplicate slo objective"), "{err}");
    }

    #[test]
    fn scenarios_without_slo_lines_have_no_slo_section() {
        // The section is optional: the paper default prints no `slo.`
        // lines and parses back to `slo: None` (the pre-section format is
        // preserved bit-for-bit).
        let text = scenario_to_text(&Scenario::paper_default());
        assert!(!text.contains("slo."), "{text}");
        let reparsed = scenario_from_text(&text).unwrap();
        assert_eq!(reparsed.slo, None);
    }

    #[test]
    fn slice_section_round_trips_and_validates() {
        let mut s = Scenario::paper_default();
        // standard(): interval 60k — slice must be a multiple.
        s.slice = Some(SliceSpec {
            instructions: 120_000,
            checkpoint_dir: Some("checkpoints/paper".to_owned()),
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("slice.instructions 120000"), "{text}");
        assert!(
            text.contains("slice.checkpoint_dir checkpoints/paper"),
            "{text}"
        );
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
        assert_eq!(scenario_to_text(&reparsed), text);

        // The directory is optional within the section...
        s.slice = Some(SliceSpec {
            instructions: 60_000,
            checkpoint_dir: None,
        });
        let text = scenario_to_text(&s);
        assert!(!text.contains("slice.checkpoint_dir"), "{text}");
        assert_eq!(scenario_from_text(&text).unwrap(), s);

        // ...but a directory alone is not a slice section.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("slice.checkpoint_dir lonely\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("requires `slice.instructions`"), "{err}");

        // Unaligned slice lengths fail scenario validation.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("slice.instructions 90001\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("multiple of the interval"), "{err}");
    }

    #[test]
    fn surrogate_section_round_trips_and_validates() {
        let mut s = Scenario::paper_default();
        s.surrogate = Some(SurrogateSpec {
            enabled: true,
            top_k: 12,
            calibration_apps: 2,
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("surrogate.enabled true"), "{text}");
        assert!(text.contains("surrogate.top_k 12"), "{text}");
        assert!(text.contains("surrogate.calibration_apps 2"), "{text}");
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
        assert_eq!(scenario_to_text(&reparsed), text);

        // A disabled section still round-trips (kill switch is recorded).
        s.surrogate = Some(SurrogateSpec {
            enabled: false,
            ..SurrogateSpec::default()
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("surrogate.enabled false"), "{text}");
        assert_eq!(scenario_from_text(&text).unwrap(), s);

        // `enabled` alone picks up the defaults.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("surrogate.enabled true\n");
        let reparsed = scenario_from_text(&text).unwrap();
        assert_eq!(reparsed.surrogate, Some(SurrogateSpec::default()));

        // A tuning key without `enabled` is not a section.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("surrogate.top_k 4\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("requires `surrogate.enabled`"), "{err}");

        // Zero budgets fail scenario validation.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("surrogate.enabled true\nsurrogate.top_k 0\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("top_k"), "{err}");

        // Non-boolean values are rejected with a line number.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("surrogate.enabled maybe\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("must be `true` or `false`"), "{err}");
    }

    #[test]
    fn cluster_section_round_trips_and_validates() {
        let mut s = Scenario::paper_default();
        s.cluster = Some(ClusterSpec {
            shards: 4,
            shard_addrs: Vec::new(),
            store_dir: Some("evalstore/paper".to_owned()),
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("cluster.shards 4"), "{text}");
        assert!(text.contains("cluster.store_dir evalstore/paper"), "{text}");
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
        assert_eq!(scenario_to_text(&reparsed), text);

        // External addresses instead of spawned shards.
        s.cluster = Some(ClusterSpec {
            shards: 0,
            shard_addrs: vec!["127.0.0.1:7101".to_owned(), "127.0.0.1:7102".to_owned()],
            store_dir: None,
        });
        let text = scenario_to_text(&s);
        assert!(text.contains("cluster.addr 127.0.0.1:7101"), "{text}");
        assert!(!text.contains("cluster.shards"), "{text}");
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
        assert_eq!(reparsed.cluster.as_ref().unwrap().shard_count(), 2);

        // Shards and addresses together fail scenario validation.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("cluster.shards 2\ncluster.addr 127.0.0.1:7101\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("mutually exclusive"), "{err}");

        // A store directory alone declares no workers.
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("cluster.store_dir lonely\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("declares no workers"), "{err}");
    }

    #[test]
    fn scenarios_without_cluster_lines_have_no_cluster_section() {
        let text = scenario_to_text(&Scenario::paper_default());
        assert!(!text.contains("cluster."), "{text}");
        assert_eq!(scenario_from_text(&text).unwrap().cluster, None);
    }

    #[test]
    fn scenarios_without_surrogate_lines_have_no_surrogate_section() {
        let text = scenario_to_text(&Scenario::paper_default());
        assert!(!text.contains("surrogate."), "{text}");
        assert_eq!(scenario_from_text(&text).unwrap().surrogate, None);
    }

    #[test]
    fn scenarios_without_slice_lines_have_no_slice_section() {
        let text = scenario_to_text(&Scenario::paper_default());
        assert!(!text.contains("slice."), "{text}");
        assert_eq!(scenario_from_text(&text).unwrap().slice, None);
    }

    #[test]
    fn inline_profiles_round_trip() {
        let mut s = Scenario::paper_default();
        s.workloads
            .push(WorkloadSpec::Inline(App::Equake.profile()));
        let text = scenario_to_text(&s);
        let reparsed = scenario_from_text(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(reparsed, s);
    }

    #[test]
    fn unknown_keys_report_line_numbers() {
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("core.warp_drive 9\n");
        let lines = text.lines().count();
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains(&format!("line {lines}")), "{err}");
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn duplicate_keys_report_both_lines() {
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("qual.alpha 0.5\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("duplicate key `qual.alpha`"), "{err}");
        assert!(err.contains("first at line"), "{err}");
    }

    #[test]
    fn missing_keys_are_named() {
        let text: String = scenario_to_text(&Scenario::paper_default())
            .lines()
            .filter(|l| !l.starts_with("qual.t_qual_k"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(
            err.contains("missing required key `qual.t_qual_k`"),
            "{err}"
        );
    }

    #[test]
    fn malformed_values_report_line_numbers() {
        let text = scenario_to_text(&Scenario::paper_default());
        let bad = text.replace("qual.alpha 0.48", "qual.alpha high");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("must be a number"), "{err}");
        assert!(err.contains("line "), "{err}");

        let bad = text.replace("core.mshrs 12", "core.mshrs 12 13");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("expects 1 value"), "{err}");
    }

    #[test]
    fn unterminated_profile_block_is_an_error() {
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("profile begin\nname dangling\nmix int-alu 1\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("without `profile end`"), "{err}");
    }

    #[test]
    fn bad_inline_profile_points_at_block() {
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("profile begin\nname broken\nmix warp-drive 1\nprofile end\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("inline profile starting at line"), "{err}");
        assert!(err.contains("unknown op class"), "{err}");
    }

    #[test]
    fn unknown_structure_and_workload_are_rejected() {
        let text = scenario_to_text(&Scenario::paper_default());
        let bad = text.replace("power.pmax fpu 11", "power.pmax gpu 11");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("unknown structure `gpu`"), "{err}");

        let bad = text.replace("workload gzip", "workload doom");
        let err = scenario_from_text(&bad).unwrap_err().to_string();
        assert!(err.contains("unknown built-in workload `doom`"), "{err}");
    }

    #[test]
    fn duplicate_pmax_and_arch_are_rejected() {
        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("power.pmax fpu 3\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("duplicate `power.pmax fpu`"), "{err}");

        let mut text = scenario_to_text(&Scenario::paper_default());
        text.push_str("arch 128 6 4\n");
        let err = scenario_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("duplicate adaptation point"), "{err}");
    }
}
