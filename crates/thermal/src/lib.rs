//! `sim-thermal`: a floorplan-driven RC thermal network (the HotSpot-like
//! substrate of the RAMP/DRM reproduction).
//!
//! The die is modeled as one thermal node per floorplan block, connected
//! laterally to adjacent blocks (conductance proportional to the shared
//! edge length) and vertically to a heat spreader node, which connects to a
//! heat-sink node, which convects to ambient — the same lumped-RC
//! abstraction HotSpot uses at block granularity.
//!
//! Two solvers are provided:
//!
//! * [`ThermalModel::steady_state`] — the equilibrium temperatures for a
//!   constant power map (dense Gaussian elimination over the small node
//!   system);
//! * [`ThermalModel::transient_step`] — explicit integration for
//!   time-varying power.
//!
//! The heat sink's thermal time constant (tens of seconds) is far larger
//! than anything a simulation can cover, so the paper runs every experiment
//! twice: the first pass collects average power to compute a steady-state
//! heat-sink temperature, which initializes the second pass (§6.3).
//! [`ThermalModel::steady_sink_temperature`] and
//! [`ThermalModel::steady_state_with_sink`] implement exactly that
//! protocol.
//!
//! # Examples
//!
//! ```
//! use sim_common::{Kelvin, Structure, StructureMap, Watts};
//! use sim_thermal::ThermalModel;
//!
//! let model = ThermalModel::hotspot_65nm();
//! let mut power = StructureMap::splat(Watts(2.0));
//! power[Structure::Fpu] = Watts(6.0);
//! let temps = model.steady_state(&power);
//! assert!(temps[Structure::Fpu] > temps[Structure::Icache]);
//! assert!(temps[Structure::Fpu] > Kelvin(318.0)); // above ambient
//! ```

pub mod model;

pub use model::{ThermalModel, ThermalParams, ThermalState};
