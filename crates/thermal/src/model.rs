//! The lumped-RC thermal network and its solvers.

use sim_common::{Floorplan, Kelvin, SimError, Structure, StructureMap, Watts};

/// Thermal parameters of the package.
///
/// [`ThermalParams::hotspot_65nm`] is calibrated (HotSpot-style defaults,
/// 45 °C ambient) so that the paper's hottest application peaks near 400 K
/// on the base processor while the coolest runs near 345 K — the spread the
/// paper's `T_qual` sweep (325–400 K) is built around.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalParams {
    /// Vertical resistance from a block to the spreader, in K·mm²/W
    /// (divide by block area for the block's resistance): bulk silicon
    /// plus the thermal interface material.
    pub r_vertical_per_area: f64,
    /// Lateral resistance between adjacent blocks, in K·mm/W (divide by
    /// shared edge length).
    pub r_lateral_per_edge: f64,
    /// Spreader-to-sink resistance, K/W.
    pub r_spreader_sink: f64,
    /// Sink-to-ambient (convection) resistance, K/W.
    pub r_sink_ambient: f64,
    /// Block heat capacity per area, J/(K·mm²).
    pub c_block_per_area: f64,
    /// Spreader heat capacity, J/K.
    pub c_spreader: f64,
    /// Sink heat capacity, J/K.
    pub c_sink: f64,
    /// Ambient temperature.
    pub ambient: Kelvin,
}

impl ThermalParams {
    /// HotSpot-style defaults for the 20.25 mm² 65 nm core: 45 °C ambient,
    /// 0.8 K/W convection.
    pub fn hotspot_65nm() -> ThermalParams {
        ThermalParams {
            // 0.5 mm silicon (k = 100 W/m·K) + TIM, folded into one
            // effective constant.
            r_vertical_per_area: 24.0,
            // ~1.5 mm block pitch through 0.5 mm silicon.
            r_lateral_per_edge: 25.0,
            r_spreader_sink: 0.07,
            r_sink_ambient: 0.8,
            // 1.75e6 J/(m³·K) × 0.5 mm thickness.
            c_block_per_area: 0.875e-3,
            c_spreader: 3.2,
            c_sink: 90.0,
            ambient: Kelvin::from_celsius(45.0),
        }
    }

    /// Validates the parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for non-positive resistances,
    /// capacitances, or ambient temperature.
    pub fn validate(&self) -> Result<(), SimError> {
        for (label, v) in [
            ("r_vertical_per_area", self.r_vertical_per_area),
            ("r_lateral_per_edge", self.r_lateral_per_edge),
            ("r_spreader_sink", self.r_spreader_sink),
            ("r_sink_ambient", self.r_sink_ambient),
            ("c_block_per_area", self.c_block_per_area),
            ("c_spreader", self.c_spreader),
            ("c_sink", self.c_sink),
            ("ambient", self.ambient.0),
        ] {
            if v <= 0.0 || !v.is_finite() {
                return Err(SimError::invalid_config(format!(
                    "{label} must be positive and finite, got {v}"
                )));
            }
        }
        Ok(())
    }
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams::hotspot_65nm()
    }
}

/// Transient thermal state: one temperature per network node.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalState {
    temps: Vec<f64>,
}

impl ThermalState {
    /// Temperature of a block node.
    pub fn block(&self, s: Structure) -> Kelvin {
        Kelvin(self.temps[s.index()])
    }

    /// All block temperatures.
    pub fn blocks(&self) -> StructureMap<Kelvin> {
        StructureMap::from_fn(|s| self.block(s))
    }

    /// Spreader temperature.
    pub fn spreader(&self) -> Kelvin {
        Kelvin(self.temps[Structure::COUNT])
    }

    /// Heat-sink temperature.
    pub fn sink(&self) -> Kelvin {
        Kelvin(self.temps[Structure::COUNT + 1])
    }
}

const N_BLOCKS: usize = Structure::COUNT;
const SPREADER: usize = N_BLOCKS;
const SINK: usize = N_BLOCKS + 1;
const N_NODES: usize = N_BLOCKS + 2;

/// The thermal network: floorplan geometry + package parameters compiled
/// into a conductance matrix.
///
/// The steady-state system matrix `A` depends only on the network and on
/// whether the sink row is pinned — the pinned sink *value* lives in the
/// right-hand side — so both variants are LU-factored once at
/// construction and every [`ThermalModel::solve_steady`] call reduces to
/// a forward/backward substitution over the prefactored matrix.
#[derive(Debug, Clone)]
pub struct ThermalModel {
    params: ThermalParams,
    floorplan: Floorplan,
    /// Conductances g[i][j] between nodes (0 where unconnected).
    conductance: [[f64; N_NODES]; N_NODES],
    /// Conductance from each node to ambient (only the sink's is nonzero).
    g_ambient: [f64; N_NODES],
    /// Heat capacity per node.
    capacity: [f64; N_NODES],
    /// LU factors of the free-sink steady-state matrix.
    lu_free: LuFactors,
    /// LU factors of the pinned-sink steady-state matrix (sink row
    /// replaced by the identity; the pin value enters through `b`).
    lu_pinned: LuFactors,
}

impl ThermalModel {
    /// Builds the network for a floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the parameters fail
    /// [`ThermalParams::validate`].
    pub fn new(params: ThermalParams, floorplan: Floorplan) -> Result<ThermalModel, SimError> {
        params.validate()?;
        let mut g = [[0.0; N_NODES]; N_NODES];
        let mut g_amb = [0.0; N_NODES];
        let mut c = [0.0; N_NODES];

        for s in Structure::ALL {
            let i = s.index();
            let area = floorplan.block(s).area().0;
            // Vertical path to the spreader.
            let g_v = area / params.r_vertical_per_area;
            g[i][SPREADER] += g_v;
            g[SPREADER][i] += g_v;
            // Lateral paths to adjacent blocks.
            for o in Structure::ALL {
                if o.index() <= i {
                    continue;
                }
                let edge = floorplan.shared_edge(s, o);
                if edge > 0.0 {
                    let g_l = edge / params.r_lateral_per_edge;
                    g[i][o.index()] += g_l;
                    g[o.index()][i] += g_l;
                }
            }
            c[i] = params.c_block_per_area * area;
        }
        let g_ss = 1.0 / params.r_spreader_sink;
        g[SPREADER][SINK] += g_ss;
        g[SINK][SPREADER] += g_ss;
        g_amb[SINK] = 1.0 / params.r_sink_ambient;
        c[SPREADER] = params.c_spreader;
        c[SINK] = params.c_sink;

        let free = assemble_steady_matrix(&g, &g_amb, false);
        let pinned = assemble_steady_matrix(&g, &g_amb, true);
        Ok(ThermalModel {
            params,
            floorplan,
            conductance: g,
            g_ambient: g_amb,
            capacity: c,
            lu_free: LuFactors::factor(free),
            lu_pinned: LuFactors::factor(pinned),
        })
    }

    /// The default 65 nm model on the default floorplan.
    pub fn hotspot_65nm() -> ThermalModel {
        ThermalModel::new(ThermalParams::hotspot_65nm(), Floorplan::r10000_65nm())
            .expect("default parameters are valid")
    }

    /// The package parameters.
    pub fn params(&self) -> &ThermalParams {
        &self.params
    }

    /// The floorplan.
    pub fn floorplan(&self) -> &Floorplan {
        &self.floorplan
    }

    /// A state with every node at ambient temperature.
    pub fn ambient_state(&self) -> ThermalState {
        ThermalState {
            temps: vec![self.params.ambient.0; N_NODES],
        }
    }

    fn power_vector(&self, power: &StructureMap<Watts>) -> [f64; N_NODES] {
        let mut p = [0.0; N_NODES];
        for (s, w) in power.iter() {
            p[s.index()] = w.0;
        }
        p
    }

    /// Steady-state heat-sink temperature for a given total power — the
    /// first pass of the paper's two-pass protocol (§6.3).
    pub fn steady_sink_temperature(&self, total_power: Watts) -> Kelvin {
        Kelvin(self.params.ambient.0 + self.params.r_sink_ambient * total_power.0)
    }

    /// Equilibrium block temperatures for a constant power map, with every
    /// node (including the sink) free.
    pub fn steady_state(&self, power: &StructureMap<Watts>) -> StructureMap<Kelvin> {
        let state = self.solve_steady(power, None);
        state.blocks()
    }

    /// Equilibrium block temperatures with the heat sink *pinned* at
    /// `sink` — the second pass of the two-pass protocol: the sink is too
    /// slow to move during a simulation, so it is fixed at the temperature
    /// computed from the first pass's average power.
    pub fn steady_state_with_sink(
        &self,
        power: &StructureMap<Watts>,
        sink: Kelvin,
    ) -> StructureMap<Kelvin> {
        let state = self.solve_steady(power, Some(sink));
        state.blocks()
    }

    fn steady_rhs(
        &self,
        power: &StructureMap<Watts>,
        pinned_sink: Option<Kelvin>,
    ) -> [f64; N_NODES] {
        let p = self.power_vector(power);
        let mut b = [0.0f64; N_NODES];
        for i in 0..N_NODES {
            b[i] = p[i] + self.g_ambient[i] * self.params.ambient.0;
        }
        if let Some(sink) = pinned_sink {
            b[SINK] = sink.0;
        }
        b
    }

    /// Full steady solve returning every node, via the LU factors
    /// computed at construction (bit-identical to
    /// [`ThermalModel::solve_steady_unfactored`], which eliminates from
    /// scratch — the factorization replays exactly the same pivoting and
    /// arithmetic).
    pub fn solve_steady(
        &self,
        power: &StructureMap<Watts>,
        pinned_sink: Option<Kelvin>,
    ) -> ThermalState {
        let b = self.steady_rhs(power, pinned_sink);
        let factors = if pinned_sink.is_some() {
            &self.lu_pinned
        } else {
            &self.lu_free
        };
        let temps = factors.solve(b);
        sim_obs::counter!("thermal.solves", 1);
        sim_obs::counter!("thermal.factor_reuse", 1);
        ThermalState {
            temps: temps.to_vec(),
        }
    }

    /// Reference steady solve that assembles `A` and runs Gaussian
    /// elimination from scratch on every call — the pre-factorization
    /// code path, kept as the ground truth the parity and property tests
    /// compare [`ThermalModel::solve_steady`] against.
    pub fn solve_steady_unfactored(
        &self,
        power: &StructureMap<Watts>,
        pinned_sink: Option<Kelvin>,
    ) -> ThermalState {
        let a = assemble_steady_matrix(&self.conductance, &self.g_ambient, pinned_sink.is_some());
        let b = self.steady_rhs(power, pinned_sink);
        let temps = solve_dense(a, b);
        sim_obs::counter!("thermal.solves", 1);
        ThermalState {
            temps: temps.to_vec(),
        }
    }

    /// Advances the transient state by `dt` seconds under constant `power`,
    /// using explicit Euler with internally chosen stable substeps.
    #[allow(clippy::needless_range_loop)] // dense numeric kernel: indices are clearest
    pub fn transient_step(&self, state: &mut ThermalState, power: &StructureMap<Watts>, dt: f64) {
        assert!(dt >= 0.0 && dt.is_finite(), "dt must be non-negative");
        let p = self.power_vector(power);
        // Stability: substep << min(C_i / Gtot_i).
        let mut min_tau = f64::INFINITY;
        for i in 0..N_NODES {
            let mut gtot = self.g_ambient[i];
            for j in 0..N_NODES {
                if i != j {
                    gtot += self.conductance[i][j];
                }
            }
            min_tau = min_tau.min(self.capacity[i] / gtot);
        }
        let h = (min_tau * 0.2).min(dt.max(1e-12));
        let steps = (dt / h).ceil().max(1.0) as usize;
        let h = dt / steps as f64;
        sim_obs::counter!("thermal.transient_steps", 1);
        sim_obs::counter!("thermal.transient_substeps", steps as u64);
        for _ in 0..steps {
            let mut dq = [0.0f64; N_NODES];
            for i in 0..N_NODES {
                let mut flow = p[i] + self.g_ambient[i] * (self.params.ambient.0 - state.temps[i]);
                for j in 0..N_NODES {
                    if i != j {
                        flow += self.conductance[i][j] * (state.temps[j] - state.temps[i]);
                    }
                }
                dq[i] = flow / self.capacity[i];
            }
            for i in 0..N_NODES {
                state.temps[i] += h * dq[i];
            }
        }
    }
}

/// Assembles the steady-state system matrix `A` of `A·T = b`: the
/// diagonal carries the sum of all conductances leaving the node and
/// off-diagonals are negative. With `pinned`, the sink row is replaced
/// by the identity so the right-hand side can pin its temperature.
#[allow(clippy::needless_range_loop)] // dense numeric kernel: indices are clearest
fn assemble_steady_matrix(
    g: &[[f64; N_NODES]; N_NODES],
    g_ambient: &[f64; N_NODES],
    pinned: bool,
) -> [[f64; N_NODES]; N_NODES] {
    let mut a = [[0.0f64; N_NODES]; N_NODES];
    for i in 0..N_NODES {
        let mut diag = g_ambient[i];
        for j in 0..N_NODES {
            if i != j {
                a[i][j] = -g[i][j];
                diag += g[i][j];
            }
        }
        a[i][i] = diag;
    }
    if pinned {
        for j in 0..N_NODES {
            a[SINK][j] = 0.0;
        }
        a[SINK][SINK] = 1.0;
    }
    a
}

/// An LU factorization (partial pivoting) of a steady-state matrix.
///
/// [`LuFactors::factor`] runs exactly the elimination [`solve_dense`]
/// runs — same pivot selection, same multipliers, same update order —
/// but records the multipliers in the zeroed lower triangle, and
/// [`LuFactors::solve`] replays the right-hand-side updates in the same
/// order, so `factor(a).solve(b)` is bit-identical to `solve_dense(a, b)`
/// while amortizing the O(n³) elimination across every solve.
#[derive(Debug, Clone)]
struct LuFactors {
    /// U in the upper triangle (diagonal included), the elimination
    /// multipliers in the strict lower triangle.
    lu: [[f64; N_NODES]; N_NODES],
    /// Row swapped with `col` at pivot step `col`.
    piv: [usize; N_NODES],
}

impl LuFactors {
    #[allow(clippy::needless_range_loop)] // dense numeric kernel: indices are clearest
    fn factor(mut a: [[f64; N_NODES]; N_NODES]) -> LuFactors {
        let mut piv = [0usize; N_NODES];
        for col in 0..N_NODES {
            let pivot = (col..N_NODES)
                .max_by(|&i, &j| {
                    a[i][col]
                        .abs()
                        .partial_cmp(&a[j][col].abs())
                        .expect("finite")
                })
                .expect("non-empty range");
            // Swap only the active columns: the lower triangle holds
            // multipliers from earlier steps, which must stay at the
            // positions where the interleaved replay in `solve` applies
            // them (a full-row swap would permute them a second time).
            if pivot != col {
                for k in col..N_NODES {
                    let tmp = a[col][k];
                    a[col][k] = a[pivot][k];
                    a[pivot][k] = tmp;
                }
            }
            piv[col] = pivot;
            let diag = a[col][col];
            assert!(
                diag.abs() > 1e-30,
                "singular thermal conductance matrix (disconnected node?)"
            );
            for row in (col + 1)..N_NODES {
                let f = a[row][col] / diag;
                if f != 0.0 {
                    for k in col..N_NODES {
                        a[row][k] -= f * a[col][k];
                    }
                }
                // The eliminated slot is never read again; store the
                // multiplier there for the solve-time replay.
                a[row][col] = f;
            }
        }
        LuFactors { lu: a, piv }
    }

    #[allow(clippy::needless_range_loop)] // dense numeric kernel: indices are clearest
    fn solve(&self, mut b: [f64; N_NODES]) -> [f64; N_NODES] {
        for col in 0..N_NODES {
            b.swap(col, self.piv[col]);
            for row in (col + 1)..N_NODES {
                let f = self.lu[row][col];
                if f != 0.0 {
                    b[row] -= f * b[col];
                }
            }
        }
        let mut x = [0.0f64; N_NODES];
        for row in (0..N_NODES).rev() {
            let mut acc = b[row];
            for k in (row + 1)..N_NODES {
                acc -= self.lu[row][k] * x[k];
            }
            x[row] = acc / self.lu[row][row];
        }
        x
    }
}

/// Gaussian elimination with partial pivoting for the small dense node
/// system.
#[allow(clippy::needless_range_loop)] // dense numeric kernel: indices are clearest
fn solve_dense(mut a: [[f64; N_NODES]; N_NODES], mut b: [f64; N_NODES]) -> [f64; N_NODES] {
    for col in 0..N_NODES {
        // Pivot.
        let pivot = (col..N_NODES)
            .max_by(|&i, &j| {
                a[i][col]
                    .abs()
                    .partial_cmp(&a[j][col].abs())
                    .expect("finite")
            })
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(
            diag.abs() > 1e-30,
            "singular thermal conductance matrix (disconnected node?)"
        );
        for row in (col + 1)..N_NODES {
            let f = a[row][col] / diag;
            if f != 0.0 {
                for k in col..N_NODES {
                    a[row][k] -= f * a[col][k];
                }
                b[row] -= f * b[col];
            }
        }
    }
    let mut x = [0.0f64; N_NODES];
    for row in (0..N_NODES).rev() {
        let mut acc = b[row];
        for k in (row + 1)..N_NODES {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ThermalModel {
        ThermalModel::hotspot_65nm()
    }

    fn uniform_power(w: f64) -> StructureMap<Watts> {
        StructureMap::splat(Watts(w))
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let m = model();
        let temps = m.steady_state(&uniform_power(0.0));
        for (s, t) in temps.iter() {
            assert!(
                (t.0 - m.params().ambient.0).abs() < 1e-6,
                "{s}: {t:?} not ambient"
            );
        }
    }

    #[test]
    fn sink_rise_matches_convection_resistance() {
        // Conservation: all heat leaves through the sink, so
        // T_sink − T_amb = R_conv · P_total.
        let m = model();
        let power = uniform_power(2.0); // 18 W total
        let state = m.solve_steady(&power, None);
        let expect = m.params().ambient.0 + 0.8 * 18.0;
        assert!((state.sink().0 - expect).abs() < 1e-6);
    }

    #[test]
    fn sink_helper_matches_full_solve() {
        let m = model();
        let power = uniform_power(3.0);
        let full = m.solve_steady(&power, None);
        let quick = m.steady_sink_temperature(Watts(27.0));
        assert!((full.sink().0 - quick.0).abs() < 1e-6);
    }

    #[test]
    fn hot_block_is_hottest() {
        let m = model();
        let mut power = uniform_power(1.0);
        power[Structure::Fpu] = Watts(8.0);
        let temps = m.steady_state(&power);
        let fpu = temps[Structure::Fpu];
        for (s, t) in temps.iter() {
            if s != Structure::Fpu {
                assert!(fpu > *t, "{s} ({t:?}) hotter than FPU ({fpu:?})");
            }
        }
    }

    #[test]
    fn more_power_is_monotonically_hotter() {
        let m = model();
        let low = m.steady_state(&uniform_power(1.0));
        let high = m.steady_state(&uniform_power(2.0));
        for (s, t) in high.iter() {
            assert!(*t > low[s], "{s}");
        }
    }

    #[test]
    fn neighbors_of_hot_block_warm_up() {
        let m = model();
        let mut power = uniform_power(0.5);
        power[Structure::Dcache] = Watts(10.0);
        let temps = m.steady_state(&power);
        // FpRegFile abuts Dcache; Bpred is across the die.
        assert!(temps[Structure::FpRegFile] > temps[Structure::Bpred]);
    }

    #[test]
    fn pinned_sink_controls_absolute_level() {
        let m = model();
        let power = uniform_power(2.0);
        let cold = m.steady_state_with_sink(&power, Kelvin(330.0));
        let hot = m.steady_state_with_sink(&power, Kelvin(360.0));
        for (s, t) in hot.iter() {
            let delta = t.0 - cold[s].0;
            assert!(
                (delta - 30.0).abs() < 0.5,
                "{s}: sink offset {delta} should track the pin"
            );
        }
    }

    #[test]
    fn transient_converges_to_steady_state() {
        let m = model();
        let mut power = uniform_power(1.5);
        power[Structure::Window] = Watts(6.0);
        let steady = m.solve_steady(&power, None);
        let mut state = m.ambient_state();
        // The sink time constant is ~72 s; integrate long enough.
        for _ in 0..600 {
            m.transient_step(&mut state, &power, 1.0);
        }
        for s in Structure::ALL {
            assert!(
                (state.block(s).0 - steady.block(s).0).abs() < 0.5,
                "{s}: transient {} vs steady {}",
                state.block(s).0,
                steady.block(s).0
            );
        }
    }

    #[test]
    fn blocks_respond_much_faster_than_sink() {
        let m = model();
        let power = uniform_power(3.0);
        let mut state = m.ambient_state();
        m.transient_step(&mut state, &power, 0.5);
        let steady = m.solve_steady(&power, None);
        let block_progress = (state.block(Structure::Fpu).0 - m.params().ambient.0)
            / (steady.block(Structure::Fpu).0 - m.params().ambient.0);
        let sink_progress =
            (state.sink().0 - m.params().ambient.0) / (steady.sink().0 - m.params().ambient.0);
        assert!(
            block_progress > 5.0 * sink_progress,
            "block {block_progress:.3} vs sink {sink_progress:.3}"
        );
    }

    #[test]
    fn transient_zero_dt_is_identity() {
        let m = model();
        let mut state = m.ambient_state();
        let before = state.clone();
        m.transient_step(&mut state, &uniform_power(5.0), 0.0);
        assert_eq!(state, before);
    }

    #[test]
    fn calibration_band_for_paper_power_range() {
        // The paper's hottest app dissipates ~36.5 W and reaches ~400 K;
        // the coolest ~15.6 W and stays well below. Check the model puts
        // realistic per-structure powers in that band.
        let m = model();
        // A hot multimedia-like distribution totaling ~36.5 W.
        let hot: StructureMap<Watts> = StructureMap::from_fn(|s| {
            Watts(match s {
                Structure::Dcache => 6.5,
                Structure::Window => 5.5,
                Structure::IntAlu => 5.5,
                Structure::Fpu => 4.5,
                Structure::Icache => 4.0,
                Structure::IntRegFile => 3.5,
                Structure::FpRegFile => 2.5,
                Structure::Lsq => 2.5,
                Structure::Bpred => 2.0,
            })
        });
        let temps = m.steady_state(&hot);
        let max = temps.iter().map(|(_, t)| t.0).fold(f64::MIN, f64::max);
        assert!(
            (380.0..=415.0).contains(&max),
            "hot app peak {max:.1} K outside the calibration band"
        );
        let cool = uniform_power(15.6 / 9.0);
        let temps = m.steady_state(&cool);
        let max = temps.iter().map(|(_, t)| t.0).fold(f64::MIN, f64::max);
        assert!(
            (330.0..=360.0).contains(&max),
            "cool app peak {max:.1} K outside the calibration band"
        );
    }

    #[test]
    fn prefactored_solve_is_bit_identical_to_fresh_elimination() {
        let m = model();
        let mut power = uniform_power(1.7);
        power[Structure::Fpu] = Watts(7.3);
        for pin in [None, Some(Kelvin(352.25))] {
            let lu = m.solve_steady(&power, pin);
            let ge = m.solve_steady_unfactored(&power, pin);
            assert_eq!(lu, ge, "pin {pin:?}");
        }
    }

    #[test]
    fn validate_rejects_nonpositive() {
        let mut p = ThermalParams::hotspot_65nm();
        p.r_sink_ambient = 0.0;
        assert!(p.validate().is_err());
        let mut p = ThermalParams::hotspot_65nm();
        p.c_sink = -1.0;
        assert!(p.validate().is_err());
    }
}
