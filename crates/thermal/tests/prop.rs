//! Randomized property tests of the thermal network: physical invariants
//! that must hold for any power map. Cases come from the in-tree PRNG.

use sim_common::{Structure, StructureMap, Watts, Xoshiro256pp};
use sim_thermal::ThermalModel;

const CASES: usize = 48;

fn random_power(rng: &mut Xoshiro256pp) -> StructureMap<Watts> {
    let v: Vec<f64> = (0..9).map(|_| rng.gen_f64(0.0..8.0)).collect();
    StructureMap::from_fn(|s| Watts(v[s.index()]))
}

/// Steady-state temperatures never fall below ambient.
#[test]
fn no_block_below_ambient() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5001);
    for _ in 0..CASES {
        let power = random_power(&mut rng);
        let m = ThermalModel::hotspot_65nm();
        let temps = m.steady_state(&power);
        let ambient = m.params().ambient.0;
        for (s, t) in temps.iter() {
            assert!(t.0 >= ambient - 1e-9, "{s} below ambient: {t:?}");
        }
    }
}

/// Energy balance: the sink temperature rise equals the convection
/// resistance times the total power, exactly (all heat exits through
/// the sink in steady state).
#[test]
fn sink_energy_balance() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5002);
    for _ in 0..CASES {
        let power = random_power(&mut rng);
        let m = ThermalModel::hotspot_65nm();
        let state = m.solve_steady(&power, None);
        let total: f64 = power.iter().map(|(_, w)| w.0).sum();
        let expect = m.params().ambient.0 + m.params().r_sink_ambient * total;
        assert!((state.sink().0 - expect).abs() < 1e-6);
    }
}

/// Superposition: the network is linear, so temperatures for the sum
/// of two power maps equal ambient-relative sums of the individual
/// solutions.
#[test]
fn linear_superposition() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5003);
    for _ in 0..CASES {
        let p1 = random_power(&mut rng);
        let p2 = random_power(&mut rng);
        let m = ThermalModel::hotspot_65nm();
        let ambient = m.params().ambient.0;
        let sum_power = StructureMap::from_fn(|s| p1[s] + p2[s]);
        let t1 = m.steady_state(&p1);
        let t2 = m.steady_state(&p2);
        let ts = m.steady_state(&sum_power);
        for s in Structure::ALL {
            let superposed = (t1[s].0 - ambient) + (t2[s].0 - ambient) + ambient;
            assert!(
                (ts[s].0 - superposed).abs() < 1e-6,
                "{s}: {} vs {}",
                ts[s].0,
                superposed
            );
        }
    }
}

/// Monotonicity: adding power to one block never cools any block.
#[test]
fn monotone_in_power() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5004);
    for _ in 0..CASES {
        let power = random_power(&mut rng);
        let extra = rng.gen_f64(0.1..5.0);
        let idx = rng.gen_usize(0..9);
        let m = ThermalModel::hotspot_65nm();
        let mut hotter = power;
        let s = Structure::ALL[idx];
        hotter[s] += Watts(extra);
        let base = m.steady_state(&power);
        let up = m.steady_state(&hotter);
        for o in Structure::ALL {
            assert!(up[o].0 >= base[o].0 - 1e-9, "{o} cooled when {s} heated");
        }
        // And the heated block itself strictly warms.
        assert!(up[s].0 > base[s].0);
    }
}

/// The transient solution converges to the steady solution and never
/// overshoots the hottest steady node from below.
#[test]
fn transient_approaches_steady() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x5005);
    for _ in 0..8 {
        let power = random_power(&mut rng);
        let m = ThermalModel::hotspot_65nm();
        let steady = m.solve_steady(&power, None);
        let mut state = m.ambient_state();
        for _ in 0..500 {
            m.transient_step(&mut state, &power, 1.0);
        }
        for s in Structure::ALL {
            assert!(
                (state.block(s).0 - steady.block(s).0).abs() < 1.0,
                "{s}: transient {} vs steady {}",
                state.block(s).0,
                steady.block(s).0
            );
        }
    }
}

/// The prefactored LU solve matches a fresh Gaussian elimination to
/// ≤ 1e-12 K for randomized power maps, with the sink both free and
/// pinned at randomized temperatures. (A stricter bit-exact check on a
/// fixed case lives in the unit tests; this guards the numerics across
/// the whole input space.)
#[test]
fn lu_solve_matches_fresh_elimination() {
    use sim_common::Kelvin;
    let mut rng = Xoshiro256pp::seed_from_u64(0x5007);
    let m = ThermalModel::hotspot_65nm();
    for case in 0..CASES {
        let power = random_power(&mut rng);
        let pin = if case % 2 == 0 {
            None
        } else {
            Some(Kelvin(rng.gen_f64(320.0..400.0)))
        };
        let lu = m.solve_steady(&power, pin);
        let ge = m.solve_steady_unfactored(&power, pin);
        for s in Structure::ALL {
            let d = (lu.block(s).0 - ge.block(s).0).abs();
            assert!(d <= 1e-12, "{s}: LU vs GE differ by {d:e} K (pin {pin:?})");
        }
        let ds = (lu.sink().0 - ge.sink().0).abs();
        assert!(ds <= 1e-12, "sink: LU vs GE differ by {ds:e} K");
        let dp = (lu.spreader().0 - ge.spreader().0).abs();
        assert!(dp <= 1e-12, "spreader: LU vs GE differ by {dp:e} K");
    }
}

/// Pinning the sink decouples the absolute level: shifting the pin by
/// ΔT shifts every block by exactly ΔT.
#[test]
fn pinned_sink_shift_invariance() {
    use sim_common::Kelvin;
    let mut rng = Xoshiro256pp::seed_from_u64(0x5006);
    for _ in 0..CASES {
        let power = random_power(&mut rng);
        let shift = rng.gen_f64(1.0..40.0);
        let m = ThermalModel::hotspot_65nm();
        let lo = m.steady_state_with_sink(&power, Kelvin(330.0));
        let hi = m.steady_state_with_sink(&power, Kelvin(330.0 + shift));
        for s in Structure::ALL {
            assert!(((hi[s].0 - lo[s].0) - shift).abs() < 1e-6, "{s}");
        }
    }
}
