//! `sim-cpu`: a cycle-level out-of-order superscalar timing simulator.
//!
//! This is the RSIM-like substrate of the RAMP/DRM reproduction: a
//! MIPS-R10000-style processor with the parameters of Table 1 of
//! *"The Case for Lifetime Reliability-Aware Microprocessors"* (ISCA 2004):
//!
//! * 8-wide fetch/retire; centralized 128-entry instruction window
//!   (issue queue + ROB) with separate 192+192-entry physical register
//!   files;
//! * 6 integer ALUs, 4 FPUs, 2 address-generation units — the issue width
//!   is the sum of active functional units and adapts with them (§6.1);
//! * 2 KB bimodal branch predictor with a 32-entry RAS;
//! * 64 KB/2-way L1D (2 ports, 12 MSHRs), 32 KB/2-way L1I, 1 MB/4-way
//!   off-chip L2, 102-cycle (at 4 GHz) main memory;
//! * trace-driven misprediction modeling (fetch stalls from a mispredicted
//!   branch until resolution + redirect).
//!
//! The simulator produces per-interval [`IntervalStats`] including the
//! per-structure activity factors that the power model (`sim-power`) and
//! reliability model (`ramp`) consume.
//!
//! # Examples
//!
//! ```
//! use sim_cpu::{CoreConfig, Processor};
//! use workload::{App, SyntheticStream};
//!
//! let source = SyntheticStream::new(App::Bzip2.profile(), 42);
//! let mut cpu = Processor::new(CoreConfig::base(), source)?;
//! let run = cpu.run(20_000, 5_000);
//! println!("bzip2 IPC = {:.2}", run.ipc());
//! # Ok::<(), sim_common::SimError>(())
//! ```

pub mod bpred;
pub mod cache;
pub mod checkpoint;
pub mod config;
pub mod pipeline;
pub mod regfile;
pub mod stats;

pub use bpred::{Bpred, BpredState, BpredStats};
pub use cache::{
    Cache, CacheLineState, CacheState, CacheStats, DataAccess, Lookup, MemHierarchy,
    MemHierarchyState, MemLatencies, MshrState,
};
pub use checkpoint::{checkpoint_from_text, checkpoint_to_text, Checkpoint};
pub use config::{
    BpredConfig, CacheConfig, CoreConfig, TimingKey, MAX_FPUS, MAX_INT_ALUS, MAX_WINDOW,
};
pub use pipeline::{ExecPhase, FetchedState, PipelineState, Processor, WindowSlotState};
pub use regfile::{PhysReg, RegFileStats, Rename, RenameClassState, RenameState};
pub use stats::{ActivityCounters, IntervalStats, RunStats};
