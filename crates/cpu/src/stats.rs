//! Per-interval and per-run statistics, including the per-structure
//! activity factors consumed by the power and reliability models.
//!
//! The paper's RAMP model consumes, per structure, an *activity factor*
//! (switching probability / utilization, §3.1): the fraction of the
//! structure's peak access bandwidth actually used. We compute it as
//! `accesses / (cycles × peak accesses per cycle)`, with the peak defined
//! by the configuration (port counts, unit counts, widths), clamped to
//! `[0, 1]`.

use sim_common::{Structure, StructureMap};

use crate::bpred::BpredStats;
use crate::cache::CacheStats;
use crate::config::CoreConfig;
use crate::regfile::RegFileStats;

/// Raw event counters accumulated by the pipeline within one interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActivityCounters {
    /// Instructions fetched into the fetch queue.
    pub fetched: u64,
    /// Window writes (dispatches).
    pub window_writes: u64,
    /// Window wakeup broadcasts (completions with a destination).
    pub window_wakeups: u64,
    /// Window issue selections.
    pub window_issues: u64,
    /// Memory-queue inserts (loads + stores dispatched).
    pub lsq_inserts: u64,
    /// Memory-queue associative searches (load issue, store insert).
    pub lsq_searches: u64,
    /// Integer-unit busy cycles.
    pub int_busy: u64,
    /// FP-unit busy cycles.
    pub fp_busy: u64,
    /// Address-generation-unit busy cycles.
    pub agen_busy: u64,
    /// Loads satisfied by store-to-load forwarding.
    pub forwards: u64,
    /// Cycles in which the window was empty at commit (frontend starved).
    pub cycles_window_empty: u64,
    /// Cycles in which commit was blocked on an in-flight memory operation
    /// at the window head.
    pub cycles_head_mem: u64,
    /// Cycles in which commit was blocked on a non-memory instruction at
    /// the window head (executing or waiting for operands/units).
    pub cycles_head_exec: u64,
    /// Cycles in which fetch was stalled (I-cache miss or unresolved
    /// mispredicted branch).
    pub cycles_fetch_stalled: u64,
    /// Committed instructions per op class, indexed by
    /// `workload::OpClass::index()` (the `OpClass::ALL` order). The
    /// per-class breakdown feeds the DRM surrogate's calibrated cost
    /// tables.
    pub class_commits: [u64; 11],
}

impl ActivityCounters {
    /// Total committed instructions across all op classes.
    pub fn total_commits(&self) -> u64 {
        self.class_commits.iter().sum()
    }
}

/// Statistics for one measurement interval.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalStats {
    /// Cycles elapsed in the interval.
    pub cycles: u64,
    /// Instructions committed in the interval.
    pub instructions: u64,
    /// Per-structure activity factors in `[0, 1]`.
    pub activity: StructureMap<f64>,
    /// Raw pipeline event counters.
    pub counters: ActivityCounters,
    /// Branch predictor statistics.
    pub bpred: BpredStats,
    /// L1 instruction cache statistics.
    pub l1i: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// Unified L2 statistics.
    pub l2: CacheStats,
    /// Integer register file port statistics.
    pub int_regfile: RegFileStats,
    /// FP register file port statistics.
    pub fp_regfile: RegFileStats,
}

impl IntervalStats {
    /// Builds interval statistics, deriving activity factors from the raw
    /// counters and the configuration's peak bandwidths.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_counters(
        config: &CoreConfig,
        cycles: u64,
        instructions: u64,
        counters: ActivityCounters,
        bpred: BpredStats,
        l1i: CacheStats,
        l1d: CacheStats,
        l2: CacheStats,
        int_regfile: RegFileStats,
        fp_regfile: RegFileStats,
    ) -> IntervalStats {
        let c = cycles.max(1) as f64;
        let ratio = |events: u64, peak_per_cycle: f64| -> f64 {
            (events as f64 / (c * peak_per_cycle.max(1e-9))).clamp(0.0, 1.0)
        };
        let issue_width = config.issue_width() as f64;
        let activity = StructureMap::from_fn(|s| match s {
            // One lookup stream + one update stream.
            Structure::Bpred => ratio(bpred.lookups + bpred.updates, 2.0),
            Structure::Icache => ratio(l1i.accesses, 1.0),
            Structure::Dcache => ratio(l1d.accesses, config.l1d_ports as f64),
            Structure::IntAlu => ratio(counters.int_busy, config.int_alus as f64),
            Structure::Fpu => ratio(counters.fp_busy, config.fpus as f64),
            Structure::IntRegFile => ratio(
                int_regfile.reads + int_regfile.writes,
                3.0 * (config.int_alus + config.addr_gens) as f64,
            ),
            Structure::FpRegFile => ratio(
                fp_regfile.reads + fp_regfile.writes,
                3.0 * config.fpus as f64,
            ),
            Structure::Window => ratio(
                counters.window_writes + counters.window_wakeups + counters.window_issues,
                config.fetch_width as f64 + 2.0 * issue_width,
            ),
            Structure::Lsq => ratio(
                counters.lsq_inserts + counters.lsq_searches,
                config.fetch_width as f64 / 2.0 + config.l1d_ports as f64,
            ),
        });
        IntervalStats {
            cycles,
            instructions,
            activity,
            counters,
            bpred,
            l1i,
            l1d,
            l2,
            int_regfile,
            fp_regfile,
        }
    }

    /// Instructions per cycle for the interval.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// Statistics for a whole run, as a sequence of intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    intervals: Vec<IntervalStats>,
}

impl RunStats {
    /// Wraps per-interval statistics.
    pub fn new(intervals: Vec<IntervalStats>) -> RunStats {
        RunStats { intervals }
    }

    /// The measurement intervals in order.
    pub fn intervals(&self) -> &[IntervalStats] {
        &self.intervals
    }

    /// Total cycles across all intervals.
    pub fn cycles(&self) -> u64 {
        self.intervals.iter().map(|i| i.cycles).sum()
    }

    /// Total instructions across all intervals.
    pub fn instructions(&self) -> u64 {
        self.intervals.iter().map(|i| i.instructions).sum()
    }

    /// Whole-run IPC.
    pub fn ipc(&self) -> f64 {
        let cycles = self.cycles();
        if cycles == 0 {
            0.0
        } else {
            self.instructions() as f64 / cycles as f64
        }
    }

    /// Cycle-weighted mean activity per structure.
    pub fn mean_activity(&self) -> StructureMap<f64> {
        let total_cycles = self.cycles().max(1) as f64;
        StructureMap::from_fn(|s| {
            self.intervals
                .iter()
                .map(|i| i.activity[s] * i.cycles as f64)
                .sum::<f64>()
                / total_cycles
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(cycles: u64, instructions: u64) -> IntervalStats {
        IntervalStats::from_counters(
            &CoreConfig::base(),
            cycles,
            instructions,
            ActivityCounters {
                int_busy: cycles * 3,
                ..ActivityCounters::default()
            },
            BpredStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            RegFileStats::default(),
            RegFileStats::default(),
        )
    }

    #[test]
    fn ipc_computation() {
        let s = stats_with(1000, 2500);
        assert!((s.ipc() - 2.5).abs() < 1e-12);
    }

    #[test]
    fn activity_from_busy_cycles() {
        // 3 of 6 ALUs busy every cycle ⇒ activity 0.5.
        let s = stats_with(1000, 1000);
        assert!((s.activity[Structure::IntAlu] - 0.5).abs() < 1e-12);
        assert_eq!(s.activity[Structure::Fpu], 0.0);
    }

    #[test]
    fn activity_clamps_at_one() {
        let config = CoreConfig::base();
        let s = IntervalStats::from_counters(
            &config,
            10,
            10,
            ActivityCounters {
                int_busy: 10_000,
                ..ActivityCounters::default()
            },
            BpredStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            CacheStats::default(),
            RegFileStats::default(),
            RegFileStats::default(),
        );
        assert_eq!(s.activity[Structure::IntAlu], 1.0);
    }

    #[test]
    fn zero_cycle_interval_is_safe() {
        let s = stats_with(0, 0);
        assert_eq!(s.ipc(), 0.0);
        assert!(s.activity[Structure::IntAlu].is_finite());
    }

    #[test]
    fn run_stats_aggregate() {
        let run = RunStats::new(vec![stats_with(1000, 1000), stats_with(3000, 9000)]);
        assert_eq!(run.cycles(), 4000);
        assert_eq!(run.instructions(), 10_000);
        assert!((run.ipc() - 2.5).abs() < 1e-12);
        // Both intervals have IntAlu activity 0.5 ⇒ weighted mean 0.5.
        assert!((run.mean_activity()[Structure::IntAlu] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_run_is_safe() {
        let run = RunStats::new(Vec::new());
        assert_eq!(run.ipc(), 0.0);
        assert_eq!(run.mean_activity()[Structure::Fpu], 0.0);
    }
}
