//! The cycle-level out-of-order pipeline.
//!
//! Models the paper's base processor (Table 1): 8-wide fetch/retire, a
//! centralized instruction window integrating the issue queue and reorder
//! buffer with a separate physical register file (MIPS R10000 style),
//! per-class functional-unit pools whose sum defines the issue width
//! (§6.1), a 32-entry memory queue with store-address disambiguation and
//! store-to-load forwarding, and an MSHR-limited two-level cache hierarchy.
//!
//! The simulator is trace driven: the instruction stream is always the
//! correct path, so a branch misprediction is modeled as a fetch stall from
//! the mispredicted branch's fetch until it resolves plus a redirect
//! penalty, rather than by executing wrong-path work.

use std::collections::{HashMap, VecDeque};

use workload::{InstructionSource, MicroOp, OpClass};

use crate::bpred::{Bpred, BpredState};
use crate::cache::{DataAccess, MemHierarchy, MemHierarchyState, MemLatencies};
use crate::config::CoreConfig;
use crate::regfile::{PhysReg, Rename, RenameState};
use crate::stats::{ActivityCounters, IntervalStats, RunStats};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    Waiting,
    Issued,
    Done,
}

#[derive(Debug, Clone)]
struct Slot {
    seq: u64,
    op: MicroOp,
    dest: Option<PhysReg>,
    old_dest: Option<PhysReg>,
    srcs: [Option<PhysReg>; 2],
    state: SlotState,
    ready_cycle: u64,
}

#[derive(Debug, Clone)]
struct Fetched {
    seq: u64,
    op: MicroOp,
    dispatch_at: u64,
}

/// Execution phase of one in-flight window entry, as captured in a
/// checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPhase {
    /// Dispatched; waiting for operands or a functional unit.
    Waiting,
    /// Issued; result arrives at `ready_cycle`.
    Issued,
    /// Completed; waiting to retire in order.
    Done,
}

/// One instruction-window entry, as captured in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSlotState {
    /// Fetch sequence number (program order).
    pub seq: u64,
    /// The decoded micro-op.
    pub op: MicroOp,
    /// Allocated destination physical register.
    pub dest: Option<PhysReg>,
    /// Previous mapping of the destination (released at commit).
    pub old_dest: Option<PhysReg>,
    /// Renamed source registers.
    pub srcs: [Option<PhysReg>; 2],
    /// Execution phase.
    pub phase: ExecPhase,
    /// Absolute cycle at which the result is (or was) available.
    pub ready_cycle: u64,
}

/// One fetch-queue entry, as captured in a checkpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct FetchedState {
    /// Fetch sequence number.
    pub seq: u64,
    /// The fetched micro-op.
    pub op: MicroOp,
    /// Absolute cycle at which the op becomes eligible for dispatch.
    pub dispatch_at: u64,
}

/// Complete warm microarchitectural state of a [`Processor`], captured at
/// an interval boundary for slice checkpoints.
///
/// Everything that influences future timing is here: rename maps, predictor
/// training, cache contents, in-flight window/fetch-queue entries, and the
/// absolute-cycle bookkeeping (functional-unit busy times, MSHR completion
/// times, fetch stall deadlines). Statistics are deliberately absent —
/// checkpoints are cut at interval boundaries, where
/// [`Processor::take_interval`] has just zeroed every counter, so a restored
/// processor reproduces the remaining intervals bit for bit.
///
/// The instruction source is *not* part of this state; capture and restore
/// it separately (the workload crate's `StreamState`) and hand the restored
/// source to [`Processor::new`] before calling
/// [`Processor::restore_state`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineState {
    /// Rename maps, free lists, and ready bits.
    pub rename: RenameState,
    /// Branch predictor counters and RAS.
    pub bpred: BpredState,
    /// Cache contents and outstanding misses.
    pub mem: MemHierarchyState,
    /// Instruction window, oldest entry first.
    pub window: Vec<WindowSlotState>,
    /// Fetch queue, oldest entry first.
    pub fetch_queue: Vec<FetchedState>,
    /// An op held back by an I-cache miss or an unverified return.
    pub pending: Option<MicroOp>,
    /// Current absolute cycle.
    pub now: u64,
    /// Next fetch sequence number.
    pub seq_next: u64,
    /// Total instructions committed since construction.
    pub committed: u64,
    /// Cycle of the most recent commit (livelock backstop).
    pub last_commit_cycle: u64,
    /// Absolute cycle at which fetch may resume.
    pub fetch_resume_at: u64,
    /// Sequence number of an unresolved mispredicted branch, if any.
    pub blocking_branch: Option<u64>,
    /// A fetched return awaiting RAS verification: `(seq, predicted pc)`.
    pub return_check: Option<(u64, u64)>,
    /// I-cache line of the most recent fetch.
    pub cur_fetch_line: u64,
    /// Per-integer-unit busy-until cycles.
    pub int_free: Vec<u64>,
    /// Per-FP-unit busy-until cycles.
    pub fp_free: Vec<u64>,
    /// Per-address-generation-unit busy-until cycles.
    pub agen_free: Vec<u64>,
}

/// Number of cycles without a commit after which the simulator declares a
/// livelock and panics (a correctness backstop; a healthy configuration
/// never goes near this).
const LIVELOCK_LIMIT: u64 = 500_000;

/// The out-of-order processor: configuration + instruction source +
/// microarchitectural state.
///
/// # Examples
///
/// ```
/// use sim_cpu::{CoreConfig, Processor};
/// use workload::{App, SyntheticStream};
///
/// let source = SyntheticStream::new(App::Gzip.profile(), 1);
/// let mut cpu = Processor::new(CoreConfig::base(), source)?;
/// let stats = cpu.run_instructions(10_000);
/// assert!(stats.ipc() > 0.1);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug)]
pub struct Processor<S> {
    config: CoreConfig,
    source: S,
    rename: Rename,
    bpred: Bpred,
    mem: MemHierarchy,

    window: VecDeque<Slot>,
    fetch_queue: VecDeque<Fetched>,
    pending: Option<MicroOp>,

    now: u64,
    seq_next: u64,
    committed: u64,
    last_commit_cycle: u64,

    fetch_resume_at: u64,
    blocking_branch: Option<u64>,
    /// A fetched return whose RAS-predicted target must match the next
    /// fetched op's PC: `(sequence number, predicted target)`.
    return_check: Option<(u64, u64)>,
    cur_fetch_line: u64,
    line_shift: u32,

    int_free: Vec<u64>,
    fp_free: Vec<u64>,
    agen_free: Vec<u64>,

    mem_in_window: u32,
    store_addrs: HashMap<u64, u32>,

    counters: ActivityCounters,
    interval_start_cycle: u64,
    interval_start_committed: u64,
    commit_target: u64,
}

impl<S: InstructionSource> Processor<S> {
    /// Creates a processor over `source`.
    ///
    /// # Errors
    ///
    /// Returns [`sim_common::SimError::InvalidConfig`] when the
    /// configuration fails [`CoreConfig::validate`].
    pub fn new(config: CoreConfig, source: S) -> Result<Processor<S>, sim_common::SimError> {
        config.validate()?;
        let latencies = MemLatencies {
            l1_hit: config.l1_hit_cycles,
            l2_hit: config.l2_hit_cycles(),
            memory: config.mem_cycles(),
        };
        Ok(Processor {
            rename: Rename::new(config.int_regs, config.fp_regs),
            bpred: Bpred::new(config.bpred),
            mem: {
                let mut mem =
                    MemHierarchy::new(config.l1i, config.l1d, config.l2, latencies, config.mshrs)?;
                mem.set_prefetch_next_line(config.prefetch_next_line);
                mem
            },
            window: VecDeque::with_capacity(config.window_size as usize),
            fetch_queue: VecDeque::with_capacity(
                (config.fetch_width * (config.frontend_latency + 2)) as usize,
            ),
            pending: None,
            now: 0,
            seq_next: 0,
            committed: 0,
            last_commit_cycle: 0,
            fetch_resume_at: 0,
            blocking_branch: None,
            return_check: None,
            cur_fetch_line: u64::MAX,
            line_shift: config.l1i.line_bytes.trailing_zeros(),
            int_free: vec![0; config.int_alus as usize],
            fp_free: vec![0; config.fpus as usize],
            agen_free: vec![0; config.addr_gens as usize],
            mem_in_window: 0,
            store_addrs: HashMap::new(),
            counters: ActivityCounters::default(),
            interval_start_cycle: 0,
            interval_start_committed: 0,
            commit_target: u64::MAX,
            config,
            source,
        })
    }

    /// The processor configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.config
    }

    /// The instruction source.
    pub fn source(&self) -> &S {
        &self.source
    }

    /// Total instructions committed since construction.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Changes the clock frequency and supply voltage at runtime (a DVS
    /// transition). Microarchitectural state (caches, predictor, window)
    /// is preserved; off-chip latencies are re-derived in cycles for the
    /// new clock.
    ///
    /// # Errors
    ///
    /// Returns [`sim_common::SimError::InvalidConfig`] when the new
    /// frequency or voltage is not positive.
    pub fn set_dvs(
        &mut self,
        frequency: sim_common::Hertz,
        vdd: sim_common::Volts,
    ) -> Result<(), sim_common::SimError> {
        let mut config = self.config.clone();
        config.frequency = frequency;
        config.vdd = vdd;
        config.validate()?;
        self.mem.set_latencies(MemLatencies {
            l1_hit: config.l1_hit_cycles,
            l2_hit: config.l2_hit_cycles(),
            memory: config.mem_cycles(),
        });
        self.config = config;
        Ok(())
    }

    /// Pre-warms the data caches over `[base, base + bytes)` and the
    /// instruction caches over `[code_base, code_base + code_bytes)`.
    ///
    /// Short simulations cannot amortize the compulsory misses of a
    /// multi-megabyte footprint the way the paper's 500-million-instruction
    /// runs do; prefilling starts measurement from the warmed steady state.
    /// Statistics perturbed by prefilling are cleared.
    pub fn prewarm(&mut self, base: u64, bytes: u64, code_base: u64, code_bytes: u64) {
        // Walk from the top of the range down so the lowest addresses (the
        // hot/mid regions at the bottom of the data segment) are
        // most-recently-used and survive in the capacity-limited levels.
        let line = self.config.l1d.line_bytes as u64;
        let mut addr = base.saturating_add(bytes.saturating_sub(1)) & !(line - 1);
        while addr >= base {
            self.mem.prefill_data(addr);
            match addr.checked_sub(line) {
                Some(a) => addr = a,
                None => break,
            }
        }
        let mut addr = code_base;
        while addr < code_base.saturating_add(code_bytes) {
            self.mem.prefill_inst(addr);
            addr += self.config.l1i.line_bytes as u64;
        }
        let _ = self.mem.l1i.take_stats();
        let _ = self.mem.l1d.take_stats();
        let _ = self.mem.l2.take_stats();
    }

    /// Runs until `instructions` more instructions have committed and
    /// returns the statistics for exactly that interval.
    ///
    /// # Panics
    ///
    /// Panics if the pipeline livelocks (no commit for an implausibly long
    /// time) — this indicates a simulator bug, not a user error.
    pub fn run_instructions(&mut self, instructions: u64) -> IntervalStats {
        let target = self.committed + instructions;
        // Cap commit at the interval boundary so intervals partition the
        // instruction stream exactly (the paper samples at fixed
        // granularity, §3.6).
        self.commit_target = target;
        while self.committed < target {
            self.step();
        }
        self.commit_target = u64::MAX;
        self.take_interval()
    }

    /// Runs `total` instructions split into intervals of `interval`
    /// instructions (the paper samples temperature and reliability at fixed
    /// intervals, §3.6), returning per-interval statistics.
    pub fn run(&mut self, total: u64, interval: u64) -> RunStats {
        assert!(interval > 0, "interval must be non-zero");
        let mut intervals = Vec::with_capacity((total / interval + 1) as usize);
        let mut remaining = total;
        while remaining > 0 {
            let n = remaining.min(interval);
            intervals.push(self.run_instructions(n));
            remaining -= n;
        }
        RunStats::new(intervals)
    }

    /// Advances the pipeline one cycle.
    pub fn step(&mut self) {
        self.complete();
        self.commit();
        self.issue();
        self.dispatch();
        self.fetch();
        self.now += 1;
        assert!(
            self.now - self.last_commit_cycle < LIVELOCK_LIMIT,
            "pipeline livelock at cycle {}: window {:?} head, {} in flight",
            self.now,
            self.window.front().map(|s| (s.op.class, s.state)),
            self.window.len(),
        );
    }

    fn complete(&mut self) {
        let now = self.now;
        let mut resolved_blocker = false;
        for slot in self.window.iter_mut() {
            if slot.state == SlotState::Issued && slot.ready_cycle <= now {
                slot.state = SlotState::Done;
                if let Some(dest) = slot.dest {
                    self.rename.set_ready(dest);
                    self.counters.window_wakeups += 1;
                }
                if slot.op.class == OpClass::Branch {
                    self.bpred.update(slot.op.pc, slot.op.taken);
                }
                if self.blocking_branch == Some(slot.seq) {
                    resolved_blocker = true;
                }
            }
        }
        if resolved_blocker {
            self.blocking_branch = None;
            self.fetch_resume_at = self
                .fetch_resume_at
                .max(now + self.config.mispredict_redirect as u64);
        }
    }

    fn commit(&mut self) {
        match self.window.front() {
            None => self.counters.cycles_window_empty += 1,
            Some(head) if head.state != SlotState::Done => {
                if head.op.class.is_mem() && head.state == SlotState::Issued {
                    self.counters.cycles_head_mem += 1;
                } else {
                    self.counters.cycles_head_exec += 1;
                }
            }
            Some(_) => {}
        }
        let mut retired = 0;
        while retired < self.config.retire_width && self.committed < self.commit_target {
            match self.window.front() {
                Some(slot) if slot.state == SlotState::Done => {}
                _ => break,
            }
            let slot = self.window.pop_front().expect("checked non-empty");
            if let Some(old) = slot.old_dest {
                self.rename.release(old);
            }
            if slot.op.class.is_mem() {
                self.mem_in_window -= 1;
                if slot.op.class == OpClass::Store {
                    if let Some(addr) = slot.op.addr {
                        let key = addr >> 3;
                        if let Some(n) = self.store_addrs.get_mut(&key) {
                            *n -= 1;
                            if *n == 0 {
                                self.store_addrs.remove(&key);
                            }
                        }
                    }
                }
            }
            self.counters.class_commits[slot.op.class.index()] += 1;
            self.committed += 1;
            retired += 1;
        }
        if retired > 0 {
            self.last_commit_cycle = self.now;
        }
    }

    fn take_unit(units: &mut [u64], now: u64, busy_until: u64) -> bool {
        if let Some(u) = units.iter_mut().find(|u| **u <= now) {
            *u = busy_until;
            true
        } else {
            false
        }
    }

    fn issue(&mut self) {
        let now = self.now;
        let mut dcache_used = 0u32;
        let l1_hit = self.config.l1_hit_cycles as u64;

        for i in 0..self.window.len() {
            let (class, state) = {
                let s = &self.window[i];
                (s.op.class, s.state)
            };
            if state != SlotState::Waiting {
                continue;
            }

            let srcs_ready = {
                let s = &self.window[i];
                s.srcs.iter().flatten().all(|&p| self.rename.is_ready(p))
            };
            if !srcs_ready {
                continue;
            }

            match class {
                OpClass::IntAlu
                | OpClass::IntMul
                | OpClass::IntDiv
                | OpClass::Branch
                | OpClass::Call
                | OpClass::Return => {
                    let latency = class.latency() as u64;
                    let occupancy = if class.is_unpipelined() { latency } else { 1 };
                    if Self::take_unit(&mut self.int_free, now, now + occupancy) {
                        self.start_execution(i, now + latency);
                        self.counters.int_busy += occupancy;
                    }
                }
                OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv => {
                    let latency = class.latency() as u64;
                    let occupancy = if class.is_unpipelined() { latency } else { 1 };
                    if Self::take_unit(&mut self.fp_free, now, now + occupancy) {
                        self.start_execution(i, now + latency);
                        self.counters.fp_busy += occupancy;
                    }
                }
                OpClass::Load => {
                    // Store addresses are published at dispatch (perfect
                    // disambiguation — the trace knows every address), so a
                    // load is never conservatively blocked; it either
                    // forwards from the memory queue or accesses the cache.
                    if dcache_used >= self.config.l1d_ports
                        || !self.agen_free.iter().any(|&u| u <= now)
                    {
                        continue;
                    }
                    let addr = self.window[i].op.addr.expect("loads carry addresses");
                    self.counters.lsq_searches += 1;
                    if self.store_addr_is_older(i, addr) {
                        // Store-to-load forwarding: value comes from the
                        // memory queue, no cache access.
                        Self::take_unit(&mut self.agen_free, now, now + 1);
                        self.counters.agen_busy += 1;
                        self.counters.forwards += 1;
                        self.start_execution(i, now + 1 + l1_hit);
                    } else {
                        match self.mem.access_data(now + 1, addr, false) {
                            DataAccess::Ready { ready } => {
                                Self::take_unit(&mut self.agen_free, now, now + 1);
                                self.counters.agen_busy += 1;
                                dcache_used += 1;
                                self.start_execution(i, ready);
                            }
                            DataAccess::Retry => {} // all MSHRs busy; retry next cycle
                        }
                    }
                }
                OpClass::Store => {
                    if dcache_used >= self.config.l1d_ports
                        || !self.agen_free.iter().any(|&u| u <= now)
                    {
                        continue;
                    }
                    let addr = self.window[i].op.addr.expect("stores carry addresses");
                    match self.mem.access_data(now + 1, addr, true) {
                        DataAccess::Ready { .. } => {
                            Self::take_unit(&mut self.agen_free, now, now + 1);
                            self.counters.agen_busy += 1;
                            dcache_used += 1;
                            self.counters.lsq_searches += 1;
                            // The store retires from the pipeline's point of
                            // view once its address and data are delivered to
                            // the memory queue.
                            self.start_execution(i, now + 1);
                        }
                        DataAccess::Retry => {}
                    }
                }
            }
        }
    }

    /// True when a store older than the load in window slot `load_idx`
    /// targets the same 8-byte word (store-to-load forwarding hit).
    fn store_addr_is_older(&self, load_idx: usize, addr: u64) -> bool {
        if !self.store_addrs.contains_key(&(addr >> 3)) {
            return false;
        }
        let load_seq = self.window[load_idx].seq;
        self.window.iter().any(|s| {
            s.seq < load_seq
                && s.op.class == OpClass::Store
                && s.op.addr.is_some_and(|a| a >> 3 == addr >> 3)
        })
    }

    fn start_execution(&mut self, slot_idx: usize, ready_cycle: u64) {
        let reads: Vec<_> = {
            let slot = &mut self.window[slot_idx];
            slot.state = SlotState::Issued;
            slot.ready_cycle = ready_cycle;
            slot.srcs.iter().flatten().map(|p| p.class).collect()
        };
        for class in reads {
            self.rename.count_read(class);
        }
        self.counters.window_issues += 1;
    }

    fn dispatch(&mut self) {
        let mut budget = self.config.fetch_width;
        while budget > 0 {
            let front = match self.fetch_queue.front() {
                Some(f) if f.dispatch_at <= self.now => f,
                _ => break,
            };
            if self.window.len() >= self.config.window_size as usize {
                break;
            }
            if front.op.class.is_mem() && self.mem_in_window >= self.config.mem_queue {
                break;
            }
            if let Some(dest) = front.op.dest {
                if self.rename.free_count(dest.class()) == 0 {
                    break;
                }
            }
            let f = self.fetch_queue.pop_front().expect("checked non-empty");
            let srcs = {
                let mut srcs = [None, None];
                for (i, src) in f.op.srcs.iter().enumerate() {
                    srcs[i] = src.map(|a| self.rename.rename_src(a));
                }
                srcs
            };
            let (dest, old_dest) = match f.op.dest {
                Some(arch) => {
                    let (new, old) = self
                        .rename
                        .alloc_dest(arch)
                        .expect("free count checked above");
                    (Some(new), Some(old))
                }
                None => (None, None),
            };
            if f.op.class.is_mem() {
                self.mem_in_window += 1;
                self.counters.lsq_inserts += 1;
                if f.op.class == OpClass::Store {
                    // Publish the store address for disambiguation as soon
                    // as the store enters the memory queue.
                    if let Some(addr) = f.op.addr {
                        *self.store_addrs.entry(addr >> 3).or_insert(0) += 1;
                    }
                }
            }
            self.window.push_back(Slot {
                seq: f.seq,
                op: f.op,
                dest,
                old_dest,
                srcs,
                state: SlotState::Waiting,
                ready_cycle: 0,
            });
            self.counters.window_writes += 1;
            budget -= 1;
        }
    }

    fn fetch(&mut self) {
        if self.now < self.fetch_resume_at || self.blocking_branch.is_some() {
            self.counters.cycles_fetch_stalled += 1;
            return;
        }
        // The queue must cover the fetch-to-dispatch pipeline occupancy
        // (width x depth) plus one cycle of slack, or Little's law caps
        // fetch below its width.
        let cap = (self.config.fetch_width * (self.config.frontend_latency + 2)) as usize;
        let mut budget = self.config.fetch_width;
        while budget > 0 && self.fetch_queue.len() < cap {
            let op = match self.pending.take() {
                Some(op) => op,
                None => self.source.next_op(),
            };
            // Verify the previous return's RAS prediction against the PC
            // that actually follows it.
            if let Some((ret_seq, predicted)) = self.return_check.take() {
                if op.pc != predicted {
                    self.bpred.count_ras_mispredict();
                    self.blocking_branch = Some(ret_seq);
                    self.pending = Some(op);
                    self.counters.cycles_fetch_stalled += 1;
                    return;
                }
            }
            let line = op.pc >> self.line_shift;
            if line != self.cur_fetch_line {
                let ready = self.mem.access_inst(self.now, op.pc);
                self.cur_fetch_line = line;
                if ready > self.now {
                    // I-cache miss: hold the op and stall fetch until fill.
                    self.fetch_resume_at = ready;
                    self.pending = Some(op);
                    return;
                }
            }
            let seq = self.seq_next;
            self.seq_next += 1;
            let mut stop = false;
            match op.class {
                OpClass::Branch => {
                    let predicted = self.bpred.predict(op.pc);
                    if predicted != op.taken {
                        self.blocking_branch = Some(seq);
                        stop = true;
                    } else if op.taken {
                        // One taken branch per fetch cycle.
                        stop = true;
                    }
                }
                OpClass::Call => {
                    // Calls are unconditional with a statically known
                    // target: push the fall-through address for the
                    // matching return and end the fetch block.
                    self.bpred.ras_push(op.pc + 4);
                    stop = true;
                }
                OpClass::Return => {
                    match self.bpred.ras_pop() {
                        Some(predicted) if op.taken => {
                            // Check the prediction against the next
                            // fetched PC.
                            self.return_check = Some((seq, predicted));
                        }
                        _ => {
                            // Underflow, or a fall-through return (the
                            // workload's call stack was empty): no usable
                            // prediction — stall until the return resolves.
                            self.bpred.count_ras_mispredict();
                            self.blocking_branch = Some(seq);
                        }
                    }
                    stop = true;
                }
                _ => {}
            }
            self.fetch_queue.push_back(Fetched {
                seq,
                op,
                dispatch_at: self.now + self.config.frontend_latency as u64,
            });
            self.counters.fetched += 1;
            budget -= 1;
            if stop {
                break;
            }
        }
    }

    /// Captures the complete warm state for a slice checkpoint.
    ///
    /// # Panics
    ///
    /// Panics unless the processor sits exactly at an interval boundary
    /// (immediately after [`Processor::run_instructions`] /
    /// [`Processor::take_interval`], before any further stepping), which
    /// guarantees every statistic is zero and nothing is lost at the cut.
    #[must_use]
    pub fn state(&self) -> PipelineState {
        assert!(
            self.now == self.interval_start_cycle
                && self.committed == self.interval_start_committed,
            "pipeline state must be captured at an interval boundary"
        );
        PipelineState {
            rename: self.rename.state(),
            bpred: self.bpred.state(),
            mem: self.mem.state(),
            window: self
                .window
                .iter()
                .map(|s| WindowSlotState {
                    seq: s.seq,
                    op: s.op,
                    dest: s.dest,
                    old_dest: s.old_dest,
                    srcs: s.srcs,
                    phase: match s.state {
                        SlotState::Waiting => ExecPhase::Waiting,
                        SlotState::Issued => ExecPhase::Issued,
                        SlotState::Done => ExecPhase::Done,
                    },
                    ready_cycle: s.ready_cycle,
                })
                .collect(),
            fetch_queue: self
                .fetch_queue
                .iter()
                .map(|f| FetchedState {
                    seq: f.seq,
                    op: f.op,
                    dispatch_at: f.dispatch_at,
                })
                .collect(),
            pending: self.pending,
            now: self.now,
            seq_next: self.seq_next,
            committed: self.committed,
            last_commit_cycle: self.last_commit_cycle,
            fetch_resume_at: self.fetch_resume_at,
            blocking_branch: self.blocking_branch,
            return_check: self.return_check,
            cur_fetch_line: self.cur_fetch_line,
            int_free: self.int_free.clone(),
            fp_free: self.fp_free.clone(),
            agen_free: self.agen_free.clone(),
        }
    }

    /// Restores a captured [`PipelineState`], resuming the simulation bit
    /// for bit from the cut point. The instruction source must already have
    /// been restored to the matching point (it is handed to
    /// [`Processor::new`], which this call follows).
    ///
    /// Derived occupancy tracking (memory-queue count, published store
    /// addresses) is recomputed from the restored window rather than
    /// serialized. Statistics restart from zero, exactly as they stood at
    /// the cut.
    ///
    /// # Panics
    ///
    /// Panics when the state does not fit this processor's configuration
    /// (structure sizes, functional-unit counts) — checkpoints are only
    /// valid for the exact timing configuration that produced them.
    pub fn restore_state(&mut self, state: &PipelineState) {
        assert!(
            state.window.len() <= self.config.window_size as usize,
            "window larger than configured"
        );
        assert_eq!(
            state.int_free.len(),
            self.int_free.len(),
            "integer unit count mismatch"
        );
        assert_eq!(
            state.fp_free.len(),
            self.fp_free.len(),
            "FP unit count mismatch"
        );
        assert_eq!(
            state.agen_free.len(),
            self.agen_free.len(),
            "address-generation unit count mismatch"
        );
        self.rename.restore_state(&state.rename);
        self.bpred.restore_state(&state.bpred);
        self.mem.restore_state(&state.mem);
        self.window.clear();
        self.window.extend(state.window.iter().map(|s| Slot {
            seq: s.seq,
            op: s.op,
            dest: s.dest,
            old_dest: s.old_dest,
            srcs: s.srcs,
            state: match s.phase {
                ExecPhase::Waiting => SlotState::Waiting,
                ExecPhase::Issued => SlotState::Issued,
                ExecPhase::Done => SlotState::Done,
            },
            ready_cycle: s.ready_cycle,
        }));
        self.fetch_queue.clear();
        self.fetch_queue
            .extend(state.fetch_queue.iter().map(|f| Fetched {
                seq: f.seq,
                op: f.op,
                dispatch_at: f.dispatch_at,
            }));
        self.pending = state.pending;
        self.now = state.now;
        self.seq_next = state.seq_next;
        self.committed = state.committed;
        self.last_commit_cycle = state.last_commit_cycle;
        self.fetch_resume_at = state.fetch_resume_at;
        self.blocking_branch = state.blocking_branch;
        self.return_check = state.return_check;
        self.cur_fetch_line = state.cur_fetch_line;
        self.int_free.copy_from_slice(&state.int_free);
        self.fp_free.copy_from_slice(&state.fp_free);
        self.agen_free.copy_from_slice(&state.agen_free);
        // Memory-queue occupancy and the published store addresses are a
        // function of the window contents.
        self.mem_in_window = self.window.iter().filter(|s| s.op.class.is_mem()).count() as u32;
        self.store_addrs.clear();
        for slot in &self.window {
            if slot.op.class == OpClass::Store {
                if let Some(addr) = slot.op.addr {
                    *self.store_addrs.entry(addr >> 3).or_insert(0) += 1;
                }
            }
        }
        // The cut sits at an interval boundary: statistics restart at zero.
        self.counters = ActivityCounters::default();
        let _ = self.bpred.take_stats();
        let _ = self.mem.l1i.take_stats();
        let _ = self.mem.l1d.take_stats();
        let _ = self.mem.l2.take_stats();
        let _ = self.rename.take_stats();
        self.interval_start_cycle = state.now;
        self.interval_start_committed = state.committed;
        self.commit_target = u64::MAX;
    }

    /// Collects and resets the statistics accumulated since the previous
    /// interval boundary.
    pub fn take_interval(&mut self) -> IntervalStats {
        let cycles = self.now - self.interval_start_cycle;
        let instructions = self.committed - self.interval_start_committed;
        self.interval_start_cycle = self.now;
        self.interval_start_committed = self.committed;

        let counters = std::mem::take(&mut self.counters);
        let bpred = self.bpred.take_stats();
        let l1i = self.mem.l1i.take_stats();
        let l1d = self.mem.l1d.take_stats();
        let l2 = self.mem.l2.take_stats();
        let (int_rf, fp_rf) = self.rename.take_stats();

        let stats = IntervalStats::from_counters(
            &self.config,
            cycles,
            instructions,
            counters,
            bpred,
            l1i,
            l1d,
            l2,
            int_rf,
            fp_rf,
        );
        if sim_obs::enabled() {
            // Per-epoch IPC distribution plus the commit-stall breakdown
            // (cycles the window head could not retire, by cause).
            sim_obs::counter!("cpu.intervals", 1);
            sim_obs::counter!("cpu.cycles", stats.cycles);
            sim_obs::counter!("cpu.instructions", stats.instructions);
            sim_obs::hist!("cpu.interval.ipc", stats.ipc());
            sim_obs::counter!("cpu.stall.window_empty", stats.counters.cycles_window_empty);
            sim_obs::counter!("cpu.stall.head_mem", stats.counters.cycles_head_mem);
            sim_obs::counter!("cpu.stall.head_exec", stats.counters.cycles_head_exec);
            sim_obs::counter!("cpu.stall.fetch", stats.counters.cycles_fetch_stalled);
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_common::Structure;
    use workload::{App, SyntheticStream};

    fn processor(app: App, config: CoreConfig) -> Processor<SyntheticStream> {
        Processor::new(config, SyntheticStream::new(app.profile(), 12345)).unwrap()
    }

    #[test]
    fn commits_requested_instructions() {
        let mut cpu = processor(App::Gzip, CoreConfig::base());
        let stats = cpu.run_instructions(20_000);
        assert_eq!(stats.instructions, 20_000);
        assert!(stats.cycles > 0);
        assert_eq!(cpu.committed(), 20_000);
    }

    #[test]
    fn ipc_is_within_physical_bounds() {
        for app in [App::MpgDec, App::Twolf, App::Art] {
            let mut cpu = processor(app, CoreConfig::base());
            let stats = cpu.run_instructions(50_000);
            let ipc = stats.ipc();
            assert!(ipc > 0.05, "{app:?}: ipc {ipc} too low");
            assert!(ipc <= 8.0, "{app:?}: ipc {ipc} exceeds fetch width");
        }
    }

    #[test]
    fn high_ilp_app_beats_memory_bound_app() {
        let mut fast = processor(App::MpgDec, CoreConfig::base());
        let mut slow = processor(App::Art, CoreConfig::base());
        // Warm up caches/predictor, then measure.
        fast.run_instructions(50_000);
        slow.run_instructions(50_000);
        let f = fast.run_instructions(100_000).ipc();
        let s = slow.run_instructions(100_000).ipc();
        assert!(
            f > 1.5 * s,
            "MPGdec ({f:.2}) should far outrun art ({s:.2})"
        );
    }

    #[test]
    fn smaller_window_reduces_ipc() {
        let base = CoreConfig::base();
        let small = base.with_adaptation(16, 2, 1).unwrap();
        let mut big = processor(App::MpgDec, base);
        let mut tiny = processor(App::MpgDec, small);
        big.run_instructions(30_000);
        tiny.run_instructions(30_000);
        let b = big.run_instructions(60_000).ipc();
        let t = tiny.run_instructions(60_000).ipc();
        assert!(
            b > t,
            "128-entry window ({b:.2}) must beat 16-entry ({t:.2})"
        );
    }

    #[test]
    fn activities_are_normalized() {
        let mut cpu = processor(App::Equake, CoreConfig::base());
        cpu.prewarm(0x1000_0000, 2 * 1024 * 1024, 0, 24 * 1024);
        let stats = cpu.run_instructions(30_000);
        for (s, &a) in stats.activity.iter() {
            assert!((0.0..=1.0).contains(&a), "{s}: activity {a} out of range");
        }
        // An FP application must exercise the FPU.
        assert!(stats.activity[Structure::Fpu] > 0.01);
        assert!(stats.activity[Structure::IntAlu] > 0.05);
    }

    #[test]
    fn integer_app_leaves_fpu_nearly_idle() {
        let mut cpu = processor(App::Bzip2, CoreConfig::base());
        let stats = cpu.run_instructions(30_000);
        assert!(
            stats.activity[Structure::Fpu] < 0.02,
            "bzip2 fpu activity {}",
            stats.activity[Structure::Fpu]
        );
    }

    #[test]
    fn interval_stats_partition_the_run() {
        let mut cpu = processor(App::Ammp, CoreConfig::base());
        let run = cpu.run(40_000, 10_000);
        assert_eq!(run.intervals().len(), 4);
        let total: u64 = run.intervals().iter().map(|i| i.instructions).sum();
        assert_eq!(total, 40_000);
        assert_eq!(cpu.committed(), 40_000);
    }

    #[test]
    fn branch_predictor_learns_the_stream() {
        let mut cpu = processor(App::MpgDec, CoreConfig::base());
        cpu.run_instructions(50_000); // training
        let stats = cpu.run_instructions(100_000);
        let rate = stats.bpred.mispredict_rate();
        assert!(
            rate < 0.12,
            "MPGdec (noise 0.03) mispredict rate {rate:.3} too high"
        );
    }

    #[test]
    fn memory_bound_app_misses_in_l2() {
        let mut cpu = processor(App::Art, CoreConfig::base());
        cpu.run_instructions(50_000);
        let stats = cpu.run_instructions(100_000);
        assert!(
            stats.l2.miss_rate() > 0.2,
            "art L2 miss rate {:.3} suspiciously low",
            stats.l2.miss_rate()
        );
        assert!(stats.l1d.miss_rate() > 0.02);
    }

    #[test]
    fn cacheable_app_hits_in_l1() {
        let mut cpu = processor(App::Mp3Dec, CoreConfig::base());
        cpu.run_instructions(50_000);
        let stats = cpu.run_instructions(100_000);
        assert!(
            stats.l1d.miss_rate() < 0.05,
            "MP3dec L1D miss rate {:.3} too high for a 160 KiB working set",
            stats.l1d.miss_rate()
        );
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = processor(App::Twolf, CoreConfig::base());
        let mut b = processor(App::Twolf, CoreConfig::base());
        let sa = a.run_instructions(30_000);
        let sb = b.run_instructions(30_000);
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.bpred, sb.bpred);
        assert_eq!(sa.l1d, sb.l1d);
    }

    #[test]
    fn state_round_trip_resumes_bit_for_bit() {
        let mut cpu = processor(App::Twolf, CoreConfig::base());
        cpu.prewarm(0x1000_0000, 512 * 1024, 0, 24 * 1024);
        cpu.run_instructions(20_000);
        let cut = cpu.state();
        let stream = SyntheticStream::restore(App::Twolf.profile(), 12345, &cpu.source().state());
        let mut resumed = Processor::new(CoreConfig::base(), stream).unwrap();
        resumed.restore_state(&cut);
        assert_eq!(resumed.state(), cut, "capture is idempotent");
        for _ in 0..3 {
            let a = cpu.run_instructions(10_000);
            let b = resumed.run_instructions(10_000);
            assert_eq!(a, b, "restored pipeline must replay identically");
        }
        assert_eq!(resumed.now(), cpu.now());
        assert_eq!(resumed.committed(), cpu.committed());
    }

    #[test]
    #[should_panic(expected = "interval boundary")]
    fn state_capture_mid_interval_is_rejected() {
        let mut cpu = processor(App::Gzip, CoreConfig::base());
        cpu.run_instructions(1_000);
        cpu.step();
        let _ = cpu.state();
    }

    #[test]
    #[should_panic(expected = "unit count mismatch")]
    fn restore_rejects_mismatched_configuration() {
        let mut cpu = processor(App::Gzip, CoreConfig::base());
        cpu.run_instructions(1_000);
        let cut = cpu.state();
        // Same window size, fewer integer units.
        let small = CoreConfig::base().with_adaptation(128, 2, 1).unwrap();
        let mut other = processor(App::Gzip, small);
        other.restore_state(&cut);
    }

    #[test]
    fn frequency_scaling_stretches_memory_latency() {
        // At a higher clock, off-chip latencies cost more cycles, so a
        // memory-bound app gains less than the frequency ratio.
        let base = CoreConfig::base();
        let fast = base.with_dvs(sim_common::Hertz::from_ghz(5.0), sim_common::Volts(1.1));
        let mut at4 = processor(App::Art, base);
        let mut at5 = processor(App::Art, fast);
        at4.run_instructions(30_000);
        at5.run_instructions(30_000);
        let ipc4 = at4.run_instructions(60_000).ipc();
        let ipc5 = at5.run_instructions(60_000).ipc();
        assert!(
            ipc5 < ipc4,
            "art IPC must drop at 5 GHz ({ipc5:.3}) vs 4 GHz ({ipc4:.3})"
        );
    }
}
