//! Serializable slice checkpoints: the complete warm state of a
//! [`Processor`](crate::Processor) plus its synthetic instruction stream,
//! in a strict plain-text format.
//!
//! Follows the `workload::textfmt` conventions: std-only, `#` comments,
//! whitespace-separated tokens, unknown keys, duplicate keys, and wrong
//! token counts are line-numbered errors. Printing then parsing is
//! bit-exact (`parse(print(c)) == c`), so checkpoints can live on disk and
//! cross the wire unchanged.
//!
//! A checkpoint is cut at an interval boundary, where every statistic has
//! just been zeroed, so it carries *only* warm state: rename maps,
//! predictor training, cache contents, in-flight window entries, and the
//! absolute-cycle bookkeeping. All of it is integral — there is not a
//! single float in the format — which is what makes bit-exactness trivial
//! rather than delicate.
//!
//! Variable-length lists are count-prefixed (`key N v1 .. vN`); per-entry
//! repeated lines (`window`, `fetchq`, `mshr`, `cache.*.line`) carry their
//! declared counts in a companion singleton key, and the parser rejects any
//! mismatch. Cache sections list only valid lines — an invalid line is
//! always in its power-on state, so the omission is lossless.

use std::collections::HashMap;
use std::fmt::Write as _;

use sim_common::SimError;
use workload::{ArchReg, MicroOp, OpClass, RegClass, StreamState};

use crate::bpred::BpredState;
use crate::cache::{CacheLineState, CacheState, MemHierarchyState, MshrState};
use crate::pipeline::{ExecPhase, FetchedState, PipelineState, WindowSlotState};
use crate::regfile::{PhysReg, RenameClassState, RenameState};

/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A complete slice checkpoint: identity metadata plus the warm workload
/// and pipeline state at one interval boundary.
///
/// The `fingerprint` binds the checkpoint to the timing configuration and
/// evaluation parameters that produced it (the slice layer computes it from
/// the core's `TimingKey` and the evaluation lengths); a consumer must
/// refuse to resume from a checkpoint whose fingerprint does not match its
/// own.
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Workload (application/profile) name.
    pub workload: String,
    /// Stream seed the run was started with.
    pub seed: u64,
    /// Opaque binding to the producing timing configuration.
    pub fingerprint: u64,
    /// Synthetic-stream generator state at the cut.
    pub stream: StreamState,
    /// Warm pipeline state at the cut.
    pub pipeline: PipelineState,
}

impl Checkpoint {
    /// Instructions committed at the cut point.
    pub fn instructions(&self) -> u64 {
        self.pipeline.committed
    }
}

/// Every singleton key the format accepts. All are required — a checkpoint
/// is a complete machine state, not a patch.
const SINGLETON_KEYS: &[&str] = &[
    "checkpoint.version",
    "checkpoint.workload",
    "checkpoint.seed",
    "checkpoint.fingerprint",
    "stream.rng",
    "stream.next_regs",
    "stream.recent_int",
    "stream.recent_fp",
    "stream.pc",
    "stream.loop_start",
    "stream.emitted",
    "stream.call_stack",
    "stream.offsets",
    "stream.phase",
    "rename.int.map",
    "rename.int.free",
    "rename.int.ready",
    "rename.fp.map",
    "rename.fp.free",
    "rename.fp.ready",
    "bpred.counters",
    "bpred.ras",
    "mem.counts",
    "mem.mshrs",
    "cache.l1i.clock",
    "cache.l1i.lines",
    "cache.l1d.clock",
    "cache.l1d.lines",
    "cache.l2.clock",
    "cache.l2.lines",
    "pipe.now",
    "pipe.seq_next",
    "pipe.committed",
    "pipe.last_commit_cycle",
    "pipe.fetch_resume_at",
    "pipe.blocking_branch",
    "pipe.return_check",
    "pipe.cur_fetch_line",
    "pipe.int_free",
    "pipe.fp_free",
    "pipe.agen_free",
    "pipe.pending",
    "pipe.window",
    "pipe.fetchq",
];

/// Keys that repeat once per entry, paired with the singleton that declares
/// their count.
const REPEATED_KEYS: &[(&str, &str)] = &[
    ("mshr", "mem.mshrs"),
    ("cache.l1i.line", "cache.l1i.lines"),
    ("cache.l1d.line", "cache.l1d.lines"),
    ("cache.l2.line", "cache.l2.lines"),
    ("window", "pipe.window"),
    ("fetchq", "pipe.fetchq"),
];

fn line_err(lineno: usize, msg: impl std::fmt::Display) -> SimError {
    SimError::invalid_config(format!("line {}: {msg}", lineno + 1))
}

#[derive(Debug)]
struct Entry {
    lineno: usize,
    values: Vec<String>,
}

impl Entry {
    fn expect_len(&self, key: &str, n: usize) -> Result<(), SimError> {
        if self.values.len() != n {
            return Err(line_err(
                self.lineno,
                format!(
                    "`{key}` expects {n} value{}, got {}",
                    if n == 1 { "" } else { "s" },
                    self.values.len()
                ),
            ));
        }
        Ok(())
    }

    fn u64_at(&self, key: &str, idx: usize) -> Result<u64, SimError> {
        self.values[idx].parse().map_err(|_| {
            line_err(
                self.lineno,
                format!("`{key}` must be a non-negative integer"),
            )
        })
    }

    fn u16_at(&self, key: &str, idx: usize) -> Result<u16, SimError> {
        self.values[idx].parse().map_err(|_| {
            line_err(
                self.lineno,
                format!("`{key}` must be a 16-bit non-negative integer"),
            )
        })
    }
}

struct Scanned {
    singles: HashMap<String, Entry>,
    repeated: HashMap<&'static str, Vec<Entry>>,
}

fn scan(text: &str) -> Result<Scanned, SimError> {
    let mut singles: HashMap<String, Entry> = HashMap::new();
    let mut repeated: HashMap<&'static str, Vec<Entry>> = HashMap::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut tokens = line.split_whitespace().map(str::to_owned);
        let key = match tokens.next() {
            Some(k) => k,
            None => continue,
        };
        let entry = Entry {
            lineno,
            values: tokens.collect(),
        };
        if let Some((rep, _)) = REPEATED_KEYS.iter().find(|(k, _)| *k == key) {
            repeated.entry(rep).or_default().push(entry);
        } else if SINGLETON_KEYS.contains(&key.as_str()) {
            if singles.insert(key.clone(), entry).is_some() {
                return Err(line_err(lineno, format!("duplicate key `{key}`")));
            }
        } else {
            return Err(line_err(lineno, format!("unknown key `{key}`")));
        }
    }
    Ok(Scanned { singles, repeated })
}

fn req<'a>(scanned: &'a Scanned, key: &str) -> Result<&'a Entry, SimError> {
    scanned
        .singles
        .get(key)
        .ok_or_else(|| SimError::invalid_config(format!("missing key `{key}`")))
}

fn req_u64(scanned: &Scanned, key: &str) -> Result<u64, SimError> {
    let e = req(scanned, key)?;
    e.expect_len(key, 1)?;
    e.u64_at(key, 0)
}

/// Parses a count-prefixed `key N v1 .. vN` list.
fn req_list_u64(scanned: &Scanned, key: &str) -> Result<Vec<u64>, SimError> {
    let e = req(scanned, key)?;
    if e.values.is_empty() {
        return Err(line_err(e.lineno, format!("`{key}` expects a count")));
    }
    let n = e.u64_at(key, 0)? as usize;
    e.expect_len(key, n + 1)?;
    (1..=n).map(|i| e.u64_at(key, i)).collect()
}

fn req_list_u16(scanned: &Scanned, key: &str) -> Result<Vec<u16>, SimError> {
    let e = req(scanned, key)?;
    if e.values.is_empty() {
        return Err(line_err(e.lineno, format!("`{key}` expects a count")));
    }
    let n = e.u64_at(key, 0)? as usize;
    e.expect_len(key, n + 1)?;
    (1..=n).map(|i| e.u16_at(key, i)).collect()
}

/// Parses a `0`/`1` bit string token into ready bits.
fn req_bits(scanned: &Scanned, key: &str) -> Result<Vec<bool>, SimError> {
    let e = req(scanned, key)?;
    e.expect_len(key, 1)?;
    e.values[0]
        .chars()
        .map(|c| match c {
            '0' => Ok(false),
            '1' => Ok(true),
            _ => Err(line_err(
                e.lineno,
                format!("`{key}` must be a string of 0/1 digits"),
            )),
        })
        .collect()
}

fn bits_to_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

fn list_to_string<T: std::fmt::Display>(values: &[T]) -> String {
    let mut s = values.len().to_string();
    for v in values {
        let _ = write!(s, " {v}");
    }
    s
}

// --- token codecs for registers, ops, and optional fields ---------------

fn phys_to_token(p: Option<PhysReg>) -> String {
    match p {
        None => "-".to_owned(),
        Some(p) => match p.class {
            RegClass::Int => format!("i{}", p.index),
            RegClass::Fp => format!("f{}", p.index),
        },
    }
}

fn phys_from_token(lineno: usize, key: &str, tok: &str) -> Result<Option<PhysReg>, SimError> {
    if tok == "-" {
        return Ok(None);
    }
    let bad = || line_err(lineno, format!("`{key}`: bad physical register `{tok}`"));
    let class = match tok.as_bytes().first() {
        Some(b'i') => RegClass::Int,
        Some(b'f') => RegClass::Fp,
        _ => return Err(bad()),
    };
    let index: u16 = tok[1..].parse().map_err(|_| bad())?;
    Ok(Some(PhysReg { class, index }))
}

fn arch_to_token(r: Option<ArchReg>) -> String {
    match r {
        None => "-".to_owned(),
        Some(r) => r.to_string(), // "r5" / "f5"
    }
}

fn arch_from_token(lineno: usize, key: &str, tok: &str) -> Result<Option<ArchReg>, SimError> {
    if tok == "-" {
        return Ok(None);
    }
    let bad = || {
        line_err(
            lineno,
            format!("`{key}`: bad architectural register `{tok}`"),
        )
    };
    let class = match tok.as_bytes().first() {
        Some(b'r') => RegClass::Int,
        Some(b'f') => RegClass::Fp,
        _ => return Err(bad()),
    };
    let index: u16 = tok[1..].parse().map_err(|_| bad())?;
    if index >= workload::ARCH_REGS_PER_CLASS {
        return Err(bad());
    }
    Ok(Some(ArchReg::new(class, index)))
}

fn opt_u64_to_token(v: Option<u64>) -> String {
    match v {
        None => "-".to_owned(),
        Some(v) => v.to_string(),
    }
}

fn opt_u64_from_token(lineno: usize, key: &str, tok: &str) -> Result<Option<u64>, SimError> {
    if tok == "-" {
        return Ok(None);
    }
    tok.parse().map(Some).map_err(|_| {
        line_err(
            lineno,
            format!("`{key}` must be a non-negative integer or `-`"),
        )
    })
}

/// Number of tokens a serialized [`MicroOp`] occupies.
const OP_TOKENS: usize = 7;

fn op_to_tokens(op: &MicroOp, out: &mut String) {
    let _ = write!(
        out,
        "{} {} {} {} {} {} {}",
        op.pc,
        op.class,
        arch_to_token(op.dest),
        arch_to_token(op.srcs[0]),
        arch_to_token(op.srcs[1]),
        opt_u64_to_token(op.addr),
        u8::from(op.taken),
    );
}

fn op_from_tokens(lineno: usize, key: &str, toks: &[String]) -> Result<MicroOp, SimError> {
    debug_assert_eq!(toks.len(), OP_TOKENS);
    let pc: u64 = toks[0]
        .parse()
        .map_err(|_| line_err(lineno, format!("`{key}`: bad pc `{}`", toks[0])))?;
    let class = OpClass::from_name(&toks[1])
        .ok_or_else(|| line_err(lineno, format!("`{key}`: unknown op class `{}`", toks[1])))?;
    let taken = match toks[6].as_str() {
        "0" => false,
        "1" => true,
        other => {
            return Err(line_err(
                lineno,
                format!("`{key}`: taken flag must be 0 or 1, got `{other}`"),
            ))
        }
    };
    Ok(MicroOp {
        pc,
        class,
        dest: arch_from_token(lineno, key, &toks[2])?,
        srcs: [
            arch_from_token(lineno, key, &toks[3])?,
            arch_from_token(lineno, key, &toks[4])?,
        ],
        addr: opt_u64_from_token(lineno, key, &toks[5])?,
        taken,
    })
}

fn phase_to_token(phase: ExecPhase) -> &'static str {
    match phase {
        ExecPhase::Waiting => "w",
        ExecPhase::Issued => "i",
        ExecPhase::Done => "d",
    }
}

fn phase_from_token(lineno: usize, tok: &str) -> Result<ExecPhase, SimError> {
    match tok {
        "w" => Ok(ExecPhase::Waiting),
        "i" => Ok(ExecPhase::Issued),
        "d" => Ok(ExecPhase::Done),
        other => Err(line_err(
            lineno,
            format!("`window`: execution phase must be w/i/d, got `{other}`"),
        )),
    }
}

// --- section codecs -----------------------------------------------------

fn write_rename_class(out: &mut String, prefix: &str, class: &RenameClassState) {
    let _ = writeln!(out, "rename.{prefix}.map {}", list_to_string(&class.map));
    let _ = writeln!(out, "rename.{prefix}.free {}", list_to_string(&class.free));
    let _ = writeln!(
        out,
        "rename.{prefix}.ready {}",
        bits_to_string(&class.ready)
    );
}

fn read_rename_class(scanned: &Scanned, prefix: &str) -> Result<RenameClassState, SimError> {
    Ok(RenameClassState {
        map: req_list_u16(scanned, &format!("rename.{prefix}.map"))?,
        free: req_list_u16(scanned, &format!("rename.{prefix}.free"))?,
        ready: req_bits(scanned, &format!("rename.{prefix}.ready"))?,
    })
}

fn write_cache(out: &mut String, name: &str, cache: &CacheState) {
    let _ = writeln!(out, "cache.{name}.clock {}", cache.clock);
    let valid = cache.lines.iter().filter(|l| l.valid).count();
    let _ = writeln!(out, "cache.{name}.lines {} {valid}", cache.lines.len());
    for (idx, line) in cache.lines.iter().enumerate() {
        if line.valid {
            let _ = writeln!(
                out,
                "cache.{name}.line {idx} {} {} {}",
                line.tag,
                u8::from(line.dirty),
                line.lru
            );
        }
    }
}

fn read_cache(scanned: &Scanned, name: &str, entries: &[Entry]) -> Result<CacheState, SimError> {
    let clock = req_u64(scanned, &format!("cache.{name}.clock"))?;
    let counts_key = format!("cache.{name}.lines");
    let e = req(scanned, &counts_key)?;
    e.expect_len(&counts_key, 2)?;
    let total = e.u64_at(&counts_key, 0)? as usize;
    let valid = e.u64_at(&counts_key, 1)? as usize;
    if entries.len() != valid {
        return Err(SimError::invalid_config(format!(
            "`{counts_key}` declares {valid} valid lines, found {}",
            entries.len()
        )));
    }
    let mut lines = vec![
        CacheLineState {
            tag: 0,
            valid: false,
            dirty: false,
            lru: 0,
        };
        total
    ];
    let key = format!("cache.{name}.line");
    for entry in entries {
        entry.expect_len(&key, 4)?;
        let idx = entry.u64_at(&key, 0)? as usize;
        if idx >= total {
            return Err(line_err(
                entry.lineno,
                format!("`{key}`: index {idx} out of range (cache has {total} lines)"),
            ));
        }
        if lines[idx].valid {
            return Err(line_err(
                entry.lineno,
                format!("`{key}`: duplicate line index {idx}"),
            ));
        }
        let dirty = match entry.values[2].as_str() {
            "0" => false,
            "1" => true,
            other => {
                return Err(line_err(
                    entry.lineno,
                    format!("`{key}`: dirty flag must be 0 or 1, got `{other}`"),
                ))
            }
        };
        lines[idx] = CacheLineState {
            tag: entry.u64_at(&key, 1)?,
            valid: true,
            dirty,
            lru: entry.u64_at(&key, 3)?,
        };
    }
    Ok(CacheState { lines, clock })
}

// --- printing -----------------------------------------------------------

/// Serializes a checkpoint to the canonical text form.
///
/// # Panics
///
/// Panics when the workload name contains whitespace (names are single
/// tokens in every text format of this stack).
pub fn checkpoint_to_text(checkpoint: &Checkpoint) -> String {
    assert!(
        !checkpoint.workload.is_empty() && !checkpoint.workload.contains(char::is_whitespace),
        "workload name must be a single non-empty token"
    );
    let mut out = String::new();
    let s = &checkpoint.stream;
    let p = &checkpoint.pipeline;

    out.push_str("# pipeline slice checkpoint (print -> parse is bit-exact)\n");
    let _ = writeln!(out, "checkpoint.version {CHECKPOINT_VERSION}");
    let _ = writeln!(out, "checkpoint.workload {}", checkpoint.workload);
    let _ = writeln!(out, "checkpoint.seed {}", checkpoint.seed);
    let _ = writeln!(out, "checkpoint.fingerprint {}", checkpoint.fingerprint);

    out.push_str("\n# synthetic stream generator state\n");
    let _ = writeln!(
        out,
        "stream.rng {} {} {} {}",
        s.rng[0], s.rng[1], s.rng[2], s.rng[3]
    );
    let _ = writeln!(out, "stream.next_regs {} {}", s.next_int_reg, s.next_fp_reg);
    let _ = writeln!(out, "stream.recent_int {}", list_to_string(&s.recent_int));
    let _ = writeln!(out, "stream.recent_fp {}", list_to_string(&s.recent_fp));
    let _ = writeln!(out, "stream.pc {}", s.pc);
    let _ = writeln!(out, "stream.loop_start {}", s.loop_start);
    let _ = writeln!(out, "stream.emitted {}", s.emitted);
    let _ = writeln!(out, "stream.call_stack {}", list_to_string(&s.call_stack));
    let _ = writeln!(out, "stream.offsets {}", list_to_string(&s.stream_offsets));
    let _ = writeln!(out, "stream.phase {} {}", s.phase_idx, s.phase_remaining);

    out.push_str("\n# rename maps, free lists (stack order), ready bits\n");
    write_rename_class(&mut out, "int", &p.rename.int);
    write_rename_class(&mut out, "fp", &p.rename.fp);

    out.push_str("\n# branch predictor: 2-bit counters (one digit each), RAS oldest first\n");
    let digits: String = p
        .bpred
        .counters
        .iter()
        .map(|&c| char::from_digit(u32::from(c), 10).expect("counters are 0..=3"))
        .collect();
    let _ = writeln!(out, "bpred.counters {digits}");
    let _ = writeln!(out, "bpred.ras {}", list_to_string(&p.bpred.ras));

    out.push_str("\n# memory hierarchy: caches list valid lines as `index tag dirty lru`\n");
    let _ = writeln!(
        out,
        "mem.counts {} {}",
        p.mem.l2_inst_refs, p.mem.prefetches
    );
    let _ = writeln!(out, "mem.mshrs {}", p.mem.mshrs.len());
    for m in &p.mem.mshrs {
        let _ = writeln!(out, "mshr {} {}", m.line, m.ready);
    }
    write_cache(&mut out, "l1i", &p.mem.l1i);
    write_cache(&mut out, "l1d", &p.mem.l1d);
    write_cache(&mut out, "l2", &p.mem.l2);

    out.push_str("\n# pipeline bookkeeping (absolute cycles)\n");
    let _ = writeln!(out, "pipe.now {}", p.now);
    let _ = writeln!(out, "pipe.seq_next {}", p.seq_next);
    let _ = writeln!(out, "pipe.committed {}", p.committed);
    let _ = writeln!(out, "pipe.last_commit_cycle {}", p.last_commit_cycle);
    let _ = writeln!(out, "pipe.fetch_resume_at {}", p.fetch_resume_at);
    let _ = writeln!(
        out,
        "pipe.blocking_branch {}",
        opt_u64_to_token(p.blocking_branch)
    );
    let (rc_seq, rc_pc) = match p.return_check {
        Some((seq, pc)) => (Some(seq), Some(pc)),
        None => (None, None),
    };
    let _ = writeln!(
        out,
        "pipe.return_check {} {}",
        opt_u64_to_token(rc_seq),
        opt_u64_to_token(rc_pc)
    );
    let _ = writeln!(out, "pipe.cur_fetch_line {}", p.cur_fetch_line);
    let _ = writeln!(out, "pipe.int_free {}", list_to_string(&p.int_free));
    let _ = writeln!(out, "pipe.fp_free {}", list_to_string(&p.fp_free));
    let _ = writeln!(out, "pipe.agen_free {}", list_to_string(&p.agen_free));
    match &p.pending {
        None => out.push_str("pipe.pending -\n"),
        Some(op) => {
            out.push_str("pipe.pending ");
            op_to_tokens(op, &mut out);
            out.push('\n');
        }
    }

    out.push_str("\n# window: seq phase ready dest old_dest src0 src1 then the op\n");
    let _ = writeln!(out, "pipe.window {}", p.window.len());
    for slot in &p.window {
        let _ = write!(
            out,
            "window {} {} {} {} {} {} {} ",
            slot.seq,
            phase_to_token(slot.phase),
            slot.ready_cycle,
            phys_to_token(slot.dest),
            phys_to_token(slot.old_dest),
            phys_to_token(slot.srcs[0]),
            phys_to_token(slot.srcs[1]),
        );
        op_to_tokens(&slot.op, &mut out);
        out.push('\n');
    }
    let _ = writeln!(out, "pipe.fetchq {}", p.fetch_queue.len());
    for f in &p.fetch_queue {
        let _ = write!(out, "fetchq {} {} ", f.seq, f.dispatch_at);
        op_to_tokens(&f.op, &mut out);
        out.push('\n');
    }
    out
}

// --- parsing ------------------------------------------------------------

/// Parses the text form of a checkpoint.
///
/// # Errors
///
/// Returns [`SimError::InvalidConfig`] with a 1-based line number on
/// unknown keys, duplicate keys, wrong token counts, malformed values, or
/// count/entry mismatches, and on a missing key or unsupported version.
pub fn checkpoint_from_text(text: &str) -> Result<Checkpoint, SimError> {
    let scanned = scan(text)?;
    let version = req_u64(&scanned, "checkpoint.version")?;
    if version != CHECKPOINT_VERSION {
        return Err(SimError::invalid_config(format!(
            "unsupported checkpoint version {version} (expected {CHECKPOINT_VERSION})"
        )));
    }
    let workload = {
        let e = req(&scanned, "checkpoint.workload")?;
        e.expect_len("checkpoint.workload", 1)?;
        e.values[0].clone()
    };
    let seed = req_u64(&scanned, "checkpoint.seed")?;
    let fingerprint = req_u64(&scanned, "checkpoint.fingerprint")?;

    let stream = {
        let rng_entry = req(&scanned, "stream.rng")?;
        rng_entry.expect_len("stream.rng", 4)?;
        let mut rng = [0u64; 4];
        for (i, slot) in rng.iter_mut().enumerate() {
            *slot = rng_entry.u64_at("stream.rng", i)?;
        }
        let regs = req(&scanned, "stream.next_regs")?;
        regs.expect_len("stream.next_regs", 2)?;
        let phase = req(&scanned, "stream.phase")?;
        phase.expect_len("stream.phase", 2)?;
        StreamState {
            rng,
            recent_int: req_list_u16(&scanned, "stream.recent_int")?,
            recent_fp: req_list_u16(&scanned, "stream.recent_fp")?,
            next_int_reg: regs.u16_at("stream.next_regs", 0)?,
            next_fp_reg: regs.u16_at("stream.next_regs", 1)?,
            pc: req_u64(&scanned, "stream.pc")?,
            loop_start: req_u64(&scanned, "stream.loop_start")?,
            emitted: req_u64(&scanned, "stream.emitted")?,
            call_stack: req_list_u64(&scanned, "stream.call_stack")?,
            stream_offsets: req_list_u64(&scanned, "stream.offsets")?,
            phase_idx: phase.u64_at("stream.phase", 0)?,
            phase_remaining: phase.u64_at("stream.phase", 1)?,
        }
    };

    let rename = RenameState {
        int: read_rename_class(&scanned, "int")?,
        fp: read_rename_class(&scanned, "fp")?,
    };

    let bpred = {
        let e = req(&scanned, "bpred.counters")?;
        e.expect_len("bpred.counters", 1)?;
        let counters: Vec<u8> = e.values[0]
            .chars()
            .map(|c| match c {
                '0'..='3' => Ok(c as u8 - b'0'),
                _ => Err(line_err(
                    e.lineno,
                    "`bpred.counters` must be a string of digits 0-3",
                )),
            })
            .collect::<Result<_, _>>()?;
        BpredState {
            counters,
            ras: req_list_u64(&scanned, "bpred.ras")?,
        }
    };

    let empty = Vec::new();
    let mem = {
        let counts = req(&scanned, "mem.counts")?;
        counts.expect_len("mem.counts", 2)?;
        let mshr_count = req_u64(&scanned, "mem.mshrs")? as usize;
        let mshr_entries = scanned.repeated.get("mshr").unwrap_or(&empty);
        if mshr_entries.len() != mshr_count {
            return Err(SimError::invalid_config(format!(
                "`mem.mshrs` declares {mshr_count} entries, found {}",
                mshr_entries.len()
            )));
        }
        let mut mshrs = Vec::with_capacity(mshr_count);
        for e in mshr_entries {
            e.expect_len("mshr", 2)?;
            mshrs.push(MshrState {
                line: e.u64_at("mshr", 0)?,
                ready: e.u64_at("mshr", 1)?,
            });
        }
        MemHierarchyState {
            l1i: read_cache(
                &scanned,
                "l1i",
                scanned.repeated.get("cache.l1i.line").unwrap_or(&empty),
            )?,
            l1d: read_cache(
                &scanned,
                "l1d",
                scanned.repeated.get("cache.l1d.line").unwrap_or(&empty),
            )?,
            l2: read_cache(
                &scanned,
                "l2",
                scanned.repeated.get("cache.l2.line").unwrap_or(&empty),
            )?,
            mshrs,
            l2_inst_refs: counts.u64_at("mem.counts", 0)?,
            prefetches: counts.u64_at("mem.counts", 1)?,
        }
    };

    let pending = {
        let e = req(&scanned, "pipe.pending")?;
        if e.values.len() == 1 && e.values[0] == "-" {
            None
        } else {
            e.expect_len("pipe.pending", OP_TOKENS)?;
            Some(op_from_tokens(e.lineno, "pipe.pending", &e.values)?)
        }
    };

    let return_check = {
        let e = req(&scanned, "pipe.return_check")?;
        e.expect_len("pipe.return_check", 2)?;
        let seq = opt_u64_from_token(e.lineno, "pipe.return_check", &e.values[0])?;
        let pc = opt_u64_from_token(e.lineno, "pipe.return_check", &e.values[1])?;
        match (seq, pc) {
            (Some(seq), Some(pc)) => Some((seq, pc)),
            (None, None) => None,
            _ => {
                return Err(line_err(
                    e.lineno,
                    "`pipe.return_check` needs both fields or both `-`",
                ))
            }
        }
    };

    let window_count = req_u64(&scanned, "pipe.window")? as usize;
    let window_entries = scanned.repeated.get("window").unwrap_or(&empty);
    if window_entries.len() != window_count {
        return Err(SimError::invalid_config(format!(
            "`pipe.window` declares {window_count} entries, found {}",
            window_entries.len()
        )));
    }
    let mut window = Vec::with_capacity(window_count);
    for e in window_entries {
        e.expect_len("window", 7 + OP_TOKENS)?;
        window.push(WindowSlotState {
            seq: e.u64_at("window", 0)?,
            phase: phase_from_token(e.lineno, &e.values[1])?,
            ready_cycle: e.u64_at("window", 2)?,
            dest: phys_from_token(e.lineno, "window", &e.values[3])?,
            old_dest: phys_from_token(e.lineno, "window", &e.values[4])?,
            srcs: [
                phys_from_token(e.lineno, "window", &e.values[5])?,
                phys_from_token(e.lineno, "window", &e.values[6])?,
            ],
            op: op_from_tokens(e.lineno, "window", &e.values[7..])?,
        });
    }

    let fetchq_count = req_u64(&scanned, "pipe.fetchq")? as usize;
    let fetchq_entries = scanned.repeated.get("fetchq").unwrap_or(&empty);
    if fetchq_entries.len() != fetchq_count {
        return Err(SimError::invalid_config(format!(
            "`pipe.fetchq` declares {fetchq_count} entries, found {}",
            fetchq_entries.len()
        )));
    }
    let mut fetch_queue = Vec::with_capacity(fetchq_count);
    for e in fetchq_entries {
        e.expect_len("fetchq", 2 + OP_TOKENS)?;
        fetch_queue.push(FetchedState {
            seq: e.u64_at("fetchq", 0)?,
            dispatch_at: e.u64_at("fetchq", 1)?,
            op: op_from_tokens(e.lineno, "fetchq", &e.values[2..])?,
        });
    }

    let pipeline = PipelineState {
        rename,
        bpred,
        mem,
        window,
        fetch_queue,
        pending,
        now: req_u64(&scanned, "pipe.now")?,
        seq_next: req_u64(&scanned, "pipe.seq_next")?,
        committed: req_u64(&scanned, "pipe.committed")?,
        last_commit_cycle: req_u64(&scanned, "pipe.last_commit_cycle")?,
        fetch_resume_at: req_u64(&scanned, "pipe.fetch_resume_at")?,
        blocking_branch: {
            let e = req(&scanned, "pipe.blocking_branch")?;
            e.expect_len("pipe.blocking_branch", 1)?;
            opt_u64_from_token(e.lineno, "pipe.blocking_branch", &e.values[0])?
        },
        return_check,
        cur_fetch_line: req_u64(&scanned, "pipe.cur_fetch_line")?,
        int_free: req_list_u64(&scanned, "pipe.int_free")?,
        fp_free: req_list_u64(&scanned, "pipe.fp_free")?,
        agen_free: req_list_u64(&scanned, "pipe.agen_free")?,
    };

    Ok(Checkpoint {
        workload,
        seed,
        fingerprint,
        stream,
        pipeline,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;
    use crate::pipeline::Processor;
    use sim_common::Xoshiro256pp;
    use workload::{App, InstructionSource, SyntheticStream};

    fn captured_checkpoint(app: App, seed: u64, instructions: u64) -> Checkpoint {
        let mut cpu = Processor::new(
            CoreConfig::base(),
            SyntheticStream::new(app.profile(), seed),
        )
        .unwrap();
        cpu.prewarm(0x1000_0000, 256 * 1024, 0, 16 * 1024);
        cpu.run_instructions(instructions);
        Checkpoint {
            workload: cpu.source().name().to_owned(),
            seed,
            fingerprint: 0xC0FFEE,
            stream: cpu.source().state(),
            pipeline: cpu.state(),
        }
    }

    #[test]
    fn captured_state_round_trips_bit_exactly() {
        for app in [App::Gzip, App::Art, App::MpgDec] {
            let chk = captured_checkpoint(app, 7, 15_000);
            let text = checkpoint_to_text(&chk);
            let parsed = checkpoint_from_text(&text).unwrap();
            assert_eq!(parsed, chk, "{app:?}: parse(print(c)) != c");
            assert_eq!(
                checkpoint_to_text(&parsed),
                text,
                "{app:?}: printing is not a fixed point"
            );
        }
    }

    /// Randomized micro-op with edge-case-heavy field choices.
    fn random_op(rng: &mut Xoshiro256pp) -> MicroOp {
        let class = OpClass::ALL[rng.gen_usize(0..OpClass::ALL.len())];
        let reg = |rng: &mut Xoshiro256pp| {
            if rng.gen_bool(0.3) {
                None
            } else {
                Some(ArchReg::from_flat_index(rng.gen_usize(0..128)))
            }
        };
        MicroOp {
            pc: rng.next_u64() & 0xFFFF_FFFF,
            class,
            dest: reg(rng),
            srcs: [reg(rng), reg(rng)],
            addr: if class.is_mem() {
                Some(rng.next_u64())
            } else {
                None
            },
            taken: rng.gen_bool(0.5),
        }
    }

    fn random_cache(rng: &mut Xoshiro256pp, lines: usize) -> CacheState {
        let clock = rng.gen_u64(1..1_000_000);
        CacheState {
            lines: (0..lines)
                .map(|_| {
                    if rng.gen_bool(0.4) {
                        CacheLineState {
                            tag: rng.next_u64() >> 20,
                            valid: true,
                            dirty: rng.gen_bool(0.5),
                            lru: rng.gen_u64(0..clock + 1),
                        }
                    } else {
                        CacheLineState {
                            tag: 0,
                            valid: false,
                            dirty: false,
                            lru: 0,
                        }
                    }
                })
                .collect(),
            clock,
        }
    }

    fn random_checkpoint(seed: u64) -> Checkpoint {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let phys = |rng: &mut Xoshiro256pp| {
            if rng.gen_bool(0.25) {
                None
            } else {
                Some(PhysReg {
                    class: if rng.gen_bool(0.5) {
                        RegClass::Int
                    } else {
                        RegClass::Fp
                    },
                    index: rng.gen_u64(0..192) as u16,
                })
            }
        };
        let rename_class = |rng: &mut Xoshiro256pp| RenameClassState {
            map: (0..64).map(|_| rng.gen_u64(0..192) as u16).collect(),
            free: (0..rng.gen_usize(0..128))
                .map(|_| rng.gen_u64(0..192) as u16)
                .collect(),
            ready: (0..192).map(|_| rng.gen_bool(0.5)).collect(),
        };
        let window: Vec<WindowSlotState> = (0..rng.gen_usize(0..64))
            .map(|i| WindowSlotState {
                seq: i as u64,
                op: random_op(&mut rng),
                dest: phys(&mut rng),
                old_dest: phys(&mut rng),
                srcs: [phys(&mut rng), phys(&mut rng)],
                phase: [ExecPhase::Waiting, ExecPhase::Issued, ExecPhase::Done]
                    [rng.gen_usize(0..3)],
                ready_cycle: rng.next_u64(),
            })
            .collect();
        let fetch_queue: Vec<FetchedState> = (0..rng.gen_usize(0..32))
            .map(|i| FetchedState {
                seq: 1_000 + i as u64,
                op: random_op(&mut rng),
                dispatch_at: rng.next_u64(),
            })
            .collect();
        let now = rng.next_u64();
        Checkpoint {
            workload: format!("fuzz-{seed}"),
            seed,
            fingerprint: rng.next_u64(),
            stream: StreamState {
                rng: [
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64(),
                    rng.next_u64().max(1),
                ],
                recent_int: (0..rng.gen_usize(0..8))
                    .map(|_| rng.gen_u64(0..64) as u16)
                    .collect(),
                recent_fp: (0..rng.gen_usize(0..8))
                    .map(|_| 64 + rng.gen_u64(0..64) as u16)
                    .collect(),
                next_int_reg: rng.gen_u64(0..64) as u16,
                next_fp_reg: rng.gen_u64(0..64) as u16,
                pc: rng.next_u64(),
                loop_start: rng.next_u64(),
                emitted: rng.next_u64(),
                call_stack: (0..rng.gen_usize(0..16)).map(|_| rng.next_u64()).collect(),
                stream_offsets: (0..rng.gen_usize(1..6)).map(|_| rng.next_u64()).collect(),
                phase_idx: rng.next_u64(),
                phase_remaining: if rng.gen_bool(0.5) {
                    u64::MAX
                } else {
                    rng.next_u64()
                },
            },
            pipeline: PipelineState {
                rename: RenameState {
                    int: rename_class(&mut rng),
                    fp: rename_class(&mut rng),
                },
                bpred: BpredState {
                    counters: (0..256).map(|_| rng.gen_u64(0..4) as u8).collect(),
                    ras: (0..rng.gen_usize(0..32)).map(|_| rng.next_u64()).collect(),
                },
                mem: MemHierarchyState {
                    l1i: random_cache(&mut rng, 256),
                    l1d: random_cache(&mut rng, 512),
                    l2: random_cache(&mut rng, 1024),
                    mshrs: (0..rng.gen_usize(0..12))
                        .map(|_| MshrState {
                            line: rng.next_u64(),
                            ready: rng.next_u64(),
                        })
                        .collect(),
                    l2_inst_refs: rng.next_u64(),
                    prefetches: rng.next_u64(),
                },
                window,
                fetch_queue,
                pending: if rng.gen_bool(0.5) {
                    Some(random_op(&mut rng))
                } else {
                    None
                },
                now,
                seq_next: rng.next_u64(),
                committed: rng.next_u64(),
                last_commit_cycle: now,
                fetch_resume_at: rng.next_u64(),
                blocking_branch: if rng.gen_bool(0.5) {
                    Some(rng.next_u64())
                } else {
                    None
                },
                return_check: if rng.gen_bool(0.5) {
                    Some((rng.next_u64(), rng.next_u64()))
                } else {
                    None
                },
                cur_fetch_line: if rng.gen_bool(0.2) {
                    u64::MAX
                } else {
                    rng.next_u64()
                },
                int_free: (0..6).map(|_| rng.next_u64()).collect(),
                fp_free: (0..4).map(|_| rng.next_u64()).collect(),
                agen_free: (0..2).map(|_| rng.next_u64()).collect(),
            },
        }
    }

    #[test]
    fn randomized_states_round_trip_bit_exactly() {
        // Property test over seeded random pipeline/cache/bpred states —
        // the same idiom as the `.scn` round-trip tests, with the edge
        // values (u64::MAX markers, empty lists, absent options) that a
        // captured run rarely produces.
        for seed in 0..40 {
            let chk = random_checkpoint(seed);
            let text = checkpoint_to_text(&chk);
            let parsed = checkpoint_from_text(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert_eq!(parsed, chk, "seed {seed}: parse(print(c)) != c");
            assert_eq!(
                checkpoint_to_text(&parsed),
                text,
                "seed {seed}: printing is not a fixed point"
            );
        }
    }

    #[test]
    fn unknown_key_is_rejected_with_line_number() {
        let mut text = checkpoint_to_text(&random_checkpoint(1));
        text.push_str("pipe.warp_factor 9\n");
        let err = checkpoint_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("unknown key `pipe.warp_factor`"), "{err}");
        assert!(err.contains("line"), "{err}");
    }

    #[test]
    fn duplicate_key_is_rejected() {
        let mut text = checkpoint_to_text(&random_checkpoint(2));
        text.push_str("pipe.now 5\n");
        let err = checkpoint_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("duplicate key `pipe.now`"), "{err}");
    }

    #[test]
    fn wrong_arity_is_rejected() {
        let text = checkpoint_to_text(&random_checkpoint(3));
        let broken = text.replace("stream.phase ", "stream.phase 1 2 ");
        let err = checkpoint_from_text(&broken).unwrap_err().to_string();
        assert!(err.contains("`stream.phase` expects 2 values"), "{err}");
    }

    #[test]
    fn count_mismatch_is_rejected() {
        let chk = random_checkpoint(4);
        let text = checkpoint_to_text(&chk);
        let declared = format!("pipe.window {}", chk.pipeline.window.len());
        let broken = text.replace(&declared, "pipe.window 99");
        let err = checkpoint_from_text(&broken).unwrap_err().to_string();
        assert!(err.contains("declares 99 entries"), "{err}");
    }

    #[test]
    fn missing_key_is_rejected() {
        let text: String = checkpoint_to_text(&random_checkpoint(5))
            .lines()
            .filter(|l| !l.starts_with("pipe.committed"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = checkpoint_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("missing key `pipe.committed`"), "{err}");
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let text = checkpoint_to_text(&random_checkpoint(6))
            .replace("checkpoint.version 1", "checkpoint.version 2");
        let err = checkpoint_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("unsupported checkpoint version 2"), "{err}");
    }

    #[test]
    fn bad_counter_digit_is_rejected() {
        let chk = random_checkpoint(7);
        let digits: String = chk
            .pipeline
            .bpred
            .counters
            .iter()
            .map(|&c| char::from_digit(u32::from(c), 10).unwrap())
            .collect();
        let text = checkpoint_to_text(&chk).replace(
            &format!("bpred.counters {digits}"),
            "bpred.counters 0123401",
        );
        let err = checkpoint_from_text(&text).unwrap_err().to_string();
        assert!(err.contains("digits 0-3"), "{err}");
    }

    #[test]
    fn restored_checkpoint_resumes_the_simulation() {
        // End-to-end: capture -> print -> parse -> rebuild a processor ->
        // identical continuation.
        let seed = 99;
        let mut cpu = Processor::new(
            CoreConfig::base(),
            SyntheticStream::new(App::Twolf.profile(), seed),
        )
        .unwrap();
        cpu.run_instructions(12_000);
        let chk = Checkpoint {
            workload: cpu.source().name().to_owned(),
            seed,
            fingerprint: 1,
            stream: cpu.source().state(),
            pipeline: cpu.state(),
        };
        let parsed = checkpoint_from_text(&checkpoint_to_text(&chk)).unwrap();
        let stream = SyntheticStream::restore(App::Twolf.profile(), parsed.seed, &parsed.stream);
        let mut resumed = Processor::new(CoreConfig::base(), stream).unwrap();
        resumed.restore_state(&parsed.pipeline);
        assert_eq!(parsed.instructions(), 12_000);
        let a = cpu.run_instructions(8_000);
        let b = resumed.run_instructions(8_000);
        assert_eq!(a, b);
    }
}
