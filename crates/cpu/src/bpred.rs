//! Bimodal branch predictor with a return-address stack (Table 1:
//! "2KB bimodal agree, 32 entry RAS").
//!
//! The agree variant stores, per counter, whether the branch agrees with a
//! static bias bit; because our synthetic branches carry their bias in their
//! stable per-PC behaviour, a standard 2-bit bimodal table is functionally
//! equivalent here and is what we implement. The RAS predicts return
//! targets: calls push their fall-through address at fetch, returns pop a
//! predicted target; overflow wraps (oldest entry lost), which is what
//! bounds prediction accuracy under deep recursion.

use crate::config::BpredConfig;

/// Saturating 2-bit counter states (strongly-not-taken is 0).
const WEAK_TAKEN: u8 = 2;
const STRONG_TAKEN: u8 = 3;

/// Per-predictor access statistics, consumed by the power model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BpredStats {
    /// Direction lookups performed at fetch.
    pub lookups: u64,
    /// Counter updates performed at branch resolution.
    pub updates: u64,
    /// Resolved branches whose prediction was wrong.
    pub mispredicts: u64,
    /// Return-address-stack pushes (calls fetched).
    pub ras_pushes: u64,
    /// Return-address-stack pops (returns fetched).
    pub ras_pops: u64,
    /// Returns whose RAS prediction was wrong (underflow or overflow
    /// clobber).
    pub ras_mispredicts: u64,
}

impl BpredStats {
    /// Misprediction rate over all resolved branches (0 when none resolved).
    pub fn mispredict_rate(&self) -> f64 {
        if self.updates == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.updates as f64
        }
    }
}

/// Warm predictor state captured at a slice boundary: the trained 2-bit
/// counter table and the return-address stack. Statistics are *not* part of
/// the state — checkpoints are cut at interval boundaries, where
/// [`Bpred::take_stats`] has just zeroed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BpredState {
    /// Saturating 2-bit counters, one per table slot, each in `0..=3`.
    pub counters: Vec<u8>,
    /// Return-address stack, oldest entry first.
    pub ras: Vec<u64>,
}

/// Bimodal branch predictor.
///
/// # Examples
///
/// ```
/// use sim_cpu::{Bpred, BpredConfig};
/// let mut bp = Bpred::new(BpredConfig { counters: 1024, ras_entries: 32 });
/// // An always-taken branch is learned after two updates.
/// bp.update(0x40, true);
/// bp.update(0x40, true);
/// assert!(bp.predict(0x40));
/// ```
#[derive(Debug, Clone)]
pub struct Bpred {
    counters: Vec<u8>,
    mask: u64,
    ras: Vec<u64>,
    ras_capacity: usize,
    stats: BpredStats,
}

impl Bpred {
    /// Creates a predictor with all counters initialized weakly not-taken.
    ///
    /// # Panics
    ///
    /// Panics if `config.counters` is not a power of two.
    pub fn new(config: BpredConfig) -> Bpred {
        let n = config.counters as usize;
        assert!(n.is_power_of_two(), "counter count must be a power of two");
        Bpred {
            counters: vec![1; n], // weakly not-taken
            mask: (n - 1) as u64,
            ras: Vec::with_capacity(config.ras_entries as usize),
            ras_capacity: config.ras_entries.max(1) as usize,
            stats: BpredStats::default(),
        }
    }

    /// Pushes a return address at call fetch. A full stack drops its
    /// oldest entry (circular overwrite).
    pub fn ras_push(&mut self, return_address: u64) {
        self.stats.ras_pushes += 1;
        if self.ras.len() == self.ras_capacity {
            self.ras.remove(0);
        }
        self.ras.push(return_address);
    }

    /// Pops the predicted return target at return fetch; `None` on
    /// underflow (the front end then simply stalls until the return
    /// resolves).
    pub fn ras_pop(&mut self) -> Option<u64> {
        self.stats.ras_pops += 1;
        self.ras.pop()
    }

    /// Records a wrong RAS prediction.
    pub fn count_ras_mispredict(&mut self) {
        self.stats.ras_mispredicts += 1;
    }

    /// Current RAS occupancy.
    pub fn ras_depth(&self) -> usize {
        self.ras.len()
    }

    #[inline]
    fn slot(&self, pc: u64) -> usize {
        ((pc >> 2) & self.mask) as usize
    }

    /// Predicts the direction of the branch at `pc`, counting a lookup.
    pub fn predict(&mut self, pc: u64) -> bool {
        self.stats.lookups += 1;
        self.counters[self.slot(pc)] >= WEAK_TAKEN
    }

    /// Reads the current prediction without counting an access (for tests
    /// and introspection).
    pub fn peek(&self, pc: u64) -> bool {
        self.counters[self.slot(pc)] >= WEAK_TAKEN
    }

    /// Updates the counter for `pc` with the resolved direction, counting a
    /// misprediction if the pre-update prediction disagreed.
    pub fn update(&mut self, pc: u64, taken: bool) {
        let slot = self.slot(pc);
        let predicted = self.counters[slot] >= WEAK_TAKEN;
        if predicted != taken {
            self.stats.mispredicts += 1;
        }
        self.stats.updates += 1;
        let c = &mut self.counters[slot];
        if taken {
            *c = (*c + 1).min(STRONG_TAKEN);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Captures the warm predictor state for a checkpoint.
    #[must_use]
    pub fn state(&self) -> BpredState {
        BpredState {
            counters: self.counters.clone(),
            ras: self.ras.clone(),
        }
    }

    /// Restores a captured [`BpredState`]. Statistics are untouched.
    ///
    /// # Panics
    ///
    /// Panics when the state does not fit this predictor's geometry: a
    /// counter-table size mismatch, a counter value above 3, or a RAS
    /// deeper than the configured capacity.
    pub fn restore_state(&mut self, state: &BpredState) {
        assert_eq!(
            state.counters.len(),
            self.counters.len(),
            "bpred counter table size mismatch"
        );
        assert!(
            state.counters.iter().all(|&c| c <= STRONG_TAKEN),
            "bpred counter value out of range"
        );
        assert!(
            state.ras.len() <= self.ras_capacity,
            "RAS deeper than capacity"
        );
        self.counters.copy_from_slice(&state.counters);
        self.ras.clear();
        self.ras.extend_from_slice(&state.ras);
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BpredStats {
        self.stats
    }

    /// Resets statistics (counters keep their trained state), returning the
    /// stats accumulated since the previous reset.
    pub fn take_stats(&mut self) -> BpredStats {
        std::mem::take(&mut self.stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bp() -> Bpred {
        Bpred::new(BpredConfig {
            counters: 256,
            ras_entries: 32,
        })
    }

    #[test]
    fn learns_biased_branch() {
        let mut p = bp();
        for _ in 0..4 {
            p.update(0x100, true);
        }
        assert!(p.predict(0x100));
        for _ in 0..4 {
            p.update(0x100, false);
        }
        assert!(!p.predict(0x100));
    }

    #[test]
    fn hysteresis_tolerates_single_flip() {
        let mut p = bp();
        p.update(0x8, true);
        p.update(0x8, true);
        p.update(0x8, true); // strongly taken
        p.update(0x8, false); // one deviation
        assert!(p.peek(0x8), "2-bit counter must survive one flip");
    }

    #[test]
    fn counts_mispredicts() {
        let mut p = bp();
        // Initial state is weakly not-taken: first taken resolution is a
        // mispredict, the second (now weakly taken) is correct.
        p.update(0x10, true);
        p.update(0x10, true);
        let s = p.stats();
        assert_eq!(s.updates, 2);
        assert_eq!(s.mispredicts, 1);
        assert!((s.mispredict_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lookup_counting() {
        let mut p = bp();
        p.predict(0);
        p.predict(4);
        assert_eq!(p.stats().lookups, 2);
    }

    #[test]
    fn aliasing_uses_word_index() {
        let mut p = Bpred::new(BpredConfig {
            counters: 4,
            ras_entries: 32,
        });
        // pc 0x0 and pc 0x10 alias (4 counters, word-indexed).
        for _ in 0..3 {
            p.update(0x0, true);
        }
        assert!(p.peek(0x10));
    }

    #[test]
    fn ras_predicts_nested_returns() {
        let mut p = bp();
        p.ras_push(0x100);
        p.ras_push(0x200);
        assert_eq!(p.ras_depth(), 2);
        assert_eq!(p.ras_pop(), Some(0x200));
        assert_eq!(p.ras_pop(), Some(0x100));
        assert_eq!(p.ras_pop(), None);
        let s = p.stats();
        assert_eq!(s.ras_pushes, 2);
        assert_eq!(s.ras_pops, 3);
    }

    #[test]
    fn ras_overflow_drops_oldest() {
        let mut p = Bpred::new(BpredConfig {
            counters: 256,
            ras_entries: 2,
        });
        p.ras_push(0x1);
        p.ras_push(0x2);
        p.ras_push(0x3); // evicts 0x1
        assert_eq!(p.ras_pop(), Some(0x3));
        assert_eq!(p.ras_pop(), Some(0x2));
        assert_eq!(p.ras_pop(), None);
    }

    #[test]
    fn take_stats_resets() {
        let mut p = bp();
        p.predict(0);
        let s = p.take_stats();
        assert_eq!(s.lookups, 1);
        assert_eq!(p.stats().lookups, 0);
    }

    #[test]
    fn rate_with_no_updates_is_zero() {
        assert_eq!(BpredStats::default().mispredict_rate(), 0.0);
    }

    #[test]
    fn state_round_trip_preserves_training() {
        let mut p = bp();
        for pc in (0..512u64).step_by(4) {
            p.update(pc, pc % 3 == 0);
        }
        p.ras_push(0x100);
        p.ras_push(0x200);
        let state = p.state();
        let mut restored = bp();
        restored.restore_state(&state);
        assert_eq!(restored.state(), state);
        for pc in (0..512u64).step_by(4) {
            assert_eq!(restored.peek(pc), p.peek(pc));
        }
        assert_eq!(restored.ras_pop(), Some(0x200));
        assert_eq!(restored.stats().ras_pushes, 0, "stats stay untouched");
    }

    #[test]
    #[should_panic(expected = "table size mismatch")]
    fn restore_rejects_mismatched_table() {
        let state = bp().state();
        Bpred::new(BpredConfig {
            counters: 128,
            ras_entries: 32,
        })
        .restore_state(&state);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_power_of_two() {
        let _ = Bpred::new(BpredConfig {
            counters: 100,
            ras_entries: 32,
        });
    }
}
