//! Set-associative caches and the two-level memory hierarchy
//! (Table 1: 64 KB 2-way L1D with 2 ports and 12 MSHRs, 32 KB 2-way L1I,
//! 1 MB 4-way unified off-chip L2, 102-cycle main memory at 4 GHz).

use crate::config::CacheConfig;

/// Outcome of a single cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Line present.
    Hit,
    /// Line absent; it has been filled (allocate-on-miss). `writeback` is
    /// true when a dirty victim was evicted.
    Miss {
        /// A dirty line was displaced by the fill.
        writeback: bool,
    },
}

/// Access counters for one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Dirty evictions.
    pub writebacks: u64,
}

impl CacheStats {
    /// Miss rate over all accesses (0 when idle).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// One cache line's warm state, captured at a slice boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheLineState {
    /// Tag (line address divided by the set count).
    pub tag: u64,
    /// Line holds data.
    pub valid: bool,
    /// Line was written since fill.
    pub dirty: bool,
    /// LRU timestamp (value of the cache's access clock at last touch).
    pub lru: u64,
}

/// Warm contents of one cache: every way of every set plus the LRU clock.
/// Statistics are *not* part of the state — checkpoints are cut at interval
/// boundaries, where [`Cache::take_stats`] has just zeroed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheState {
    /// All lines, set-major (the ways of set 0, then set 1, ...).
    pub lines: Vec<CacheLineState>,
    /// The access clock driving LRU timestamps.
    pub clock: u64,
}

/// A write-back, write-allocate, true-LRU set-associative cache.
///
/// State updates happen at lookup time (the standard "immediate state,
/// delayed data" trace-simulation discipline); timing is supplied by
/// [`MemHierarchy`].
///
/// # Examples
///
/// ```
/// use sim_cpu::{Cache, CacheConfig, Lookup};
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64)?)?;
/// assert!(matches!(c.access(0x0, false), Lookup::Miss { .. }));
/// assert_eq!(c.access(0x8, false), Lookup::Hit); // same line
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    assoc: usize,
    set_count: u64,
    line_shift: u32,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Errors
    ///
    /// Returns [`sim_common::SimError::InvalidConfig`] when the geometry
    /// fails [`CacheConfig::validate`].
    pub fn new(config: CacheConfig) -> Result<Cache, sim_common::SimError> {
        let sets = config.sets()?;
        Ok(Cache {
            lines: vec![Line::default(); (sets * config.assoc as u64) as usize],
            assoc: config.assoc as usize,
            set_count: sets,
            line_shift: config.line_bytes.trailing_zeros(),
            clock: 0,
            stats: CacheStats::default(),
        })
    }

    /// The line-aligned address for `addr`.
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn line_bytes(&self) -> u64 {
        1 << self.line_shift
    }

    /// Performs a lookup for `addr`, filling on miss and marking the line
    /// dirty on writes.
    pub fn access(&mut self, addr: u64, write: bool) -> Lookup {
        self.clock += 1;
        self.stats.accesses += 1;
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.set_count) as usize;
        let tag = line_addr / self.set_count;
        let base = set * self.assoc;
        let ways = &mut self.lines[base..base + self.assoc];

        if let Some(way) = ways.iter_mut().find(|l| l.valid && l.tag == tag) {
            way.lru = self.clock;
            way.dirty |= write;
            self.stats.hits += 1;
            return Lookup::Hit;
        }

        self.stats.misses += 1;
        // Victim: an invalid way, else true LRU.
        let victim = ways
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("associativity is non-zero");
        let writeback = victim.valid && victim.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.clock,
        };
        Lookup::Miss { writeback }
    }

    /// True when the line containing `addr` is resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let line_addr = addr >> self.line_shift;
        let set = (line_addr % self.set_count) as usize;
        let tag = line_addr / self.set_count;
        let base = set * self.assoc;
        self.lines[base..base + self.assoc]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns and clears the statistics (cache contents are preserved).
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Captures the warm cache contents for a checkpoint.
    #[must_use]
    pub fn state(&self) -> CacheState {
        CacheState {
            lines: self
                .lines
                .iter()
                .map(|l| CacheLineState {
                    tag: l.tag,
                    valid: l.valid,
                    dirty: l.dirty,
                    lru: l.lru,
                })
                .collect(),
            clock: self.clock,
        }
    }

    /// Restores captured [`CacheState`] contents. Statistics are untouched.
    ///
    /// # Panics
    ///
    /// Panics when the line count does not match this cache's geometry or
    /// an LRU timestamp is ahead of the restored clock.
    pub fn restore_state(&mut self, state: &CacheState) {
        assert_eq!(
            state.lines.len(),
            self.lines.len(),
            "cache line count mismatch"
        );
        assert!(
            state.lines.iter().all(|l| l.lru <= state.clock),
            "LRU timestamp ahead of the cache clock"
        );
        for (line, s) in self.lines.iter_mut().zip(&state.lines) {
            *line = Line {
                tag: s.tag,
                valid: s.valid,
                dirty: s.dirty,
                lru: s.lru,
            };
        }
        self.clock = state.clock;
    }
}

/// Result of a data-side access through the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DataAccess {
    /// The access was accepted; data is available at `ready` (absolute
    /// cycle).
    Ready {
        /// Cycle at which the value is available.
        ready: u64,
    },
    /// All MSHRs are busy with other lines; retry on a later cycle.
    Retry,
}

#[derive(Debug, Clone, Copy)]
struct Mshr {
    line: u64,
    ready: u64,
}

/// One outstanding miss, captured at a slice boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MshrState {
    /// Line address of the miss in flight.
    pub line: u64,
    /// Absolute cycle at which the fill completes.
    pub ready: u64,
}

/// Warm state of the whole memory hierarchy: the three caches, the
/// outstanding-miss registers, and the cumulative reference counters the
/// power model reads. Latency parameters and the prefetch switch are *not*
/// part of the state — they are re-derived from the core configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemHierarchyState {
    /// L1 instruction cache contents.
    pub l1i: CacheState,
    /// L1 data cache contents.
    pub l1d: CacheState,
    /// Unified L2 contents.
    pub l2: CacheState,
    /// Outstanding misses, in allocation order.
    pub mshrs: Vec<MshrState>,
    /// Cumulative L2 accesses triggered by L1I misses.
    pub l2_inst_refs: u64,
    /// Cumulative next-line prefetches issued.
    pub prefetches: u64,
}

/// Latency parameters of the hierarchy, in cycles at the current clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// L1 hit time.
    pub l1_hit: u32,
    /// L2 hit time (beyond the L1 access).
    pub l2_hit: u32,
    /// Main-memory time (beyond the L1 access).
    pub memory: u32,
}

/// The L1I/L1D/L2/memory hierarchy with MSHR-limited L1D miss concurrency.
#[derive(Debug, Clone)]
pub struct MemHierarchy {
    /// L1 instruction cache.
    pub l1i: Cache,
    /// L1 data cache.
    pub l1d: Cache,
    /// Unified L2.
    pub l2: Cache,
    latencies: MemLatencies,
    mshrs: Vec<Mshr>,
    mshr_capacity: usize,
    prefetch_next_line: bool,
    /// L2 accesses triggered by L1I misses (for power accounting).
    pub l2_inst_refs: u64,
    /// Next-line prefetches issued.
    pub prefetches: u64,
}

impl MemHierarchy {
    /// Creates the hierarchy.
    ///
    /// # Errors
    ///
    /// Returns [`sim_common::SimError::InvalidConfig`] when any cache
    /// geometry fails [`CacheConfig::validate`].
    pub fn new(
        l1i: CacheConfig,
        l1d: CacheConfig,
        l2: CacheConfig,
        latencies: MemLatencies,
        mshr_capacity: u32,
    ) -> Result<MemHierarchy, sim_common::SimError> {
        Ok(MemHierarchy {
            l1i: Cache::new(l1i)?,
            l1d: Cache::new(l1d)?,
            l2: Cache::new(l2)?,
            latencies,
            mshrs: Vec::with_capacity(mshr_capacity as usize),
            mshr_capacity: mshr_capacity as usize,
            prefetch_next_line: false,
            l2_inst_refs: 0,
            prefetches: 0,
        })
    }

    /// Enables or disables tagged next-line prefetching on L1D misses.
    pub fn set_prefetch_next_line(&mut self, enabled: bool) {
        self.prefetch_next_line = enabled;
    }

    /// Current latency parameters.
    pub fn latencies(&self) -> MemLatencies {
        self.latencies
    }

    /// Replaces the latency parameters (used when the clock frequency
    /// changes at runtime: off-chip latencies are fixed in wall-clock time,
    /// so their cycle counts move with the clock). Outstanding misses keep
    /// their original completion times.
    pub fn set_latencies(&mut self, latencies: MemLatencies) {
        self.latencies = latencies;
    }

    fn l2_fill_latency(&mut self, addr: u64) -> u32 {
        match self.l2.access(addr, false) {
            Lookup::Hit => self.latencies.l2_hit,
            Lookup::Miss { .. } => self.latencies.memory,
        }
    }

    /// A data-side access (load or store) at absolute cycle `now`.
    ///
    /// Hits complete in the L1 hit time. Misses allocate an MSHR; requests
    /// to a line with an outstanding miss coalesce onto it. When all MSHRs
    /// are busy the access must be retried later.
    pub fn access_data(&mut self, now: u64, addr: u64, write: bool) -> DataAccess {
        let line = self.l1d.line_addr(addr);
        // Drop completed MSHRs.
        self.mshrs.retain(|m| m.ready > now);
        if let Some(m) = self.mshrs.iter().find(|m| m.line == line) {
            // Coalesce with the miss in flight. The line was filled when the
            // miss was initiated (immediate state update), so this lookup
            // hits; data arrives with the outstanding fill.
            let _ = self.l1d.access(addr, write);
            return DataAccess::Ready { ready: m.ready };
        }
        if self.l1d.contains(addr) {
            let _ = self.l1d.access(addr, write);
            return DataAccess::Ready {
                ready: now + self.latencies.l1_hit as u64,
            };
        }
        if self.mshrs.len() >= self.mshr_capacity {
            // Reject before touching any state so the retried access still
            // sees (and pays for) the miss.
            return DataAccess::Retry;
        }
        let _ = self.l1d.access(addr, write);
        let fill = self.l2_fill_latency(addr);
        let ready = now + (self.latencies.l1_hit + fill) as u64;
        self.mshrs.push(Mshr { line, ready });
        if self.prefetch_next_line {
            // Tagged next-line prefetch: pull the successor line toward
            // the core on a demand miss (state update only; the demand
            // stream later hits it).
            let next = addr + self.l1d.line_bytes();
            if !self.l1d.contains(next) {
                self.prefetches += 1;
                self.prefill_data(next);
            }
        }
        DataAccess::Ready { ready }
    }

    /// An instruction fetch access at absolute cycle `now`; returns the
    /// cycle at which the line is available (fetch stalls on misses, so no
    /// MSHR limit applies).
    pub fn access_inst(&mut self, now: u64, addr: u64) -> u64 {
        match self.l1i.access(addr, false) {
            Lookup::Hit => now, // hit latency hidden by the fetch pipeline
            Lookup::Miss { .. } => {
                self.l2_inst_refs += 1;
                let fill = self.l2_fill_latency(addr);
                now + fill as u64
            }
        }
    }

    /// Number of MSHRs currently tracking outstanding misses at `now`.
    pub fn mshrs_in_flight(&self, now: u64) -> usize {
        self.mshrs.iter().filter(|m| m.ready > now).count()
    }

    /// Pre-warms the data path for the line containing `addr` (fills L2 and
    /// L1D without touching MSHRs). Used to start measurement from the
    /// steady state a long-running application would reach, skipping the
    /// compulsory-miss transient that short simulations cannot amortize.
    pub fn prefill_data(&mut self, addr: u64) {
        let _ = self.l2.access(addr, false);
        let _ = self.l1d.access(addr, false);
    }

    /// Pre-warms the instruction path for the line containing `addr`.
    pub fn prefill_inst(&mut self, addr: u64) {
        let _ = self.l2.access(addr, false);
        let _ = self.l1i.access(addr, false);
    }

    /// Captures the warm hierarchy state for a checkpoint.
    #[must_use]
    pub fn state(&self) -> MemHierarchyState {
        MemHierarchyState {
            l1i: self.l1i.state(),
            l1d: self.l1d.state(),
            l2: self.l2.state(),
            mshrs: self
                .mshrs
                .iter()
                .map(|m| MshrState {
                    line: m.line,
                    ready: m.ready,
                })
                .collect(),
            l2_inst_refs: self.l2_inst_refs,
            prefetches: self.prefetches,
        }
    }

    /// Restores a captured [`MemHierarchyState`]. Cache statistics are
    /// untouched; latencies and the prefetch switch keep their configured
    /// values.
    ///
    /// # Panics
    ///
    /// Panics when a cache's geometry does not match or more MSHRs are
    /// recorded than this hierarchy has.
    pub fn restore_state(&mut self, state: &MemHierarchyState) {
        assert!(
            state.mshrs.len() <= self.mshr_capacity,
            "more MSHRs than capacity"
        );
        self.l1i.restore_state(&state.l1i);
        self.l1d.restore_state(&state.l1d);
        self.l2.restore_state(&state.l2);
        self.mshrs.clear();
        self.mshrs.extend(state.mshrs.iter().map(|m| Mshr {
            line: m.line,
            ready: m.ready,
        }));
        self.l2_inst_refs = state.l2_inst_refs;
        self.prefetches = state.prefetches;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
        }
    }

    #[test]
    fn hit_after_fill() {
        let mut c = Cache::new(small()).unwrap();
        assert!(matches!(c.access(0x40, false), Lookup::Miss { .. }));
        assert_eq!(c.access(0x40, false), Lookup::Hit);
        assert_eq!(c.access(0x7f, false), Lookup::Hit); // same 64B line
        assert!(matches!(c.access(0x80, false), Lookup::Miss { .. }));
    }

    #[test]
    fn lru_replacement() {
        // 2-way: fill two ways of one set, touch the first, insert a third;
        // the second must be the victim.
        let mut c = Cache::new(small()).unwrap();
        let sets = small().sets().unwrap(); // 8 sets
        let stride = 64 * sets; // same-set stride
        c.access(0, false); // way A
        c.access(stride, false); // way B
        c.access(0, false); // A is MRU
        c.access(2 * stride, false); // evicts B
        assert!(c.contains(0));
        assert!(!c.contains(stride));
        assert!(c.contains(2 * stride));
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = Cache::new(small()).unwrap();
        let stride = 64 * small().sets().unwrap();
        c.access(0, true); // dirty, LRU after the next fill
        c.access(stride, false); // clean
        match c.access(2 * stride, false) {
            // Victim is line 0 (least recently used) and it is dirty.
            Lookup::Miss { writeback } => assert!(writeback),
            _ => panic!("expected miss"),
        }
        match c.access(3 * stride, false) {
            // Victim is `stride`, which is clean.
            Lookup::Miss { writeback } => assert!(!writeback),
            _ => panic!("expected miss"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = Cache::new(small()).unwrap();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 2);
        assert!((s.miss_rate() - 2.0 / 3.0).abs() < 1e-12);
        let taken = c.take_stats();
        assert_eq!(taken.accesses, 3);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.contains(0), "take_stats must not clear contents");
    }

    fn hierarchy(mshrs: u32) -> MemHierarchy {
        MemHierarchy::new(
            small(),
            small(),
            CacheConfig {
                size_bytes: 16 * 1024,
                assoc: 4,
                line_bytes: 64,
            },
            MemLatencies {
                l1_hit: 2,
                l2_hit: 20,
                memory: 102,
            },
            mshrs,
        )
        .unwrap()
    }

    #[test]
    fn data_hit_latency() {
        let mut h = hierarchy(2);
        // Cold miss to memory first.
        match h.access_data(0, 0x1000, false) {
            DataAccess::Ready { ready } => assert_eq!(ready, 104), // 2 + 102
            DataAccess::Retry => panic!("retry"),
        }
        // Far in the future the line is resident: pure L1 hit.
        match h.access_data(1000, 0x1000, false) {
            DataAccess::Ready { ready } => assert_eq!(ready, 1002),
            DataAccess::Retry => panic!("retry"),
        }
    }

    #[test]
    fn l2_hit_path() {
        let mut h = hierarchy(2);
        let _ = h.access_data(0, 0x2000, false); // memory fill, L2 now has it
                                                 // Evict from tiny L1D by touching conflicting lines.
        let stride = 64 * small().sets().unwrap();
        let _ = h.access_data(200, 0x2000 + stride, false);
        let _ = h.access_data(400, 0x2000 + 2 * stride, false);
        assert!(!h.l1d.contains(0x2000));
        match h.access_data(600, 0x2000, false) {
            DataAccess::Ready { ready } => assert_eq!(ready, 600 + 2 + 20),
            DataAccess::Retry => panic!("retry"),
        }
    }

    #[test]
    fn mshr_exhaustion_forces_retry() {
        let mut h = hierarchy(2);
        assert!(matches!(
            h.access_data(0, 0x10_000, false),
            DataAccess::Ready { .. }
        ));
        assert!(matches!(
            h.access_data(0, 0x20_000, false),
            DataAccess::Ready { .. }
        ));
        assert_eq!(h.mshrs_in_flight(0), 2);
        assert_eq!(h.access_data(0, 0x30_000, false), DataAccess::Retry);
        // After the misses resolve, capacity is available again.
        assert!(matches!(
            h.access_data(500, 0x30_000, false),
            DataAccess::Ready { .. }
        ));
    }

    #[test]
    fn same_line_misses_coalesce() {
        let mut h = hierarchy(1);
        let first = match h.access_data(0, 0x40_000, false) {
            DataAccess::Ready { ready } => ready,
            DataAccess::Retry => panic!("retry"),
        };
        // Second access to the same line coalesces even though MSHRs are full.
        match h.access_data(1, 0x40_008, false) {
            DataAccess::Ready { ready } => assert_eq!(ready, first),
            DataAccess::Retry => panic!("coalescing must not consume an MSHR"),
        }
    }

    #[test]
    fn next_line_prefetch_turns_misses_into_hits() {
        let mut h = hierarchy(4);
        h.set_prefetch_next_line(true);
        // Demand miss at line 0 prefetches line 1.
        let _ = h.access_data(0, 0x1000, false);
        assert_eq!(h.prefetches, 1);
        assert!(h.l1d.contains(0x1040));
        match h.access_data(500, 0x1040, false) {
            DataAccess::Ready { ready } => assert_eq!(ready, 502, "prefetched line must hit"),
            DataAccess::Retry => panic!("retry"),
        }
        // Without prefetch the same pattern misses.
        let mut h = hierarchy(4);
        let _ = h.access_data(0, 0x1000, false);
        assert_eq!(h.prefetches, 0);
        assert!(!h.l1d.contains(0x1040));
    }

    #[test]
    fn state_round_trip_resumes_identically() {
        let mut h = hierarchy(4);
        h.set_prefetch_next_line(true);
        for (i, addr) in [0x1000u64, 0x2040, 0x1000, 0x9000].iter().enumerate() {
            let _ = h.access_data(10 * i as u64, *addr, i % 2 == 1);
        }
        let _ = h.access_inst(50, 0x40);
        // Slice boundaries zero the stats before the cut.
        let _ = h.l1i.take_stats();
        let _ = h.l1d.take_stats();
        let _ = h.l2.take_stats();
        let state = h.state();

        let mut r = hierarchy(4);
        r.set_prefetch_next_line(true);
        r.restore_state(&state);
        assert_eq!(r.state(), state);
        // Both copies behave identically afterwards.
        for now in [60u64, 70, 80] {
            assert_eq!(
                r.access_data(now, 0x1000 + 8 * now, false),
                h.access_data(now, 0x1000 + 8 * now, false)
            );
        }
        assert_eq!(r.l1d.stats(), h.l1d.stats());
    }

    #[test]
    #[should_panic(expected = "line count mismatch")]
    fn restore_rejects_wrong_geometry() {
        let state = Cache::new(small()).unwrap().state();
        let mut other = Cache::new(CacheConfig {
            size_bytes: 2048,
            assoc: 2,
            line_bytes: 64,
        })
        .unwrap();
        other.restore_state(&state);
    }

    #[test]
    fn inst_miss_goes_through_l2() {
        let mut h = hierarchy(2);
        let ready = h.access_inst(0, 0x0);
        assert_eq!(ready, 102); // cold: memory latency
        let ready = h.access_inst(500, 0x0);
        assert_eq!(ready, 500); // resident: hidden
        assert_eq!(h.l2_inst_refs, 1);
    }
}
