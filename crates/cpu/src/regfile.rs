//! Register renaming and the physical register files
//! (Table 1: 192 integer + 192 floating-point physical registers, separate
//! from the centralized instruction window, as in the MIPS R10000).

use workload::{ArchReg, RegClass, ARCH_REGS_PER_CLASS};

/// A physical register: class plus index within that class's file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysReg {
    /// Register file this register lives in.
    pub class: RegClass,
    /// Index within the file.
    pub index: u16,
}

/// Port-access counters for one physical register file.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RegFileStats {
    /// Operand reads at issue.
    pub reads: u64,
    /// Result writes at writeback.
    pub writes: u64,
}

/// Warm rename state for one register class, captured at a slice boundary.
/// Statistics are *not* part of the state — checkpoints are cut at interval
/// boundaries, where [`Rename::take_stats`] has just zeroed them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameClassState {
    /// Architectural-to-physical map, indexed by architectural register.
    pub map: Vec<u16>,
    /// Free list, in stack order (last entry is popped next).
    pub free: Vec<u16>,
    /// Per-physical-register ready bits.
    pub ready: Vec<bool>,
}

/// Warm rename state for both register classes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RenameState {
    /// Integer class state.
    pub int: RenameClassState,
    /// Floating-point class state.
    pub fp: RenameClassState,
}

#[derive(Debug, Clone)]
struct ClassState {
    map: Vec<u16>,
    free: Vec<u16>,
    ready: Vec<bool>,
    stats: RegFileStats,
}

impl ClassState {
    fn state(&self) -> RenameClassState {
        RenameClassState {
            map: self.map.clone(),
            free: self.free.clone(),
            ready: self.ready.clone(),
        }
    }

    fn restore_state(&mut self, state: &RenameClassState) {
        assert_eq!(state.map.len(), self.map.len(), "rename map size mismatch");
        assert_eq!(
            state.ready.len(),
            self.ready.len(),
            "physical register count mismatch"
        );
        let phys = self.ready.len();
        assert!(
            state
                .map
                .iter()
                .chain(state.free.iter())
                .all(|&p| (p as usize) < phys),
            "physical register index out of range"
        );
        assert!(
            state.free.len() <= phys,
            "free list larger than the register file"
        );
        self.map.copy_from_slice(&state.map);
        self.free.clear();
        self.free.extend_from_slice(&state.free);
        self.ready.copy_from_slice(&state.ready);
    }

    fn new(phys_count: u32) -> ClassState {
        let arch = ARCH_REGS_PER_CLASS as usize;
        assert!(phys_count as usize >= arch);
        ClassState {
            // Architectural register i starts mapped to physical i, ready.
            map: (0..arch as u16).collect(),
            free: (arch as u16..phys_count as u16).rev().collect(),
            ready: {
                let mut r = vec![false; phys_count as usize];
                r[..arch].fill(true);
                r
            },
            stats: RegFileStats::default(),
        }
    }
}

/// The rename stage state: architectural-to-physical maps, free lists, and
/// physical-register ready bits for both register classes.
///
/// The simulator is trace driven (no wrong-path execution), so no
/// checkpoint/rollback machinery is needed: an instruction's previous
/// mapping is released when it commits.
///
/// # Examples
///
/// ```
/// use sim_cpu::Rename;
/// use workload::{ArchReg, RegClass};
///
/// let mut rn = Rename::new(192, 192);
/// let r1 = ArchReg::new(RegClass::Int, 1);
/// let (phys, _old) = rn.alloc_dest(r1).expect("free registers available");
/// assert!(!rn.is_ready(phys)); // in flight until writeback
/// rn.set_ready(phys);
/// assert!(rn.is_ready(phys));
/// ```
#[derive(Debug, Clone)]
pub struct Rename {
    int: ClassState,
    fp: ClassState,
}

impl Rename {
    /// Creates rename state with the given physical register counts.
    ///
    /// # Panics
    ///
    /// Panics if either file is smaller than the architectural register
    /// count (validated by `CoreConfig::validate`).
    pub fn new(int_regs: u32, fp_regs: u32) -> Rename {
        Rename {
            int: ClassState::new(int_regs),
            fp: ClassState::new(fp_regs),
        }
    }

    fn class(&self, class: RegClass) -> &ClassState {
        match class {
            RegClass::Int => &self.int,
            RegClass::Fp => &self.fp,
        }
    }

    fn class_mut(&mut self, class: RegClass) -> &mut ClassState {
        match class {
            RegClass::Int => &mut self.int,
            RegClass::Fp => &mut self.fp,
        }
    }

    /// Current physical mapping of an architectural source register.
    pub fn rename_src(&self, arch: ArchReg) -> PhysReg {
        let class = arch.class();
        PhysReg {
            class,
            index: self.class(class).map[arch.index() as usize],
        }
    }

    /// Allocates a new physical register for `arch`, returning the new
    /// mapping and the previous one (to be released at commit). Returns
    /// `None` when the free list is empty — the dispatch stage must stall.
    pub fn alloc_dest(&mut self, arch: ArchReg) -> Option<(PhysReg, PhysReg)> {
        let class = arch.class();
        let state = self.class_mut(class);
        let new = state.free.pop()?;
        let old = state.map[arch.index() as usize];
        state.map[arch.index() as usize] = new;
        state.ready[new as usize] = false;
        Some((PhysReg { class, index: new }, PhysReg { class, index: old }))
    }

    /// True when the physical register holds its value.
    pub fn is_ready(&self, phys: PhysReg) -> bool {
        self.class(phys.class).ready[phys.index as usize]
    }

    /// Marks the register ready (writeback) and counts the write port use.
    pub fn set_ready(&mut self, phys: PhysReg) {
        let state = self.class_mut(phys.class);
        state.ready[phys.index as usize] = true;
        state.stats.writes += 1;
    }

    /// Counts an operand read from the register's file.
    pub fn count_read(&mut self, class: RegClass) {
        self.class_mut(class).stats.reads += 1;
    }

    /// Returns a previously current mapping to the free list (at commit of
    /// the overwriting instruction).
    pub fn release(&mut self, phys: PhysReg) {
        self.class_mut(phys.class).free.push(phys.index);
    }

    /// Free physical registers remaining in `class`.
    pub fn free_count(&self, class: RegClass) -> usize {
        self.class(class).free.len()
    }

    /// Port statistics for `class`.
    pub fn stats(&self, class: RegClass) -> RegFileStats {
        self.class(class).stats
    }

    /// Captures the warm rename state for a checkpoint.
    #[must_use]
    pub fn state(&self) -> RenameState {
        RenameState {
            int: self.int.state(),
            fp: self.fp.state(),
        }
    }

    /// Restores a captured [`RenameState`]. Statistics are untouched.
    ///
    /// # Panics
    ///
    /// Panics when either class's state does not fit this rename stage's
    /// register-file sizes, or references a physical register out of range.
    pub fn restore_state(&mut self, state: &RenameState) {
        self.int.restore_state(&state.int);
        self.fp.restore_state(&state.fp);
    }

    /// Returns and clears the port statistics for both files
    /// `(int, fp)`.
    pub fn take_stats(&mut self) -> (RegFileStats, RegFileStats) {
        (
            std::mem::take(&mut self.int.stats),
            std::mem::take(&mut self.fp.stats),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_reg(i: u16) -> ArchReg {
        ArchReg::new(RegClass::Int, i)
    }

    #[test]
    fn initial_mappings_are_identity_and_ready() {
        let rn = Rename::new(192, 192);
        for i in 0..ARCH_REGS_PER_CLASS {
            let p = rn.rename_src(int_reg(i));
            assert_eq!(p.index, i);
            assert!(rn.is_ready(p));
        }
        assert_eq!(rn.free_count(RegClass::Int), 192 - 64);
        assert_eq!(rn.free_count(RegClass::Fp), 192 - 64);
    }

    #[test]
    fn alloc_redirects_sources() {
        let mut rn = Rename::new(192, 192);
        let (new, old) = rn.alloc_dest(int_reg(5)).unwrap();
        assert_eq!(old.index, 5);
        assert_ne!(new.index, 5);
        assert_eq!(rn.rename_src(int_reg(5)), new);
        assert!(!rn.is_ready(new));
    }

    #[test]
    fn release_recycles_registers() {
        let mut rn = Rename::new(66, 66); // only two spare per class
        let (_, old1) = rn.alloc_dest(int_reg(0)).unwrap();
        let (_, old2) = rn.alloc_dest(int_reg(1)).unwrap();
        assert!(rn.alloc_dest(int_reg(2)).is_none(), "free list exhausted");
        rn.release(old1);
        rn.release(old2);
        assert!(rn.alloc_dest(int_reg(2)).is_some());
    }

    #[test]
    fn classes_are_independent() {
        let mut rn = Rename::new(66, 192);
        let fp = ArchReg::new(RegClass::Fp, 0);
        rn.alloc_dest(int_reg(0)).unwrap();
        rn.alloc_dest(int_reg(1)).unwrap();
        assert!(rn.alloc_dest(int_reg(2)).is_none());
        assert!(rn.alloc_dest(fp).is_some(), "fp file unaffected");
    }

    #[test]
    fn stats_count_ports() {
        let mut rn = Rename::new(192, 192);
        let (p, _) = rn.alloc_dest(int_reg(1)).unwrap();
        rn.count_read(RegClass::Int);
        rn.count_read(RegClass::Int);
        rn.set_ready(p);
        let s = rn.stats(RegClass::Int);
        assert_eq!(s.reads, 2);
        assert_eq!(s.writes, 1);
        let (int, fp) = rn.take_stats();
        assert_eq!(int.reads, 2);
        assert_eq!(fp.reads, 0);
        assert_eq!(rn.stats(RegClass::Int).reads, 0);
    }

    #[test]
    fn state_round_trip_preserves_mappings() {
        let mut rn = Rename::new(192, 192);
        let (p1, _) = rn.alloc_dest(int_reg(3)).unwrap();
        let (_, old) = rn.alloc_dest(int_reg(3)).unwrap();
        rn.set_ready(p1);
        rn.release(old);
        let state = rn.state();
        let mut restored = Rename::new(192, 192);
        restored.restore_state(&state);
        assert_eq!(restored.state(), state);
        assert_eq!(restored.rename_src(int_reg(3)), rn.rename_src(int_reg(3)));
        assert_eq!(
            restored.free_count(RegClass::Int),
            rn.free_count(RegClass::Int)
        );
        assert_eq!(restored.stats(RegClass::Int).writes, 0, "stats untouched");
    }

    #[test]
    #[should_panic(expected = "register count mismatch")]
    fn restore_rejects_mismatched_file_size() {
        let state = Rename::new(192, 192).state();
        Rename::new(128, 192).restore_state(&state);
    }

    #[test]
    fn serial_reuse_of_same_arch_reg() {
        // Repeated writes to one architectural register chain correctly.
        let mut rn = Rename::new(192, 192);
        let (p1, _) = rn.alloc_dest(int_reg(3)).unwrap();
        let (p2, old2) = rn.alloc_dest(int_reg(3)).unwrap();
        assert_eq!(old2, p1, "second alloc must displace the first mapping");
        assert_eq!(rn.rename_src(int_reg(3)), p2);
    }
}
