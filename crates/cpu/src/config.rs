//! Processor configuration (Table 1 of the paper, plus the DRM adaptation
//! knobs of §6.1).

use sim_common::{Hertz, SimError, Structure, Volts};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
}

impl CacheConfig {
    /// Creates a validated geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for geometry that fails
    /// [`validate`](CacheConfig::validate).
    pub fn new(size_bytes: u64, assoc: u32, line_bytes: u32) -> Result<CacheConfig, SimError> {
        let config = CacheConfig {
            size_bytes,
            assoc,
            line_bytes,
        };
        config.validate("cache")?;
        Ok(config)
    }

    /// Number of sets.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the geometry fails
    /// [`validate`](CacheConfig::validate), so the division below can never
    /// panic on zero or inconsistent fields.
    pub fn sets(&self) -> Result<u64, SimError> {
        self.validate("cache")?;
        Ok(self.size_bytes / (self.assoc as u64 * self.line_bytes as u64))
    }

    /// Validates that the geometry is consistent and power-of-two sized.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for zero or non-power-of-two
    /// fields, or when capacity is not divisible into sets.
    pub fn validate(&self, label: &str) -> Result<(), SimError> {
        let pow2 = |v: u64| v != 0 && v & (v - 1) == 0;
        if !pow2(self.size_bytes) || !pow2(self.assoc as u64) || !pow2(self.line_bytes as u64) {
            return Err(SimError::invalid_config(format!(
                "{label}: size, associativity and line size must be powers of two"
            )));
        }
        if self.size_bytes < self.assoc as u64 * self.line_bytes as u64 {
            return Err(SimError::invalid_config(format!(
                "{label}: capacity smaller than one set"
            )));
        }
        Ok(())
    }
}

/// Branch predictor configuration: bimodal agree predictor plus a return
/// address stack (Table 1: "2KB bimodal agree, 32 entry RAS").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BpredConfig {
    /// Number of 2-bit counters (2 KB ⇒ 8192 counters).
    pub counters: u32,
    /// Return address stack entries.
    pub ras_entries: u32,
}

/// Full core configuration.
///
/// [`CoreConfig::base`] reproduces Table 1; the `with_*` adaptation methods
/// produce the microarchitectural DRM configurations of §6.1 (combinations
/// of instruction-window size, ALU count and FPU count, down to a 16-entry
/// window with 2 ALUs and 1 FPU).
///
/// # Examples
///
/// ```
/// use sim_cpu::CoreConfig;
/// let base = CoreConfig::base();
/// assert_eq!(base.window_size, 128);
/// assert_eq!(base.issue_width(), 12); // 6 int + 4 fp + 2 addr-gen
///
/// let throttled = base.with_adaptation(16, 2, 1)?;
/// assert_eq!(throttled.issue_width(), 5);
/// # Ok::<(), sim_common::SimError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Clock frequency (base: 4 GHz).
    pub frequency: Hertz,
    /// Supply voltage (base: 1.0 V at 65 nm).
    pub vdd: Volts,
    /// Instructions fetched per cycle (8).
    pub fetch_width: u32,
    /// Instructions retired per cycle (8).
    pub retire_width: u32,
    /// Fetch-to-dispatch pipeline depth in cycles.
    pub frontend_latency: u32,
    /// Extra redirect cycles charged after a mispredicted branch resolves.
    pub mispredict_redirect: u32,
    /// Centralized instruction window entries (issue queue + ROB; 128).
    pub window_size: u32,
    /// Physical integer registers (192).
    pub int_regs: u32,
    /// Physical floating-point registers (192).
    pub fp_regs: u32,
    /// Memory queue entries (32).
    pub mem_queue: u32,
    /// Active integer ALUs (6 in the base, adaptable down to 2).
    pub int_alus: u32,
    /// Active floating-point units (4 in the base, adaptable down to 1).
    pub fpus: u32,
    /// Address-generation units (2).
    pub addr_gens: u32,
    /// Branch predictor geometry.
    pub bpred: BpredConfig,
    /// L1 data cache (64 KB, 2-way, 64 B lines).
    pub l1d: CacheConfig,
    /// L1 instruction cache (32 KB, 2-way, 64 B lines).
    pub l1i: CacheConfig,
    /// Unified L2 (1 MB, 4-way, 64 B lines).
    pub l2: CacheConfig,
    /// L1 data cache ports (2).
    pub l1d_ports: u32,
    /// L1 data hit time in cycles (on-chip: scales with the clock).
    pub l1_hit_cycles: u32,
    /// L2 hit time in nanoseconds (off-chip: fixed in wall-clock time;
    /// 20 cycles at the 4 GHz base ⇒ 5 ns).
    pub l2_hit_ns: f64,
    /// Main-memory latency in nanoseconds (102 cycles at 4 GHz ⇒ 25.5 ns).
    pub mem_ns: f64,
    /// Outstanding L1D misses (MSHRs, 12).
    pub mshrs: u32,
    /// Tagged next-line prefetch on L1D misses. Table 1 lists no
    /// prefetcher, so the base configuration disables it; the `ablation`
    /// benchmark quantifies its effect.
    pub prefetch_next_line: bool,
}

/// Largest ALU pool of the adaptation space (the base configuration).
pub const MAX_INT_ALUS: u32 = 6;
/// Largest FPU pool of the adaptation space.
pub const MAX_FPUS: u32 = 4;
/// Largest instruction window of the adaptation space.
pub const MAX_WINDOW: u32 = 128;

impl CoreConfig {
    /// The base non-adaptive processor of Table 1: 65 nm, 1.0 V, 4 GHz,
    /// 8-wide, 128-entry window, 6 ALU / 4 FPU / 2 address-generation units.
    pub fn base() -> CoreConfig {
        CoreConfig {
            frequency: Hertz::from_ghz(4.0),
            vdd: Volts(1.0),
            fetch_width: 8,
            retire_width: 8,
            frontend_latency: 3,
            mispredict_redirect: 2,
            window_size: MAX_WINDOW,
            int_regs: 192,
            fp_regs: 192,
            mem_queue: 32,
            int_alus: MAX_INT_ALUS,
            fpus: MAX_FPUS,
            addr_gens: 2,
            bpred: BpredConfig {
                counters: 8192,
                ras_entries: 32,
            },
            l1d: CacheConfig {
                size_bytes: 64 * 1024,
                assoc: 2,
                line_bytes: 64,
            },
            l1i: CacheConfig {
                size_bytes: 32 * 1024,
                assoc: 2,
                line_bytes: 64,
            },
            l2: CacheConfig {
                size_bytes: 1024 * 1024,
                assoc: 4,
                line_bytes: 64,
            },
            l1d_ports: 2,
            l1_hit_cycles: 2,
            l2_hit_ns: 5.0,
            mem_ns: 25.5,
            mshrs: 12,
            prefetch_next_line: false,
        }
    }

    /// Returns a copy with the DRM microarchitectural adaptation applied:
    /// `window` instruction-window entries, `alus` integer ALUs and `fpus`
    /// floating-point units. The issue width tracks the active FU count
    /// (§6.1) automatically via [`issue_width`](CoreConfig::issue_width).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a value exceeds the base
    /// resources or is zero.
    pub fn with_adaptation(
        &self,
        window: u32,
        alus: u32,
        fpus: u32,
    ) -> Result<CoreConfig, SimError> {
        if window == 0 || window > MAX_WINDOW {
            return Err(SimError::invalid_config(format!(
                "window size {window} outside 1..={MAX_WINDOW}"
            )));
        }
        if alus == 0 || alus > MAX_INT_ALUS {
            return Err(SimError::invalid_config(format!(
                "ALU count {alus} outside 1..={MAX_INT_ALUS}"
            )));
        }
        if fpus == 0 || fpus > MAX_FPUS {
            return Err(SimError::invalid_config(format!(
                "FPU count {fpus} outside 1..={MAX_FPUS}"
            )));
        }
        let mut cfg = self.clone();
        cfg.window_size = window;
        cfg.int_alus = alus;
        cfg.fpus = fpus;
        Ok(cfg)
    }

    /// Returns a copy clocked at `frequency` with supply `vdd` (the DVS
    /// adaptation). Off-chip latencies stay fixed in nanoseconds, so their
    /// cycle counts scale with the clock.
    pub fn with_dvs(&self, frequency: Hertz, vdd: Volts) -> CoreConfig {
        let mut cfg = self.clone();
        cfg.frequency = frequency;
        cfg.vdd = vdd;
        cfg
    }

    /// Issue width: the sum of all active functional units (§6.1).
    pub fn issue_width(&self) -> u32 {
        self.int_alus + self.fpus + self.addr_gens
    }

    /// L2 hit latency in cycles at the configured frequency.
    pub fn l2_hit_cycles(&self) -> u32 {
        (self.l2_hit_ns * 1e-9 * self.frequency.0).ceil() as u32
    }

    /// Main-memory latency in cycles at the configured frequency.
    pub fn mem_cycles(&self) -> u32 {
        (self.mem_ns * 1e-9 * self.frequency.0).ceil() as u32
    }

    /// Fraction of each structure that is powered on, relative to the most
    /// aggressive configuration. Powered-down resources have no current
    /// flow or supply, so their electromigration/TDDB FIT contribution and
    /// their leakage scale with this fraction (§6.1).
    pub fn powered_fraction(&self, structure: Structure) -> f64 {
        match structure {
            Structure::IntAlu => self.int_alus as f64 / MAX_INT_ALUS as f64,
            Structure::Fpu => self.fpus as f64 / MAX_FPUS as f64,
            Structure::Window => self.window_size as f64 / MAX_WINDOW as f64,
            _ => 1.0,
        }
    }

    /// Validates the whole configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when any width/size is zero, a
    /// cache geometry is invalid, or the frequency/voltage is non-positive.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.frequency.0 <= 0.0 || !self.frequency.0.is_finite() {
            return Err(SimError::invalid_config("frequency must be positive"));
        }
        if self.vdd.0 <= 0.0 || !self.vdd.0.is_finite() {
            return Err(SimError::invalid_config("vdd must be positive"));
        }
        for (label, v) in [
            ("fetch_width", self.fetch_width),
            ("retire_width", self.retire_width),
            ("window_size", self.window_size),
            ("int_regs", self.int_regs),
            ("fp_regs", self.fp_regs),
            ("mem_queue", self.mem_queue),
            ("int_alus", self.int_alus),
            ("fpus", self.fpus),
            ("addr_gens", self.addr_gens),
            ("l1d_ports", self.l1d_ports),
            ("mshrs", self.mshrs),
            ("bpred counters", self.bpred.counters),
        ] {
            if v == 0 {
                return Err(SimError::invalid_config(format!(
                    "{label} must be non-zero"
                )));
            }
        }
        if self.int_regs < 64 || self.fp_regs < 64 {
            // Physical registers must at least cover the architectural state.
            return Err(SimError::invalid_config(
                "physical register files must hold the 64 architectural registers",
            ));
        }
        self.l1d.validate("l1d")?;
        self.l1i.validate("l1i")?;
        self.l2.validate("l2")?;
        if self.l2_hit_ns <= 0.0 || self.mem_ns <= self.l2_hit_ns {
            return Err(SimError::invalid_config(
                "memory latency must exceed L2 latency, both positive",
            ));
        }
        Ok(())
    }
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig::base()
    }
}

/// Everything about a [`CoreConfig`] that cycle-level timing can observe.
///
/// The processor model uses `vdd` only for validation — voltage feeds
/// power and reliability, never cycle counts — so two configurations with
/// equal timing keys produce bit-identical [`IntervalStats`] for the same
/// instruction stream. That makes this the cache key for timing reuse
/// across a DVS voltage grid: N voltages at one frequency share one key.
///
/// Float fields (frequency, off-chip nanosecond latencies) are keyed by
/// their IEEE-754 bit patterns, so equality here is exactly "the timing
/// model sees the same numbers", with no rounding-induced aliasing.
///
/// [`IntervalStats`]: crate::IntervalStats
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingKey {
    frequency_bits: u64,
    fetch_width: u32,
    retire_width: u32,
    frontend_latency: u32,
    mispredict_redirect: u32,
    window_size: u32,
    int_regs: u32,
    fp_regs: u32,
    mem_queue: u32,
    int_alus: u32,
    fpus: u32,
    addr_gens: u32,
    bpred: BpredConfig,
    l1d: CacheConfig,
    l1i: CacheConfig,
    l2: CacheConfig,
    l1d_ports: u32,
    l1_hit_cycles: u32,
    l2_hit_ns_bits: u64,
    mem_ns_bits: u64,
    mshrs: u32,
    prefetch_next_line: bool,
}

impl CoreConfig {
    /// The timing-relevant projection of this configuration: every field
    /// except `vdd`. See [`TimingKey`].
    pub fn timing_key(&self) -> TimingKey {
        TimingKey {
            frequency_bits: self.frequency.0.to_bits(),
            fetch_width: self.fetch_width,
            retire_width: self.retire_width,
            frontend_latency: self.frontend_latency,
            mispredict_redirect: self.mispredict_redirect,
            window_size: self.window_size,
            int_regs: self.int_regs,
            fp_regs: self.fp_regs,
            mem_queue: self.mem_queue,
            int_alus: self.int_alus,
            fpus: self.fpus,
            addr_gens: self.addr_gens,
            bpred: self.bpred,
            l1d: self.l1d,
            l1i: self.l1i,
            l2: self.l2,
            l1d_ports: self.l1d_ports,
            l1_hit_cycles: self.l1_hit_cycles,
            l2_hit_ns_bits: self.l2_hit_ns.to_bits(),
            mem_ns_bits: self.mem_ns.to_bits(),
            mshrs: self.mshrs,
            prefetch_next_line: self.prefetch_next_line,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_matches_table1() {
        let c = CoreConfig::base();
        assert_eq!(c.frequency, Hertz::from_ghz(4.0));
        assert_eq!(c.vdd, Volts(1.0));
        assert_eq!(c.fetch_width, 8);
        assert_eq!(c.window_size, 128);
        assert_eq!(c.int_regs, 192);
        assert_eq!(c.fp_regs, 192);
        assert_eq!(c.mem_queue, 32);
        assert_eq!(c.int_alus, 6);
        assert_eq!(c.fpus, 4);
        assert_eq!(c.addr_gens, 2);
        assert_eq!(c.l1d.size_bytes, 64 * 1024);
        assert_eq!(c.l1d.assoc, 2);
        assert_eq!(c.l1i.size_bytes, 32 * 1024);
        assert_eq!(c.l2.size_bytes, 1024 * 1024);
        assert_eq!(c.l2.assoc, 4);
        assert_eq!(c.mshrs, 12);
        assert_eq!(c.bpred.counters, 8192); // 2 KB of 2-bit counters
        assert_eq!(c.bpred.ras_entries, 32);
        c.validate().unwrap();
    }

    #[test]
    fn latencies_scale_with_frequency() {
        let base = CoreConfig::base();
        // Table 1 contention-less latencies at 4 GHz.
        assert_eq!(base.l2_hit_cycles(), 20);
        assert_eq!(base.mem_cycles(), 102);
        let slow = base.with_dvs(Hertz::from_ghz(2.0), Volts(0.8));
        assert_eq!(slow.l2_hit_cycles(), 10);
        assert_eq!(slow.mem_cycles(), 51);
        let fast = base.with_dvs(Hertz::from_ghz(5.0), Volts(1.15));
        assert_eq!(fast.l2_hit_cycles(), 25);
        assert_eq!(fast.mem_cycles(), 128);
    }

    #[test]
    fn adaptation_bounds() {
        let base = CoreConfig::base();
        assert!(base.with_adaptation(0, 2, 1).is_err());
        assert!(base.with_adaptation(16, 0, 1).is_err());
        assert!(base.with_adaptation(16, 2, 0).is_err());
        assert!(base.with_adaptation(256, 2, 1).is_err());
        assert!(base.with_adaptation(16, 8, 1).is_err());
        assert!(base.with_adaptation(16, 2, 8).is_err());
        let c = base.with_adaptation(32, 4, 2).unwrap();
        assert_eq!(c.window_size, 32);
        assert_eq!(c.issue_width(), 8);
        c.validate().unwrap();
    }

    #[test]
    fn powered_fraction_tracks_adaptation() {
        let c = CoreConfig::base().with_adaptation(16, 3, 1).unwrap();
        assert!((c.powered_fraction(Structure::Window) - 0.125).abs() < 1e-12);
        assert!((c.powered_fraction(Structure::IntAlu) - 0.5).abs() < 1e-12);
        assert!((c.powered_fraction(Structure::Fpu) - 0.25).abs() < 1e-12);
        assert_eq!(c.powered_fraction(Structure::Dcache), 1.0);
    }

    #[test]
    fn cache_sets() {
        let c = CoreConfig::base();
        assert_eq!(c.l1d.sets().unwrap(), 512);
        assert_eq!(c.l1i.sets().unwrap(), 256);
        assert_eq!(c.l2.sets().unwrap(), 4096);
    }

    #[test]
    fn cache_sets_rejects_invalid_geometry_instead_of_panicking() {
        // Regression: `sets()` used to divide by `assoc * line_bytes`
        // unconditionally, panicking on zeroed geometry.
        for bad in [
            CacheConfig {
                size_bytes: 1024,
                assoc: 0,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 1024,
                assoc: 2,
                line_bytes: 0,
            },
            CacheConfig {
                size_bytes: 0,
                assoc: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 3000,
                assoc: 2,
                line_bytes: 64,
            },
            CacheConfig {
                size_bytes: 64,
                assoc: 4,
                line_bytes: 64,
            },
        ] {
            assert!(bad.sets().is_err(), "{bad:?} must be rejected");
            assert!(
                CacheConfig::new(bad.size_bytes, bad.assoc, bad.line_bytes).is_err(),
                "{bad:?} must not construct"
            );
        }
    }

    #[test]
    fn cache_config_new_validates() {
        let c = CacheConfig::new(64 * 1024, 2, 64).unwrap();
        assert_eq!(c, CoreConfig::base().l1d);
        assert_eq!(c.sets().unwrap(), 512);
    }

    #[test]
    fn validate_rejects_bad_cache() {
        let mut c = CoreConfig::base();
        c.l1d.size_bytes = 3000;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_zero_frequency() {
        let mut c = CoreConfig::base();
        c.frequency = Hertz(0.0);
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_rejects_tiny_regfile() {
        let mut c = CoreConfig::base();
        c.int_regs = 32;
        assert!(c.validate().is_err());
    }

    #[test]
    fn timing_key_ignores_vdd_only() {
        let base = CoreConfig::base();
        // Voltage changes at fixed frequency share a key...
        let dvs = base.with_dvs(base.frequency, Volts(0.85));
        assert_eq!(base.timing_key(), dvs.timing_key());
        // ...while every timing-visible knob produces a distinct key.
        let freq = base.with_dvs(Hertz::from_ghz(3.5), base.vdd);
        assert_ne!(base.timing_key(), freq.timing_key());
        let arch = base.with_adaptation(64, 4, 2).unwrap();
        assert_ne!(base.timing_key(), arch.timing_key());
        let mut mem = base.clone();
        mem.mem_ns = 30.0;
        assert_ne!(base.timing_key(), mem.timing_key());
        let mut pf = base.clone();
        pf.prefetch_next_line = true;
        assert_ne!(base.timing_key(), pf.timing_key());
    }
}
