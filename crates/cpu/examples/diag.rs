use sim_cpu::{CoreConfig, Processor};
use workload::{App, SyntheticStream};

fn main() {
    for app in App::ALL {
        let profile = app.profile();
        let src = SyntheticStream::new(profile.clone(), 12345);
        let mut cpu = Processor::new(CoreConfig::base(), src).unwrap();
        let resident = profile.data_working_set.min(2 * 1024 * 1024);
        cpu.prewarm(0x1000_0000, resident, 0, profile.code_footprint);
        cpu.run_instructions(100_000);
        let s = cpu.run_instructions(100_000);
        let c = s.cycles as f64;
        println!(
            "{:8} ipc={:.2} (paper {:.1})  mispred={:.3} l1d={:.3} l2={:.3} | empty={:.2} headmem={:.2} headexec={:.2} fstall={:.2}",
            app.name(), s.ipc(), app.paper_ipc(),
            s.bpred.mispredict_rate(), s.l1d.miss_rate(), s.l2.miss_rate(),
            s.counters.cycles_window_empty as f64 / c,
            s.counters.cycles_head_mem as f64 / c,
            s.counters.cycles_head_exec as f64 / c,
            s.counters.cycles_fetch_stalled as f64 / c,
        );
    }
}
