//! Analytic validation: hand-constructed instruction traces whose
//! steady-state IPC is known from first principles. These pin the
//! pipeline's resource limits (fetch width, per-class units, ports,
//! latencies) far more sharply than statistical workloads can.

use sim_cpu::{CoreConfig, Processor};
use workload::{ArchReg, MicroOp, OpClass, RecordedTrace, RegClass};

fn op(pc: u64, class: OpClass, dest: Option<u16>, srcs: [Option<u16>; 2]) -> MicroOp {
    let reg = |i: u16| ArchReg::new(RegClass::Int, i);
    MicroOp {
        pc,
        class,
        dest: dest.map(reg),
        srcs: [srcs[0].map(reg), srcs[1].map(reg)],
        addr: None,
        taken: false,
    }
}

fn fp_op(pc: u64, class: OpClass, dest: u16, srcs: [Option<u16>; 2]) -> MicroOp {
    let reg = |i: u16| ArchReg::new(RegClass::Fp, i);
    MicroOp {
        pc,
        class,
        dest: Some(reg(dest)),
        srcs: [srcs[0].map(reg), srcs[1].map(reg)],
        addr: None,
        taken: false,
    }
}

fn measure(ops: Vec<MicroOp>, insts: u64) -> f64 {
    let trace = RecordedTrace::from_ops("analytic", ops);
    let mut cpu = Processor::new(CoreConfig::base(), trace.replayer()).unwrap();
    // Warm up once around the trace, then measure.
    cpu.run_instructions(insts / 2);
    cpu.run_instructions(insts).ipc()
}

/// Independent single-cycle integer ops: limited by the 6 integer ALUs
/// (fetch is 8-wide, issue has 6 int units).
#[test]
fn independent_alu_ops_saturate_the_alu_pool() {
    // 64 ops with distinct destinations and no sources, sequential PCs.
    let ops: Vec<_> = (0..48)
        .map(|i| {
            op(
                i * 4,
                OpClass::IntAlu,
                Some((i % 48 + 1) as u16),
                [None, None],
            )
        })
        .collect();
    let ipc = measure(ops, 60_000);
    assert!(
        (5.4..=6.05).contains(&ipc),
        "independent ALU IPC {ipc:.2}, expected ~6 (unit-limited)"
    );
}

/// A fully serial dependence chain of 1-cycle ops: IPC must be ~1.
#[test]
fn dependent_chain_runs_at_one_ipc() {
    // op_i reads the previous op's destination (alternate two registers).
    let ops: Vec<_> = (0..32)
        .map(|i| {
            let dst = (i % 2 + 1) as u16;
            let src = ((i + 1) % 2 + 1) as u16;
            op(i * 4, OpClass::IntAlu, Some(dst), [Some(src), None])
        })
        .collect();
    let ipc = measure(ops, 30_000);
    assert!(
        (0.85..=1.05).contains(&ipc),
        "serial chain IPC {ipc:.2}, expected ~1"
    );
}

/// A serial chain of 7-cycle multiplies: IPC must be ~1/7.
#[test]
fn multiply_chain_runs_at_latency_reciprocal() {
    let ops: Vec<_> = (0..16)
        .map(|i| {
            let dst = (i % 2 + 1) as u16;
            let src = ((i + 1) % 2 + 1) as u16;
            op(i * 4, OpClass::IntMul, Some(dst), [Some(src), None])
        })
        .collect();
    let ipc = measure(ops, 10_000);
    let expect = 1.0 / 7.0;
    assert!(
        (ipc - expect).abs() < 0.03,
        "multiply chain IPC {ipc:.3}, expected ~{expect:.3}"
    );
}

/// Unpipelined divides occupy their unit for the full latency: with one
/// divide per two ALU ops and 6 units, throughput is bounded by divide
/// occupancy, not by the chain (all independent here).
#[test]
fn unpipelined_divides_throttle_throughput() {
    // All independent divides: 6 units × (1/12 per cycle each) = 0.5 IPC.
    let ops: Vec<_> = (0..24)
        .map(|i| {
            op(
                i * 4,
                OpClass::IntDiv,
                Some((i % 24 + 1) as u16),
                [None, None],
            )
        })
        .collect();
    let ipc = measure(ops, 6_000);
    assert!(
        (0.42..=0.55).contains(&ipc),
        "divide throughput {ipc:.2}, expected ~0.5 (6 units / 12 cycles)"
    );
}

/// Independent L1-resident loads: limited by the 2 cache ports (the 2
/// address-generation units match).
#[test]
fn independent_loads_saturate_the_ports() {
    let reg = |i: u16| ArchReg::new(RegClass::Int, i);
    let ops: Vec<_> = (0..32)
        .map(|i| MicroOp {
            pc: i * 4,
            class: OpClass::Load,
            dest: Some(reg((i % 32 + 1) as u16)),
            srcs: [None, None],
            // All within one 4 KiB region: L1-resident after a lap.
            addr: Some(0x2000_0000 + (i * 8) % 4096),
            taken: false,
        })
        .collect();
    let ipc = measure(ops, 30_000);
    assert!(
        (1.7..=2.05).contains(&ipc),
        "independent load IPC {ipc:.2}, expected ~2 (port-limited)"
    );
}

/// Independent pipelined FP adds: limited by the 4 FPUs.
#[test]
fn independent_fp_ops_saturate_the_fpu_pool() {
    let ops: Vec<_> = (0..32)
        .map(|i| fp_op(i * 4, OpClass::FpAdd, (i % 32 + 1) as u16, [None, None]))
        .collect();
    let ipc = measure(ops, 30_000);
    assert!(
        (3.5..=4.05).contains(&ipc),
        "independent FP IPC {ipc:.2}, expected ~4 (FPU-limited)"
    );
}

/// A mixed int+fp stream can exceed either pool alone (the issue width is
/// the sum of the units, §6.1): 6 ALU + 4 FPU sustains ~8 (fetch-limited).
#[test]
fn mixed_stream_is_fetch_limited() {
    let mut ops = Vec::new();
    for i in 0..48u64 {
        if i % 2 == 0 {
            ops.push(op(
                i * 4,
                OpClass::IntAlu,
                Some((i % 40 + 1) as u16),
                [None, None],
            ));
        } else {
            ops.push(fp_op(
                i * 4,
                OpClass::FpAdd,
                (i % 40 + 1) as u16,
                [None, None],
            ));
        }
    }
    let ipc = measure(ops, 60_000);
    assert!(
        (7.0..=8.05).contains(&ipc),
        "mixed IPC {ipc:.2}, expected ~8 (fetch-limited)"
    );
}

/// Taken branches end the fetch block: a tight two-instruction loop
/// (op + taken branch back) is fetch-limited to ~2 IPC.
#[test]
fn taken_branches_bound_fetch_blocks() {
    let branch = MicroOp {
        pc: 4,
        class: OpClass::Branch,
        dest: None,
        srcs: [None, None],
        addr: None,
        taken: true,
    };
    let ops = vec![op(0, OpClass::IntAlu, Some(1), [None, None]), branch];
    let ipc = measure(ops, 20_000);
    assert!(
        (1.6..=2.05).contains(&ipc),
        "2-op loop IPC {ipc:.2}, expected ~2 (one fetch block per iteration)"
    );
}
