//! Randomized property tests of the timing-simulator data structures: the
//! set-associative cache against a reference model, the branch predictor,
//! and the rename machinery. Cases come from the in-tree deterministic PRNG.

use sim_common::Xoshiro256pp;
use sim_cpu::{Bpred, BpredConfig, Cache, CacheConfig, Lookup, Rename};
use std::collections::VecDeque;
use workload::{ArchReg, RegClass};

/// A straightforward reference implementation of a set-associative LRU
/// cache (VecDeque per set, most recent at the back).
struct ReferenceCache {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    line_shift: u32,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> ReferenceCache {
        ReferenceCache {
            sets: vec![VecDeque::new(); cfg.sets().unwrap() as usize],
            assoc: cfg.assoc as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let n_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line % n_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push_back(line);
            true
        } else {
            if set.len() == self.assoc {
                set.pop_front();
            }
            set.push_back(line);
            false
        }
    }
}

/// The production cache agrees with the reference LRU model on every
/// access of a random trace.
#[test]
fn cache_matches_reference_lru() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3001);
    for _ in 0..64 {
        let n = rng.gen_usize(1..400);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_u64(0..16_384)).collect();
        let writes: Vec<bool> = (0..400).map(|_| rng.gen_bool(0.5)).collect();
        let cfg = CacheConfig {
            size_bytes: 1024,
            assoc: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(cfg).unwrap();
        let mut reference = ReferenceCache::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            let expect_hit = reference.access(addr);
            let got = cache.access(addr, writes[i % writes.len()]);
            assert_eq!(
                matches!(got, Lookup::Hit),
                expect_hit,
                "access {} to {:#x} disagreed",
                i,
                addr
            );
        }
        let stats = cache.stats();
        assert_eq!(stats.accesses, addrs.len() as u64);
        assert_eq!(stats.hits + stats.misses, stats.accesses);
    }
}

/// `contains` never lies: it matches the hit/miss outcome of an
/// immediately following access.
#[test]
fn cache_contains_is_truthful() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3002);
    for _ in 0..64 {
        let n = rng.gen_usize(1..200);
        let addrs: Vec<u64> = (0..n).map(|_| rng.gen_u64(0..8_192)).collect();
        let cfg = CacheConfig {
            size_bytes: 512,
            assoc: 2,
            line_bytes: 64,
        };
        let mut cache = Cache::new(cfg).unwrap();
        for &addr in &addrs {
            let resident = cache.contains(addr);
            let outcome = cache.access(addr, false);
            assert_eq!(resident, matches!(outcome, Lookup::Hit));
        }
    }
}

/// After `k ≥ 2` consistent outcomes, the 2-bit counter predicts that
/// direction.
#[test]
fn bpred_learns_consistent_branches() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3003);
    for _ in 0..64 {
        let pc = rng.gen_u64(0..100_000);
        let taken = rng.gen_bool(0.5);
        let mut bp = Bpred::new(BpredConfig {
            counters: 4096,
            ras_entries: 32,
        });
        bp.update(pc, taken);
        bp.update(pc, taken);
        assert_eq!(bp.peek(pc), taken);
    }
}

/// Renaming: writes to distinct architectural registers never collide
/// on physical registers, and the free count is conserved.
#[test]
fn rename_conserves_registers() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3004);
    for _ in 0..64 {
        let n = rng.gen_usize(1..100);
        let dests: Vec<u16> = (0..n).map(|_| rng.gen_u64(0..64) as u16).collect();
        let mut rn = Rename::new(192, 192);
        let initial_free = rn.free_count(RegClass::Int);
        let mut live = Vec::new();
        let mut outstanding = 0usize;
        for &d in &dests {
            if let Some((new, old)) = rn.alloc_dest(ArchReg::new(RegClass::Int, d)) {
                assert!(!live.contains(&new.index), "phys reg double-allocated");
                live.push(new.index);
                // Commit immediately: release the previous mapping.
                rn.release(old);
                live.retain(|&r| r != old.index);
                outstanding += 1;
            }
        }
        // One allocation per successful dest, one release per allocation:
        // the free count is back to its initial value.
        let _ = outstanding;
        assert_eq!(rn.free_count(RegClass::Int), initial_free);
    }
}

/// The current mapping always points at the most recent allocation.
#[test]
fn rename_maps_track_latest_writer() {
    let mut rng = Xoshiro256pp::seed_from_u64(0x3005);
    for _ in 0..64 {
        let n = rng.gen_usize(1..60);
        let dests: Vec<u16> = (0..n).map(|_| rng.gen_u64(0..8) as u16).collect();
        let mut rn = Rename::new(192, 192);
        let mut latest = std::collections::HashMap::new();
        for &d in &dests {
            let arch = ArchReg::new(RegClass::Int, d);
            if let Some((new, _old)) = rn.alloc_dest(arch) {
                latest.insert(d, new);
            }
        }
        for (&d, &phys) in &latest {
            assert_eq!(rn.rename_src(ArchReg::new(RegClass::Int, d)), phys);
        }
    }
}
