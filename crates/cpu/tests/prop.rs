//! Property-based tests of the timing-simulator data structures: the
//! set-associative cache against a reference model, the branch predictor,
//! and the rename machinery.

use proptest::prelude::*;
use sim_cpu::{Bpred, BpredConfig, Cache, CacheConfig, Lookup, Rename};
use std::collections::VecDeque;
use workload::{ArchReg, RegClass};

/// A straightforward reference implementation of a set-associative LRU
/// cache (VecDeque per set, most recent at the back).
struct ReferenceCache {
    sets: Vec<VecDeque<u64>>,
    assoc: usize,
    line_shift: u32,
}

impl ReferenceCache {
    fn new(cfg: CacheConfig) -> ReferenceCache {
        ReferenceCache {
            sets: vec![VecDeque::new(); cfg.sets() as usize],
            assoc: cfg.assoc as usize,
            line_shift: cfg.line_bytes.trailing_zeros(),
        }
    }

    fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let n_sets = self.sets.len() as u64;
        let set = &mut self.sets[(line % n_sets) as usize];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            set.push_back(line);
            true
        } else {
            if set.len() == self.assoc {
                set.pop_front();
            }
            set.push_back(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The production cache agrees with the reference LRU model on every
    /// access of a random trace.
    #[test]
    fn cache_matches_reference_lru(
        addrs in proptest::collection::vec(0u64..16_384, 1..400),
        writes in proptest::collection::vec(any::<bool>(), 400),
    ) {
        let cfg = CacheConfig { size_bytes: 1024, assoc: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        let mut reference = ReferenceCache::new(cfg);
        for (i, &addr) in addrs.iter().enumerate() {
            let expect_hit = reference.access(addr);
            let got = cache.access(addr, writes[i % writes.len()]);
            prop_assert_eq!(
                matches!(got, Lookup::Hit),
                expect_hit,
                "access {} to {:#x} disagreed",
                i,
                addr
            );
        }
        let stats = cache.stats();
        prop_assert_eq!(stats.accesses, addrs.len() as u64);
        prop_assert_eq!(stats.hits + stats.misses, stats.accesses);
    }

    /// `contains` never lies: it matches the hit/miss outcome of an
    /// immediately following access.
    #[test]
    fn cache_contains_is_truthful(addrs in proptest::collection::vec(0u64..8_192, 1..200)) {
        let cfg = CacheConfig { size_bytes: 512, assoc: 2, line_bytes: 64 };
        let mut cache = Cache::new(cfg);
        for &addr in &addrs {
            let resident = cache.contains(addr);
            let outcome = cache.access(addr, false);
            prop_assert_eq!(resident, matches!(outcome, Lookup::Hit));
        }
    }

    /// After `k ≥ 2` consistent outcomes, the 2-bit counter predicts that
    /// direction.
    #[test]
    fn bpred_learns_consistent_branches(pc in 0u64..100_000, taken in any::<bool>()) {
        let mut bp = Bpred::new(BpredConfig { counters: 4096, ras_entries: 32 });
        bp.update(pc, taken);
        bp.update(pc, taken);
        prop_assert_eq!(bp.peek(pc), taken);
    }

    /// Renaming: writes to distinct architectural registers never collide
    /// on physical registers, and the free count is conserved.
    #[test]
    fn rename_conserves_registers(
        dests in proptest::collection::vec(0u16..64, 1..100),
    ) {
        let mut rn = Rename::new(192, 192);
        let initial_free = rn.free_count(RegClass::Int);
        let mut live = Vec::new();
        let mut outstanding = 0usize;
        for &d in &dests {
            if let Some((new, old)) = rn.alloc_dest(ArchReg::new(RegClass::Int, d)) {
                prop_assert!(!live.contains(&new.index), "phys reg double-allocated");
                live.push(new.index);
                // Commit immediately: release the previous mapping.
                rn.release(old);
                live.retain(|&r| r != old.index);
                outstanding += 1;
            }
        }
        // One allocation per successful dest, one release per allocation:
        // the free count is back to its initial value.
        let _ = outstanding;
        prop_assert_eq!(rn.free_count(RegClass::Int), initial_free);
    }

    /// The current mapping always points at the most recent allocation.
    #[test]
    fn rename_maps_track_latest_writer(
        dests in proptest::collection::vec(0u16..8, 1..60),
    ) {
        let mut rn = Rename::new(192, 192);
        let mut latest = std::collections::HashMap::new();
        for &d in &dests {
            let arch = ArchReg::new(RegClass::Int, d);
            if let Some((new, _old)) = rn.alloc_dest(arch) {
                latest.insert(d, new);
            }
        }
        for (&d, &phys) in &latest {
            prop_assert_eq!(rn.rename_src(ArchReg::new(RegClass::Int, d)), phys);
        }
    }
}
