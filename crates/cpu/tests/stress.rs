//! Stress tests: the pipeline must make forward progress (no livelock, no
//! panic) and produce sane statistics at the extreme corners of the
//! configuration space.

use sim_common::{Hertz, Volts};
use sim_cpu::{CoreConfig, Processor};
use workload::{App, InstructionSource, RecordedTrace, SyntheticStream};

fn run(app: App, config: CoreConfig, insts: u64) -> sim_cpu::IntervalStats {
    let mut cpu = Processor::new(config, SyntheticStream::new(app.profile(), 77)).unwrap();
    cpu.run_instructions(insts)
}

#[test]
fn starved_physical_register_file() {
    // 66 physical registers per class: only two rename slots beyond the
    // architectural state — dispatch stalls constantly but must progress.
    let mut cfg = CoreConfig::base();
    cfg.int_regs = 66;
    cfg.fp_regs = 66;
    let stats = run(App::Gzip, cfg, 10_000);
    assert_eq!(stats.instructions, 10_000);
    assert!(stats.ipc() > 0.01);
}

#[test]
fn single_entry_window() {
    let cfg = CoreConfig::base().with_adaptation(1, 1, 1).unwrap();
    let stats = run(App::Ammp, cfg, 5_000);
    assert_eq!(stats.instructions, 5_000);
    // One-entry window serializes everything.
    assert!(stats.ipc() < 1.0);
}

#[test]
fn single_wide_frontend() {
    let mut cfg = CoreConfig::base();
    cfg.fetch_width = 1;
    cfg.retire_width = 1;
    let stats = run(App::MpgDec, cfg, 10_000);
    assert_eq!(stats.instructions, 10_000);
    assert!(stats.ipc() <= 1.0 + 1e-9, "cannot beat a 1-wide frontend");
}

#[test]
fn tiny_memory_queue_and_single_mshr() {
    let mut cfg = CoreConfig::base();
    cfg.mem_queue = 1;
    cfg.mshrs = 1;
    let stats = run(App::Art, cfg, 8_000);
    assert_eq!(stats.instructions, 8_000);
    assert!(stats.ipc() > 0.005);
}

#[test]
fn minimal_predictor_and_ras() {
    let mut cfg = CoreConfig::base();
    cfg.bpred.counters = 2;
    cfg.bpred.ras_entries = 1;
    let stats = run(App::Twolf, cfg, 10_000);
    assert_eq!(stats.instructions, 10_000);
    // A 2-entry bimodal on twolf mispredicts heavily but still works.
    assert!(stats.bpred.mispredict_rate() > 0.05);
}

#[test]
fn prefetcher_helps_streaming_and_never_deadlocks() {
    let mut on = CoreConfig::base();
    on.prefetch_next_line = true;
    let mut with = Processor::new(on, SyntheticStream::new(App::Equake.profile(), 3)).unwrap();
    with.prewarm(0x1000_0000, 1 << 21, 0, 24 * 1024);
    with.run_instructions(20_000);
    let s_on = with.run_instructions(40_000);

    let mut without = Processor::new(
        CoreConfig::base(),
        SyntheticStream::new(App::Equake.profile(), 3),
    )
    .unwrap();
    without.prewarm(0x1000_0000, 1 << 21, 0, 24 * 1024);
    without.run_instructions(20_000);
    let s_off = without.run_instructions(40_000);

    assert!(
        s_on.ipc() > s_off.ipc(),
        "next-line prefetch must help a streaming app: {} vs {}",
        s_on.ipc(),
        s_off.ipc()
    );
}

#[test]
fn extreme_dvs_points_are_stable() {
    for (ghz, v) in [(2.5, 0.83), (5.0, 1.11)] {
        let cfg = CoreConfig::base().with_dvs(Hertz::from_ghz(ghz), Volts(v));
        let stats = run(App::Bzip2, cfg, 10_000);
        assert_eq!(stats.instructions, 10_000);
    }
}

#[test]
fn runtime_dvs_switching_mid_run_preserves_state() {
    let mut cpu = Processor::new(
        CoreConfig::base(),
        SyntheticStream::new(App::Gzip.profile(), 5),
    )
    .unwrap();
    cpu.run_instructions(5_000);
    for ghz in [2.5, 5.0, 3.0, 4.0] {
        cpu.set_dvs(Hertz::from_ghz(ghz), Volts(0.55 + 0.45 * ghz / 4.0))
            .unwrap();
        let stats = cpu.run_instructions(5_000);
        assert_eq!(stats.instructions, 5_000);
        assert!(stats.ipc() > 0.05);
    }
    assert_eq!(cpu.committed(), 25_000);
}

#[test]
fn replayed_trace_drives_the_pipeline() {
    // A recorded window replayed cyclically gives a perfectly periodic
    // instruction stream; the pipeline must run it indefinitely.
    let mut live = SyntheticStream::new(App::H263Enc.profile(), 9);
    // Skip the warmup transient so the window is representative.
    for _ in 0..10_000 {
        let _ = live.next_op();
    }
    let trace = RecordedTrace::record(&mut live, 5_000);
    let mut cpu = Processor::new(CoreConfig::base(), trace.replayer()).unwrap();
    let stats = cpu.run_instructions(25_000); // five full laps
    assert_eq!(stats.instructions, 25_000);
    assert!(stats.ipc() > 0.2);
}

#[test]
fn all_archpoints_complete_on_all_apps_smoke() {
    // The full §6.1 space crossed with two very different workloads.
    for (window, alus, fpus) in [(128, 6, 4), (64, 4, 2), (16, 2, 1)] {
        for app in [App::MpgDec, App::Art] {
            let cfg = CoreConfig::base()
                .with_adaptation(window, alus, fpus)
                .unwrap();
            let stats = run(app, cfg, 6_000);
            assert_eq!(stats.instructions, 6_000, "{app} w{window}a{alus}f{fpus}");
        }
    }
}
