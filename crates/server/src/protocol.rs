//! The `ramp-serve/1` wire protocol: one request line in, one response
//! line out.
//!
//! Follows the repository's text-format idiom (`scenario::textfmt`,
//! `workload::textfmt`): whitespace-separated tokens, strict validation —
//! unknown keys, duplicate keys, and wrong arity are rejected, never
//! ignored — and every error names the 1-based token position it was
//! detected at, so `err 3: unknown key \`frq\`` points at the third token
//! of the offending request.
//!
//! ```text
//! C: eval gzip freq=4000000000 vdd=1.0
//! S: ok eval app=gzip window=128 alus=6 fpus=4 freq_ghz=4 vdd=1 ipc=...
//! C: eval gzip frq=1
//! S: err 3: unknown key `frq` (allowed: freq, vdd, window, alus, fpus, scenario)
//! ```
//!
//! Responses come in exactly three shapes, distinguished by their first
//! token: `ok <kind> [key=value...]` for success, `busy <key=value...>`
//! when admission control sheds the request (the queue is full — retry
//! later), and `err <pos>: <message>` for malformed or failing requests.
//! The server greets every connection with [`GREETING`] so clients can
//! reject a version mismatch before sending anything.
//!
//! Floats are serialized with Rust's shortest-round-trip `Display`
//! formatting (the same convention as the `.scn` format and the JSONL
//! trace sink), so parsing a response recovers bit-identical values —
//! which is what makes the socket-vs-direct parity tests exact.

use std::fmt;

use sim_common::SimError;

/// Protocol name and revision. The first response line of every
/// connection is [`GREETING`]; bump the revision when the grammar
/// changes incompatibly.
pub const PROTOCOL_VERSION: &str = "ramp-serve/1";

/// The greeting the server writes on accept: `ok ramp-serve/1`.
pub const GREETING: &str = "ok ramp-serve/1";

/// Hard cap on one request line (bytes). A connection that exceeds it
/// mid-line is answered with an error and closed — the stream cannot be
/// resynchronized.
pub const MAX_LINE_BYTES: usize = 64 * 1024;

/// Hard cap on the line count of an inline-scenario upload.
pub const MAX_SCENARIO_LINES: usize = 4096;

/// Hard cap on `sleep ms=` (the load-testing primitive must not be able
/// to park a worker for long).
pub const MAX_SLEEP_MS: u64 = 10_000;

/// Fastest `watch` frame interval a client may request.
pub const MIN_WATCH_INTERVAL_MS: u64 = 10;

/// Slowest `watch` frame interval a client may request.
pub const MAX_WATCH_INTERVAL_MS: u64 = 60_000;

/// The `watch` frame interval when the client names none.
pub const DEFAULT_WATCH_INTERVAL_MS: u64 = 1_000;

/// The versioned kind token of a `watch` telemetry frame:
/// `ok watch-frame/1 seq=...`. Bump when the frame schema changes
/// incompatibly.
pub const WATCH_FRAME_KIND: &str = "watch-frame/1";

/// A protocol-level error: what went wrong and the 1-based position of
/// the request token it was detected at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// 1-based token position (1 = the verb).
    pub pos: usize,
    /// Human-readable description.
    pub message: String,
}

impl ProtoError {
    /// An error at token `pos`.
    pub fn new(pos: usize, message: impl Into<String>) -> ProtoError {
        ProtoError {
            pos,
            message: message.into(),
        }
    }

    /// The wire form: `err <pos>: <message>`.
    #[must_use]
    pub fn to_line(&self) -> String {
        format!("err {}: {}", self.pos, self.message)
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_line())
    }
}

/// A parsed value plus the 1-based position of the token that carried
/// it, so semantic errors detected later (unknown application, frequency
/// out of the DVS range) can still point at the offending token.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned<T> {
    /// The parsed value.
    pub value: T,
    /// 1-based token position in the request line.
    pub pos: usize,
}

impl<T> Spanned<T> {
    fn new(pos: usize, value: T) -> Spanned<T> {
        Spanned { value, pos }
    }
}

/// Operating-point overrides shared by `eval` and `fit`: absent keys
/// default to the target scenario's base processor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OpPoint {
    /// Clock frequency in Hz.
    pub freq_hz: Option<Spanned<f64>>,
    /// Supply voltage in volts.
    pub vdd: Option<Spanned<f64>>,
    /// Instruction-window size.
    pub window: Option<Spanned<u32>>,
    /// Integer ALU count.
    pub alus: Option<Spanned<u32>>,
    /// FPU count.
    pub fpus: Option<Spanned<u32>>,
}

/// Qualification overrides shared by `fit` and `sweep`: absent keys
/// default to the target scenario's qualification.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualOverride {
    /// Qualification temperature in kelvin.
    pub tqual_k: Option<Spanned<f64>>,
    /// Qualification activity factor.
    pub alpha: Option<Spanned<f64>>,
    /// Chip-wide FIT budget.
    pub target_fit: Option<Spanned<f64>>,
}

/// `eval <app> [freq=<hz>] [vdd=<v>] [window=] [alus=] [fpus=] [scenario=<name>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRequest {
    /// Workload name (resolved against the target scenario server-side).
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against (default: the server's own).
    pub scenario: Option<Spanned<String>>,
    /// Operating-point overrides.
    pub point: OpPoint,
}

/// `fit <app> [...eval keys...] [tqual=<K>] [alpha=<a>] [target=<fit>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FitRequest {
    /// Workload name.
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against.
    pub scenario: Option<Spanned<String>>,
    /// Operating-point overrides.
    pub point: OpPoint,
    /// Qualification overrides.
    pub qual: QualOverride,
}

/// `sweep <app> [strategy=<arch|dvs|archdvs>] [step=<ghz>] [tqual=] [alpha=] [target=] [scenario=]`.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRequest {
    /// Workload name.
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against.
    pub scenario: Option<Spanned<String>>,
    /// Adaptation strategy (default `archdvs`).
    pub strategy: Option<Spanned<String>>,
    /// DVS grid step override in GHz.
    pub step_ghz: Option<Spanned<f64>>,
    /// Qualification overrides.
    pub qual: QualOverride,
}

/// `fleet <app> [...eval keys...] [tqual=] [alpha=] [target=] [dies=] [seed=] [shape=]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRequest {
    /// Workload name.
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against.
    pub scenario: Option<Spanned<String>>,
    /// Operating-point overrides.
    pub point: OpPoint,
    /// Qualification overrides.
    pub qual: QualOverride,
    /// Die-count override (default: the target scenario's `fleet.dies`).
    pub dies: Option<Spanned<u64>>,
    /// Fleet seed override.
    pub seed: Option<Spanned<u64>>,
    /// Weibull wear-out shape override.
    pub shape: Option<Spanned<f64>>,
}

/// `unit sweep <app> index=<i> [...eval keys...] [tqual=] [alpha=] [target=]`:
/// one sweep work unit — a single fully specified candidate operating
/// point, evaluated and fit-scored on this shard. The coordinator folds
/// the per-unit results in candidate-index order.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitSweepRequest {
    /// Workload name.
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against.
    pub scenario: Option<Spanned<String>>,
    /// Candidate index, echoed back for deterministic reassembly.
    pub index: Spanned<u64>,
    /// The candidate operating point (absent keys default to the
    /// scenario's base processor).
    pub point: OpPoint,
    /// Qualification overrides.
    pub qual: QualOverride,
}

/// `unit fleet <app> batch=<b> [...fleet keys...]`: one fleet work unit —
/// a single fixed die batch, returned as a transportable partial
/// aggregate (compact sketches + sums).
#[derive(Debug, Clone, PartialEq)]
pub struct UnitFleetRequest {
    /// Workload name.
    pub app: Spanned<String>,
    /// Uploaded scenario to evaluate against.
    pub scenario: Option<Spanned<String>>,
    /// Batch index, echoed back for deterministic reassembly.
    pub batch: Spanned<u64>,
    /// Operating-point overrides.
    pub point: OpPoint,
    /// Qualification overrides.
    pub qual: QualOverride,
    /// Die-count override.
    pub dies: Option<Spanned<u64>>,
    /// Fleet seed override.
    pub seed: Option<Spanned<u64>>,
    /// Weibull wear-out shape override.
    pub shape: Option<Spanned<f64>>,
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// `ping` — liveness check, answered inline.
    Ping,
    /// `stats` — server counters, answered inline.
    Stats,
    /// `shutdown` — drain in-flight work, then stop the server.
    Shutdown,
    /// `sleep ms=<n>` — park a worker (load-testing primitive).
    Sleep {
        /// Milliseconds to sleep, ≤ [`MAX_SLEEP_MS`].
        ms: u64,
    },
    /// `scenario <name> <nlines>` — the next `nlines` raw lines are an
    /// inline `.scn` upload, parsed with the `scenario` crate and
    /// installed under `name` for later `scenario=<name>` requests.
    Scenario {
        /// Registry name the upload installs under.
        name: Spanned<String>,
        /// Number of raw payload lines that follow.
        lines: usize,
    },
    /// `watch [interval_ms=<n>] [frames=<n>]` — stream telemetry frames
    /// until `frames` have been sent (`0` = until the client disconnects
    /// or the server shuts down). Answered with a `ok watch-frame/1`
    /// line per interval and a final `ok watch-end`.
    Watch {
        /// Frame interval, clamped to
        /// [`MIN_WATCH_INTERVAL_MS`]..=[`MAX_WATCH_INTERVAL_MS`].
        interval_ms: u64,
        /// Frame budget; `0` streams unbounded.
        frames: u64,
    },
    /// Evaluate one operating point.
    Eval(EvalRequest),
    /// Evaluate and score against a qualification.
    Fit(FitRequest),
    /// Oracular DRM search over a strategy's candidate grid.
    Sweep(SweepRequest),
    /// Population Monte Carlo over virtual dies at one operating point.
    Fleet(FleetRequest),
    /// One sweep work unit (cluster shard role).
    UnitSweep(UnitSweepRequest),
    /// One fleet die batch (cluster shard role).
    UnitFleet(UnitFleetRequest),
    /// `merge [scenario=<name>]` — this shard's cumulative evaluation
    /// summary (cache sizes and hit/run counters), for coordinator-side
    /// folding and `cluster status`.
    Merge {
        /// Uploaded scenario whose engine to summarize.
        scenario: Option<Spanned<String>>,
    },
    /// `shard index=<i> shards=<n>` — the cluster-role handshake: the
    /// coordinator announces which shard of how many this server is, so
    /// stats and telemetry can attribute work.
    Shard {
        /// This shard's index, `< shards`.
        index: Spanned<u64>,
        /// Total shard count.
        shards: Spanned<u64>,
    },
}

/// The request verbs, for error messages.
const VERBS: &str =
    "ping, stats, watch, shutdown, sleep, scenario, eval, fit, sweep, fleet, unit, merge, shard";

/// Parses one request line.
///
/// # Errors
///
/// Returns [`ProtoError`] with the 1-based token position for any
/// violation of the grammar: unknown verbs or keys, duplicate keys,
/// missing operands, unparsable values, trailing tokens.
pub fn parse_request(line: &str) -> Result<Request, ProtoError> {
    let tokens: Vec<(usize, &str)> = line
        .split_whitespace()
        .enumerate()
        .map(|(i, t)| (i + 1, t))
        .collect();
    let Some(&(_, verb)) = tokens.first() else {
        return Err(ProtoError::new(1, "empty request"));
    };
    match verb {
        "ping" => {
            expect_end(&tokens, 1)?;
            Ok(Request::Ping)
        }
        "stats" => {
            expect_end(&tokens, 1)?;
            Ok(Request::Stats)
        }
        "shutdown" => {
            expect_end(&tokens, 1)?;
            Ok(Request::Shutdown)
        }
        "watch" => {
            let keys = parse_keys(&tokens[1..], &["interval_ms", "frames"])?;
            let interval = get_u64(&keys, "interval_ms")?;
            if let Some(i) = &interval {
                if i.value < MIN_WATCH_INTERVAL_MS || i.value > MAX_WATCH_INTERVAL_MS {
                    return Err(ProtoError::new(
                        i.pos,
                        format!(
                            "interval_ms must be in \
                             {MIN_WATCH_INTERVAL_MS}..={MAX_WATCH_INTERVAL_MS}"
                        ),
                    ));
                }
            }
            Ok(Request::Watch {
                interval_ms: interval.map_or(DEFAULT_WATCH_INTERVAL_MS, |i| i.value),
                frames: get_u64(&keys, "frames")?.map_or(0, |f| f.value),
            })
        }
        "sleep" => {
            let keys = parse_keys(&tokens[1..], &["ms"])?;
            let ms = require_key(&keys, "ms", 1)?;
            let ms = parse_u64(ms)?;
            if ms.value > MAX_SLEEP_MS {
                return Err(ProtoError::new(
                    ms.pos,
                    format!("sleep ms must be at most {MAX_SLEEP_MS}"),
                ));
            }
            expect_end(&tokens, 2)?;
            Ok(Request::Sleep { ms: ms.value })
        }
        "scenario" => {
            let name = operand(&tokens, 2, "scenario name")?;
            let count = operand(&tokens, 3, "payload line count")?;
            expect_end(&tokens, 3)?;
            let lines: usize = count.value.parse().map_err(|_| {
                ProtoError::new(
                    count.pos,
                    format!("expected a line count, got `{}`", count.value),
                )
            })?;
            if lines == 0 || lines > MAX_SCENARIO_LINES {
                return Err(ProtoError::new(
                    count.pos,
                    format!("line count must be in 1..={MAX_SCENARIO_LINES}"),
                ));
            }
            Ok(Request::Scenario {
                name: Spanned::new(name.pos, name.value.to_owned()),
                lines,
            })
        }
        "eval" => {
            let app = app_operand(&tokens)?;
            let keys = parse_keys(
                &tokens[2..],
                &["freq", "vdd", "window", "alus", "fpus", "scenario"],
            )?;
            Ok(Request::Eval(EvalRequest {
                app,
                scenario: get_str(&keys, "scenario"),
                point: parse_point(&keys)?,
            }))
        }
        "fit" => {
            let app = app_operand(&tokens)?;
            let keys = parse_keys(
                &tokens[2..],
                &[
                    "freq", "vdd", "window", "alus", "fpus", "scenario", "tqual", "alpha", "target",
                ],
            )?;
            Ok(Request::Fit(FitRequest {
                app,
                scenario: get_str(&keys, "scenario"),
                point: parse_point(&keys)?,
                qual: parse_qual(&keys)?,
            }))
        }
        "sweep" => {
            let app = app_operand(&tokens)?;
            let keys = parse_keys(
                &tokens[2..],
                &["strategy", "step", "scenario", "tqual", "alpha", "target"],
            )?;
            let step_ghz = get_f64(&keys, "step")?;
            if let Some(step) = &step_ghz {
                if !step.value.is_finite() || step.value <= 0.0 {
                    return Err(ProtoError::new(
                        step.pos,
                        "step must be a positive frequency step in GHz",
                    ));
                }
            }
            Ok(Request::Sweep(SweepRequest {
                app,
                scenario: get_str(&keys, "scenario"),
                strategy: get_str(&keys, "strategy"),
                step_ghz,
                qual: parse_qual(&keys)?,
            }))
        }
        "fleet" => {
            let app = app_operand(&tokens)?;
            let keys = parse_keys(
                &tokens[2..],
                &[
                    "freq", "vdd", "window", "alus", "fpus", "scenario", "tqual", "alpha",
                    "target", "dies", "seed", "shape",
                ],
            )?;
            let dies = get_u64(&keys, "dies")?;
            if let Some(d) = &dies {
                if d.value == 0 {
                    return Err(ProtoError::new(d.pos, "dies must be positive"));
                }
            }
            Ok(Request::Fleet(FleetRequest {
                app,
                scenario: get_str(&keys, "scenario"),
                point: parse_point(&keys)?,
                qual: parse_qual(&keys)?,
                dies,
                seed: get_u64(&keys, "seed")?,
                shape: get_f64(&keys, "shape")?,
            }))
        }
        "unit" => {
            let form = operand(&tokens, 2, "unit form (sweep or fleet)")?;
            match form.value {
                "sweep" => {
                    let app = operand(&tokens, 3, "application name")?;
                    let app = Spanned::new(app.pos, app.value.to_owned());
                    let keys = parse_keys(
                        &tokens[3..],
                        &[
                            "index", "freq", "vdd", "window", "alus", "fpus", "scenario", "tqual",
                            "alpha", "target",
                        ],
                    )?;
                    let index = require_key(&keys, "index", 1)?;
                    Ok(Request::UnitSweep(UnitSweepRequest {
                        app,
                        scenario: get_str(&keys, "scenario"),
                        index: parse_u64(index)?,
                        point: parse_point(&keys)?,
                        qual: parse_qual(&keys)?,
                    }))
                }
                "fleet" => {
                    let app = operand(&tokens, 3, "application name")?;
                    let app = Spanned::new(app.pos, app.value.to_owned());
                    let keys = parse_keys(
                        &tokens[3..],
                        &[
                            "batch", "freq", "vdd", "window", "alus", "fpus", "scenario", "tqual",
                            "alpha", "target", "dies", "seed", "shape",
                        ],
                    )?;
                    let batch = require_key(&keys, "batch", 1)?;
                    let dies = get_u64(&keys, "dies")?;
                    if let Some(d) = &dies {
                        if d.value == 0 {
                            return Err(ProtoError::new(d.pos, "dies must be positive"));
                        }
                    }
                    Ok(Request::UnitFleet(UnitFleetRequest {
                        app,
                        scenario: get_str(&keys, "scenario"),
                        batch: parse_u64(batch)?,
                        point: parse_point(&keys)?,
                        qual: parse_qual(&keys)?,
                        dies,
                        seed: get_u64(&keys, "seed")?,
                        shape: get_f64(&keys, "shape")?,
                    }))
                }
                other => Err(ProtoError::new(
                    form.pos,
                    format!("unknown unit form `{other}` (known: sweep, fleet)"),
                )),
            }
        }
        "merge" => {
            let keys = parse_keys(&tokens[1..], &["scenario"])?;
            Ok(Request::Merge {
                scenario: get_str(&keys, "scenario"),
            })
        }
        "shard" => {
            let keys = parse_keys(&tokens[1..], &["index", "shards"])?;
            let index = parse_u64(require_key(&keys, "index", 1)?)?;
            let shards = parse_u64(require_key(&keys, "shards", 1)?)?;
            if shards.value == 0 {
                return Err(ProtoError::new(shards.pos, "shards must be positive"));
            }
            if index.value >= shards.value {
                return Err(ProtoError::new(
                    index.pos,
                    format!(
                        "shard index {} out of range 0..{}",
                        index.value, shards.value
                    ),
                ));
            }
            Ok(Request::Shard { index, shards })
        }
        other => Err(ProtoError::new(
            1,
            format!("unknown request `{other}` (known: {VERBS})"),
        )),
    }
}

/// A parsed `key=value` token.
type KeyValue<'a> = (usize, &'a str, &'a str);

fn expect_end(tokens: &[(usize, &str)], used: usize) -> Result<(), ProtoError> {
    match tokens.get(used) {
        Some(&(pos, t)) => Err(ProtoError::new(pos, format!("unexpected token `{t}`"))),
        None => Ok(()),
    }
}

fn operand<'a>(
    tokens: &[(usize, &'a str)],
    pos: usize,
    what: &str,
) -> Result<Spanned<&'a str>, ProtoError> {
    match tokens.get(pos - 1) {
        Some(&(p, t)) if !t.contains('=') => Ok(Spanned::new(p, t)),
        _ => Err(ProtoError::new(pos, format!("missing {what}"))),
    }
}

fn app_operand(tokens: &[(usize, &str)]) -> Result<Spanned<String>, ProtoError> {
    let app = operand(tokens, 2, "application name")?;
    Ok(Spanned::new(app.pos, app.value.to_owned()))
}

/// Parses the `key=value` tail of a request, rejecting bare tokens,
/// unknown keys, and duplicates.
fn parse_keys<'a>(
    tokens: &[(usize, &'a str)],
    allowed: &[&str],
) -> Result<Vec<KeyValue<'a>>, ProtoError> {
    let mut out: Vec<KeyValue<'a>> = Vec::with_capacity(tokens.len());
    for &(pos, token) in tokens {
        let Some((key, value)) = token.split_once('=') else {
            return Err(ProtoError::new(
                pos,
                format!("expected key=value, got `{token}`"),
            ));
        };
        if !allowed.contains(&key) {
            return Err(ProtoError::new(
                pos,
                format!("unknown key `{key}` (allowed: {})", allowed.join(", ")),
            ));
        }
        if out.iter().any(|&(_, k, _)| k == key) {
            return Err(ProtoError::new(pos, format!("key `{key}` given twice")));
        }
        out.push((pos, key, value));
    }
    Ok(out)
}

fn require_key<'a>(
    keys: &[KeyValue<'a>],
    key: &str,
    verb_pos: usize,
) -> Result<Spanned<&'a str>, ProtoError> {
    keys.iter()
        .find(|&&(_, k, _)| k == key)
        .map(|&(pos, _, v)| Spanned::new(pos, v))
        .ok_or_else(|| ProtoError::new(verb_pos, format!("missing required key `{key}`")))
}

fn get_str(keys: &[KeyValue<'_>], key: &str) -> Option<Spanned<String>> {
    keys.iter()
        .find(|&&(_, k, _)| k == key)
        .map(|&(pos, _, v)| Spanned::new(pos, v.to_owned()))
}

fn get_f64(keys: &[KeyValue<'_>], key: &str) -> Result<Option<Spanned<f64>>, ProtoError> {
    match keys.iter().find(|&&(_, k, _)| k == key) {
        None => Ok(None),
        Some(&(pos, _, v)) => {
            let parsed: f64 = v.parse().map_err(|_| {
                ProtoError::new(pos, format!("key `{key}` expects a number, got `{v}`"))
            })?;
            if !parsed.is_finite() {
                return Err(ProtoError::new(
                    pos,
                    format!("key `{key}` expects a finite number, got `{v}`"),
                ));
            }
            Ok(Some(Spanned::new(pos, parsed)))
        }
    }
}

fn get_u32(keys: &[KeyValue<'_>], key: &str) -> Result<Option<Spanned<u32>>, ProtoError> {
    match keys.iter().find(|&&(_, k, _)| k == key) {
        None => Ok(None),
        Some(&(pos, _, v)) => {
            let parsed: u32 = v.parse().map_err(|_| {
                ProtoError::new(pos, format!("key `{key}` expects an integer, got `{v}`"))
            })?;
            Ok(Some(Spanned::new(pos, parsed)))
        }
    }
}

fn get_u64(keys: &[KeyValue<'_>], key: &str) -> Result<Option<Spanned<u64>>, ProtoError> {
    match keys.iter().find(|&&(_, k, _)| k == key) {
        None => Ok(None),
        Some(&(pos, _, v)) => {
            let parsed: u64 = v.parse().map_err(|_| {
                ProtoError::new(pos, format!("key `{key}` expects an integer, got `{v}`"))
            })?;
            Ok(Some(Spanned::new(pos, parsed)))
        }
    }
}

fn parse_u64(s: Spanned<&str>) -> Result<Spanned<u64>, ProtoError> {
    let v: u64 = s
        .value
        .parse()
        .map_err(|_| ProtoError::new(s.pos, format!("expected an integer, got `{}`", s.value)))?;
    Ok(Spanned::new(s.pos, v))
}

fn parse_point(keys: &[KeyValue<'_>]) -> Result<OpPoint, ProtoError> {
    let freq_hz = get_f64(keys, "freq")?;
    if let Some(f) = &freq_hz {
        if f.value <= 0.0 {
            return Err(ProtoError::new(f.pos, "freq must be a positive Hz value"));
        }
    }
    let vdd = get_f64(keys, "vdd")?;
    if let Some(v) = &vdd {
        if v.value <= 0.0 {
            return Err(ProtoError::new(v.pos, "vdd must be a positive voltage"));
        }
    }
    Ok(OpPoint {
        freq_hz,
        vdd,
        window: get_u32(keys, "window")?,
        alus: get_u32(keys, "alus")?,
        fpus: get_u32(keys, "fpus")?,
    })
}

fn parse_qual(keys: &[KeyValue<'_>]) -> Result<QualOverride, ProtoError> {
    Ok(QualOverride {
        tqual_k: get_f64(keys, "tqual")?,
        alpha: get_f64(keys, "alpha")?,
        target_fit: get_f64(keys, "target")?,
    })
}

/// Builds one `ok <kind> key=value...` response line. Floats use
/// shortest-round-trip formatting, so clients recover exact bits.
#[derive(Debug)]
pub struct ResponseLine {
    buf: String,
}

impl ResponseLine {
    /// Starts an `ok <kind>` line.
    #[must_use]
    pub fn ok(kind: &str) -> ResponseLine {
        ResponseLine {
            buf: format!("ok {kind}"),
        }
    }

    /// Appends ` key=value`. Values must be single tokens — the line
    /// format has no quoting.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        debug_assert!(
            !value.contains(char::is_whitespace) && !value.is_empty(),
            "response value `{value}` is not a single token"
        );
        self.buf.push(' ');
        self.buf.push_str(key);
        self.buf.push('=');
        self.buf.push_str(value);
        self
    }

    /// Appends a float field (shortest-round-trip formatting).
    pub fn f64(&mut self, key: &str, value: f64) -> &mut Self {
        self.str(key, &value.to_string())
    }

    /// Appends an integer field.
    pub fn u64(&mut self, key: &str, value: u64) -> &mut Self {
        self.str(key, &value.to_string())
    }

    /// Appends a boolean field (`true`/`false`).
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.str(key, if value { "true" } else { "false" })
    }

    /// The finished line (no trailing newline).
    #[must_use]
    pub fn finish(self) -> String {
        self.buf
    }
}

/// The `busy` shed response, carrying the queue bound that was hit.
#[must_use]
pub fn busy_line(queue_depth: usize) -> String {
    format!("busy queue_depth={queue_depth}")
}

/// The first token of a response line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// `ok ...` — the request succeeded.
    Ok,
    /// `busy ...` — admission control shed the request; retry later.
    Busy,
    /// `err <pos>: ...` — the request was malformed or failed.
    Err,
}

/// A parsed response line (client side).
#[derive(Debug, Clone, PartialEq)]
pub struct Reply {
    /// Outcome class.
    pub status: Status,
    /// The response kind (`eval`, `fit`, ... for `ok` lines; empty for
    /// `busy`/`err`).
    pub kind: String,
    /// `key=value` fields, in wire order.
    pub fields: Vec<(String, String)>,
    /// The raw line, for diagnostics and `err` messages.
    pub raw: String,
}

impl Reply {
    /// Parses a response line.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the line matches none of
    /// the three response shapes.
    pub fn parse(line: &str) -> Result<Reply, SimError> {
        let raw = line.to_owned();
        let mut tokens = line.split_whitespace();
        let status = match tokens.next() {
            Some("ok") => Status::Ok,
            Some("busy") => Status::Busy,
            Some("err") => Status::Err,
            _ => {
                return Err(SimError::invalid_config(format!(
                    "malformed response line `{line}`"
                )))
            }
        };
        if status == Status::Err {
            return Ok(Reply {
                status,
                kind: String::new(),
                fields: Vec::new(),
                raw,
            });
        }
        let mut kind = String::new();
        let mut fields = Vec::new();
        for token in tokens {
            match token.split_once('=') {
                Some((k, v)) => fields.push((k.to_owned(), v.to_owned())),
                None if kind.is_empty() && fields.is_empty() => kind = token.to_owned(),
                None => {
                    return Err(SimError::invalid_config(format!(
                        "malformed response token `{token}` in `{line}`"
                    )))
                }
            }
        }
        Ok(Reply {
            status,
            kind,
            fields,
            raw,
        })
    }

    /// True for `ok` responses.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == Status::Ok
    }

    /// A field's raw value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// A required float field.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when absent or unparsable.
    pub fn f64(&self, key: &str) -> Result<f64, SimError> {
        self.get(key)
            .ok_or_else(|| {
                SimError::invalid_config(format!("response missing `{key}`: {}", self.raw))
            })?
            .parse()
            .map_err(|_| SimError::invalid_config(format!("response field `{key}` is not a float")))
    }

    /// A required integer field.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when absent or unparsable.
    pub fn u64(&self, key: &str) -> Result<u64, SimError> {
        self.get(key)
            .ok_or_else(|| {
                SimError::invalid_config(format!("response missing `{key}`: {}", self.raw))
            })?
            .parse()
            .map_err(|_| {
                SimError::invalid_config(format!("response field `{key}` is not an integer"))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let r = parse_request("eval gzip freq=4000000000 vdd=1.0").unwrap();
        let Request::Eval(e) = r else {
            panic!("not an eval")
        };
        assert_eq!(e.app.value, "gzip");
        assert_eq!(e.app.pos, 2);
        assert_eq!(e.point.freq_hz.as_ref().unwrap().value, 4e9);
        assert_eq!(e.point.freq_hz.as_ref().unwrap().pos, 3);
        assert_eq!(e.point.vdd.as_ref().unwrap().value, 1.0);
        assert!(e.scenario.is_none());
    }

    #[test]
    fn unknown_key_errors_carry_the_token_position() {
        let e = parse_request("eval gzip frq=1").unwrap_err();
        assert_eq!(e.pos, 3);
        assert!(e.message.contains("unknown key `frq`"), "{e}");
        assert!(e.to_line().starts_with("err 3: "), "{}", e.to_line());
    }

    #[test]
    fn duplicate_and_bare_tokens_are_rejected() {
        let e = parse_request("eval gzip freq=1e9 freq=2e9").unwrap_err();
        assert_eq!(e.pos, 4);
        assert!(e.message.contains("given twice"));
        let e = parse_request("eval gzip 4ghz").unwrap_err();
        assert_eq!(e.pos, 3);
        assert!(e.message.contains("expected key=value"));
    }

    #[test]
    fn arity_violations_are_positioned() {
        assert_eq!(parse_request("").unwrap_err().pos, 1);
        assert_eq!(parse_request("eval").unwrap_err().pos, 2);
        assert_eq!(parse_request("ping now").unwrap_err().pos, 2);
        assert_eq!(parse_request("scenario hot").unwrap_err().pos, 3);
        let e = parse_request("bogus").unwrap_err();
        assert_eq!(e.pos, 1);
        assert!(e.message.contains("unknown request"));
    }

    #[test]
    fn value_validation() {
        assert!(parse_request("eval gzip freq=-1").is_err());
        assert!(parse_request("eval gzip vdd=nan").is_err());
        assert!(parse_request("sweep gzip step=0").is_err());
        assert!(parse_request("sleep ms=999999").is_err());
        assert!(parse_request("scenario x 0").is_err());
        assert!(parse_request("scenario x 99999").is_err());
        assert!(parse_request("sleep ms=5").is_ok());
    }

    #[test]
    fn fit_and_sweep_accept_qualification_overrides() {
        let Request::Fit(f) = parse_request("fit gzip tqual=394 alpha=0.48 target=4000").unwrap()
        else {
            panic!("not a fit")
        };
        assert_eq!(f.qual.tqual_k.unwrap().value, 394.0);
        let Request::Sweep(s) = parse_request("sweep gzip strategy=dvs step=0.5").unwrap() else {
            panic!("not a sweep")
        };
        assert_eq!(s.strategy.unwrap().value, "dvs");
        assert_eq!(s.step_ghz.unwrap().value, 0.5);
    }

    #[test]
    fn fleet_requests_parse_with_overrides() {
        let Request::Fleet(f) =
            parse_request("fleet gzip dies=50000 seed=7 shape=2.5 tqual=370 freq=3.5e9").unwrap()
        else {
            panic!("not a fleet")
        };
        assert_eq!(f.app.value, "gzip");
        assert_eq!(f.dies.unwrap().value, 50_000);
        assert_eq!(f.seed.unwrap().value, 7);
        assert_eq!(f.shape.unwrap().value, 2.5);
        assert_eq!(f.qual.tqual_k.unwrap().value, 370.0);
        assert_eq!(f.point.freq_hz.unwrap().value, 3.5e9);

        let Request::Fleet(bare) = parse_request("fleet twolf").unwrap() else {
            panic!("not a fleet")
        };
        assert!(bare.dies.is_none() && bare.seed.is_none() && bare.shape.is_none());

        let e = parse_request("fleet gzip dies=0").unwrap_err();
        assert_eq!(e.pos, 3);
        assert!(e.message.contains("dies must be positive"), "{e}");
        assert!(parse_request("fleet gzip dies=many").is_err());
        assert!(parse_request("fleet gzip strategy=dvs").is_err());
    }

    #[test]
    fn watch_requests_parse_with_bounds() {
        let Request::Watch {
            interval_ms,
            frames,
        } = parse_request("watch").unwrap()
        else {
            panic!("not a watch")
        };
        assert_eq!(interval_ms, DEFAULT_WATCH_INTERVAL_MS);
        assert_eq!(frames, 0, "default streams unbounded");

        let Request::Watch {
            interval_ms,
            frames,
        } = parse_request("watch interval_ms=50 frames=10").unwrap()
        else {
            panic!("not a watch")
        };
        assert_eq!(interval_ms, 50);
        assert_eq!(frames, 10);

        let e = parse_request("watch interval_ms=5").unwrap_err();
        assert_eq!(e.pos, 2);
        assert!(e.message.contains("interval_ms"), "{e}");
        assert!(parse_request("watch interval_ms=99999999").is_err());
        assert!(parse_request("watch now").is_err());
        assert!(parse_request("watch frames=ten").is_err());
    }

    #[test]
    fn response_lines_round_trip_floats_bit_exactly() {
        let value = 0.1_f64 + 0.2_f64; // not representable as a short decimal
        let mut line = ResponseLine::ok("eval");
        line.f64("ipc", value).u64("n", 7).bool("feasible", true);
        let reply = Reply::parse(&line.finish()).unwrap();
        assert_eq!(reply.status, Status::Ok);
        assert_eq!(reply.kind, "eval");
        assert_eq!(reply.f64("ipc").unwrap().to_bits(), value.to_bits());
        assert_eq!(reply.u64("n").unwrap(), 7);
        assert_eq!(reply.get("feasible"), Some("true"));
    }

    #[test]
    fn busy_and_err_replies_parse() {
        let b = Reply::parse(&busy_line(64)).unwrap();
        assert_eq!(b.status, Status::Busy);
        assert_eq!(b.u64("queue_depth").unwrap(), 64);
        let e = Reply::parse("err 3: unknown key `frq`").unwrap();
        assert_eq!(e.status, Status::Err);
        assert!(e.raw.contains("unknown key"));
        assert!(Reply::parse("??? what").is_err());
    }

    #[test]
    fn unit_requests_parse_both_forms() {
        let Request::UnitSweep(u) =
            parse_request("unit sweep gzip index=4 freq=3.5e9 vdd=1.1 window=64 alus=4 fpus=2")
                .unwrap()
        else {
            panic!("not a unit sweep")
        };
        assert_eq!(u.app.value, "gzip");
        assert_eq!(u.app.pos, 3);
        assert_eq!(u.index.value, 4);
        assert_eq!(u.point.freq_hz.unwrap().value, 3.5e9);
        assert_eq!(u.point.window.unwrap().value, 64);

        let Request::UnitFleet(u) =
            parse_request("unit fleet twolf batch=2 dies=10000 seed=7 shape=2.2").unwrap()
        else {
            panic!("not a unit fleet")
        };
        assert_eq!(u.batch.value, 2);
        assert_eq!(u.dies.unwrap().value, 10_000);
        assert_eq!(u.seed.unwrap().value, 7);
        assert_eq!(u.shape.unwrap().value, 2.2);

        // index/batch are required; the form token is validated.
        let e = parse_request("unit sweep gzip freq=3e9").unwrap_err();
        assert!(e.message.contains("missing required key `index`"), "{e}");
        let e = parse_request("unit fleet gzip seed=1").unwrap_err();
        assert!(e.message.contains("missing required key `batch`"), "{e}");
        let e = parse_request("unit frob gzip").unwrap_err();
        assert_eq!(e.pos, 2);
        assert!(e.message.contains("unknown unit form"), "{e}");
        assert_eq!(parse_request("unit").unwrap_err().pos, 2);
        assert_eq!(parse_request("unit sweep").unwrap_err().pos, 3);
        assert!(parse_request("unit fleet gzip batch=0 dies=0").is_err());
    }

    #[test]
    fn merge_and_shard_requests_parse() {
        assert_eq!(
            parse_request("merge").unwrap(),
            Request::Merge { scenario: None }
        );
        let Request::Merge { scenario } = parse_request("merge scenario=hot").unwrap() else {
            panic!("not a merge")
        };
        assert_eq!(scenario.unwrap().value, "hot");
        assert!(parse_request("merge now").is_err());

        let Request::Shard { index, shards } = parse_request("shard index=1 shards=4").unwrap()
        else {
            panic!("not a shard")
        };
        assert_eq!(index.value, 1);
        assert_eq!(shards.value, 4);

        let e = parse_request("shard index=4 shards=4").unwrap_err();
        assert!(e.message.contains("out of range"), "{e}");
        let e = parse_request("shard index=0 shards=0").unwrap_err();
        assert!(e.message.contains("shards must be positive"), "{e}");
        assert!(parse_request("shard index=0").is_err());
        assert!(parse_request("shard shards=2").is_err());
    }

    #[test]
    fn scenario_upload_header_parses() {
        let Request::Scenario { name, lines } = parse_request("scenario hot 42").unwrap() else {
            panic!("not a scenario upload")
        };
        assert_eq!(name.value, "hot");
        assert_eq!(lines, 42);
    }
}
