//! The evaluation server: accept loop, bounded request queue,
//! micro-batching drain workers, and shutdown orchestration.
//!
//! One long-lived [`BatchEngine`] per installed scenario means the
//! sharded `Arc<Evaluation>` cache and the voltage-invariant
//! `TimingCache` are shared across *all* connections — the second client
//! asking for a warm operating point pays one hash lookup, and a DVS
//! grid requested by eight clients runs its cycle-level timing once.
//!
//! ## Request flow
//!
//! Connection threads parse and *resolve* requests (application lookup,
//! DVS-range checks, reliability-model qualification) so protocol and
//! semantic errors are answered immediately without touching the queue.
//! Resolved work is `try_push`ed onto a bounded queue — a full queue is
//! answered with `busy` (admission control sheds load; nothing blocks).
//! Drain workers pop work and gather whatever else arrives inside a
//! short linger window into one batch, then hand each scenario's share
//! to its engine's `evaluate_all`, which deduplicates against the cache
//! and shares timing runs across the batch. Micro-batching is what makes
//! concurrent clients *faster* than one: a lone client pays a full
//! round-trip per request, while overlapping requests ride the same
//! batch pass.
//!
//! ## Shutdown
//!
//! A `shutdown` request, a [`ServerConfig::stop_file`] appearing on
//! disk, or [`Server::shutdown`] sets the stop flag. The accept loop
//! stops accepting and joins connection threads (they observe the flag
//! at request boundaries via their read-timeout poll); then the queue is
//! closed and the drain workers finish everything still queued before
//! exiting — in-flight work is drained, never dropped.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use drm::{
    ArchPoint, BatchEngine, DvsPoint, EvalParams, EvalStore, FleetConfig, Oracle, Strategy,
    Surrogate, SweepSummary,
};
use ramp::{Mechanism, ReliabilityModel};
use scenario::{Qualification, Scenario};
use sim_common::{Hertz, Kelvin, SimError, Volts};
use workload::App;

use sim_obs::{FitBurnObjective, SloObjective, SloSet, SloStatus, Ticker, WindowRing};

use crate::protocol::{
    busy_line, parse_request, EvalRequest, FitRequest, FleetRequest, OpPoint, ProtoError,
    QualOverride, Request, ResponseLine, SweepRequest, UnitFleetRequest, UnitSweepRequest,
    GREETING, MAX_LINE_BYTES, WATCH_FRAME_KIND,
};
use crate::queue::{BoundedQueue, PushError};

/// Window-ring capacity in ticks: with the default 1 s telemetry tick
/// this holds about a minute of history; at the fastest tick tests use
/// (tens of ms) it still spans several seconds.
const TELEMETRY_RING_TICKS: usize = 64;

/// Server tuning knobs. [`ServerConfig::default`] is sized for the CLI's
/// `ramp serve` defaults; tests shrink the queue and timeouts.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Evaluation worker threads per engine (`0` = all cores).
    pub jobs: usize,
    /// Bounded queue capacity; a full queue sheds with `busy` (≥ 1).
    pub queue_depth: usize,
    /// Drain-worker threads pulling batches off the queue.
    pub drain_workers: usize,
    /// Largest batch one drain pass will gather.
    pub batch_max: usize,
    /// How long a drain pass lingers for more requests after the first.
    pub linger: Duration,
    /// Socket read timeout — also the poll interval at which idle
    /// connections observe shutdown.
    pub read_timeout: Duration,
    /// Socket write timeout.
    pub write_timeout: Duration,
    /// Connections idle longer than this are closed.
    pub idle_timeout: Duration,
    /// When this path appears on disk the server shuts down (for
    /// supervisors that cannot speak the protocol).
    pub stop_file: Option<PathBuf>,
    /// Overrides every scenario's own [`EvalParams`] (e.g. the CLI's
    /// `--quick`).
    pub eval: Option<EvalParams>,
    /// Telemetry tick: how often the window ring snapshots the metric
    /// registry and the scenario's SLOs are re-evaluated. `None`
    /// disables live telemetry (no ring, no ticker thread, no `slo.*`
    /// gauges; `watch` frames then carry only the raw counters).
    pub telemetry_tick: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            jobs: 0,
            queue_depth: 64,
            drain_workers: 2,
            batch_max: 32,
            linger: Duration::from_millis(2),
            read_timeout: Duration::from_millis(200),
            write_timeout: Duration::from_secs(10),
            idle_timeout: Duration::from_secs(300),
            stop_file: None,
            eval: None,
            telemetry_tick: Some(Duration::from_secs(1)),
        }
    }
}

/// Live-telemetry state shared by the ticker thread, `watch` streams,
/// and `stats`: the window ring plus the scenario's SLO set and its most
/// recent evaluation.
pub struct Telemetry {
    ring: Arc<WindowRing>,
    slo: SloSet,
    latest: Mutex<Vec<SloStatus>>,
}

impl Telemetry {
    /// The window ring of periodic metric snapshots.
    #[must_use]
    pub fn ring(&self) -> &Arc<WindowRing> {
        &self.ring
    }

    /// The SLO statuses from the most recent tick (empty before the
    /// first tick or when the scenario declares no objectives).
    #[must_use]
    pub fn latest_slo(&self) -> Vec<SloStatus> {
        self.latest.lock().expect("telemetry lock poisoned").clone()
    }
}

/// Maps a scenario's optional `[slo]` section onto the observability
/// crate's objective set: each verb objective binds to that verb's
/// windowed latency histogram, and the FIT-burn objective tracks the
/// `fit.total` gauge against the scenario's qualified budget.
fn slo_set_for(scenario: &Scenario) -> SloSet {
    let Some(policy) = &scenario.slo else {
        return SloSet::default();
    };
    SloSet {
        objectives: policy
            .verbs
            .iter()
            .map(|v| SloObjective {
                name: v.verb.clone(),
                metric: format!("server.request.latency_ms.{}", v.verb),
                quantile: v.quantile,
                target_ms: v.target_ms,
            })
            .collect(),
        fit_burn: policy.max_fit_burn.map(|max_burn| FitBurnObjective {
            metric: "fit.total".to_owned(),
            budget_fit: scenario.qualification.target_fit,
            max_burn,
        }),
    }
}

/// A point-in-time snapshot of the server counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Request lines received (including inline-answered ones).
    pub requests: u64,
    /// Requests shed with `busy` by admission control.
    pub shed: u64,
    /// Malformed or failing requests answered with `err`.
    pub errors: u64,
    /// Batches drained off the queue.
    pub batches: u64,
    /// Queued requests processed through batches.
    pub batched_requests: u64,
}

impl ServerStats {
    /// Mean requests per drained batch (1.0 = no batching benefit).
    #[must_use]
    pub fn batch_occupancy(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

/// One installed scenario and its long-lived evaluation engine.
pub struct EngineSlot {
    /// The scenario evaluations run against.
    pub scenario: Scenario,
    /// The raw text the scenario was installed from (idempotency check
    /// for repeated uploads).
    pub text: String,
    /// The engine owning this scenario's shared caches.
    pub engine: BatchEngine,
    /// The long-lived surrogate when the scenario enables the two-phase
    /// search: calibrated tables and the error pool persist across
    /// requests, so the first `sweep` per application pays calibration
    /// and later ones ride it.
    pub surrogate: Option<Arc<Surrogate>>,
}

impl EngineSlot {
    fn new(
        scenario: Scenario,
        text: String,
        eval: Option<EvalParams>,
        jobs: usize,
    ) -> Result<EngineSlot, SimError> {
        scenario.validate()?;
        let params = eval.unwrap_or(scenario.eval);
        let mut engine = BatchEngine::with_workers(scenario.evaluator_with(params)?, jobs)
            .with_base_config(scenario.core.clone());
        if let Some(dir) = scenario.cluster.as_ref().and_then(|c| c.store_dir.as_ref()) {
            // Each engine appends to its own segment — shards sharing a
            // store directory (even in one process) must never interleave
            // writes — while `open_dir` pre-warms from every segment.
            static STORE_SEQ: AtomicU64 = AtomicU64::new(0);
            let label = format!(
                "{}-{}-{}",
                scenario.name,
                std::process::id(),
                STORE_SEQ.fetch_add(1, Ordering::Relaxed)
            );
            engine = engine.with_store(EvalStore::open_dir(std::path::Path::new(dir), &label)?);
        }
        let surrogate = match &scenario.surrogate {
            Some(spec) if spec.enabled => Some(Arc::new(Surrogate::new(spec.params())?)),
            _ => None,
        };
        Ok(EngineSlot {
            scenario,
            text,
            engine,
            surrogate,
        })
    }

    /// The reliability model for a request's qualification overrides.
    fn model_for(&self, qual: &QualOverride) -> Result<ReliabilityModel, SimError> {
        let q = Qualification {
            t_qual: qual
                .tqual_k
                .as_ref()
                .map_or(self.scenario.qualification.t_qual, |t| Kelvin(t.value)),
            alpha: qual
                .alpha
                .as_ref()
                .map_or(self.scenario.qualification.alpha, |a| a.value),
            target_fit: qual
                .target_fit
                .as_ref()
                .map_or(self.scenario.qualification.target_fit, |f| f.value),
        };
        Scenario {
            qualification: q,
            ..self.scenario.clone()
        }
        .model()
    }
}

/// Resolved, queueable work. Everything fallible-by-configuration
/// happened on the connection thread; workers only evaluate.
enum Job {
    Eval {
        slot: Arc<EngineSlot>,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
    },
    Fit {
        slot: Arc<EngineSlot>,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
        model: ReliabilityModel,
    },
    Sweep {
        slot: Arc<EngineSlot>,
        app: App,
        strategy: Strategy,
        candidates: Vec<(ArchPoint, DvsPoint)>,
        model: ReliabilityModel,
    },
    Fleet {
        slot: Arc<EngineSlot>,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
        model: ReliabilityModel,
        config: FleetConfig,
    },
    UnitSweep {
        slot: Arc<EngineSlot>,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
        model: ReliabilityModel,
        index: u64,
    },
    UnitFleet {
        slot: Arc<EngineSlot>,
        app: App,
        arch: ArchPoint,
        dvs: DvsPoint,
        model: ReliabilityModel,
        config: FleetConfig,
        batch: u64,
    },
    Sleep {
        ms: u64,
    },
}

/// One queued request: the work plus its reply channel.
struct QueuedRequest {
    job: Job,
    reply: mpsc::Sender<String>,
    enqueued: Instant,
}

/// Shared server state: scenario registry, request queue, counters.
pub struct ServerState {
    config: ServerConfig,
    /// Installed scenarios by registry name; the startup scenario is
    /// registered under its own name.
    registry: Mutex<HashMap<String, Arc<EngineSlot>>>,
    default_slot: Arc<EngineSlot>,
    queue: BoundedQueue<QueuedRequest>,
    telemetry: Option<Arc<Telemetry>>,
    /// Cluster role, set by the `shard` handshake: `(index, shards)`.
    shard: Mutex<Option<(u64, u64)>>,
    started: Instant,
    stop: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    shed: AtomicU64,
    errors: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
}

impl ServerState {
    /// True once shutdown has begun.
    pub fn shutting_down(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Time since the server started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The live-telemetry state, when the config enabled it.
    #[must_use]
    pub fn telemetry(&self) -> Option<&Arc<Telemetry>> {
        self.telemetry.as_ref()
    }

    /// This server's cluster role `(index, shards)`, once a coordinator
    /// has performed the `shard` handshake.
    #[must_use]
    pub fn shard_identity(&self) -> Option<(u64, u64)> {
        *self.shard.lock().expect("shard lock poisoned")
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.load(Ordering::Relaxed),
            requests: self.requests.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
        }
    }

    /// Cumulative sweep statistics aggregated over every installed
    /// scenario's engine — the same shape `Oracle::summary` reports, so
    /// `ramp serve` prints the standard "timing N runs, M reused" line
    /// at exit and `ramp report` sees the familiar cache counters.
    pub fn sweep_summary(&self) -> SweepSummary {
        let registry = self.registry.lock().expect("registry lock poisoned");
        let mut summary = SweepSummary {
            workers: self.default_slot.engine.workers(),
            ..SweepSummary::default()
        };
        for slot in registry.values() {
            let cache = slot.engine.cache();
            let timing = slot.engine.timing_cache();
            summary.evaluations += cache.len() as u64;
            summary.cache_hits += cache.hits();
            summary.timing_runs += timing.misses();
            summary.timing_reuses += timing.hits();
            summary.wall += cache.wall();
            summary.busy += cache.busy();
        }
        summary
    }

    fn slot(&self, name: Option<&str>) -> Option<Arc<EngineSlot>> {
        match name {
            None => Some(Arc::clone(&self.default_slot)),
            Some(name) => self
                .registry
                .lock()
                .expect("registry lock poisoned")
                .get(name)
                .cloned(),
        }
    }

    /// Installs an uploaded scenario under `name`. Re-uploading the
    /// same text is idempotent; a different scenario under a taken name
    /// is refused.
    fn install(&self, name: &str, text: &str) -> Result<Arc<EngineSlot>, SimError> {
        let scenario = Scenario::from_text(text)?;
        let mut registry = self.registry.lock().expect("registry lock poisoned");
        if let Some(existing) = registry.get(name) {
            if existing.text == text {
                return Ok(Arc::clone(existing));
            }
            return Err(SimError::invalid_config(format!(
                "scenario `{name}` is already installed with different contents"
            )));
        }
        let slot = Arc::new(EngineSlot::new(
            scenario,
            text.to_owned(),
            self.config.eval,
            self.config.jobs,
        )?);
        registry.insert(name.to_owned(), Arc::clone(&slot));
        Ok(slot)
    }
}

/// A running evaluation server. Dropping the handle does *not* stop the
/// server — call [`Server::shutdown`] and [`Server::join`], or let a
/// client `shutdown` request / the stop-file end it.
pub struct Server {
    state: Arc<ServerState>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    ticker: Option<Ticker>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// accept loop and drain workers over `scenario`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when the scenario fails
    /// validation or the address cannot be bound.
    pub fn start(scenario: Scenario, config: ServerConfig, addr: &str) -> Result<Server, SimError> {
        let slot = Arc::new(EngineSlot::new(
            scenario.clone(),
            scenario.to_text(),
            config.eval,
            config.jobs,
        )?);
        let mut registry = HashMap::new();
        registry.insert(scenario.name.clone(), Arc::clone(&slot));

        let listener = TcpListener::bind(addr)
            .map_err(|e| SimError::invalid_config(format!("cannot bind {addr}: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| SimError::invalid_config(format!("cannot read local addr: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| SimError::invalid_config(format!("cannot set nonblocking: {e}")))?;

        let telemetry = config.telemetry_tick.map(|_| {
            Arc::new(Telemetry {
                ring: Arc::new(WindowRing::new(TELEMETRY_RING_TICKS)),
                slo: slo_set_for(&scenario),
                latest: Mutex::new(Vec::new()),
            })
        });

        let drain_workers = config.drain_workers.max(1);
        let state = Arc::new(ServerState {
            queue: BoundedQueue::new(config.queue_depth),
            config,
            registry: Mutex::new(registry),
            default_slot: slot,
            telemetry,
            shard: Mutex::new(None),
            started: Instant::now(),
            stop: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_requests: AtomicU64::new(0),
        });

        let mut workers = Vec::with_capacity(drain_workers);
        for i in 0..drain_workers {
            let state = Arc::clone(&state);
            let handle = std::thread::Builder::new()
                .name(format!("sim-server-worker-{i}"))
                .spawn(move || worker_loop(&state))
                .map_err(|e| SimError::invalid_config(format!("cannot spawn worker: {e}")))?;
            workers.push(handle);
        }

        let accept = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("sim-server-accept".to_owned())
                .spawn(move || accept_loop(&state, listener))
                .map_err(|e| SimError::invalid_config(format!("cannot spawn accept loop: {e}")))?
        };

        // The ticker periodically snapshots the metric registry into the
        // ring and re-evaluates the scenario's SLOs, publishing `slo.*`
        // gauges — the windowed view `watch`, `stats`, and `ramp top`
        // read. The shard-local metric hot path is untouched: sampling
        // happens entirely on this background thread.
        let ticker = match (&state.telemetry, state.config.telemetry_tick) {
            (Some(tel), Some(tick)) => {
                let tel = Arc::clone(tel);
                Some(Ticker::start(Arc::clone(&tel.ring), tick, move |ring| {
                    let statuses = tel.slo.evaluate(ring);
                    *tel.latest.lock().expect("telemetry lock poisoned") = statuses;
                }))
            }
            _ => None,
        };

        sim_obs::log_debug!("server", "listening on {local}");
        Ok(Server {
            state,
            addr: local,
            accept: Some(accept),
            workers,
            ticker,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared server state (stats and sweep summary).
    #[must_use]
    pub fn state(&self) -> &Arc<ServerState> {
        &self.state
    }

    /// Current counter snapshot.
    #[must_use]
    pub fn stats(&self) -> ServerStats {
        self.state.stats()
    }

    /// Cumulative cache/timing statistics across all engines.
    #[must_use]
    pub fn sweep_summary(&self) -> SweepSummary {
        self.state.sweep_summary()
    }

    /// Begins shutdown (idempotent): stop accepting, drain, exit.
    pub fn shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Waits for the server to finish (after a `shutdown` request, the
    /// stop-file, or [`Server::shutdown`]) and returns the final stats.
    ///
    /// # Panics
    ///
    /// Panics if a server thread panicked.
    pub fn join(mut self) -> ServerStats {
        if let Some(accept) = self.accept.take() {
            accept.join().expect("accept thread panicked");
        }
        for worker in self.workers.drain(..) {
            worker.join().expect("drain worker panicked");
        }
        if let Some(ticker) = self.ticker.take() {
            ticker.stop();
        }
        self.state.stats()
    }
}

/// Accepts connections until shutdown, then joins connection threads and
/// closes the queue (the ordering that makes `join` drain cleanly).
fn accept_loop(state: &Arc<ServerState>, listener: TcpListener) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !state.shutting_down() {
        if let Some(stop_file) = &state.config.stop_file {
            if stop_file.exists() {
                sim_obs::log_debug!("server", "stop file present, shutting down");
                state.begin_shutdown();
                break;
            }
        }
        match listener.accept() {
            Ok((stream, _)) => {
                state.connections.fetch_add(1, Ordering::Relaxed);
                sim_obs::counter!("server.connections", 1);
                let state = Arc::clone(state);
                let handle = std::thread::Builder::new()
                    .name("sim-server-conn".to_owned())
                    .spawn(move || handle_connection(&state, stream))
                    .expect("cannot spawn connection thread");
                connections.push(handle);
                // Reap finished connections so the handle list stays small.
                connections.retain(|h| !h.is_finished());
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
    drop(listener);
    for handle in connections {
        let _ = handle.join();
    }
    state.queue.close();
}

/// What one attempt to read a request line produced.
enum ReadLine {
    /// A complete line (delimiter stripped).
    Line(String),
    /// The peer closed the connection (or shutdown/idle ended it).
    Closed,
    /// The line exceeded [`MAX_LINE_BYTES`]; the stream cannot be
    /// resynchronized.
    Oversize,
}

/// Reads request lines off one connection, preserving partial data
/// across read-timeout polls (the polls are what let idle connections
/// observe shutdown).
struct LineReader<'a> {
    reader: BufReader<TcpStream>,
    state: &'a Arc<ServerState>,
    eof: bool,
}

impl LineReader<'_> {
    fn next_line(&mut self) -> ReadLine {
        if self.eof {
            return ReadLine::Closed;
        }
        let mut buf: Vec<u8> = Vec::new();
        let idle_started = Instant::now();
        loop {
            match self.reader.fill_buf() {
                Ok([]) => {
                    // EOF. A trailing unterminated line still counts.
                    self.eof = true;
                    return if buf.is_empty() {
                        ReadLine::Closed
                    } else {
                        ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
                    };
                }
                Ok(available) => {
                    if let Some(i) = available.iter().position(|&b| b == b'\n') {
                        buf.extend_from_slice(&available[..i]);
                        self.reader.consume(i + 1);
                        if buf.last() == Some(&b'\r') {
                            buf.pop();
                        }
                        return ReadLine::Line(String::from_utf8_lossy(&buf).into_owned());
                    }
                    buf.extend_from_slice(available);
                    let n = available.len();
                    self.reader.consume(n);
                    if buf.len() > MAX_LINE_BYTES {
                        return ReadLine::Oversize;
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock
                            | std::io::ErrorKind::TimedOut
                            | std::io::ErrorKind::Interrupted
                    ) =>
                {
                    if self.state.shutting_down()
                        || idle_started.elapsed() >= self.state.config.idle_timeout
                    {
                        return ReadLine::Closed;
                    }
                }
                Err(_) => return ReadLine::Closed,
            }
        }
    }
}

/// Serves one connection: greeting, then a request/response loop.
fn handle_connection(state: &Arc<ServerState>, stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(state.config.read_timeout));
    let _ = stream.set_write_timeout(Some(state.config.write_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    if write_line(&mut writer, GREETING).is_err() {
        return;
    }
    let mut reader = LineReader {
        reader: BufReader::new(read_half),
        state,
        eof: false,
    };
    loop {
        let line = match reader.next_line() {
            ReadLine::Line(line) => line,
            ReadLine::Closed => return,
            ReadLine::Oversize => {
                state.errors.fetch_add(1, Ordering::Relaxed);
                let message =
                    ProtoError::new(1, format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = write_line(&mut writer, &message.to_line());
                return;
            }
        };
        state.requests.fetch_add(1, Ordering::Relaxed);
        sim_obs::counter!("server.requests", 1);
        let parsed = parse_request(&line);
        let shutdown_after = matches!(parsed, Ok(Request::Shutdown));
        if let Ok(Request::Watch {
            interval_ms,
            frames,
        }) = parsed
        {
            // Streaming verb: frames go straight to the writer. A write
            // failure is the client unsubscribing (disconnect), not an
            // error; either way this connection is done with the stream.
            sim_obs::counter!("server.watchers", 1);
            if run_watch(state, &mut writer, interval_ms, frames).is_err() || state.shutting_down()
            {
                return;
            }
            continue;
        }
        let response = respond(state, &mut reader, &line);
        if !response.starts_with("ok") {
            state.errors.fetch_add(1, Ordering::Relaxed);
            if response.starts_with("err") {
                sim_obs::counter!("server.protocol_errors", 1);
            }
        }
        if write_line(&mut writer, &response).is_err() {
            return;
        }
        if shutdown_after {
            state.begin_shutdown();
            return;
        }
        if state.shutting_down() {
            return;
        }
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// Produces the response line for one request line. Inline verbs are
/// answered here; evaluation work is resolved, queued, and awaited.
fn respond(state: &Arc<ServerState>, reader: &mut LineReader<'_>, line: &str) -> String {
    let request = match parse_request(line) {
        Ok(request) => request,
        Err(e) => return e.to_line(),
    };
    match request {
        Request::Ping => "ok pong".to_owned(),
        Request::Shutdown => "ok shutdown".to_owned(),
        Request::Stats => stats_line(state),
        Request::Scenario { name, lines } => {
            let mut payload = String::new();
            for _ in 0..lines {
                match reader.next_line() {
                    ReadLine::Line(line) => {
                        payload.push_str(&line);
                        payload.push('\n');
                    }
                    ReadLine::Closed | ReadLine::Oversize => {
                        return ProtoError::new(3, "connection ended inside scenario payload")
                            .to_line();
                    }
                }
            }
            match state.install(&name.value, &payload) {
                Ok(slot) => {
                    let mut ok = ResponseLine::ok("scenario");
                    ok.str("name", &name.value)
                        .u64("workloads", slot.scenario.workloads.len() as u64)
                        .u64("arch_points", slot.scenario.arch_points.len() as u64);
                    ok.finish()
                }
                Err(e) => ProtoError::new(name.pos, one_line(&e)).to_line(),
            }
        }
        Request::Watch { interval_ms, .. } => {
            // `handle_connection` intercepts watch for streaming; a
            // direct caller (tests) gets one immediate frame.
            let stats = state.stats();
            watch_frame(state, 1, interval_ms, &stats, &stats)
        }
        Request::Sleep { ms } => match enqueue(state, Job::Sleep { ms }) {
            Ok(response) => response,
            Err(response) => response,
        },
        Request::Eval(eval) => match resolve_eval(state, &eval) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::Fit(fit) => match resolve_fit(state, &fit) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::Sweep(sweep) => match resolve_sweep(state, &sweep) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::Fleet(fleet) => match resolve_fleet(state, &fleet) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::UnitSweep(unit) => match resolve_unit_sweep(state, &unit) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::UnitFleet(unit) => match resolve_unit_fleet(state, &unit) {
            Ok(job) => enqueue(state, job).unwrap_or_else(|busy| busy),
            Err(e) => e.to_line(),
        },
        Request::Merge { scenario } => match resolve_slot(state, scenario.as_ref()) {
            Ok(slot) => merge_line(&slot),
            Err(e) => e.to_line(),
        },
        Request::Shard { index, shards } => {
            *state.shard.lock().expect("shard lock poisoned") = Some((index.value, shards.value));
            sim_obs::counter!("server.shard.handshakes", 1);
            let mut ok = ResponseLine::ok("shard");
            ok.u64("index", index.value).u64("shards", shards.value);
            ok.finish()
        }
    }
}

/// The `merge` response: one engine's cumulative evaluation summary —
/// the partial a coordinator folds (and `cluster status` prints).
fn merge_line(slot: &EngineSlot) -> String {
    let cache = slot.engine.cache();
    let timing = slot.engine.timing_cache();
    let mut ok = ResponseLine::ok("merge");
    ok.u64("workers", slot.engine.workers() as u64)
        .u64("evaluations", cache.len() as u64)
        .u64("cache_hits", cache.hits())
        .u64("timing_runs", timing.misses())
        .u64("timing_reuses", timing.hits())
        .u64("wall_ns", cache.wall().as_nanos() as u64)
        .u64("busy_ns", cache.busy().as_nanos() as u64)
        .u64(
            "store_records",
            slot.engine.store().map_or(0, |s| s.len() as u64),
        );
    ok.finish()
}

/// Flattens an error to one response-safe line.
fn one_line(e: &SimError) -> String {
    e.to_string().replace('\n', "; ")
}

/// Streams `watch` frames every `interval_ms` until `frames` have been
/// sent (0 = unbounded), the client disconnects (write failure), or the
/// server shuts down. Each frame carries the cumulative counters *and*
/// their deltas since the previous frame, so a client can integrate
/// rates without keeping state; the closing `watch-end` line repeats the
/// final totals.
fn run_watch(
    state: &Arc<ServerState>,
    writer: &mut TcpStream,
    interval_ms: u64,
    frames: u64,
) -> std::io::Result<()> {
    let interval = Duration::from_millis(interval_ms);
    let mut prev = state.stats();
    let mut seq = 0u64;
    loop {
        // Sleep in short slices so shutdown interrupts long intervals.
        let deadline = Instant::now() + interval;
        while !state.shutting_down() {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            std::thread::sleep((deadline - now).min(Duration::from_millis(25)));
        }
        let now = state.stats();
        if state.shutting_down() {
            return write_line(writer, &watch_end(seq, &now));
        }
        seq += 1;
        write_line(writer, &watch_frame(state, seq, interval_ms, &prev, &now))?;
        prev = now;
        if frames != 0 && seq >= frames {
            return write_line(writer, &watch_end(seq, &now));
        }
    }
}

fn watch_end(frames: u64, stats: &ServerStats) -> String {
    let mut ok = ResponseLine::ok("watch-end");
    ok.u64("frames", frames).u64("requests", stats.requests);
    ok.finish()
}

/// One telemetry frame: counters (cumulative + delta), queue state, and
/// — when the telemetry ring holds a window — the windowed latency
/// quantiles and the latest SLO tally.
fn watch_frame(
    state: &Arc<ServerState>,
    seq: u64,
    interval_ms: u64,
    prev: &ServerStats,
    now: &ServerStats,
) -> String {
    let mut ok = ResponseLine::ok(WATCH_FRAME_KIND);
    ok.u64("seq", seq)
        .u64("interval_ms", interval_ms)
        .f64("uptime_s", state.uptime().as_secs_f64())
        .u64("queue_len", state.queue.len() as u64);
    for (key, cum, earlier) in [
        ("requests", now.requests, prev.requests),
        ("shed", now.shed, prev.shed),
        ("errors", now.errors, prev.errors),
        ("batches", now.batches, prev.batches),
        (
            "batched_requests",
            now.batched_requests,
            prev.batched_requests,
        ),
    ] {
        ok.u64(key, cum);
        ok.u64(&format!("d_{key}"), cum.saturating_sub(earlier));
    }
    ok.f64("batch_occupancy", now.batch_occupancy());
    if let Some(tel) = &state.telemetry {
        if let Some(window) = tel.ring.window() {
            for (label, q) in [("p50", 0.5), ("p99", 0.99), ("p999", 0.999)] {
                if let Some(ms) = window.quantile("server.request.latency_ms", q) {
                    ok.f64(&format!("latency_{label}_ms"), ms);
                }
            }
        }
        let statuses = tel.latest_slo();
        if !statuses.is_empty() {
            ok.u64("slo_objectives", statuses.len() as u64).u64(
                "slo_violated",
                statuses.iter().filter(|s| !s.ok).count() as u64,
            );
        }
    }
    ok.finish()
}

fn stats_line(state: &Arc<ServerState>) -> String {
    let stats = state.stats();
    let summary = state.sweep_summary();
    let mut ok = ResponseLine::ok("stats");
    ok.f64("uptime_s", state.uptime().as_secs_f64())
        .u64("connections", stats.connections)
        .u64("requests", stats.requests)
        .u64("shed", stats.shed)
        .u64("errors", stats.errors)
        .u64("batches", stats.batches)
        .u64("batched_requests", stats.batched_requests)
        .u64("queue_len", state.queue.len() as u64)
        .u64("evaluations", summary.evaluations)
        .u64("cache_hits", summary.cache_hits)
        .u64("timing_runs", summary.timing_runs)
        .u64("timing_reuses", summary.timing_reuses);
    if let Some((index, shards)) = state.shard_identity() {
        ok.u64("shard_index", index).u64("shard_count", shards);
    }
    ok.finish()
}

/// Queues resolved work and waits for the worker's reply. `Err` carries
/// the `busy` (or internal-error) response when the work never queued.
fn enqueue(state: &Arc<ServerState>, job: Job) -> Result<String, String> {
    let (tx, rx) = mpsc::channel();
    let queued = QueuedRequest {
        job,
        reply: tx,
        enqueued: Instant::now(),
    };
    match state.queue.try_push(queued) {
        Ok(()) => {
            sim_obs::gauge!("server.queue.depth", state.queue.len() as f64);
        }
        Err((PushError::Full, _)) => {
            state.shed.fetch_add(1, Ordering::Relaxed);
            sim_obs::counter!("server.shed", 1);
            return Err(busy_line(state.queue.capacity()));
        }
        Err((PushError::Closed, _)) => {
            return Err(ProtoError::new(1, "server is shutting down").to_line());
        }
    }
    rx.recv()
        .map_err(|_| ProtoError::new(1, "internal error: worker dropped the request").to_line())
}

/// Resolution helpers — connection-thread work that turns parsed
/// requests into queueable jobs, reporting semantic errors at the
/// offending token.
fn resolve_slot(
    state: &Arc<ServerState>,
    scenario: Option<&crate::protocol::Spanned<String>>,
) -> Result<Arc<EngineSlot>, ProtoError> {
    match scenario {
        None => Ok(state.slot(None).expect("default slot always present")),
        Some(name) => state.slot(Some(&name.value)).ok_or_else(|| {
            ProtoError::new(
                name.pos,
                format!("unknown scenario `{}` (upload it first)", name.value),
            )
        }),
    }
}

fn resolve_app(
    slot: &EngineSlot,
    app: &crate::protocol::Spanned<String>,
) -> Result<App, ProtoError> {
    App::ALL
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(&app.value))
        .ok_or_else(|| {
            ProtoError::new(
                app.pos,
                format!(
                    "unknown application `{}` (known: {})",
                    app.value,
                    App::ALL
                        .iter()
                        .map(|a| a.name())
                        .collect::<Vec<_>>()
                        .join(", ")
                ),
            )
        })
        .and_then(|a| {
            // The application must be in the scenario's suite, so server
            // results always correspond to a reachable scenario run.
            if slot
                .scenario
                .profiles()
                .iter()
                .any(|p| p.name.eq_ignore_ascii_case(a.name()))
            {
                Ok(a)
            } else {
                Err(ProtoError::new(
                    app.pos,
                    format!("application `{}` is not in the scenario's suite", app.value),
                ))
            }
        })
}

/// Resolves the operating point: scenario defaults overridden per key.
/// `freq` without `vdd` follows the scenario's V(f) line; `freq` with
/// `vdd` is taken verbatim (off-grid points are allowed — the engine
/// validates applicability).
fn resolve_point(slot: &EngineSlot, point: &OpPoint) -> Result<(ArchPoint, DvsPoint), ProtoError> {
    let mut arch = slot.scenario.base_arch();
    if let Some(w) = &point.window {
        arch.window = w.value;
    }
    if let Some(a) = &point.alus {
        arch.alus = a.value;
    }
    if let Some(f) = &point.fpus {
        arch.fpus = f.value;
    }
    let base = slot.scenario.base_dvs();
    let dvs = match (&point.freq_hz, &point.vdd) {
        (None, None) => base,
        (Some(f), None) => slot
            .scenario
            .dvs
            .at_ghz(f.value / 1e9)
            .map_err(|e| ProtoError::new(f.pos, one_line(&e)))?,
        // The Hz value is taken verbatim — a `/1e9` → `*1e9` GHz round
        // trip can drift a ulp, and cluster coordinators rely on shipped
        // points reconstructing bit-exactly.
        (Some(f), Some(v)) => DvsPoint {
            frequency: Hertz(f.value),
            vdd: Volts(v.value),
        },
        (None, Some(v)) => DvsPoint {
            vdd: Volts(v.value),
            ..base
        },
    };
    // Validate applicability now so the error lands on this request, at
    // a meaningful position, instead of surfacing from a batch later.
    let pos = point
        .window
        .as_ref()
        .map(|w| w.pos)
        .or_else(|| point.alus.as_ref().map(|a| a.pos))
        .or_else(|| point.fpus.as_ref().map(|f| f.pos))
        .unwrap_or(1);
    arch.apply(slot.engine.base_config(), dvs)
        .map_err(|e| ProtoError::new(pos, one_line(&e)))?;
    Ok((arch, dvs))
}

fn resolve_eval(state: &Arc<ServerState>, eval: &EvalRequest) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, eval.scenario.as_ref())?;
    let app = resolve_app(&slot, &eval.app)?;
    let (arch, dvs) = resolve_point(&slot, &eval.point)?;
    Ok(Job::Eval {
        slot,
        app,
        arch,
        dvs,
    })
}

fn resolve_fit(state: &Arc<ServerState>, fit: &FitRequest) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, fit.scenario.as_ref())?;
    let app = resolve_app(&slot, &fit.app)?;
    let (arch, dvs) = resolve_point(&slot, &fit.point)?;
    let model = slot
        .model_for(&fit.qual)
        .map_err(|e| ProtoError::new(qual_pos(&fit.qual), one_line(&e)))?;
    Ok(Job::Fit {
        slot,
        app,
        arch,
        dvs,
        model,
    })
}

fn resolve_sweep(state: &Arc<ServerState>, sweep: &SweepRequest) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, sweep.scenario.as_ref())?;
    let app = resolve_app(&slot, &sweep.app)?;
    let strategy = match &sweep.strategy {
        None => Strategy::ArchDvs,
        Some(s) => match s.value.to_ascii_lowercase().as_str() {
            "arch" => Strategy::Arch,
            "dvs" => Strategy::Dvs,
            "archdvs" => Strategy::ArchDvs,
            other => {
                return Err(ProtoError::new(
                    s.pos,
                    format!("unknown strategy `{other}` (arch, dvs, archdvs)"),
                ))
            }
        },
    };
    let step = sweep.step_ghz.as_ref().map(|s| s.value);
    let candidates = slot
        .scenario
        .candidates(strategy, step)
        .map_err(|e| ProtoError::new(sweep.step_ghz.as_ref().map_or(1, |s| s.pos), one_line(&e)))?;
    let model = slot
        .model_for(&sweep.qual)
        .map_err(|e| ProtoError::new(qual_pos(&sweep.qual), one_line(&e)))?;
    Ok(Job::Sweep {
        slot,
        app,
        strategy,
        candidates,
        model,
    })
}

fn resolve_fleet(state: &Arc<ServerState>, fleet: &FleetRequest) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, fleet.scenario.as_ref())?;
    let app = resolve_app(&slot, &fleet.app)?;
    let (arch, dvs) = resolve_point(&slot, &fleet.point)?;
    let model = slot
        .model_for(&fleet.qual)
        .map_err(|e| ProtoError::new(qual_pos(&fleet.qual), one_line(&e)))?;
    let config = FleetConfig {
        dies: fleet
            .dies
            .as_ref()
            .map_or(slot.scenario.fleet.dies, |d| d.value),
        seed: fleet
            .seed
            .as_ref()
            .map_or(slot.scenario.fleet.seed, |s| s.value),
        shape: fleet
            .shape
            .as_ref()
            .map_or(slot.scenario.fleet.shape, |s| s.value),
        variation: slot.scenario.fleet.variation,
    };
    // Validate overrides now so the error lands on the offending token.
    if let Err(e) = config.validate() {
        let pos = fleet
            .dies
            .as_ref()
            .map(|d| d.pos)
            .or_else(|| fleet.shape.as_ref().map(|s| s.pos))
            .unwrap_or(1);
        return Err(ProtoError::new(pos, one_line(&e)));
    }
    Ok(Job::Fleet {
        slot,
        app,
        arch,
        dvs,
        model,
        config,
    })
}

fn resolve_unit_sweep(
    state: &Arc<ServerState>,
    unit: &UnitSweepRequest,
) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, unit.scenario.as_ref())?;
    let app = resolve_app(&slot, &unit.app)?;
    let (arch, dvs) = resolve_point(&slot, &unit.point)?;
    let model = slot
        .model_for(&unit.qual)
        .map_err(|e| ProtoError::new(qual_pos(&unit.qual), one_line(&e)))?;
    Ok(Job::UnitSweep {
        slot,
        app,
        arch,
        dvs,
        model,
        index: unit.index.value,
    })
}

fn resolve_unit_fleet(
    state: &Arc<ServerState>,
    unit: &UnitFleetRequest,
) -> Result<Job, ProtoError> {
    let slot = resolve_slot(state, unit.scenario.as_ref())?;
    let app = resolve_app(&slot, &unit.app)?;
    let (arch, dvs) = resolve_point(&slot, &unit.point)?;
    let model = slot
        .model_for(&unit.qual)
        .map_err(|e| ProtoError::new(qual_pos(&unit.qual), one_line(&e)))?;
    let config = FleetConfig {
        dies: unit
            .dies
            .as_ref()
            .map_or(slot.scenario.fleet.dies, |d| d.value),
        seed: unit
            .seed
            .as_ref()
            .map_or(slot.scenario.fleet.seed, |s| s.value),
        shape: unit
            .shape
            .as_ref()
            .map_or(slot.scenario.fleet.shape, |s| s.value),
        variation: slot.scenario.fleet.variation,
    };
    if let Err(e) = config.validate() {
        let pos = unit
            .dies
            .as_ref()
            .map(|d| d.pos)
            .or_else(|| unit.shape.as_ref().map(|s| s.pos))
            .unwrap_or(1);
        return Err(ProtoError::new(pos, one_line(&e)));
    }
    let batches = config.dies.div_ceil(drm::DIE_BATCH);
    if unit.batch.value >= batches {
        return Err(ProtoError::new(
            unit.batch.pos,
            format!("batch {} out of range 0..{batches}", unit.batch.value),
        ));
    }
    Ok(Job::UnitFleet {
        slot,
        app,
        arch,
        dvs,
        model,
        config,
        batch: unit.batch.value,
    })
}

fn qual_pos(qual: &QualOverride) -> usize {
    qual.tqual_k
        .as_ref()
        .map(|t| t.pos)
        .or_else(|| qual.alpha.as_ref().map(|a| a.pos))
        .or_else(|| qual.target_fit.as_ref().map(|f| f.pos))
        .unwrap_or(1)
}

/// Drain-worker loop: pop one request, gather more inside the linger
/// window, run each scenario's share through one `evaluate_all` pass,
/// answer everyone.
fn worker_loop(state: &Arc<ServerState>) {
    loop {
        let Some(first) = state.queue.pop_timeout(Duration::from_millis(50)) else {
            if state.queue.is_closed() {
                return;
            }
            continue;
        };
        let mut batch = vec![first];
        let deadline = Instant::now() + state.config.linger;
        while batch.len() < state.config.batch_max {
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            match state.queue.pop_timeout(deadline - now) {
                Some(request) => batch.push(request),
                None => break,
            }
        }
        sim_obs::gauge!("server.queue.depth", state.queue.len() as f64);
        process_batch(state, batch);
    }
}

fn process_batch(state: &Arc<ServerState>, batch: Vec<QueuedRequest>) {
    let _span = sim_obs::span!("server.batch");
    state.batches.fetch_add(1, Ordering::Relaxed);
    state
        .batched_requests
        .fetch_add(batch.len() as u64, Ordering::Relaxed);
    sim_obs::hist!("server.batch.size", batch.len() as f64);

    // One evaluate_all per engine covers every eval/fit in the batch:
    // cross-request deduplication plus shared timing runs. Errors are
    // ignored here — each request's own evaluation call below reports
    // them per request.
    type SlotJobs = (Arc<EngineSlot>, Vec<(App, ArchPoint, DvsPoint)>);
    let mut grouped: HashMap<*const EngineSlot, SlotJobs> = HashMap::new();
    for request in &batch {
        if let Job::Eval {
            slot,
            app,
            arch,
            dvs,
            ..
        }
        | Job::Fit {
            slot,
            app,
            arch,
            dvs,
            ..
        } = &request.job
        {
            grouped
                .entry(Arc::as_ptr(slot))
                .or_insert_with(|| (Arc::clone(slot), Vec::new()))
                .1
                .push((*app, *arch, *dvs));
        }
    }
    for (_, (slot, jobs)) in grouped {
        if jobs.len() > 1 {
            let _ = slot.engine.evaluate_all(&jobs);
        }
    }

    for request in batch {
        let response = run_job(&request.job);
        let latency_ms = request.enqueued.elapsed().as_secs_f64() * 1e3;
        sim_obs::hist!("server.request.latency_ms", latency_ms);
        sim_obs::hist!(verb_latency_metric(&request.job), latency_ms);
        // A vanished client is not an error; the work stays cached.
        let _ = request.reply.send(response);
    }
}

/// The per-verb latency histogram recorded alongside the global one —
/// the metric a scenario's `slo.verb` objectives bind to.
fn verb_latency_metric(job: &Job) -> &'static str {
    match job {
        Job::Eval { .. } => "server.request.latency_ms.eval",
        Job::Fit { .. } => "server.request.latency_ms.fit",
        Job::Sweep { .. } => "server.request.latency_ms.sweep",
        Job::Fleet { .. } => "server.request.latency_ms.fleet",
        Job::UnitSweep { .. } | Job::UnitFleet { .. } => "server.request.latency_ms.unit",
        Job::Sleep { .. } => "server.request.latency_ms.sleep",
    }
}

/// Executes one resolved job, producing its response line.
fn run_job(job: &Job) -> String {
    match job {
        Job::Sleep { ms } => {
            std::thread::sleep(Duration::from_millis(*ms));
            let mut ok = ResponseLine::ok("slept");
            ok.u64("ms", *ms);
            ok.finish()
        }
        Job::Eval {
            slot,
            app,
            arch,
            dvs,
        } => match slot.engine.evaluation(*app, *arch, *dvs) {
            Ok(ev) => {
                let mut ok = ResponseLine::ok("eval");
                ok.str("app", app.name())
                    .u64("window", u64::from(arch.window))
                    .u64("alus", u64::from(arch.alus))
                    .u64("fpus", u64::from(arch.fpus))
                    .f64("freq_ghz", dvs.frequency.to_ghz())
                    .f64("vdd", dvs.vdd.0)
                    .f64("ipc", ev.ipc)
                    .f64("bips", ev.bips)
                    .f64("power_w", ev.average_power().0)
                    .f64("tmax_k", ev.max_temperature().0)
                    .f64("sink_k", ev.sink_temperature.0)
                    .u64("intervals", ev.intervals.len() as u64);
                ok.finish()
            }
            Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
        },
        Job::Fit {
            slot,
            app,
            arch,
            dvs,
            model,
        } => match slot.engine.evaluation(*app, *arch, *dvs) {
            Ok(ev) => {
                let fit = ev.application_fit(model);
                let total = fit.total();
                let mut ok = ResponseLine::ok("fit");
                ok.str("app", app.name())
                    .f64("freq_ghz", dvs.frequency.to_ghz())
                    .f64("vdd", dvs.vdd.0);
                for mechanism in Mechanism::ALL {
                    ok.f64(mechanism.name(), fit.mechanism_total(mechanism).value());
                }
                ok.f64("total", total.value())
                    .f64("target", model.target_fit().value())
                    .f64("mttf_h", total.to_mttf().0)
                    .bool("feasible", fit.meets(model.target_fit()));
                ok.finish()
            }
            Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
        },
        Job::Sweep {
            slot,
            app,
            strategy,
            candidates,
            model,
        } => {
            let mut oracle = Oracle::from_engine(slot.engine.clone());
            if let Some(surrogate) = &slot.surrogate {
                oracle = oracle.with_shared_surrogate(Arc::clone(surrogate));
            }
            let base = (slot.scenario.base_arch(), slot.scenario.base_dvs());
            match oracle.best_among(*app, candidates, base, model) {
                Ok(choice) => {
                    let mut ok = ResponseLine::ok("sweep");
                    ok.str("app", app.name())
                        .str("strategy", strategy.name())
                        .u64("candidates", candidates.len() as u64)
                        .u64("window", u64::from(choice.arch.window))
                        .u64("alus", u64::from(choice.arch.alus))
                        .u64("fpus", u64::from(choice.arch.fpus))
                        .f64("freq_ghz", choice.dvs.frequency.to_ghz())
                        .f64("vdd", choice.dvs.vdd.0)
                        .f64("relative_performance", choice.relative_performance)
                        .f64("fit", choice.fit.value())
                        .bool("feasible", choice.feasible);
                    ok.finish()
                }
                Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
            }
        }
        Job::UnitSweep {
            slot,
            app,
            arch,
            dvs,
            model,
            index,
        } => {
            // The pass-local counters of this unit's `evaluate_all` are
            // the shard's delta for the coordinator's fold; the scoring
            // lookup afterwards is a guaranteed cache hit.
            let result = slot
                .engine
                .evaluate_all(&[(*app, *arch, *dvs)])
                .and_then(|delta| Ok((delta, slot.engine.evaluation(*app, *arch, *dvs)?)));
            match result {
                Ok((delta, ev)) => {
                    let fit = ev.application_fit(model).total();
                    let target = model.target_fit();
                    let mut ok = ResponseLine::ok("unit-sweep");
                    ok.u64("index", *index)
                        .str("app", app.name())
                        .f64("bips", ev.bips)
                        .f64("fit", fit.value())
                        .f64("target", target.value())
                        .bool("feasible", fit <= target)
                        .u64("evaluations", delta.evaluations)
                        .u64("cache_hits", delta.cache_hits)
                        .u64("timing_runs", delta.timing_runs)
                        .u64("timing_reuses", delta.timing_reuses)
                        .u64("wall_ns", delta.wall.as_nanos() as u64)
                        .u64("busy_ns", delta.busy.as_nanos() as u64);
                    ok.finish()
                }
                Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
            }
        }
        Job::UnitFleet {
            slot,
            app,
            arch,
            dvs,
            model,
            config,
            batch,
        } => match drm::fleet_partial(&slot.engine, *app, *arch, *dvs, model, config, *batch) {
            Ok(part) => {
                let mut ok = ResponseLine::ok("unit-fleet");
                ok.u64("batch", *batch)
                    .str("app", app.name())
                    .u64("dies", part.dies())
                    .u64("violations", part.violations())
                    .f64("fit_sum", part.fit_sum())
                    .f64("life_sum", part.life_sum())
                    .str("fit_sketch", &part.fit_sketch().to_compact_string())
                    .str("life_sketch", &part.life_sketch().to_compact_string());
                ok.finish()
            }
            Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
        },
        Job::Fleet {
            slot,
            app,
            arch,
            dvs,
            model,
            config,
        } => match drm::run_fleet(&slot.engine, *app, *arch, *dvs, model, config) {
            Ok(summary) => {
                let mut ok = ResponseLine::ok("fleet");
                ok.str("app", app.name())
                    .u64("dies", summary.dies)
                    .u64("violations", summary.violations)
                    .f64("violation_fraction", summary.violation_fraction())
                    .f64("target", summary.target_fit)
                    .f64("fit_mean", summary.fit.mean)
                    .f64("fit_p50", summary.fit.p50)
                    .f64("fit_p95", summary.fit.p95)
                    .f64("life_mean_y", summary.lifetime_years.mean)
                    .f64("life_p1_y", summary.lifetime_years.p1)
                    .f64("life_p5_y", summary.lifetime_years.p5)
                    .f64("life_p50_y", summary.lifetime_years.p50)
                    .f64("life_p95_y", summary.lifetime_years.p95)
                    .f64("rank_error", summary.rank_error);
                ok.finish()
            }
            Err(e) => ProtoError::new(1, one_line(&e)).to_line(),
        },
    }
}
